#include "sync/clock_table.h"

#include "common/logging.h"

namespace hetgmp {

ClockTable::ClockTable(int num_workers, int64_t num_embeddings)
    : num_workers_(num_workers), num_embeddings_(num_embeddings) {
  HETGMP_CHECK_GT(num_workers, 0);
  HETGMP_CHECK_GE(num_embeddings, 0);
  const int64_t cells = static_cast<int64_t>(num_workers) * num_embeddings;
  clocks_ = std::make_unique<std::atomic<uint64_t>[]>(cells);
  Reset();
}

void ClockTable::Reset() {
  const int64_t cells =
      static_cast<int64_t>(num_workers_) * num_embeddings_;
  for (int64_t i = 0; i < cells; ++i) {
    clocks_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace hetgmp
