#ifndef HETGMP_SYNC_STALENESS_H_
#define HETGMP_SYNC_STALENESS_H_

#include <cstdint>
#include <string>

namespace hetgmp {

// Consistency protocols the engine can run (§3/§5.3).
enum class ConsistencyMode {
  kBsp,           // strict barrier per iteration, no stale reads
  kAsp,           // fully asynchronous; secondaries refresh only on miss
  kSsp,           // SSP: per-worker iteration-clock bound, no graph view
  kGraphBounded,  // HET-GMP: intra+inter embedding bounds with clocks
};

const char* ConsistencyModeName(ConsistencyMode mode);

// Parameters of the graph-based bounded asynchrony.
struct StalenessBound {
  // Maximum tolerated clock gap s. kUnbounded disables checks (ASP-like
  // behaviour on the same code path; Table 2's s=∞ column).
  static constexpr uint64_t kUnbounded = ~uint64_t{0};
  uint64_t s = 100;

  // Enables the access-frequency clock normalization of §5.3: before
  // comparing clocks of two *different* embeddings, the more frequent
  // one's clock is scaled by p_j/p_i so hot embeddings (whose clocks
  // advance faster) are not spuriously flagged stale.
  bool normalize_by_frequency = true;

  bool unbounded() const { return s == kUnbounded; }
};

// Intra-embedding check (① in Figure 6): is a secondary within s updates
// of its primary? Clocks compare directly (same embedding, same p).
[[nodiscard]] bool IntraEmbeddingFresh(uint64_t secondary_clock,
                                       uint64_t primary_clock,
                                       const StalenessBound& bound);

// Inter-embedding check (② in Figure 6): are two embeddings gathered for
// the same sample mutually within s? With normalization and p_i >= p_j the
// gap is |c_i * p_j / p_i - c_j| (§5.3); without, |c_i - c_j|.
[[nodiscard]] bool InterEmbeddingFresh(uint64_t clock_i, double freq_i,
                                       uint64_t clock_j, double freq_j,
                                       const StalenessBound& bound);

// The normalized gap itself (exposed for tests and diagnostics).
double NormalizedClockGap(uint64_t clock_i, double freq_i, uint64_t clock_j,
                          double freq_j, bool normalize);

}  // namespace hetgmp

#endif  // HETGMP_SYNC_STALENESS_H_
