#include "sync/staleness.h"

#include <cmath>

namespace hetgmp {

const char* ConsistencyModeName(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kBsp:
      return "BSP";
    case ConsistencyMode::kAsp:
      return "ASP";
    case ConsistencyMode::kSsp:
      return "SSP";
    case ConsistencyMode::kGraphBounded:
      return "graph-bounded";
  }
  return "?";
}

bool IntraEmbeddingFresh(uint64_t secondary_clock, uint64_t primary_clock,
                         const StalenessBound& bound) {
  if (bound.unbounded()) return true;
  // The primary is never behind its secondaries (write-back keeps it
  // up-to-date), so the gap is one-sided.
  if (primary_clock <= secondary_clock) return true;
  return primary_clock - secondary_clock <= bound.s;
}

double NormalizedClockGap(uint64_t clock_i, double freq_i, uint64_t clock_j,
                          double freq_j, bool normalize) {
  double ci = static_cast<double>(clock_i);
  double cj = static_cast<double>(clock_j);
  if (normalize && freq_i > 0.0 && freq_j > 0.0) {
    // Scale the more frequent embedding's clock down (§5.3: with
    // p_i >= p_j the gap is |c_i * p_j/p_i − c_j|).
    if (freq_i >= freq_j) {
      ci *= freq_j / freq_i;
    } else {
      cj *= freq_i / freq_j;
    }
  }
  return std::abs(ci - cj);
}

bool InterEmbeddingFresh(uint64_t clock_i, double freq_i, uint64_t clock_j,
                         double freq_j, const StalenessBound& bound) {
  if (bound.unbounded()) return true;
  return NormalizedClockGap(clock_i, freq_i, clock_j, freq_j,
                            bound.normalize_by_frequency) <=
         static_cast<double>(bound.s);
}

}  // namespace hetgmp
