#ifndef HETGMP_SYNC_CLOCK_TABLE_H_
#define HETGMP_SYNC_CLOCK_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace hetgmp {

// Per-replica update clocks (§5.3): c_i^k counts the accumulated updates
// applied to embedding i's replica on worker k. The primary's clock is the
// entry for the owning worker; secondaries carry the primary clock value
// they last synchronized with.
//
// Thread-safe: clocks are atomics. A worker only writes its own row plus
// primary rows it owns, but cross-worker reads happen on every staleness
// check, so all accesses go through atomics.
//
// Memory-order policy. Clock cells are not the synchronization point for
// the embedding payload — row data is ordered by the EmbeddingTable's
// striped row mutexes, which every primary read/update takes. The clocks
// therefore only need to keep the *staleness metadata* itself coherent:
//
//  * Increment is acq_rel: a primary increment publishes after the mutex-
//    protected row update it describes, so any reader that observes clock
//    value c and then takes the row mutex sees at least the c-th update's
//    payload (mutex ordering), and never observes the clock running behind
//    a value it already proved synchronized (the ValidateInvariants
//    "replica ahead of primary" check relies on this).
//  * Get/Set are acquire/release for the same one-sided guarantee between
//    a secondary's synced-clock publication and foreign staleness checks.
//
// Relaxed ordering here would still produce valid byte counts and would
// rarely misbehave on x86, but it would let a staleness check pair a fresh
// clock with a stale decision on weakly-ordered hardware — exactly the
// silent Theorem-1 violation the sanitizer/annotation tooling exists to
// prevent. Keep acquire/release unless a profile shows the clock ops hot.
class ClockTable {
 public:
  ClockTable(int num_workers, int64_t num_embeddings);

  uint64_t Get(int worker, int64_t embedding) const {
    return clocks_[Index(worker, embedding)].load(std::memory_order_acquire);
  }
  void Set(int worker, int64_t embedding, uint64_t value) {
    clocks_[Index(worker, embedding)].store(value,
                                            std::memory_order_release);
  }
  // Returns the post-increment value.
  uint64_t Increment(int worker, int64_t embedding, uint64_t delta = 1) {
    return clocks_[Index(worker, embedding)].fetch_add(
               delta, std::memory_order_acq_rel) +
           delta;
  }

  int num_workers() const { return num_workers_; }
  int64_t num_embeddings() const { return num_embeddings_; }

  void Reset();

 private:
  int64_t Index(int worker, int64_t embedding) const {
    return static_cast<int64_t>(worker) * num_embeddings_ + embedding;
  }

  int num_workers_;
  int64_t num_embeddings_;
  std::unique_ptr<std::atomic<uint64_t>[]> clocks_;
};

}  // namespace hetgmp

#endif  // HETGMP_SYNC_CLOCK_TABLE_H_
