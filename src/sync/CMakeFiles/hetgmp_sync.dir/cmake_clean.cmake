file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_sync.dir/clock_table.cc.o"
  "CMakeFiles/hetgmp_sync.dir/clock_table.cc.o.d"
  "CMakeFiles/hetgmp_sync.dir/staleness.cc.o"
  "CMakeFiles/hetgmp_sync.dir/staleness.cc.o.d"
  "libhetgmp_sync.a"
  "libhetgmp_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
