
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/clock_table.cc" "src/sync/CMakeFiles/hetgmp_sync.dir/clock_table.cc.o" "gcc" "src/sync/CMakeFiles/hetgmp_sync.dir/clock_table.cc.o.d"
  "/root/repo/src/sync/staleness.cc" "src/sync/CMakeFiles/hetgmp_sync.dir/staleness.cc.o" "gcc" "src/sync/CMakeFiles/hetgmp_sync.dir/staleness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/hetgmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
