file(REMOVE_RECURSE
  "libhetgmp_sync.a"
)
