# Empty compiler generated dependencies file for hetgmp_sync.
# This may be replaced when dependencies are built.
