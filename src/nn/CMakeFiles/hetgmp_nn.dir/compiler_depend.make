# Empty compiler generated dependencies file for hetgmp_nn.
# This may be replaced when dependencies are built.
