file(REMOVE_RECURSE
  "libhetgmp_nn.a"
)
