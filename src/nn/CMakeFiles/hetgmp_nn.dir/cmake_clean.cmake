file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_nn.dir/activations.cc.o"
  "CMakeFiles/hetgmp_nn.dir/activations.cc.o.d"
  "CMakeFiles/hetgmp_nn.dir/cross_layer.cc.o"
  "CMakeFiles/hetgmp_nn.dir/cross_layer.cc.o.d"
  "CMakeFiles/hetgmp_nn.dir/dense.cc.o"
  "CMakeFiles/hetgmp_nn.dir/dense.cc.o.d"
  "CMakeFiles/hetgmp_nn.dir/loss.cc.o"
  "CMakeFiles/hetgmp_nn.dir/loss.cc.o.d"
  "CMakeFiles/hetgmp_nn.dir/mlp.cc.o"
  "CMakeFiles/hetgmp_nn.dir/mlp.cc.o.d"
  "CMakeFiles/hetgmp_nn.dir/optimizer.cc.o"
  "CMakeFiles/hetgmp_nn.dir/optimizer.cc.o.d"
  "libhetgmp_nn.a"
  "libhetgmp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
