#ifndef HETGMP_NN_CROSS_LAYER_H_
#define HETGMP_NN_CROSS_LAYER_H_

#include <vector>

#include "nn/layer.h"

namespace hetgmp {

// The cross network of Deep & Cross (Wang et al., ADKDD'17). With input x0
// (per sample), layer l computes
//
//   x_{l+1} = x0 * (x_l · w_l) + b_l + x_l
//
// i.e., an explicit bounded-degree feature-interaction term plus a residual
// connection. All layers share the input dimension d; parameters per layer
// are w_l, b_l ∈ R^d.
class CrossNetwork : public Layer {
 public:
  CrossNetwork(int64_t dim, int num_layers, Rng* rng);

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

  std::vector<Tensor*> Params() override;
  std::vector<Tensor*> Grads() override;

  int num_layers() const { return static_cast<int>(w_.size()); }

 private:
  std::vector<Tensor> w_;
  std::vector<Tensor> b_;
  std::vector<Tensor> w_grad_;
  std::vector<Tensor> b_grad_;
  // Per-forward caches: x_[l] is the input to layer l (x_[0] == x0);
  // s_[l][i] is the scalar x_l,i · w_l for sample i.
  std::vector<Tensor> x_;
  std::vector<std::vector<float>> s_;
};

}  // namespace hetgmp

#endif  // HETGMP_NN_CROSS_LAYER_H_
