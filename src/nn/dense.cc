#include "nn/dense.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

Dense::Dense(int64_t in_dim, int64_t out_dim, Rng* rng)
    : weight_(Tensor::XavierUniform(in_dim, out_dim, rng)),
      bias_({out_dim}),
      weight_grad_({in_dim, out_dim}),
      bias_grad_({out_dim}) {}

void Dense::Forward(const Tensor& in, Tensor* out) {
  HETGMP_CHECK_EQ(in.dim(1), weight_.dim(0));
  cached_in_ = &in;
  MatMul(in, weight_, out);
  AddBiasRows(out, bias_);
}

void Dense::Backward(const Tensor& grad_out, Tensor* grad_in) {
  HETGMP_CHECK_EQ(grad_out.dim(1), weight_.dim(1));
  // dW += in^T @ grad_out; db += column sums; grad_in = grad_out @ W^T.
  HETGMP_CHECK(cached_in_ != nullptr);
  MatMulTransA(*cached_in_, grad_out, &scratch_);
  Axpy(1.0f, scratch_, &weight_grad_);
  SumRows(grad_out, &scratch_);
  Axpy(1.0f, scratch_, &bias_grad_);
  MatMulTransB(grad_out, weight_, grad_in);
}

}  // namespace hetgmp
