#ifndef HETGMP_NN_OPTIMIZER_H_
#define HETGMP_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace hetgmp {

// Plain SGD for dense parameters: p -= lr * (g + weight_decay * p).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(float lr, float weight_decay = 0.0f)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float weight_decay_;
};

// AdaGrad state for a single embedding row, updated in place. Embedding
// tables use per-row AdaGrad (standard for sparse CTR features): accum is
// the running sum of squared gradients for the row.
void AdaGradUpdateRow(float* row, const float* grad, float* accum,
                      int64_t dim, float lr, float epsilon = 1e-8f);

// SGD update for a single embedding row.
void SgdUpdateRow(float* row, const float* grad, int64_t dim, float lr);

}  // namespace hetgmp

#endif  // HETGMP_NN_OPTIMIZER_H_
