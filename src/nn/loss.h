#ifndef HETGMP_NN_LOSS_H_
#define HETGMP_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace hetgmp {

// Binary cross-entropy on logits (the CTR objective). Numerically stable
// log-sum-exp form. logits: [batch, 1]; labels: {0,1}^batch.
//
// Returns the mean loss; writes d(mean loss)/d(logit) into grad (same shape
// as logits).
double BceWithLogits(const Tensor& logits, const std::vector<float>& labels,
                     Tensor* grad);

// Mean loss only (evaluation path, no gradient).
double BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& labels);

}  // namespace hetgmp

#endif  // HETGMP_NN_LOSS_H_
