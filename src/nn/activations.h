#ifndef HETGMP_NN_ACTIVATIONS_H_
#define HETGMP_NN_ACTIVATIONS_H_

#include <vector>

#include "nn/layer.h"

namespace hetgmp {

// Elementwise rectified linear unit.
class Relu : public Layer {
 public:
  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

  std::vector<Tensor*> Params() override { return {}; }
  std::vector<Tensor*> Grads() override { return {}; }

 private:
  // Borrowed: the input must stay alive and unmodified until Backward
  // returns (same contract as Dense::cached_in_).
  const Tensor* cached_in_ = nullptr;
};

}  // namespace hetgmp

#endif  // HETGMP_NN_ACTIVATIONS_H_
