#include "nn/activations.h"

#include "tensor/ops.h"

namespace hetgmp {

void Relu::Forward(const Tensor& in, Tensor* out) {
  cached_in_ = &in;
  ReluForward(in, out);
}

void Relu::Backward(const Tensor& grad_out, Tensor* grad_in) {
  ReluBackward(*cached_in_, grad_out, grad_in);
}

}  // namespace hetgmp
