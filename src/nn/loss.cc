#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"

namespace hetgmp {

namespace {

// Stable BCE: max(z,0) - z*y + log(1 + exp(-|z|)).
double StableBce(double z, double y) {
  return std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
}

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double BceWithLogits(const Tensor& logits, const std::vector<float>& labels,
                     Tensor* grad) {
  const int64_t batch = logits.dim(0);
  HETGMP_CHECK_EQ(batch, static_cast<int64_t>(labels.size()));
  grad->Resize(logits.shape());
  double total = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (int64_t i = 0; i < batch; ++i) {
    const double z = logits.at(i);
    const double y = labels[i];
    total += StableBce(z, y);
    grad->at(i) = static_cast<float>((Sigmoid(z) - y) * inv_batch);
  }
  return total * inv_batch;
}

double BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& labels) {
  const int64_t batch = logits.dim(0);
  HETGMP_CHECK_EQ(batch, static_cast<int64_t>(labels.size()));
  double total = 0.0;
  for (int64_t i = 0; i < batch; ++i) {
    total += StableBce(logits.at(i), labels[i]);
  }
  return total / static_cast<double>(batch);
}

}  // namespace hetgmp
