#ifndef HETGMP_NN_MLP_H_
#define HETGMP_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace hetgmp {

// Sequential container: Dense(h1) → ReLU → ... → Dense(out_dim).
// hidden_dims lists the hidden layer widths; the final Dense has no
// activation (caller applies a loss on logits).
class Mlp : public Layer {
 public:
  Mlp(int64_t in_dim, const std::vector<int64_t>& hidden_dims,
      int64_t out_dim, Rng* rng);

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

  std::vector<Tensor*> Params() override;
  std::vector<Tensor*> Grads() override;

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> activations_;  // outputs of each layer, reused
};

}  // namespace hetgmp

#endif  // HETGMP_NN_MLP_H_
