#include "nn/mlp.h"

#include "nn/activations.h"
#include "nn/dense.h"

namespace hetgmp {

Mlp::Mlp(int64_t in_dim, const std::vector<int64_t>& hidden_dims,
         int64_t out_dim, Rng* rng) {
  int64_t prev = in_dim;
  for (int64_t h : hidden_dims) {
    layers_.push_back(std::make_unique<Dense>(prev, h, rng));
    layers_.push_back(std::make_unique<Relu>());
    prev = h;
  }
  layers_.push_back(std::make_unique<Dense>(prev, out_dim, rng));
}

void Mlp::Forward(const Tensor& in, Tensor* out) {
  activations_.resize(layers_.size());
  const Tensor* cur = &in;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->Forward(*cur, &activations_[l]);
    cur = &activations_[l];
  }
  *out = activations_.back();
}

void Mlp::Backward(const Tensor& grad_out, Tensor* grad_in) {
  Tensor grad = grad_out;
  Tensor prev_grad;
  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    layers_[l]->Backward(grad, &prev_grad);
    grad = std::move(prev_grad);
  }
  *grad_in = std::move(grad);
}

std::vector<Tensor*> Mlp::Params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Mlp::Grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->Grads()) out.push_back(g);
  }
  return out;
}

}  // namespace hetgmp
