#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

void SgdOptimizer::Step(const std::vector<Tensor*>& params,
                        const std::vector<Tensor*>& grads) {
  HETGMP_CHECK_EQ(params.size(), grads.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor* p = params[i];
    const Tensor* g = grads[i];
    HETGMP_CHECK_EQ(p->size(), g->size());
    for (int64_t j = 0; j < p->size(); ++j) {
      p->at(j) -= lr_ * (g->at(j) + weight_decay_ * p->at(j));
    }
  }
}

void AdaGradUpdateRow(float* row, const float* grad, float* accum,
                      int64_t dim, float lr, float epsilon) {
  for (int64_t c = 0; c < dim; ++c) {
    accum[c] += grad[c] * grad[c];
    row[c] -= lr * grad[c] / (std::sqrt(accum[c]) + epsilon);
  }
}

void SgdUpdateRow(float* row, const float* grad, int64_t dim, float lr) {
  AxpyRow(row, grad, -lr, dim);
}

}  // namespace hetgmp
