#ifndef HETGMP_NN_LAYER_H_
#define HETGMP_NN_LAYER_H_

#include <vector>

#include "tensor/tensor.h"

namespace hetgmp {

// Interface for a differentiable layer. Layers cache whatever they need
// from Forward so Backward can run; the trainer drives
// Forward → Backward → optimizer step → ZeroGrads each iteration.
//
// Gradients accumulate across Backward calls until ZeroGrads, so a layer
// can be reused over micro-batches.
class Layer {
 public:
  virtual ~Layer() = default;

  // Computes out = f(in). `in` has a leading batch dimension.
  virtual void Forward(const Tensor& in, Tensor* out) = 0;

  // Computes grad_in = df/din · grad_out and accumulates parameter
  // gradients. Must be called after Forward with a matching batch.
  virtual void Backward(const Tensor& grad_out, Tensor* grad_in) = 0;

  // Parameter tensors and their gradient slots, index-aligned. Both lists
  // may be empty for stateless layers.
  virtual std::vector<Tensor*> Params() = 0;
  virtual std::vector<Tensor*> Grads() = 0;

  void ZeroGrads() {
    for (Tensor* g : Grads()) g->Fill(0.0f);
  }
};

}  // namespace hetgmp

#endif  // HETGMP_NN_LAYER_H_
