#ifndef HETGMP_NN_DENSE_H_
#define HETGMP_NN_DENSE_H_

#include <vector>

#include "nn/layer.h"

namespace hetgmp {

// Fully connected layer: out = in @ W + b, W: [in_dim, out_dim], b: [out_dim].
class Dense : public Layer {
 public:
  Dense(int64_t in_dim, int64_t out_dim, Rng* rng);

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override {
    return {&weight_grad_, &bias_grad_};
  }

  int64_t in_dim() const { return weight_.dim(0); }
  int64_t out_dim() const { return weight_.dim(1); }

 private:
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  // Forward's input, borrowed for the backward pass. Callers must keep
  // the input tensor alive and unmodified until Backward returns (every
  // model holds layer inputs in members or the engine's batch block).
  const Tensor* cached_in_ = nullptr;
  Tensor scratch_;
};

}  // namespace hetgmp

#endif  // HETGMP_NN_DENSE_H_
