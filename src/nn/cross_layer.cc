#include "nn/cross_layer.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

CrossNetwork::CrossNetwork(int64_t dim, int num_layers, Rng* rng) {
  HETGMP_CHECK_GT(num_layers, 0);
  w_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    // Small-gain init keeps the residual path dominant at the start.
    w_.push_back(Tensor::Gaussian({dim}, 1.0f / std::sqrt(float(dim)), rng));
    b_.push_back(Tensor({dim}));
    w_grad_.push_back(Tensor({dim}));
    b_grad_.push_back(Tensor({dim}));
  }
}

void CrossNetwork::Forward(const Tensor& in, Tensor* out) {
  const int L = num_layers();
  const int64_t batch = in.dim(0);
  const int64_t d = in.dim(1);
  HETGMP_CHECK_EQ(d, w_[0].size());

  x_.assign(1, in);
  s_.assign(L, std::vector<float>(batch, 0.0f));
  for (int l = 0; l < L; ++l) {
    const Tensor& xl = x_.back();
    Tensor next({batch, d});
    for (int64_t i = 0; i < batch; ++i) {
      const float* x0row = in.row(i);
      const float* xlrow = xl.row(i);
      float s = 0.0f;
      for (int64_t c = 0; c < d; ++c) s += xlrow[c] * w_[l].at(c);
      s_[l][i] = s;
      float* nrow = next.row(i);
      for (int64_t c = 0; c < d; ++c) {
        nrow[c] = x0row[c] * s + b_[l].at(c) + xlrow[c];
      }
    }
    x_.push_back(std::move(next));
  }
  *out = x_.back();
}

void CrossNetwork::Backward(const Tensor& grad_out, Tensor* grad_in) {
  const int L = num_layers();
  const Tensor& x0 = x_[0];
  const int64_t batch = x0.dim(0);
  const int64_t d = x0.dim(1);
  HETGMP_CHECK_EQ(grad_out.dim(0), batch);
  HETGMP_CHECK_EQ(grad_out.dim(1), d);

  Tensor dxl = grad_out;          // gradient flowing into x_{l+1}
  Tensor dx0({batch, d});         // accumulated gradient on x0 via the
                                  // multiplicative term
  for (int l = L - 1; l >= 0; --l) {
    const Tensor& xl = x_[l];
    Tensor dprev({batch, d});
    for (int64_t i = 0; i < batch; ++i) {
      const float* gout = dxl.row(i);
      const float* x0row = x0.row(i);
      const float* xlrow = xl.row(i);
      // g·x0 appears in both the w gradient and the x_l gradient.
      float g_dot_x0 = 0.0f;
      for (int64_t c = 0; c < d; ++c) g_dot_x0 += gout[c] * x0row[c];
      const float s = s_[l][i];
      float* dprow = dprev.row(i);
      float* dx0row = dx0.row(i);
      for (int64_t c = 0; c < d; ++c) {
        w_grad_[l].at(c) += g_dot_x0 * xlrow[c];
        b_grad_[l].at(c) += gout[c];
        dprow[c] = gout[c] + g_dot_x0 * w_[l].at(c);
        dx0row[c] += s * gout[c];
      }
    }
    dxl = std::move(dprev);
  }
  // x_0's total gradient: residual chain (dxl) + multiplicative terms (dx0).
  grad_in->Resize({batch, d});
  for (int64_t i = 0; i < grad_in->size(); ++i) {
    grad_in->at(i) = dxl.at(i) + dx0.at(i);
  }
}

std::vector<Tensor*> CrossNetwork::Params() {
  std::vector<Tensor*> out;
  for (size_t l = 0; l < w_.size(); ++l) {
    out.push_back(&w_[l]);
    out.push_back(&b_[l]);
  }
  return out;
}

std::vector<Tensor*> CrossNetwork::Grads() {
  std::vector<Tensor*> out;
  for (size_t l = 0; l < w_.size(); ++l) {
    out.push_back(&w_grad_[l]);
    out.push_back(&b_grad_[l]);
  }
  return out;
}

}  // namespace hetgmp
