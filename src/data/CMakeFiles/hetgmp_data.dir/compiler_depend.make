# Empty compiler generated dependencies file for hetgmp_data.
# This may be replaced when dependencies are built.
