file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_data.dir/dataset.cc.o"
  "CMakeFiles/hetgmp_data.dir/dataset.cc.o.d"
  "CMakeFiles/hetgmp_data.dir/io.cc.o"
  "CMakeFiles/hetgmp_data.dir/io.cc.o.d"
  "CMakeFiles/hetgmp_data.dir/stats.cc.o"
  "CMakeFiles/hetgmp_data.dir/stats.cc.o.d"
  "CMakeFiles/hetgmp_data.dir/synthetic.cc.o"
  "CMakeFiles/hetgmp_data.dir/synthetic.cc.o.d"
  "libhetgmp_data.a"
  "libhetgmp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
