file(REMOVE_RECURSE
  "libhetgmp_data.a"
)
