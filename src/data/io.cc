#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

namespace hetgmp {

namespace {

constexpr char kMagic[8] = {'H', 'G', 'M', 'P', 'D', 'S', '0', '1'};

// RAII FILE handle.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

Status WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::InvalidArgument("truncated file");
  }
  return Status::OK();
}

template <typename T>
Status WriteVector(std::FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &n, sizeof(n)));
  if (n > 0) {
    HETGMP_RETURN_IF_ERROR(WriteBytes(f, v.data(), n * sizeof(T)));
  }
  return Status::OK();
}

template <typename T>
Status ReadVector(std::FILE* f, std::vector<T>* v, uint64_t max_elems) {
  uint64_t n = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &n, sizeof(n)));
  if (n > max_elems) {
    return Status::InvalidArgument("implausible element count (corrupt?)");
  }
  v->resize(n);
  if (n > 0) {
    HETGMP_RETURN_IF_ERROR(ReadBytes(f, v->data(), n * sizeof(T)));
  }
  return Status::OK();
}

}  // namespace

Status SaveDataset(const CtrDataset& dataset, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, kMagic, sizeof(kMagic)));
  const uint64_t name_len = dataset.name().size();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &name_len, sizeof(name_len)));
  HETGMP_RETURN_IF_ERROR(
      WriteBytes(f, dataset.name().data(), dataset.name().size()));
  const int64_t num_fields = dataset.num_fields();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &num_fields, sizeof(num_fields)));
  HETGMP_RETURN_IF_ERROR(WriteVector(f, dataset.field_offsets()));
  HETGMP_RETURN_IF_ERROR(WriteVector(f, dataset.feature_ids()));
  HETGMP_RETURN_IF_ERROR(WriteVector(f, dataset.labels()));
  return Status::OK();
}

Result<CtrDataset> LoadDataset(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::FILE* f = file.get();
  char magic[8];
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a HET-GMP dataset file: " + path);
  }
  uint64_t name_len = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &name_len, sizeof(name_len)));
  if (name_len > 4096) {
    return Status::InvalidArgument("implausible name length (corrupt?)");
  }
  std::string name(name_len, '\0');
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, name.data(), name_len));
  int64_t num_fields = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &num_fields, sizeof(num_fields)));
  if (num_fields <= 0 || num_fields > 100000) {
    return Status::InvalidArgument("implausible field count (corrupt?)");
  }
  constexpr uint64_t kMaxElems = uint64_t{1} << 36;
  std::vector<int64_t> field_offsets;
  std::vector<FeatureId> feature_ids;
  std::vector<float> labels;
  HETGMP_RETURN_IF_ERROR(ReadVector(f, &field_offsets, kMaxElems));
  HETGMP_RETURN_IF_ERROR(ReadVector(f, &feature_ids, kMaxElems));
  HETGMP_RETURN_IF_ERROR(ReadVector(f, &labels, kMaxElems));

  // Structural validation before handing to the (CHECK-guarded) ctor.
  if (static_cast<int64_t>(field_offsets.size()) != num_fields + 1 ||
      field_offsets.front() != 0) {
    return Status::InvalidArgument("inconsistent field offsets");
  }
  for (size_t i = 1; i < field_offsets.size(); ++i) {
    if (field_offsets[i] < field_offsets[i - 1]) {
      return Status::InvalidArgument("field offsets not monotone");
    }
  }
  if (feature_ids.size() !=
      labels.size() * static_cast<size_t>(num_fields)) {
    return Status::InvalidArgument("CSR size mismatch");
  }
  for (FeatureId id : feature_ids) {
    if (id < 0 || id >= field_offsets.back()) {
      return Status::InvalidArgument("feature id out of range");
    }
  }
  return CtrDataset(std::move(name), static_cast<int>(num_fields),
                    std::move(field_offsets), std::move(feature_ids),
                    std::move(labels));
}

Result<CtrDataset> ParseLibSvmCtr(const std::string& text,
                                  const std::string& name, int num_fields,
                                  std::vector<int64_t> field_offsets) {
  if (num_fields <= 0) {
    return Status::InvalidArgument("num_fields must be positive");
  }
  if (static_cast<int>(field_offsets.size()) != num_fields + 1) {
    return Status::InvalidArgument("field_offsets must have num_fields+1 "
                                   "entries");
  }
  std::vector<FeatureId> ids;
  std::vector<float> labels;
  std::istringstream lines(text);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    double label = 0.0;
    if (!(fields >> label) || (label != 0.0 && label != 1.0)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": bad label");
    }
    for (int f = 0; f < num_fields; ++f) {
      std::string token;
      if (!(fields >> token)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": expected " +
            std::to_string(num_fields) + " features");
      }
      // Accept "id" or "id:value"; the value is ignored (one-hot).
      const size_t colon = token.find(':');
      if (colon != std::string::npos) token.resize(colon);
      char* end = nullptr;
      const int64_t id = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": bad feature id '" +
            token + "'");
      }
      if (id < field_offsets[f] || id >= field_offsets[f + 1]) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": feature " +
            std::to_string(id) + " outside field " + std::to_string(f) +
            " range");
      }
      ids.push_back(id);
    }
    std::string extra;
    if (fields >> extra) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": trailing token '" +
          extra + "'");
    }
    labels.push_back(static_cast<float>(label));
  }
  if (labels.empty()) {
    return Status::InvalidArgument("no samples in input");
  }
  return CtrDataset(name, num_fields, std::move(field_offsets),
                    std::move(ids), std::move(labels));
}

}  // namespace hetgmp
