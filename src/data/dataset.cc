#include "data/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace hetgmp {

CtrDataset::CtrDataset(std::string name, int num_fields,
                       std::vector<int64_t> field_offsets,
                       std::vector<FeatureId> feature_ids,
                       std::vector<float> labels)
    : name_(std::move(name)),
      num_fields_(num_fields),
      field_offsets_(std::move(field_offsets)),
      feature_ids_(std::move(feature_ids)),
      labels_(std::move(labels)) {
  HETGMP_CHECK_EQ(static_cast<int>(field_offsets_.size()), num_fields_ + 1);
  HETGMP_CHECK_EQ(field_offsets_[0], 0);
  HETGMP_CHECK_EQ(feature_ids_.size(),
                  labels_.size() * static_cast<size_t>(num_fields_));
}

int CtrDataset::FieldOfFeature(FeatureId f) const {
  HETGMP_CHECK_GE(f, 0);
  HETGMP_CHECK_LT(f, num_features());
  const auto it =
      std::upper_bound(field_offsets_.begin(), field_offsets_.end(), f);
  return static_cast<int>(it - field_offsets_.begin()) - 1;
}

CtrDataset CtrDataset::SplitTail(double fraction) {
  HETGMP_CHECK_GT(fraction, 0.0);
  HETGMP_CHECK_LT(fraction, 1.0);
  const int64_t n = num_samples();
  const int64_t tail = std::max<int64_t>(1, static_cast<int64_t>(n * fraction));
  const int64_t head = n - tail;
  HETGMP_CHECK_GT(head, 0);

  std::vector<FeatureId> tail_features(
      feature_ids_.begin() + head * num_fields_, feature_ids_.end());
  std::vector<float> tail_labels(labels_.begin() + head, labels_.end());

  feature_ids_.resize(head * num_fields_);
  labels_.resize(head);

  return CtrDataset(name_ + "-test", num_fields_, field_offsets_,
                    std::move(tail_features), std::move(tail_labels));
}

std::vector<int64_t> CtrDataset::FeatureFrequencies() const {
  std::vector<int64_t> freq(num_features(), 0);
  for (FeatureId f : feature_ids_) ++freq[f];
  return freq;
}

}  // namespace hetgmp
