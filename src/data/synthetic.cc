#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"

namespace hetgmp {

SyntheticCtrConfig AvazuLikeConfig(double scale) {
  SyntheticCtrConfig c;
  c.name = "avazu-like";
  c.num_samples = static_cast<int64_t>(40000 * scale);
  c.num_fields = 22;
  c.num_features = static_cast<int64_t>(5000 * scale);
  c.zipf_theta = 1.1;
  c.seed = 1001;
  return c;
}

SyntheticCtrConfig CriteoLikeConfig(double scale) {
  SyntheticCtrConfig c;
  c.name = "criteo-like";
  c.num_samples = static_cast<int64_t>(45000 * scale);
  c.num_fields = 26;
  c.num_features = static_cast<int64_t>(9000 * scale);
  c.zipf_theta = 1.05;
  c.seed = 1002;
  return c;
}

SyntheticCtrConfig CompanyLikeConfig(double scale) {
  SyntheticCtrConfig c;
  c.name = "company-like";
  c.num_samples = static_cast<int64_t>(36000 * scale);
  c.num_fields = 43;
  c.num_features = static_cast<int64_t>(15000 * scale);
  c.zipf_theta = 1.0;
  c.seed = 1003;
  return c;
}

namespace {

// Uneven field sizes (id-like fields are huge, enum-like fields tiny), as
// in real CTR logs: size_f ∝ (f+1)^-0.6, with a floor that keeps every
// cluster slice non-empty.
std::vector<int64_t> FieldSizes(const SyntheticCtrConfig& cfg) {
  const int F = cfg.num_fields;
  const int64_t floor_size = std::max<int64_t>(cfg.num_clusters, 4);
  std::vector<double> weight(F);
  double total = 0.0;
  for (int f = 0; f < F; ++f) {
    weight[f] = std::pow(static_cast<double>(f + 1), -0.6);
    total += weight[f];
  }
  std::vector<int64_t> sizes(F);
  int64_t assigned = 0;
  for (int f = 0; f < F; ++f) {
    sizes[f] = std::max<int64_t>(
        floor_size,
        static_cast<int64_t>(cfg.num_features * weight[f] / total));
    assigned += sizes[f];
  }
  // Rebalance rounding drift onto the largest field, never shrinking it
  // below the floor (tiny scales can make floors exceed the requested
  // total, in which case the realized feature count is slightly larger).
  sizes[0] = std::max(floor_size, sizes[0] + cfg.num_features - assigned);
  return sizes;
}

}  // namespace

CtrDataset GenerateSyntheticCtr(const SyntheticCtrConfig& cfg,
                                std::vector<float>* teacher_logits) {
  HETGMP_CHECK_GT(cfg.num_samples, 0);
  HETGMP_CHECK_GT(cfg.num_fields, 0);
  HETGMP_CHECK_GT(cfg.num_clusters, 0);
  Rng rng(cfg.seed);

  const int F = cfg.num_fields;
  const int K = cfg.num_clusters;
  const std::vector<int64_t> sizes = FieldSizes(cfg);

  std::vector<int64_t> offsets(F + 1, 0);
  for (int f = 0; f < F; ++f) offsets[f + 1] = offsets[f] + sizes[f];
  const int64_t total_features = offsets.back();

  // Per-field samplers: one Zipf over the cluster slice (locality draws)
  // and one over the whole field (escape draws, which concentrate global
  // popularity on each field's low ids — the shared hot features that
  // vertex-cut replication targets).
  std::vector<ZipfSampler> slice_samplers;
  std::vector<ZipfSampler> field_samplers;
  std::vector<int64_t> slice_len(F);
  slice_samplers.reserve(F);
  field_samplers.reserve(F);
  for (int f = 0; f < F; ++f) {
    slice_len[f] = std::max<int64_t>(1, sizes[f] / K);
    slice_samplers.emplace_back(static_cast<uint64_t>(slice_len[f]),
                                cfg.zipf_theta);
    field_samplers.emplace_back(static_cast<uint64_t>(sizes[f]),
                                cfg.zipf_theta);
  }

  // Teacher model: per-feature weight + per-cluster offset.
  std::vector<float> teacher(total_features);
  for (auto& w : teacher) {
    w = static_cast<float>(rng.NextGaussian() * cfg.teacher_weight_stddev);
  }
  std::vector<float> cluster_effect(K);
  for (auto& e : cluster_effect) {
    e = static_cast<float>(rng.NextGaussian() * cfg.cluster_effect_stddev);
  }

  std::vector<FeatureId> feature_ids;
  feature_ids.reserve(cfg.num_samples * F);
  std::vector<float> labels(cfg.num_samples);
  const double logit_scale = 1.0 / std::sqrt(static_cast<double>(F));

  for (int64_t i = 0; i < cfg.num_samples; ++i) {
    const int cluster = static_cast<int>(rng.NextUint64(K));
    double logit = cluster_effect[cluster];
    for (int f = 0; f < F; ++f) {
      int64_t local;
      if (rng.NextBool(cfg.cluster_affinity)) {
        // Draw from this cluster's slice of the field.
        const int64_t start = cluster * slice_len[f];
        local = start + static_cast<int64_t>(slice_samplers[f].Sample(&rng));
        local = std::min(local, sizes[f] - 1);
      } else {
        local = static_cast<int64_t>(field_samplers[f].Sample(&rng));
      }
      const FeatureId id = offsets[f] + local;
      feature_ids.push_back(id);
      logit += teacher[id] * logit_scale;
    }
    if (teacher_logits != nullptr) {
      teacher_logits->push_back(static_cast<float>(logit));
    }
    logit += rng.NextGaussian() * cfg.teacher_noise_stddev;
    labels[i] = rng.NextBool(1.0 / (1.0 + std::exp(-logit))) ? 1.0f : 0.0f;
  }

  return CtrDataset(cfg.name, F, std::move(offsets), std::move(feature_ids),
                    std::move(labels));
}

}  // namespace hetgmp
