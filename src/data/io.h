#ifndef HETGMP_DATA_IO_H_
#define HETGMP_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace hetgmp {

// Binary dataset serialization (magic + header + CSR payload), so
// generated datasets can be reused across runs and external data can be
// converted once. All functions return Status; corrupt or truncated files
// are reported, never crash.

// Writes `dataset` to `path` (overwrites).
Status SaveDataset(const CtrDataset& dataset, const std::string& path);

// Reads a dataset previously written by SaveDataset.
Result<CtrDataset> LoadDataset(const std::string& path);

// Parses the LibSVM-style text format commonly used for CTR logs:
//
//   <label> <feature_id>[:<ignored>] <feature_id> ...
//
// one sample per line, exactly `num_fields` features per sample in field
// order. Feature ids are global (within the concatenated field ranges
// given by `field_offsets`). Lines violating the schema produce an
// InvalidArgument status naming the line.
Result<CtrDataset> ParseLibSvmCtr(const std::string& text,
                                  const std::string& name, int num_fields,
                                  std::vector<int64_t> field_offsets);

}  // namespace hetgmp

#endif  // HETGMP_DATA_IO_H_
