#ifndef HETGMP_DATA_SYNTHETIC_H_
#define HETGMP_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace hetgmp {

// Configuration for the synthetic CTR generator. The generator reproduces
// the two graph properties the paper exploits (§4):
//
//  * Skewness — within each field, feature popularity follows
//    Zipf(zipf_theta), so a few embeddings absorb most accesses.
//  * Locality — every sample belongs to one of num_clusters latent
//    clusters; with probability cluster_affinity its feature in each field
//    is drawn from that cluster's slice of the field, so co-occurrence
//    concentrates in diagonal blocks (the Figure 3 structure).
//
// Labels come from a logistic "teacher": a ground-truth weight per feature
// plus a per-cluster offset, so a trained embedding model has real signal
// to recover and test AUC is meaningful.
struct SyntheticCtrConfig {
  std::string name = "synthetic";
  int64_t num_samples = 50000;
  int num_fields = 26;
  int64_t num_features = 40000;  // across all fields
  double zipf_theta = 1.05;      // per-field popularity skew
  int num_clusters = 24;
  double cluster_affinity = 0.85;  // P(feature drawn from own cluster slice)
  double teacher_weight_stddev = 1.8;
  double teacher_noise_stddev = 0.5;
  double cluster_effect_stddev = 0.5;
  uint64_t seed = 42;
};

// Scaled-down analogues of the paper's three datasets (Table 1). `scale`
// multiplies sample and feature counts (1.0 = library defaults; the paper's
// real sizes are ~800x larger).
SyntheticCtrConfig AvazuLikeConfig(double scale = 1.0);    // 22 fields
SyntheticCtrConfig CriteoLikeConfig(double scale = 1.0);   // 26 fields
SyntheticCtrConfig CompanyLikeConfig(double scale = 1.0);  // 43 fields

// Generates the dataset. Deterministic for a fixed config (including seed).
// If `teacher_logits` is non-null it receives each sample's noiseless
// teacher logit — scoring by it gives the Bayes-attainable AUC, the
// ceiling against which trained models are judged in tests and benches.
CtrDataset GenerateSyntheticCtr(const SyntheticCtrConfig& config,
                                std::vector<float>* teacher_logits = nullptr);

}  // namespace hetgmp

#endif  // HETGMP_DATA_SYNTHETIC_H_
