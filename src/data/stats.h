#ifndef HETGMP_DATA_STATS_H_
#define HETGMP_DATA_STATS_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace hetgmp {

// Table-1 style summary plus the skew measures motivating §4.
struct DatasetStats {
  std::string name;
  int64_t num_samples = 0;
  int64_t num_features = 0;
  int num_fields = 0;
  int64_t num_accesses = 0;        // total (sample, feature) edges
  int64_t distinct_features = 0;   // features with at least one access
  double max_frequency = 0.0;      // hottest feature's access share
  double top1pct_share = 0.0;      // share of accesses to the top 1% features
  double gini = 0.0;               // Gini of the feature frequency vector

  std::string ToString() const;
};

DatasetStats ComputeDatasetStats(const CtrDataset& dataset);

}  // namespace hetgmp

#endif  // HETGMP_DATA_STATS_H_
