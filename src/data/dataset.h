#ifndef HETGMP_DATA_DATASET_H_
#define HETGMP_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hetgmp {

// Global id of an embedding row. Field f's features occupy the contiguous
// range [field_offsets[f], field_offsets[f+1]).
using FeatureId = int64_t;

// A CTR dataset: every sample is one categorical feature per field plus a
// binary click label. Stored CSR so the bigraph and the engine can iterate
// features without per-sample allocations.
class CtrDataset {
 public:
  CtrDataset() = default;

  // Constructs from raw CSR arrays. feature_ids.size() must equal
  // num_samples * num_fields (exactly one feature per field per sample).
  CtrDataset(std::string name, int num_fields,
             std::vector<int64_t> field_offsets,
             std::vector<FeatureId> feature_ids, std::vector<float> labels);

  const std::string& name() const { return name_; }
  int64_t num_samples() const {
    return static_cast<int64_t>(labels_.size());
  }
  int num_fields() const { return num_fields_; }
  int64_t num_features() const { return field_offsets_.back(); }
  const std::vector<int64_t>& field_offsets() const { return field_offsets_; }

  // Features of sample i (exactly num_fields entries, one per field).
  const FeatureId* sample_features(int64_t i) const {
    return feature_ids_.data() + i * num_fields_;
  }
  float label(int64_t i) const { return labels_[i]; }
  const std::vector<float>& labels() const { return labels_; }
  const std::vector<FeatureId>& feature_ids() const { return feature_ids_; }

  // Field that feature id f belongs to (binary search over offsets).
  int FieldOfFeature(FeatureId f) const;

  // Splits off the last `fraction` of samples as a held-out test set and
  // returns it; this dataset keeps the remaining prefix.
  CtrDataset SplitTail(double fraction);

  // Per-feature access count across all samples (the embedding-vertex
  // degree distribution of the bigraph).
  std::vector<int64_t> FeatureFrequencies() const;

 private:
  std::string name_;
  int num_fields_ = 0;
  std::vector<int64_t> field_offsets_;  // size num_fields + 1
  std::vector<FeatureId> feature_ids_;  // CSR payload, row-major by sample
  std::vector<float> labels_;
};

}  // namespace hetgmp

#endif  // HETGMP_DATA_DATASET_H_
