#include "data/stats.h"

#include <algorithm>
#include <sstream>

#include "common/stringutil.h"

namespace hetgmp {

DatasetStats ComputeDatasetStats(const CtrDataset& dataset) {
  DatasetStats s;
  s.name = dataset.name();
  s.num_samples = dataset.num_samples();
  s.num_features = dataset.num_features();
  s.num_fields = dataset.num_fields();

  std::vector<int64_t> freq = dataset.FeatureFrequencies();
  s.num_accesses = 0;
  for (int64_t f : freq) {
    s.num_accesses += f;
    if (f > 0) ++s.distinct_features;
  }
  if (s.num_accesses == 0) return s;

  std::sort(freq.begin(), freq.end(), std::greater<int64_t>());
  s.max_frequency =
      static_cast<double>(freq[0]) / static_cast<double>(s.num_accesses);

  const int64_t top = std::max<int64_t>(1, s.num_features / 100);
  int64_t top_sum = 0;
  for (int64_t i = 0; i < top; ++i) top_sum += freq[i];
  s.top1pct_share =
      static_cast<double>(top_sum) / static_cast<double>(s.num_accesses);

  // Gini over the (descending-sorted) frequency vector.
  // G = (n + 1 - 2 * Σ_i cum_i / total) / n with ascending order; adapt.
  double cum = 0.0, weighted = 0.0;
  for (auto it = freq.rbegin(); it != freq.rend(); ++it) {  // ascending
    cum += static_cast<double>(*it);
    weighted += cum;
  }
  const double n = static_cast<double>(freq.size());
  s.gini = (n + 1.0 - 2.0 * weighted / static_cast<double>(s.num_accesses)) / n;
  return s;
}

std::string DatasetStats::ToString() const {
  std::ostringstream os;
  os << name << ": samples=" << HumanCount(double(num_samples))
     << " features=" << HumanCount(double(num_features))
     << " fields=" << num_fields
     << " accesses=" << HumanCount(double(num_accesses))
     << " distinct=" << HumanCount(double(distinct_features))
     << " hottest=" << Percent(max_frequency)
     << " top1%share=" << Percent(top1pct_share)
     << " gini=" << FormatDouble(gini, 3);
  return os.str();
}

}  // namespace hetgmp
