#include "models/wdl.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

WdlModel::WdlModel(int64_t input_dim, std::vector<int64_t> hidden_dims,
                   Rng* rng)
    : wide_(input_dim, 1, rng), deep_(input_dim, hidden_dims, 1, rng) {}

void WdlModel::Forward(const Tensor& emb_in, Tensor* logits) {
  wide_.Forward(emb_in, &wide_out_);
  deep_.Forward(emb_in, &deep_out_);
  logits->ResizeUninit(wide_out_.shape());
  for (int64_t i = 0; i < logits->size(); ++i) {
    logits->at(i) = wide_out_.at(i) + deep_out_.at(i);
  }
}

void WdlModel::Backward(const Tensor& dlogits, Tensor* demb_in) {
  wide_.Backward(dlogits, &wide_grad_in_);
  deep_.Backward(dlogits, &deep_grad_in_);
  demb_in->ResizeUninit(wide_grad_in_.shape());
  const float* __restrict wg = wide_grad_in_.data();
  const float* __restrict dg = deep_grad_in_.data();
  float* __restrict out = demb_in->data();
  for (int64_t i = 0; i < demb_in->size(); ++i) {
    out[i] = wg[i] + dg[i];
  }
}

std::vector<Tensor*> WdlModel::DenseParams() {
  std::vector<Tensor*> out = wide_.Params();
  for (Tensor* p : deep_.Params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> WdlModel::DenseGrads() {
  std::vector<Tensor*> out = wide_.Grads();
  for (Tensor* g : deep_.Grads()) out.push_back(g);
  return out;
}

int64_t WdlModel::FlopsPerSample() const {
  int64_t weights = 0;
  for (Tensor* p : const_cast<WdlModel*>(this)->DenseParams()) {
    weights += p->size();
  }
  // 2 FLOPs per weight per pass, ~3 forward-equivalent passes (fwd + bwd
  // wrt activations + bwd wrt weights).
  return 6 * weights;
}

}  // namespace hetgmp
