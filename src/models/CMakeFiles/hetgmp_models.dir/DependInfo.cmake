
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/dcn.cc" "src/models/CMakeFiles/hetgmp_models.dir/dcn.cc.o" "gcc" "src/models/CMakeFiles/hetgmp_models.dir/dcn.cc.o.d"
  "/root/repo/src/models/deepfm.cc" "src/models/CMakeFiles/hetgmp_models.dir/deepfm.cc.o" "gcc" "src/models/CMakeFiles/hetgmp_models.dir/deepfm.cc.o.d"
  "/root/repo/src/models/model.cc" "src/models/CMakeFiles/hetgmp_models.dir/model.cc.o" "gcc" "src/models/CMakeFiles/hetgmp_models.dir/model.cc.o.d"
  "/root/repo/src/models/wdl.cc" "src/models/CMakeFiles/hetgmp_models.dir/wdl.cc.o" "gcc" "src/models/CMakeFiles/hetgmp_models.dir/wdl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/nn/CMakeFiles/hetgmp_nn.dir/DependInfo.cmake"
  "/root/repo/src/tensor/CMakeFiles/hetgmp_tensor.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/hetgmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
