file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_models.dir/dcn.cc.o"
  "CMakeFiles/hetgmp_models.dir/dcn.cc.o.d"
  "CMakeFiles/hetgmp_models.dir/deepfm.cc.o"
  "CMakeFiles/hetgmp_models.dir/deepfm.cc.o.d"
  "CMakeFiles/hetgmp_models.dir/model.cc.o"
  "CMakeFiles/hetgmp_models.dir/model.cc.o.d"
  "CMakeFiles/hetgmp_models.dir/wdl.cc.o"
  "CMakeFiles/hetgmp_models.dir/wdl.cc.o.d"
  "libhetgmp_models.a"
  "libhetgmp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
