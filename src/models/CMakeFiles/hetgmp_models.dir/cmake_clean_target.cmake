file(REMOVE_RECURSE
  "libhetgmp_models.a"
)
