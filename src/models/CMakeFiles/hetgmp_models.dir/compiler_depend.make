# Empty compiler generated dependencies file for hetgmp_models.
# This may be replaced when dependencies are built.
