#include "models/dcn.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

namespace {
constexpr int64_t kDeepOutDim = 16;
}  // namespace

DcnModel::DcnModel(int64_t input_dim, int num_cross_layers,
                   std::vector<int64_t> hidden_dims, Rng* rng)
    : cross_(input_dim, num_cross_layers, rng),
      deep_(input_dim, hidden_dims, kDeepOutDim, rng),
      combine_(input_dim + kDeepOutDim, 1, rng),
      input_dim_(input_dim),
      deep_out_dim_(kDeepOutDim) {}

void DcnModel::Forward(const Tensor& emb_in, Tensor* logits) {
  cross_.Forward(emb_in, &cross_out_);
  deep_.Forward(emb_in, &deep_out_);
  const int64_t batch = emb_in.dim(0);
  concat_.Resize({batch, input_dim_ + deep_out_dim_});
  for (int64_t i = 0; i < batch; ++i) {
    float* row = concat_.row(i);
    const float* c = cross_out_.row(i);
    const float* d = deep_out_.row(i);
    for (int64_t j = 0; j < input_dim_; ++j) row[j] = c[j];
    for (int64_t j = 0; j < deep_out_dim_; ++j) row[input_dim_ + j] = d[j];
  }
  combine_.Forward(concat_, logits);
}

void DcnModel::Backward(const Tensor& dlogits, Tensor* demb_in) {
  combine_.Backward(dlogits, &concat_grad_);
  const int64_t batch = concat_grad_.dim(0);
  Tensor dcross({batch, input_dim_});
  Tensor ddeep({batch, deep_out_dim_});
  for (int64_t i = 0; i < batch; ++i) {
    const float* row = concat_grad_.row(i);
    float* c = dcross.row(i);
    float* d = ddeep.row(i);
    for (int64_t j = 0; j < input_dim_; ++j) c[j] = row[j];
    for (int64_t j = 0; j < deep_out_dim_; ++j) d[j] = row[input_dim_ + j];
  }
  cross_.Backward(dcross, &cross_grad_in_);
  deep_.Backward(ddeep, &deep_grad_in_);
  demb_in->Resize(cross_grad_in_.shape());
  for (int64_t i = 0; i < demb_in->size(); ++i) {
    demb_in->at(i) = cross_grad_in_.at(i) + deep_grad_in_.at(i);
  }
}

std::vector<Tensor*> DcnModel::DenseParams() {
  std::vector<Tensor*> out = cross_.Params();
  for (Tensor* p : deep_.Params()) out.push_back(p);
  for (Tensor* p : combine_.Params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> DcnModel::DenseGrads() {
  std::vector<Tensor*> out = cross_.Grads();
  for (Tensor* g : deep_.Grads()) out.push_back(g);
  for (Tensor* g : combine_.Grads()) out.push_back(g);
  return out;
}

int64_t DcnModel::FlopsPerSample() const {
  int64_t weights = 0;
  for (Tensor* p : const_cast<DcnModel*>(this)->DenseParams()) {
    weights += p->size();
  }
  return 6 * weights;
}

}  // namespace hetgmp
