#ifndef HETGMP_MODELS_DCN_H_
#define HETGMP_MODELS_DCN_H_

#include <vector>

#include "models/model.h"
#include "nn/cross_layer.h"
#include "nn/dense.h"
#include "nn/mlp.h"

namespace hetgmp {

// Deep & Cross Network (Wang et al., 2017): a cross network and a deep MLP
// run in parallel over the embedding block; their outputs are concatenated
// and mapped to a logit by a final linear layer. The cross layers give DCN
// more dense parameters than WDL — the paper leans on this in Figure 8
// ("the DCN network has more dense parameters in its cross layers").
class DcnModel : public EmbeddingModel {
 public:
  DcnModel(int64_t input_dim, int num_cross_layers,
           std::vector<int64_t> hidden_dims, Rng* rng);

  void Forward(const Tensor& emb_in, Tensor* logits) override;
  void Backward(const Tensor& dlogits, Tensor* demb_in) override;

  std::vector<Tensor*> DenseParams() override;
  std::vector<Tensor*> DenseGrads() override;
  int64_t FlopsPerSample() const override;
  const char* name() const override { return "DCN"; }

 private:
  CrossNetwork cross_;
  Mlp deep_;
  Dense combine_;  // [cross_dim + deep_dim] → 1
  int64_t input_dim_;
  int64_t deep_out_dim_;
  Tensor cross_out_;
  Tensor deep_out_;
  Tensor concat_;
  Tensor concat_grad_;
  Tensor cross_grad_in_;
  Tensor deep_grad_in_;
};

}  // namespace hetgmp

#endif  // HETGMP_MODELS_DCN_H_
