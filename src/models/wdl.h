#ifndef HETGMP_MODELS_WDL_H_
#define HETGMP_MODELS_WDL_H_

#include <vector>

#include "models/model.h"
#include "nn/dense.h"
#include "nn/mlp.h"

namespace hetgmp {

// Wide & Deep (Cheng et al., 2016): logit = wide(x) + deep(x), where the
// wide part is a linear model over the embedding block (memorization) and
// the deep part is an MLP (generalization).
class WdlModel : public EmbeddingModel {
 public:
  WdlModel(int64_t input_dim, std::vector<int64_t> hidden_dims, Rng* rng);

  void Forward(const Tensor& emb_in, Tensor* logits) override;
  void Backward(const Tensor& dlogits, Tensor* demb_in) override;

  std::vector<Tensor*> DenseParams() override;
  std::vector<Tensor*> DenseGrads() override;
  int64_t FlopsPerSample() const override;
  const char* name() const override { return "WDL"; }

 private:
  Dense wide_;
  Mlp deep_;
  Tensor wide_out_;
  Tensor deep_out_;
  Tensor wide_grad_in_;
  Tensor deep_grad_in_;
};

}  // namespace hetgmp

#endif  // HETGMP_MODELS_WDL_H_
