#include "models/model.h"

#include "common/logging.h"
#include "models/dcn.h"
#include "models/deepfm.h"
#include "models/wdl.h"

namespace hetgmp {

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kWdl:
      return "WDL";
    case ModelType::kDcn:
      return "DCN";
    case ModelType::kDeepFm:
      return "DeepFM";
  }
  return "?";
}

std::unique_ptr<EmbeddingModel> CreateModel(ModelType type,
                                            int64_t input_dim, Rng* rng) {
  HETGMP_CHECK_GT(input_dim, 0);
  switch (type) {
    case ModelType::kWdl:
      return std::make_unique<WdlModel>(
          input_dim, std::vector<int64_t>{32, 16}, rng);
    case ModelType::kDcn:
      return std::make_unique<DcnModel>(
          input_dim, /*num_cross_layers=*/2, std::vector<int64_t>{64, 32},
          rng);
    case ModelType::kDeepFm:
      // Without field structure, treat the block as one field of
      // input_dim (degenerates to linear + deep; FM term vanishes).
      return std::make_unique<DeepFmModel>(
          /*num_fields=*/1, static_cast<int>(input_dim),
          std::vector<int64_t>{32, 16}, rng);
  }
  HETGMP_CHECK(false) << " unknown model type";
  return nullptr;
}

std::unique_ptr<EmbeddingModel> CreateFieldModel(ModelType type,
                                                 int num_fields,
                                                 int field_dim, Rng* rng) {
  if (type == ModelType::kDeepFm) {
    return std::make_unique<DeepFmModel>(num_fields, field_dim,
                                         std::vector<int64_t>{32, 16}, rng);
  }
  return CreateModel(type, static_cast<int64_t>(num_fields) * field_dim,
                     rng);
}

}  // namespace hetgmp
