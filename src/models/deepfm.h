#ifndef HETGMP_MODELS_DEEPFM_H_
#define HETGMP_MODELS_DEEPFM_H_

#include <vector>

#include "models/model.h"
#include "nn/dense.h"
#include "nn/mlp.h"

namespace hetgmp {

// DeepFM (Guo et al., IJCAI'17) — one of the embedding models §5.1 names
// as supported by the bigraph abstraction. The logit combines:
//
//  * a first-order linear term over the embedding block,
//  * the FM second-order interaction
//      0.5 Σ_d [ (Σ_f v_{f,d})² − Σ_f v_{f,d}² ]
//    over the per-field embedding vectors v_f, and
//  * a deep MLP over the concatenated block.
//
// The FM term shares the same embeddings as the deep part (the defining
// DeepFM trick), so the engine's gather/scatter path is identical to
// WDL/DCN.
class DeepFmModel : public EmbeddingModel {
 public:
  // input_dim = num_fields * field_dim.
  DeepFmModel(int num_fields, int field_dim,
              std::vector<int64_t> hidden_dims, Rng* rng);

  void Forward(const Tensor& emb_in, Tensor* logits) override;
  void Backward(const Tensor& dlogits, Tensor* demb_in) override;

  std::vector<Tensor*> DenseParams() override;
  std::vector<Tensor*> DenseGrads() override;
  int64_t FlopsPerSample() const override;
  const char* name() const override { return "DeepFM"; }

 private:
  int num_fields_;
  int field_dim_;
  Dense linear_;  // first-order term
  Mlp deep_;
  Tensor cached_in_;
  Tensor field_sum_;  // [batch, field_dim]: Σ_f v_f per sample
  Tensor linear_out_;
  Tensor deep_out_;
  Tensor linear_grad_in_;
  Tensor deep_grad_in_;
};

}  // namespace hetgmp

#endif  // HETGMP_MODELS_DEEPFM_H_
