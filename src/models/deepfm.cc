#include "models/deepfm.h"

#include "common/logging.h"

namespace hetgmp {

DeepFmModel::DeepFmModel(int num_fields, int field_dim,
                         std::vector<int64_t> hidden_dims, Rng* rng)
    : num_fields_(num_fields),
      field_dim_(field_dim),
      linear_(static_cast<int64_t>(num_fields) * field_dim, 1, rng),
      deep_(static_cast<int64_t>(num_fields) * field_dim, hidden_dims, 1,
            rng) {
  HETGMP_CHECK_GT(num_fields, 0);
  HETGMP_CHECK_GT(field_dim, 0);
}

void DeepFmModel::Forward(const Tensor& emb_in, Tensor* logits) {
  const int64_t batch = emb_in.dim(0);
  HETGMP_CHECK_EQ(emb_in.dim(1),
                  static_cast<int64_t>(num_fields_) * field_dim_);
  cached_in_ = emb_in;
  linear_.Forward(emb_in, &linear_out_);
  deep_.Forward(emb_in, &deep_out_);

  // FM second-order term: 0.5 Σ_d (S_d² − Σ_f v_{f,d}²), with
  // S_d = Σ_f v_{f,d} cached for the backward pass.
  field_sum_.Resize({batch, field_dim_});
  logits->Resize({batch, 1});
  for (int64_t i = 0; i < batch; ++i) {
    const float* row = emb_in.row(i);
    float* sums = field_sum_.row(i);
    double square_of_sum = 0.0, sum_of_square = 0.0;
    for (int d = 0; d < field_dim_; ++d) {
      float s = 0.0f;
      for (int f = 0; f < num_fields_; ++f) {
        const float v = row[f * field_dim_ + d];
        s += v;
        sum_of_square += static_cast<double>(v) * v;
      }
      sums[d] = s;
      square_of_sum += static_cast<double>(s) * s;
    }
    const double fm = 0.5 * (square_of_sum - sum_of_square);
    logits->at(i) = linear_out_.at(i) + deep_out_.at(i) +
                    static_cast<float>(fm);
  }
}

void DeepFmModel::Backward(const Tensor& dlogits, Tensor* demb_in) {
  linear_.Backward(dlogits, &linear_grad_in_);
  deep_.Backward(dlogits, &deep_grad_in_);
  const int64_t batch = cached_in_.dim(0);
  demb_in->Resize(cached_in_.shape());
  for (int64_t i = 0; i < batch; ++i) {
    const float g = dlogits.at(i);
    const float* row = cached_in_.row(i);
    const float* sums = field_sum_.row(i);
    const float* lg = linear_grad_in_.row(i);
    const float* dg = deep_grad_in_.row(i);
    float* out = demb_in->row(i);
    for (int f = 0; f < num_fields_; ++f) {
      for (int d = 0; d < field_dim_; ++d) {
        const int64_t idx = f * field_dim_ + d;
        // d(fm)/dv = S_d − v.
        out[idx] = lg[idx] + dg[idx] + g * (sums[d] - row[idx]);
      }
    }
  }
}

std::vector<Tensor*> DeepFmModel::DenseParams() {
  std::vector<Tensor*> out = linear_.Params();
  for (Tensor* p : deep_.Params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> DeepFmModel::DenseGrads() {
  std::vector<Tensor*> out = linear_.Grads();
  for (Tensor* g : deep_.Grads()) out.push_back(g);
  return out;
}

int64_t DeepFmModel::FlopsPerSample() const {
  int64_t weights = 0;
  for (Tensor* p : const_cast<DeepFmModel*>(this)->DenseParams()) {
    weights += p->size();
  }
  // Dense towers plus the FM interaction (≈ 4 FLOPs per embedding value).
  return 6 * weights +
         4 * static_cast<int64_t>(num_fields_) * field_dim_;
}

}  // namespace hetgmp
