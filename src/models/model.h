#ifndef HETGMP_MODELS_MODEL_H_
#define HETGMP_MODELS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"

namespace hetgmp {

// The dense tower of a CTR embedding model (§5.1): consumes the gathered
// embedding block of a mini-batch — one row per sample holding the
// concatenation of its num_fields embedding vectors — and produces click
// logits. Gradients flow back to both the dense parameters (synchronized
// by AllReduce) and the embedding block (scattered to embedding rows by
// the engine).
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  // emb_in: [batch, num_fields * dim]; logits: [batch, 1].
  virtual void Forward(const Tensor& emb_in, Tensor* logits) = 0;

  // dlogits: [batch, 1]; demb_in: [batch, num_fields * dim]. Accumulates
  // dense-parameter gradients internally.
  virtual void Backward(const Tensor& dlogits, Tensor* demb_in) = 0;

  virtual std::vector<Tensor*> DenseParams() = 0;
  virtual std::vector<Tensor*> DenseGrads() = 0;
  void ZeroGrads() {
    for (Tensor* g : DenseGrads()) g->Fill(0.0f);
  }

  int64_t NumDenseParams() {
    int64_t n = 0;
    for (Tensor* p : DenseParams()) n += p->size();
    return n;
  }
  uint64_t DenseParamBytes() {
    return static_cast<uint64_t>(NumDenseParams()) * sizeof(float);
  }

  // Estimated forward+backward FLOPs per sample, for the simulated compute
  // time model (≈ 3 fwd-equivalents, 2 FLOPs per weight per pass).
  virtual int64_t FlopsPerSample() const = 0;

  virtual const char* name() const = 0;
};

enum class ModelType { kWdl, kDcn, kDeepFm };

const char* ModelTypeName(ModelType type);

// Factory. `input_dim` = num_fields * embedding_dim. DeepFM additionally
// needs the field structure; callers with field information should use
// CreateFieldModel, which falls back to this for field-agnostic models.
std::unique_ptr<EmbeddingModel> CreateModel(ModelType type,
                                            int64_t input_dim, Rng* rng);

std::unique_ptr<EmbeddingModel> CreateFieldModel(ModelType type,
                                                 int num_fields,
                                                 int field_dim, Rng* rng);

}  // namespace hetgmp

#endif  // HETGMP_MODELS_MODEL_H_
