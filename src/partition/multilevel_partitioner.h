#ifndef HETGMP_PARTITION_MULTILEVEL_PARTITIONER_H_
#define HETGMP_PARTITION_MULTILEVEL_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/cooccurrence.h"

namespace hetgmp {

// Multilevel k-way partitioner for weighted undirected graphs, in the
// METIS algorithm family (Karypis & Kumar '98): heavy-edge-matching
// coarsening, greedy initial partitioning at the coarsest level, then
// boundary Kernighan-Lin refinement while uncoarsening.
//
// The paper uses METIS to cluster the embedding co-occurrence graph and
// show the dense diagonal blocks of Figure 3; this is our stand-in (see
// DESIGN.md §2).
struct MultilevelOptions {
  int coarsen_target_per_part = 32;  // stop coarsening near k * this
  int max_levels = 30;
  int refine_passes = 8;
  double max_imbalance = 0.10;  // vertex-weight balance slack
  uint64_t seed = 23;
};

class MultilevelPartitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options = {})
      : options_(options) {}

  // Returns a cluster id in [0, k) per vertex.
  std::vector<int> Cluster(const WeightedGraph& graph, int k) const;

  // Total weight of edges crossing clusters (lower is better).
  static double CutWeight(const WeightedGraph& graph,
                          const std::vector<int>& cluster_of);

 private:
  MultilevelOptions options_;
};

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_MULTILEVEL_PARTITIONER_H_
