#include "partition/bicut_partitioner.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace hetgmp {

Partition BiCutPartitioner::Run(const Bigraph& graph, int num_parts) {
  HETGMP_CHECK_GT(num_parts, 0);
  const int64_t n_s = graph.num_samples();
  const int64_t n_x = graph.num_embeddings();
  const int N = num_parts;
  Rng rng(seed_);

  Partition part;
  part.num_parts = N;
  part.sample_owner.assign(n_s, 0);
  part.embedding_owner.resize(n_x);
  part.secondaries.assign(N, {});

  // Pass 1: hash-distribute the embedding side.
  for (int64_t x = 0; x < n_x; ++x) {
    part.embedding_owner[x] = static_cast<int>(rng.NextUint64(N));
  }

  // Pass 2: one greedy streaming pass over samples with a hard load cap.
  const int64_t cap = static_cast<int64_t>(
      (1.0 + max_imbalance_) * static_cast<double>(n_s) / N) + 1;
  std::vector<int64_t> load(N, 0);
  std::vector<int64_t> tally(N, 0);
  for (int64_t s = 0; s < n_s; ++s) {
    std::fill(tally.begin(), tally.end(), 0);
    const FeatureId* feats = graph.SampleNeighbors(s);
    for (int f = 0; f < graph.arity(); ++f) {
      ++tally[part.embedding_owner[feats[f]]];
    }
    int best = -1;
    int64_t best_tally = -1;
    for (int j = 0; j < N; ++j) {
      if (load[j] >= cap) continue;
      // Break ties toward the lighter partition.
      if (tally[j] > best_tally ||
          (tally[j] == best_tally && best >= 0 && load[j] < load[best])) {
        best_tally = tally[j];
        best = j;
      }
    }
    HETGMP_CHECK_GE(best, 0) << " all partitions at cap";
    part.sample_owner[s] = best;
    ++load[best];
  }
  return part;
}

}  // namespace hetgmp
