#ifndef HETGMP_PARTITION_HYBRID_STATE_H_
#define HETGMP_PARTITION_HYBRID_STATE_H_

#include <cstdint>
#include <vector>

#include "graph/bigraph.h"
#include "partition/partition.h"

namespace hetgmp {

class ThreadPool;

// Sparse count(x, i) table from Eq. 3 ("the number of times embedding x is
// used by the data samples in the i-th partition").
//
// The dense num_embeddings × num_parts matrix this replaces is multi-GB at
// paper scale (Criteo ~33M embeddings × 64 partitions); the counts it holds
// are bounded by each embedding's degree, so almost all cells are zero.
// Rows live in one CSR-style arena: embedding x gets capacity
// min(degree(x), num_parts) entries — an embedding with d adjacent samples
// can have nonzero counts in at most d partitions — making total memory
// O(edges) instead of O(V × N), and in practice far below the edge count
// because hot embeddings cap at N entries.
//
// Counts are int64_t: the dense predecessor stored int32_t, which a single
// embedding accessed >2^31 times (plausible at billions of samples) would
// silently overflow. A count is bounded by num_edges, which the Bigraph
// already represents as int64_t, so widening removes the overflow class
// entirely; Inc() additionally CHECKs the row-capacity invariant so
// bookkeeping bugs surface instead of corrupting memory.
class SparseCountTable {
 public:
  struct Entry {
    int32_t part;
    int64_t count;
  };

  SparseCountTable(const Bigraph& graph, int num_parts);

  // Nonzero entries of row x, in unspecified order.
  const Entry* Row(FeatureId x) const { return arena_.data() + offsets_[x]; }
  int32_t RowSize(FeatureId x) const { return len_[x]; }

  int64_t Count(FeatureId x, int part) const;
  void Inc(FeatureId x, int part);
  // Decrements; removes the entry when it reaches zero (keeping rows
  // short). CHECKs that the entry exists and is positive.
  void Dec(FeatureId x, int part);

  // Arena entries allocated (the O(edges) bound).
  int64_t capacity_entries() const {
    return static_cast<int64_t>(arena_.size());
  }

 private:
  std::vector<int64_t> offsets_;  // size num_embeddings + 1
  std::vector<int32_t> len_;      // live entries per row
  std::vector<Entry> arena_;
};

// Mutable state for Algorithm 1: per-partition tallies plus the sparse
// count(x, i) table, maintained incrementally across vertex moves.
//
// Two usage modes share this class:
//  * the sequential pass calls Detach*/Attach* per vertex, keeping every
//    tally exact at all times (the original semantics);
//  * the parallel pass freezes the state for a block, scores against it
//    read-only to propose moves, then commits them serially through the
//    same exact Detach*/Attach* ops — so every tally stays exact there
//    too, up to FP reassociation in comm_cost_ that RecomputeCommCosts()
//    erases.
//
// Exposed in a header (rather than hidden in hybrid_partitioner.cc) so the
// bookkeeping property tests can drive detach/attach rounds directly and
// compare against a from-scratch dense recount.
class PartitionState {
 public:
  PartitionState(const Bigraph& graph, int num_parts,
                 const std::vector<std::vector<double>>& weight);

  void InitFrom(const Partition& p);

  // δ_c(G_i) (Eq. 3) with bandwidth weights: partitions pay
  // weight(i, owner) for every access to a non-local embedding. The
  // optional pool parallelizes the O(nnz) sweep over embeddings.
  void RecomputeCommCosts(ThreadPool* pool = nullptr);

  int sample_owner(int64_t s) const { return sample_owner_[s]; }
  int emb_owner(int64_t x) const { return emb_owner_[x]; }
  int64_t cnt(int64_t x, int i) const { return counts_.Count(x, i); }
  const SparseCountTable& counts() const { return counts_; }
  int64_t sample_count(int i) const { return sample_count_[i]; }
  int64_t emb_count(int i) const { return emb_count_[i]; }
  double comm_cost(int i) const { return comm_cost_[i]; }
  double AvgCommCost() const;
  int num_parts() const { return n_; }
  const Bigraph& graph() const { return graph_; }
  const std::vector<std::vector<double>>& weight() const { return weight_; }

  // --- Exact incremental ops (sequential pass + property tests) ---
  void DetachSample(int64_t s);
  void AttachSample(int64_t s, int b);
  void DetachEmbedding(int64_t x);
  void AttachEmbedding(int64_t x, int b);

  // Cost that all partitions together would pay for embedding x if it
  // were owned by j: Σ_{i≠j} count(x, i) · weight(i, j). O(row) via the
  // sparse table.
  double EmbeddingCommIfOwnedBy(int64_t x, int j) const;

  // Marginal comm a sample adds to partition j: the weighted count of its
  // embeddings that are remote from j.
  double SampleCommCost(int64_t s, int j) const;

 private:
  const Bigraph& graph_;
  const int n_;
  const std::vector<std::vector<double>>& weight_;
  SparseCountTable counts_;
  std::vector<int> sample_owner_;
  std::vector<int> emb_owner_;
  std::vector<int64_t> sample_count_;
  std::vector<int64_t> emb_count_;
  std::vector<double> comm_cost_;
};

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_HYBRID_STATE_H_
