#include "partition/quality.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/stringutil.h"

namespace hetgmp {

PartitionQuality EvaluatePartition(
    const Bigraph& graph, const Partition& partition,
    const std::vector<std::vector<double>>& comm_weight) {
  const int N = partition.num_parts;
  HETGMP_CHECK_EQ(partition.num_samples(), graph.num_samples());
  HETGMP_CHECK_EQ(partition.num_embeddings(), graph.num_embeddings());

  ReplicaIndex replicas(partition);
  PartitionQuality q;
  q.fetch_matrix.assign(N, std::vector<int64_t>(N, 0));

  for (int64_t s = 0; s < graph.num_samples(); ++s) {
    const int w = partition.sample_owner[s];
    const FeatureId* feats = graph.SampleNeighbors(s);
    for (int f = 0; f < graph.arity(); ++f) {
      const FeatureId x = feats[f];
      ++q.total_accesses;
      const int o = replicas.PrimaryOwner(x);
      if (replicas.HasReplica(w, x)) {
        ++q.fetch_matrix[w][w];
      } else {
        ++q.remote_accesses;
        ++q.fetch_matrix[w][o];
        q.weighted_remote +=
            comm_weight.empty() ? 1.0 : comm_weight[w][o];
      }
    }
  }

  std::vector<int64_t> samples(N, 0), embeddings(N, 0);
  for (int o : partition.sample_owner) ++samples[o];
  for (int o : partition.embedding_owner) ++embeddings[o];
  q.min_samples = *std::min_element(samples.begin(), samples.end());
  q.max_samples = *std::max_element(samples.begin(), samples.end());
  q.min_embeddings = *std::min_element(embeddings.begin(), embeddings.end());
  q.max_embeddings = *std::max_element(embeddings.begin(), embeddings.end());
  q.replication_factor = partition.ReplicationFactor();
  return q;
}

std::string PartitionQuality::ToString() const {
  std::ostringstream os;
  os << "remote=" << remote_accesses << "/" << total_accesses << " ("
     << Percent(RemoteFraction()) << ")"
     << " weighted=" << FormatDouble(weighted_remote, 0)
     << " samples=[" << min_samples << "," << max_samples << "]"
     << " embeddings=[" << min_embeddings << "," << max_embeddings << "]"
     << " replication=" << FormatDouble(replication_factor, 3);
  return os.str();
}

}  // namespace hetgmp
