#include "partition/hybrid_partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace hetgmp {

namespace {

// Mutable state for Algorithm 1: per-partition tallies plus the count(x, i)
// matrix from Eq. 3 ("the number of times embedding x is used by the data
// samples in the i-th partition"), maintained incrementally across vertex
// moves.
class PartitionState {
 public:
  PartitionState(const Bigraph& graph, int num_parts,
                 const std::vector<std::vector<double>>& weight)
      : graph_(graph),
        n_(num_parts),
        weight_(weight),
        cnt_(graph.num_embeddings() * num_parts, 0),
        sample_count_(num_parts, 0),
        emb_count_(num_parts, 0),
        comm_cost_(num_parts, 0.0) {}

  void InitFrom(const Partition& p) {
    sample_owner_ = p.sample_owner;
    emb_owner_ = p.embedding_owner;
    for (int64_t s = 0; s < graph_.num_samples(); ++s) {
      ++sample_count_[sample_owner_[s]];
      const FeatureId* feats = graph_.SampleNeighbors(s);
      for (int f = 0; f < graph_.arity(); ++f) {
        ++cnt_[feats[f] * n_ + sample_owner_[s]];
      }
    }
    for (int64_t x = 0; x < graph_.num_embeddings(); ++x) {
      ++emb_count_[emb_owner_[x]];
    }
    RecomputeCommCosts();
  }

  // δ_c(G_i) (Eq. 3) with bandwidth weights: partitions pay weight(i, owner)
  // for every access to a non-local embedding.
  void RecomputeCommCosts() {
    std::fill(comm_cost_.begin(), comm_cost_.end(), 0.0);
    for (int64_t x = 0; x < graph_.num_embeddings(); ++x) {
      const int owner = emb_owner_[x];
      for (int i = 0; i < n_; ++i) {
        if (i == owner) continue;
        comm_cost_[i] += cnt_[x * n_ + i] * weight_[i][owner];
      }
    }
  }

  int sample_owner(int64_t s) const { return sample_owner_[s]; }
  int emb_owner(int64_t x) const { return emb_owner_[x]; }
  int64_t cnt(int64_t x, int i) const { return cnt_[x * n_ + i]; }
  int64_t sample_count(int i) const { return sample_count_[i]; }
  int64_t emb_count(int i) const { return emb_count_[i]; }
  double comm_cost(int i) const { return comm_cost_[i]; }
  double AvgCommCost() const {
    return std::accumulate(comm_cost_.begin(), comm_cost_.end(), 0.0) / n_;
  }

  void DetachSample(int64_t s) {
    const int a = sample_owner_[s];
    --sample_count_[a];
    const FeatureId* feats = graph_.SampleNeighbors(s);
    for (int f = 0; f < graph_.arity(); ++f) {
      const FeatureId x = feats[f];
      --cnt_[x * n_ + a];
      const int o = emb_owner_[x];
      if (o != a) comm_cost_[a] -= weight_[a][o];
    }
    sample_owner_[s] = -1;
  }

  void AttachSample(int64_t s, int b) {
    sample_owner_[s] = b;
    ++sample_count_[b];
    const FeatureId* feats = graph_.SampleNeighbors(s);
    for (int f = 0; f < graph_.arity(); ++f) {
      const FeatureId x = feats[f];
      ++cnt_[x * n_ + b];
      const int o = emb_owner_[x];
      if (o != b) comm_cost_[b] += weight_[b][o];
    }
  }

  // Cost that all partitions together would pay for embedding x if it were
  // owned by j: Σ_{i≠j} count(x, i) · weight(i, j).
  double EmbeddingCommIfOwnedBy(int64_t x, int j) const {
    double cost = 0.0;
    for (int i = 0; i < n_; ++i) {
      if (i == j) continue;
      const int64_t c = cnt_[x * n_ + i];
      if (c != 0) cost += static_cast<double>(c) * weight_[i][j];
    }
    return cost;
  }

  void DetachEmbedding(int64_t x) {
    const int a = emb_owner_[x];
    --emb_count_[a];
    // Other partitions were paying for x; stop charging them while x is in
    // flight (AttachEmbedding re-charges for the new owner).
    for (int i = 0; i < n_; ++i) {
      if (i == a) continue;
      const int64_t c = cnt_[x * n_ + i];
      if (c != 0) comm_cost_[i] -= static_cast<double>(c) * weight_[i][a];
    }
    emb_owner_[x] = -1;
  }

  void AttachEmbedding(int64_t x, int b) {
    emb_owner_[x] = b;
    ++emb_count_[b];
    for (int i = 0; i < n_; ++i) {
      if (i == b) continue;
      const int64_t c = cnt_[x * n_ + i];
      if (c != 0) comm_cost_[i] += static_cast<double>(c) * weight_[i][b];
    }
  }

  // Marginal comm a sample adds to partition j: the weighted count of its
  // embeddings that are remote from j.
  double SampleCommCost(int64_t s, int j) const {
    double cost = 0.0;
    const FeatureId* feats = graph_.SampleNeighbors(s);
    for (int f = 0; f < graph_.arity(); ++f) {
      const int o = emb_owner_[feats[f]];
      if (o != j && o >= 0) cost += weight_[j][o];
    }
    return cost;
  }

 private:
  const Bigraph& graph_;
  const int n_;
  const std::vector<std::vector<double>>& weight_;
  std::vector<int32_t> cnt_;
  std::vector<int> sample_owner_;
  std::vector<int> emb_owner_;
  std::vector<int64_t> sample_count_;
  std::vector<int64_t> emb_count_;
  std::vector<double> comm_cost_;
};

std::vector<std::vector<double>> HomogeneousWeights(int n) {
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 1.0));
  for (int i = 0; i < n; ++i) w[i][i] = 0.0;
  return w;
}

}  // namespace

Partition HybridPartitioner::Run(const Bigraph& graph, int num_parts) {
  HETGMP_CHECK_GT(num_parts, 0);
  const int64_t n_s = graph.num_samples();
  const int64_t n_x = graph.num_embeddings();
  const int N = num_parts;

  std::vector<std::vector<double>> weight = options_.comm_weight;
  if (weight.empty()) {
    weight = HomogeneousWeights(N);
  }
  HETGMP_CHECK_EQ(static_cast<int>(weight.size()), N);

  // Line 1: random initial partition.
  Rng rng(options_.seed);
  Partition part;
  part.num_parts = N;
  part.sample_owner.resize(n_s);
  part.embedding_owner.resize(n_x);
  part.secondaries.assign(N, {});
  for (auto& o : part.sample_owner) o = static_cast<int>(rng.NextUint64(N));
  for (auto& o : part.embedding_owner) {
    o = static_cast<int>(rng.NextUint64(N));
  }

  PartitionState state(graph, N, weight);
  state.InitFrom(part);

  // Balance terms (Eq. 4/5) are normalized to imbalance *fractions* and
  // scaled so they are commensurate with the marginal communication term:
  // a sample contributes up to arity() cut-edges, each costing the average
  // off-diagonal weight (without the weight factor, heterogeneous-weight
  // runs would let the huge inter-machine penalties swamp balance
  // entirely). See the header comment for the sign convention.
  // Per-partition sample targets: proportional to compute capacity when
  // given, else uniform. Embedding targets stay uniform (memory-bound).
  std::vector<double> target_samples(N, static_cast<double>(n_s) / N);
  if (!options_.worker_capacity.empty()) {
    HETGMP_CHECK_EQ(static_cast<int>(options_.worker_capacity.size()), N);
    double total_cap = 0.0;
    for (double c : options_.worker_capacity) {
      HETGMP_CHECK_GT(c, 0.0);
      total_cap += c;
    }
    for (int j = 0; j < N; ++j) {
      target_samples[j] =
          static_cast<double>(n_s) * options_.worker_capacity[j] /
          total_cap;
    }
  }
  const double avg_embs = static_cast<double>(n_x) / N;
  double weight_sum = 0.0;
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      if (i != j) weight_sum += weight[i][j];
    }
  }
  const double avg_weight =
      N > 1 ? weight_sum / (static_cast<double>(N) * (N - 1)) : 1.0;
  const double balance_scale =
      static_cast<double>(graph.arity()) * std::max(1.0, avg_weight);

  // Visit order: all vertices, embeddings interleaved with samples,
  // shuffled once per run for tie-breaking diversity.
  std::vector<int64_t> order(n_s + n_x);
  std::iota(order.begin(), order.end(), 0);
  for (int64_t i = static_cast<int64_t>(order.size()) - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextUint64(i + 1)]);
  }

  for (int round = 0; round < options_.rounds; ++round) {
    // ---- Step 1: 1D edge-cut pass (lines 3-5) ----
    for (int64_t v : order) {
      if (v < n_s) {
        const int64_t s = v;
        state.DetachSample(s);
        int best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        const double avg_comm = state.AvgCommCost();
        for (int j = 0; j < N; ++j) {
          const double delta_c = state.SampleCommCost(s, j);
          const double delta_xi =
              (state.sample_count(j) + 1 - target_samples[j]) / target_samples[j];
          const double delta_x =
              (state.emb_count(j) - avg_embs) / avg_embs;
          const double delta_d =
              (state.comm_cost(j) - avg_comm) / std::max(avg_comm, 1.0);
          const double score =
              delta_c + balance_scale * (options_.alpha * delta_xi +
                                         options_.beta * delta_x +
                                         options_.gamma * delta_d);
          if (score < best_score) {
            best_score = score;
            best = j;
          }
        }
        state.AttachSample(s, best);
      } else {
        const int64_t x = v - n_s;
        state.DetachEmbedding(x);
        int best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        const double avg_comm = state.AvgCommCost();
        for (int j = 0; j < N; ++j) {
          const double delta_c = state.EmbeddingCommIfOwnedBy(x, j);
          const double delta_xi =
              (state.sample_count(j) - target_samples[j]) / target_samples[j];
          const double delta_x =
              (state.emb_count(j) + 1 - avg_embs) / avg_embs;
          const double delta_d =
              (state.comm_cost(j) - avg_comm) / std::max(avg_comm, 1.0);
          const double score =
              delta_c + balance_scale * (options_.alpha * delta_xi +
                                         options_.beta * delta_x +
                                         options_.gamma * delta_d);
          if (score < best_score) {
            best_score = score;
            best = j;
          }
        }
        state.AttachEmbedding(x, best);
      }
    }
  }

  // Export 1D result.
  for (int64_t s = 0; s < n_s; ++s) part.sample_owner[s] = state.sample_owner(s);
  for (int64_t x = 0; x < n_x; ++x) {
    part.embedding_owner[x] = state.emb_owner(x);
  }

  // ---- Step 2: 2D vertex-cut pass (lines 6-11) ----
  // For each partition, rank remote embeddings by count(x, i); since the
  // denominator of Eq. 6 is identical for all candidates of a given
  // partition, ranking by the numerator realizes argmax δ_p exactly.
  const int64_t budget = static_cast<int64_t>(
      options_.secondary_fraction * static_cast<double>(n_x));
  if (budget > 0) {
    std::vector<std::pair<int64_t, FeatureId>> candidates;
    for (int i = 0; i < N; ++i) {
      candidates.clear();
      for (int64_t x = 0; x < n_x; ++x) {
        if (state.emb_owner(x) == i) continue;
        const int64_t c = state.cnt(x, i);
        if (c > 0) candidates.emplace_back(c, x);
      }
      const int64_t take =
          std::min<int64_t>(budget, static_cast<int64_t>(candidates.size()));
      std::partial_sort(candidates.begin(), candidates.begin() + take,
                        candidates.end(),
                        std::greater<std::pair<int64_t, FeatureId>>());
      part.secondaries[i].reserve(take);
      for (int64_t k = 0; k < take; ++k) {
        part.secondaries[i].push_back(candidates[k].second);
      }
    }
  }
  return part;
}

}  // namespace hetgmp
