#include "partition/hybrid_partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/threading.h"
#include "partition/hybrid_state.h"

namespace hetgmp {

namespace {

std::vector<std::vector<double>> HomogeneousWeights(int n) {
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 1.0));
  for (int i = 0; i < n; ++i) w[i][i] = 0.0;
  return w;
}

// Score ingredients shared by both 1D passes (Eq. 3/4/5; see the header
// comment for the sign convention).
struct ScoreParams {
  const HybridPartitionerOptions* opt;
  std::vector<double> target_samples;
  double avg_embs;
  double balance_scale;
};

// Exact candidate scores for a *detached* vertex against the live state
// (Eq. 3/4/5). Shared by the sequential round's full argmin and the
// parallel pass's validate-at-commit step.
double ScoreDetachedSample(const PartitionState& state, const ScoreParams& sp,
                           int64_t s, int j, double avg_comm) {
  const HybridPartitionerOptions& opt = *sp.opt;
  const double delta_c = state.SampleCommCost(s, j);
  const double delta_xi =
      (state.sample_count(j) + 1 - sp.target_samples[j]) /
      sp.target_samples[j];
  const double delta_x = (state.emb_count(j) - sp.avg_embs) / sp.avg_embs;
  const double delta_d =
      (state.comm_cost(j) - avg_comm) / std::max(avg_comm, 1.0);
  return delta_c + sp.balance_scale * (opt.alpha * delta_xi +
                                       opt.beta * delta_x +
                                       opt.gamma * delta_d);
}

double ScoreDetachedEmbedding(const PartitionState& state,
                              const ScoreParams& sp, int64_t x, int j,
                              double avg_comm) {
  const HybridPartitionerOptions& opt = *sp.opt;
  const double delta_c = state.EmbeddingCommIfOwnedBy(x, j);
  const double delta_xi =
      (state.sample_count(j) - sp.target_samples[j]) / sp.target_samples[j];
  const double delta_x =
      (state.emb_count(j) + 1 - sp.avg_embs) / sp.avg_embs;
  const double delta_d =
      (state.comm_cost(j) - avg_comm) / std::max(avg_comm, 1.0);
  return delta_c + sp.balance_scale * (opt.alpha * delta_xi +
                                       opt.beta * delta_x +
                                       opt.gamma * delta_d);
}

// ---- Sequential 1D round: the exact Algorithm 1 greedy, every vertex
// scored against fully up-to-date state. This is the semantics baseline
// the parallel pass is measured against.
void SequentialRound(PartitionState& state, const std::vector<int64_t>& order,
                     int64_t n_s, const ScoreParams& sp) {
  const int N = state.num_parts();
  for (int64_t v : order) {
    if (v < n_s) {
      const int64_t s = v;
      state.DetachSample(s);
      int best = 0;
      double best_score = std::numeric_limits<double>::infinity();
      const double avg_comm = state.AvgCommCost();
      for (int j = 0; j < N; ++j) {
        const double score = ScoreDetachedSample(state, sp, s, j, avg_comm);
        if (score < best_score) {
          best_score = score;
          best = j;
        }
      }
      state.AttachSample(s, best);
    } else {
      const int64_t x = v - n_s;
      state.DetachEmbedding(x);
      int best = 0;
      double best_score = std::numeric_limits<double>::infinity();
      const double avg_comm = state.AvgCommCost();
      for (int j = 0; j < N; ++j) {
        const double score = ScoreDetachedEmbedding(state, sp, x, j, avg_comm);
        if (score < best_score) {
          best_score = score;
          best = j;
        }
      }
      state.AttachEmbedding(x, best);
    }
  }
}

// ---- Parallel 1D round: block-synchronous propose/validate-commit.
//
// The shuffled visit order is cut into blocks. Within a block the state
// is frozen: chunks of vertices are scored in parallel against a snapshot
// of the per-partition aggregates plus each chunk's own running deltas
// (so a chunk sees its earlier decisions, which damps pile-on onto
// whatever partition the snapshot showed as underloaded). Scoring only
// *proposes* moves; at the block boundary the proposals are committed
// serially in chunk order, each re-validated against the live exact
// state (detach, score {stay, proposed target}, attach the winner via
// the exact detach/attach ops). Proposals that are no longer
// improvements — e.g. several chunks piling onto the same partition, or
// neighbors whose moves interact — are rejected, so every applied move
// is a genuine greedy improvement exactly as in the sequential pass,
// and counts, the count table and comm_cost stay exact throughout.
//
// The serial commit touches only proposers (a shrinking minority after
// round 1) and scores just two candidates per proposal, so its cost is
// ~1/num_parts of the parallel scoring work. Residual comm_cost error is
// pure FP reassociation from long incremental accumulation;
// RecomputeCommCosts (optional periodic + at round end) erases it.

struct Move {
  int64_t v;  // order encoding: sample s, or n_s + embedding x
  int32_t to;
};

struct ChunkScratch {
  std::vector<Move> moves;  // proposals, validated serially at commit
  std::vector<int64_t> d_scount, d_ecount;
  std::vector<double> d_comm;
  std::vector<double> cost;      // per-candidate comm costs for one vertex
  std::vector<double> comm_adj;  // detach-adjusted comm snapshot
};

class ParallelRoundDriver {
 public:
  ParallelRoundDriver(PartitionState& state, const std::vector<int64_t>& order,
                      int64_t n_s, const ScoreParams& sp, ThreadPool* pool,
                      int64_t block_size, int recompute_blocks)
      : state_(state),
        order_(order),
        n_s_(n_s),
        sp_(sp),
        pool_(pool),
        num_chunks_(pool->num_threads()),
        block_size_(block_size),
        recompute_blocks_(recompute_blocks),
        n_(state.num_parts()),
        snap_scount_(n_),
        snap_ecount_(n_),
        snap_comm_(n_),
        scratch_(num_chunks_) {
    for (ChunkScratch& cs : scratch_) {
      cs.d_scount.assign(n_, 0);
      cs.d_ecount.assign(n_, 0);
      cs.d_comm.assign(n_, 0.0);
      cs.cost.assign(n_, 0.0);
      cs.comm_adj.assign(n_, 0.0);
    }
  }

  void RunRound() {
    const int64_t total = static_cast<int64_t>(order_.size());
    int since_recompute = 0;
    for (int64_t begin = 0; begin < total; begin += block_size_) {
      const int64_t end = std::min(total, begin + block_size_);
      RunBlock(begin, end);
      if (recompute_blocks_ > 0 && ++since_recompute >= recompute_blocks_) {
        state_.RecomputeCommCosts(pool_);
        since_recompute = 0;
      }
    }
    state_.RecomputeCommCosts(pool_);
  }

 private:
  void RunBlock(int64_t blk_begin, int64_t blk_end) {
    for (int j = 0; j < n_; ++j) {
      snap_scount_[j] = state_.sample_count(j);
      snap_ecount_[j] = state_.emb_count(j);
      snap_comm_[j] = state_.comm_cost(j);
    }
    for (ChunkScratch& cs : scratch_) {
      cs.moves.clear();
      std::fill(cs.d_scount.begin(), cs.d_scount.end(), 0);
      std::fill(cs.d_ecount.begin(), cs.d_ecount.end(), 0);
      std::fill(cs.d_comm.begin(), cs.d_comm.end(), 0.0);
    }

    // Phase A: score against the frozen state, recording proposals. The
    // pool's Wait() inside RunChunks is the barrier that orders these
    // reads before the commit's writes.
    pool_->RunChunks(blk_end - blk_begin, num_chunks_,
                     [&](int chunk, int64_t b, int64_t e) {
                       ScoreChunk(chunk, blk_begin + b, blk_begin + e);
                     });

    // Commit: serial, in chunk order (deterministic). Each proposal is
    // re-validated against the live state — earlier commits in this very
    // block are visible — and applied through the exact detach/attach
    // ops, so every applied move is a genuine improvement at commit
    // time. A proposal whose target stopped being an improvement
    // (pile-on, interacting neighbors) is re-routed with a full exact
    // argmin rather than dropped: rejections are the minority, and
    // re-routing keeps the consolidation rate close to the sequential
    // pass instead of stranding the vertex until the next round.
    for (const ChunkScratch& cs : scratch_) {
      for (const Move& m : cs.moves) {
        if (m.v < n_s_) {
          const int64_t s = m.v;
          const int a = state_.sample_owner(s);
          state_.DetachSample(s);
          const double avg_comm = state_.AvgCommCost();
          const double stay = ScoreDetachedSample(state_, sp_, s, a, avg_comm);
          const double move =
              ScoreDetachedSample(state_, sp_, s, m.to, avg_comm);
          int dest = m.to;
          if (!(move < stay)) {
            dest = a;
            double best_score = stay;
            for (int j = 0; j < n_; ++j) {
              const double score =
                  ScoreDetachedSample(state_, sp_, s, j, avg_comm);
              if (score < best_score) {
                best_score = score;
                dest = j;
              }
            }
          }
          state_.AttachSample(s, dest);
        } else {
          const int64_t x = m.v - n_s_;
          const int a = state_.emb_owner(x);
          state_.DetachEmbedding(x);
          const double avg_comm = state_.AvgCommCost();
          const double stay =
              ScoreDetachedEmbedding(state_, sp_, x, a, avg_comm);
          const double move =
              ScoreDetachedEmbedding(state_, sp_, x, m.to, avg_comm);
          int dest = m.to;
          if (!(move < stay)) {
            dest = a;
            double best_score = stay;
            for (int j = 0; j < n_; ++j) {
              const double score =
                  ScoreDetachedEmbedding(state_, sp_, x, j, avg_comm);
              if (score < best_score) {
                best_score = score;
                dest = j;
              }
            }
          }
          state_.AttachEmbedding(x, dest);
        }
      }
    }
  }

  void ScoreChunk(int chunk, int64_t begin, int64_t end) {
    ChunkScratch& cs = scratch_[chunk];
    const HybridPartitionerOptions& opt = *sp_.opt;
    const std::vector<std::vector<double>>& w = state_.weight();
    for (int64_t idx = begin; idx < end; ++idx) {
      const int64_t v = order_[idx];
      if (v < n_s_) {
        const int64_t s = v;
        const int a = state_.sample_owner(s);
        for (int j = 0; j < n_; ++j) cs.cost[j] = state_.SampleCommCost(s, j);
        // Aggregates as this chunk sees them: snapshot + its own deltas,
        // with s detached from its current owner (mirrors the sequential
        // detach-then-score).
        double avg_comm = 0.0;
        for (int j = 0; j < n_; ++j) avg_comm += snap_comm_[j] + cs.d_comm[j];
        avg_comm = (avg_comm - cs.cost[a]) / n_;
        int best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        double stay_score = std::numeric_limits<double>::infinity();
        for (int j = 0; j < n_; ++j) {
          const double scount =
              static_cast<double>(snap_scount_[j] + cs.d_scount[j] -
                                  (j == a ? 1 : 0) + 1);
          const double delta_xi =
              (scount - sp_.target_samples[j]) / sp_.target_samples[j];
          const double delta_x =
              (static_cast<double>(snap_ecount_[j] + cs.d_ecount[j]) -
               sp_.avg_embs) /
              sp_.avg_embs;
          const double comm_j =
              snap_comm_[j] + cs.d_comm[j] - (j == a ? cs.cost[a] : 0.0);
          const double delta_d =
              (comm_j - avg_comm) / std::max(avg_comm, 1.0);
          const double score =
              cs.cost[j] + sp_.balance_scale * (opt.alpha * delta_xi +
                                                opt.beta * delta_x +
                                                opt.gamma * delta_d);
          if (j == a) stay_score = score;
          if (score < best_score) {
            best_score = score;
            best = j;
          }
        }
        // Move only on strict improvement: under a stale snapshot a tie
        // is churn, not progress (the sequential pass sees fresh state,
        // so its lowest-j tie-break is harmless there).
        if (best != a && best_score < stay_score) {
          cs.moves.push_back({v, static_cast<int32_t>(best)});
          --cs.d_scount[a];
          ++cs.d_scount[best];
          cs.d_comm[a] -= cs.cost[a];
          cs.d_comm[best] += cs.cost[best];
        }
      } else {
        const int64_t x = v - n_s_;
        const int a = state_.emb_owner(x);
        const SparseCountTable::Entry* row = state_.counts().Row(x);
        const int32_t len = state_.counts().RowSize(x);
        // comm as seen with x detached from a (sequential detach-then-
        // score): partitions stop paying for x while it is in flight.
        for (int j = 0; j < n_; ++j) {
          cs.comm_adj[j] = snap_comm_[j] + cs.d_comm[j];
        }
        for (int32_t k = 0; k < len; ++k) {
          const int i = row[k].part;
          if (i != a) {
            cs.comm_adj[i] -=
                static_cast<double>(row[k].count) * w[i][a];
          }
        }
        double avg_comm = 0.0;
        for (int j = 0; j < n_; ++j) avg_comm += cs.comm_adj[j];
        avg_comm /= n_;
        int best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        double stay_score = std::numeric_limits<double>::infinity();
        for (int j = 0; j < n_; ++j) {
          double delta_c = 0.0;
          for (int32_t k = 0; k < len; ++k) {
            const int i = row[k].part;
            if (i == j) continue;
            delta_c += static_cast<double>(row[k].count) * w[i][j];
          }
          cs.cost[j] = delta_c;
          const double delta_xi =
              (static_cast<double>(snap_scount_[j] + cs.d_scount[j]) -
               sp_.target_samples[j]) /
              sp_.target_samples[j];
          const double delta_x =
              (static_cast<double>(snap_ecount_[j] + cs.d_ecount[j] -
                                   (j == a ? 1 : 0) + 1) -
               sp_.avg_embs) /
              sp_.avg_embs;
          const double delta_d =
              (cs.comm_adj[j] - avg_comm) / std::max(avg_comm, 1.0);
          const double score =
              delta_c + sp_.balance_scale * (opt.alpha * delta_xi +
                                             opt.beta * delta_x +
                                             opt.gamma * delta_d);
          if (j == a) stay_score = score;
          if (score < best_score) {
            best_score = score;
            best = j;
          }
        }
        if (best != a && best_score < stay_score) {
          cs.moves.push_back({v, static_cast<int32_t>(best)});
          --cs.d_ecount[a];
          ++cs.d_ecount[best];
          for (int32_t k = 0; k < len; ++k) {
            const int i = row[k].part;
            const double c = static_cast<double>(row[k].count);
            if (i != a) cs.d_comm[i] -= c * w[i][a];
            if (i != best) cs.d_comm[i] += c * w[i][best];
          }
        }
      }
    }
  }

  PartitionState& state_;
  const std::vector<int64_t>& order_;
  const int64_t n_s_;
  const ScoreParams& sp_;
  ThreadPool* pool_;
  const int num_chunks_;
  const int64_t block_size_;
  const int recompute_blocks_;
  const int n_;
  std::vector<int64_t> snap_scount_, snap_ecount_;
  std::vector<double> snap_comm_;
  std::vector<ChunkScratch> scratch_;
};

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

int64_t ResolveBlockSize(int64_t requested, int64_t total_vertices,
                         int threads) {
  if (requested > 0) return requested;
  // Balance snapshot staleness (≤ block_size stale decisions) against
  // barrier overhead (two pool dispatches per block). Measurements on
  // 1M-edge graphs (bench_partitioner_scale) put the quality knee near
  // 512 vertices per block: beyond that the stale balance feedback costs
  // several percent of edge-cut quality in later rounds (where the
  // sequential baseline refines aggressively). On small graphs the
  // formula shrinks blocks toward the sequential limit — barrier
  // overhead is negligible there in absolute terms, and a block spanning
  // a large fraction of all vertices drifts from the sequential
  // trajectory; the floor of 32 only avoids degenerate 1-vertex
  // dispatches.
  const int64_t auto_size = total_vertices / (32 * threads);
  return std::clamp<int64_t>(auto_size, 32, 512);
}

}  // namespace

Partition HybridPartitioner::Run(const Bigraph& graph, int num_parts) {
  HETGMP_CHECK_GT(num_parts, 0);
  const int64_t n_s = graph.num_samples();
  const int64_t n_x = graph.num_embeddings();
  const int N = num_parts;

  std::vector<std::vector<double>> weight = options_.comm_weight;
  if (weight.empty()) {
    weight = HomogeneousWeights(N);
  }
  HETGMP_CHECK_EQ(static_cast<int>(weight.size()), N);

  // Line 1: random initial partition.
  Rng rng(options_.seed);
  Partition part;
  part.num_parts = N;
  part.sample_owner.resize(n_s);
  part.embedding_owner.resize(n_x);
  part.secondaries.assign(N, {});
  for (auto& o : part.sample_owner) o = static_cast<int>(rng.NextUint64(N));
  for (auto& o : part.embedding_owner) {
    o = static_cast<int>(rng.NextUint64(N));
  }

  PartitionState state(graph, N, weight);
  state.InitFrom(part);

  // Balance terms (Eq. 4/5) are normalized to imbalance *fractions* and
  // scaled so they are commensurate with the marginal communication term:
  // a sample contributes up to arity() cut-edges, each costing the average
  // off-diagonal weight (without the weight factor, heterogeneous-weight
  // runs would let the huge inter-machine penalties swamp balance
  // entirely). See the header comment for the sign convention.
  // Per-partition sample targets: proportional to compute capacity when
  // given, else uniform. Embedding targets stay uniform (memory-bound).
  ScoreParams sp;
  sp.opt = &options_;
  sp.target_samples.assign(N, static_cast<double>(n_s) / N);
  if (!options_.worker_capacity.empty()) {
    HETGMP_CHECK_EQ(static_cast<int>(options_.worker_capacity.size()), N);
    double total_cap = 0.0;
    for (double c : options_.worker_capacity) {
      HETGMP_CHECK_GT(c, 0.0);
      total_cap += c;
    }
    for (int j = 0; j < N; ++j) {
      sp.target_samples[j] =
          static_cast<double>(n_s) * options_.worker_capacity[j] /
          total_cap;
    }
  }
  sp.avg_embs = static_cast<double>(n_x) / N;
  double weight_sum = 0.0;
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      if (i != j) weight_sum += weight[i][j];
    }
  }
  const double avg_weight =
      N > 1 ? weight_sum / (static_cast<double>(N) * (N - 1)) : 1.0;
  sp.balance_scale =
      static_cast<double>(graph.arity()) * std::max(1.0, avg_weight);

  // Visit order: all vertices, embeddings interleaved with samples,
  // shuffled once per run for tie-breaking diversity.
  std::vector<int64_t> order(n_s + n_x);
  std::iota(order.begin(), order.end(), 0);
  for (int64_t i = static_cast<int64_t>(order.size()) - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextUint64(i + 1)]);
  }

  const int threads = ResolveThreads(options_.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  if (pool == nullptr) {
    for (int round = 0; round < options_.rounds; ++round) {
      // ---- Step 1: 1D edge-cut pass (lines 3-5) ----
      SequentialRound(state, order, n_s, sp);
    }
  } else {
    const int64_t block_size = ResolveBlockSize(
        options_.block_size, static_cast<int64_t>(order.size()), threads);
    ParallelRoundDriver driver(state, order, n_s, sp, pool.get(), block_size,
                               options_.recompute_blocks);
    for (int round = 0; round < options_.rounds; ++round) {
      driver.RunRound();
    }
  }

  // Export 1D result.
  for (int64_t s = 0; s < n_s; ++s) part.sample_owner[s] = state.sample_owner(s);
  for (int64_t x = 0; x < n_x; ++x) {
    part.embedding_owner[x] = state.emb_owner(x);
  }

  // ---- Step 2: 2D vertex-cut pass (lines 6-11) ----
  // For each partition, rank remote embeddings by count(x, i); since the
  // denominator of Eq. 6 is identical for all candidates of a given
  // partition, ranking by the numerator realizes argmax δ_p exactly.
  // Partitions are independent (each writes only its own secondaries
  // list), so the ranking fans out across the pool.
  const int64_t budget = static_cast<int64_t>(
      options_.secondary_fraction * static_cast<double>(n_x));
  if (budget > 0) {
    auto rank_partition = [&](int i) {
      std::vector<std::pair<int64_t, FeatureId>> candidates;
      for (int64_t x = 0; x < n_x; ++x) {
        if (state.emb_owner(x) == i) continue;
        const int64_t c = state.cnt(x, i);
        if (c > 0) candidates.emplace_back(c, x);
      }
      const int64_t take =
          std::min<int64_t>(budget, static_cast<int64_t>(candidates.size()));
      std::partial_sort(candidates.begin(), candidates.begin() + take,
                        candidates.end(),
                        std::greater<std::pair<int64_t, FeatureId>>());
      part.secondaries[i].reserve(take);
      for (int64_t k = 0; k < take; ++k) {
        part.secondaries[i].push_back(candidates[k].second);
      }
    };
    if (pool == nullptr) {
      for (int i = 0; i < N; ++i) rank_partition(i);
    } else {
      pool->RunChunks(N, threads, [&](int /*chunk*/, int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) rank_partition(static_cast<int>(i));
      });
    }
  }
  return part;
}

}  // namespace hetgmp
