#ifndef HETGMP_PARTITION_PARTITIONER_H_
#define HETGMP_PARTITION_PARTITIONER_H_

#include "graph/bigraph.h"
#include "partition/partition.h"

namespace hetgmp {

// Strategy interface: maps the bigraph onto N workers. Implementations:
// RandomPartitioner (the HugeCTR/HET-MP baseline placement),
// BiCutPartitioner (one-pass bipartite baseline), HybridPartitioner
// (the paper's Algorithm 1).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual Partition Run(const Bigraph& graph, int num_parts) = 0;

  // Human-readable identifier for reports.
  virtual const char* name() const = 0;
};

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_PARTITIONER_H_
