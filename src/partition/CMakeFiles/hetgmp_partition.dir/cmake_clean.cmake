file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_partition.dir/bicut_partitioner.cc.o"
  "CMakeFiles/hetgmp_partition.dir/bicut_partitioner.cc.o.d"
  "CMakeFiles/hetgmp_partition.dir/hybrid_partitioner.cc.o"
  "CMakeFiles/hetgmp_partition.dir/hybrid_partitioner.cc.o.d"
  "CMakeFiles/hetgmp_partition.dir/hybrid_state.cc.o"
  "CMakeFiles/hetgmp_partition.dir/hybrid_state.cc.o.d"
  "CMakeFiles/hetgmp_partition.dir/multilevel_partitioner.cc.o"
  "CMakeFiles/hetgmp_partition.dir/multilevel_partitioner.cc.o.d"
  "CMakeFiles/hetgmp_partition.dir/partition.cc.o"
  "CMakeFiles/hetgmp_partition.dir/partition.cc.o.d"
  "CMakeFiles/hetgmp_partition.dir/partition_io.cc.o"
  "CMakeFiles/hetgmp_partition.dir/partition_io.cc.o.d"
  "CMakeFiles/hetgmp_partition.dir/quality.cc.o"
  "CMakeFiles/hetgmp_partition.dir/quality.cc.o.d"
  "CMakeFiles/hetgmp_partition.dir/random_partitioner.cc.o"
  "CMakeFiles/hetgmp_partition.dir/random_partitioner.cc.o.d"
  "libhetgmp_partition.a"
  "libhetgmp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
