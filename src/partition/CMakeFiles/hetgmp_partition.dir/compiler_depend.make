# Empty compiler generated dependencies file for hetgmp_partition.
# This may be replaced when dependencies are built.
