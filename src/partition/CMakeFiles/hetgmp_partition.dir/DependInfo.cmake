
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/bicut_partitioner.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/bicut_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/bicut_partitioner.cc.o.d"
  "/root/repo/src/partition/hybrid_partitioner.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/hybrid_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/hybrid_partitioner.cc.o.d"
  "/root/repo/src/partition/hybrid_state.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/hybrid_state.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/hybrid_state.cc.o.d"
  "/root/repo/src/partition/multilevel_partitioner.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/multilevel_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/multilevel_partitioner.cc.o.d"
  "/root/repo/src/partition/partition.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/partition.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/partition.cc.o.d"
  "/root/repo/src/partition/partition_io.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/partition_io.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/partition_io.cc.o.d"
  "/root/repo/src/partition/quality.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/quality.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/quality.cc.o.d"
  "/root/repo/src/partition/random_partitioner.cc" "src/partition/CMakeFiles/hetgmp_partition.dir/random_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/hetgmp_partition.dir/random_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/graph/CMakeFiles/hetgmp_graph.dir/DependInfo.cmake"
  "/root/repo/src/data/CMakeFiles/hetgmp_data.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/hetgmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
