file(REMOVE_RECURSE
  "libhetgmp_partition.a"
)
