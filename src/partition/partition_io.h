#ifndef HETGMP_PARTITION_PARTITION_IO_H_
#define HETGMP_PARTITION_PARTITION_IO_H_

#include <string>

#include "common/status.h"
#include "partition/partition.h"

namespace hetgmp {

// Partition-plan persistence. Production deployments compute the hybrid
// partition once per dataset snapshot and reuse it across training jobs
// (Algorithm 1 is deterministic but costs a few passes over the data);
// these helpers serialize the full plan — owners plus the per-worker
// secondary sets.

Status SavePartition(const Partition& partition, const std::string& path);

Result<Partition> LoadPartition(const std::string& path);

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_PARTITION_IO_H_
