#ifndef HETGMP_PARTITION_BICUT_PARTITIONER_H_
#define HETGMP_PARTITION_BICUT_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace hetgmp {

// BiCut (Chen et al., JCST'15): the bipartite-oriented variant of
// PowerLyra's hybrid-cut, used by the paper as the strong partitioning
// baseline (Table 3). One-pass and skew-aware:
//
//  1. The "favorite" subset — here the embedding side, whose placement
//     determines communication — is hash-distributed evenly.
//  2. Each sample is then greedily assigned to the partition that owns the
//     most of its embeddings, subject to a load cap, so per-sample access
//     locality is exploited without a second pass.
//
// No replication, no iteration — by design (graph systems amortize
// partitioning over a short computation; see §3 "Graph Partitioning").
class BiCutPartitioner : public Partitioner {
 public:
  explicit BiCutPartitioner(double max_imbalance = 0.05, uint64_t seed = 11)
      : max_imbalance_(max_imbalance), seed_(seed) {}

  Partition Run(const Bigraph& graph, int num_parts) override;
  const char* name() const override { return "bicut"; }

 private:
  double max_imbalance_;
  uint64_t seed_;
};

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_BICUT_PARTITIONER_H_
