#ifndef HETGMP_PARTITION_PARTITION_H_
#define HETGMP_PARTITION_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace hetgmp {

// Result of partitioning the bigraph across N workers.
//
// Every sample and every embedding has exactly one *primary* owner (the 1D
// edge-cut result). Workers may additionally hold *secondary* replicas of
// embeddings they do not own (the 2D vertex-cut result, §5.2): these are
// the cached hot embeddings kept consistent through bounded asynchrony.
struct Partition {
  int num_parts = 0;
  std::vector<int> sample_owner;               // size num_samples
  std::vector<int> embedding_owner;            // size num_embeddings
  std::vector<std::vector<FeatureId>> secondaries;  // per worker

  int64_t num_samples() const {
    return static_cast<int64_t>(sample_owner.size());
  }
  int64_t num_embeddings() const {
    return static_cast<int64_t>(embedding_owner.size());
  }
  int64_t TotalSecondaries() const;

  // Replicas per embedding averaged over all embeddings (1.0 = no
  // replication).
  double ReplicationFactor() const;
};

// O(1) "does worker w hold a replica of embedding x?" lookups, built once
// from a Partition. Secondary replicas are flagged in a dense worker ×
// embedding bitmap (num_parts × num_embeddings bits).
class ReplicaIndex {
 public:
  explicit ReplicaIndex(const Partition& partition);

  int PrimaryOwner(FeatureId x) const { return owner_[x]; }
  [[nodiscard]] bool HasSecondary(int worker, FeatureId x) const {
    const int64_t bit = Index(worker, x);
    return (bits_[bit >> 6] >> (bit & 63)) & 1;
  }
  // Primary or secondary.
  [[nodiscard]] bool HasReplica(int worker, FeatureId x) const {
    return owner_[x] == worker || HasSecondary(worker, x);
  }
  int num_parts() const { return num_parts_; }
  int64_t num_embeddings() const { return num_embeddings_; }

 private:
  int64_t Index(int worker, FeatureId x) const {
    return static_cast<int64_t>(worker) * num_embeddings_ + x;
  }

  int num_parts_;
  int64_t num_embeddings_;
  std::vector<int> owner_;
  std::vector<uint64_t> bits_;
};

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_PARTITION_H_
