#include "partition/multilevel_partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace hetgmp {

namespace {

// In-memory level graph used during coarsening.
struct LevelGraph {
  int64_t n = 0;
  std::vector<std::vector<std::pair<int64_t, double>>> adj;
  std::vector<double> vwgt;  // number of original vertices collapsed here
};

LevelGraph FromWeighted(const WeightedGraph& g) {
  LevelGraph lg;
  lg.n = g.num_vertices();
  lg.adj.resize(lg.n);
  lg.vwgt.assign(lg.n, 1.0);
  for (int64_t u = 0; u < lg.n; ++u) {
    const auto* edges = g.Neighbors(u);
    lg.adj[u].reserve(g.Degree(u));
    for (int64_t e = 0; e < g.Degree(u); ++e) {
      lg.adj[u].emplace_back(edges[e].to, edges[e].weight);
    }
  }
  return lg;
}

// Heavy-edge matching: collapse each matched pair into one coarse vertex.
// Matching priority normalizes edge weight by the endpoints' total
// strength — on power-law graphs (embedding co-occurrence has hub
// features) raw heavy-edge matching glues clusters through hubs, while the
// normalized score prefers edges that are *relatively* heavy for both
// endpoints. Returns the coarse graph and writes the fine→coarse map.
LevelGraph Coarsen(const LevelGraph& g, Rng* rng,
                   std::vector<int64_t>* fine_to_coarse) {
  std::vector<int64_t> order(g.n);
  std::iota(order.begin(), order.end(), 0);
  for (int64_t i = g.n - 1; i > 0; --i) {
    std::swap(order[i], order[rng->NextUint64(i + 1)]);
  }

  std::vector<double> strength(g.n, 0.0);
  for (int64_t u = 0; u < g.n; ++u) {
    for (const auto& [v, w] : g.adj[u]) strength[u] += w;
  }

  std::vector<int64_t> match(g.n, -1);
  for (int64_t u : order) {
    if (match[u] != -1) continue;
    int64_t best = -1;
    double best_w = -1.0;
    for (const auto& [v, w] : g.adj[u]) {
      if (v == u || match[v] != -1) continue;
      const double score =
          w / std::sqrt(std::max(1.0, strength[u] * strength[v]));
      if (score > best_w) {
        best_w = score;
        best = v;
      }
    }
    if (best >= 0) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;
    }
  }

  fine_to_coarse->assign(g.n, -1);
  int64_t next = 0;
  for (int64_t u = 0; u < g.n; ++u) {
    if ((*fine_to_coarse)[u] != -1) continue;
    (*fine_to_coarse)[u] = next;
    (*fine_to_coarse)[match[u]] = next;  // may be u itself
    ++next;
  }

  LevelGraph coarse;
  coarse.n = next;
  coarse.adj.resize(next);
  coarse.vwgt.assign(next, 0.0);
  std::unordered_map<int64_t, double> acc;
  for (int64_t u = 0; u < g.n; ++u) {
    const int64_t cu = (*fine_to_coarse)[u];
    coarse.vwgt[cu] += g.vwgt[u];
  }
  // Merge parallel edges per coarse vertex.
  std::vector<std::unordered_map<int64_t, double>> cadj(next);
  for (int64_t u = 0; u < g.n; ++u) {
    const int64_t cu = (*fine_to_coarse)[u];
    for (const auto& [v, w] : g.adj[u]) {
      const int64_t cv = (*fine_to_coarse)[v];
      if (cu == cv) continue;
      cadj[cu][cv] += w;
    }
  }
  for (int64_t cu = 0; cu < next; ++cu) {
    coarse.adj[cu].assign(cadj[cu].begin(), cadj[cu].end());
  }
  return coarse;
}

// One pass of boundary Kernighan-Lin refinement; returns #moves.
int64_t RefinePass(const LevelGraph& g, int k, double max_weight,
                   std::vector<int>* cluster_of,
                   std::vector<double>* cluster_weight) {
  int64_t moves = 0;
  std::vector<double> conn(k, 0.0);
  for (int64_t u = 0; u < g.n; ++u) {
    const int cu = (*cluster_of)[u];
    std::fill(conn.begin(), conn.end(), 0.0);
    bool boundary = false;
    for (const auto& [v, w] : g.adj[u]) {
      const int cv = (*cluster_of)[v];
      conn[cv] += w;
      if (cv != cu) boundary = true;
    }
    if (!boundary) continue;
    int best = cu;
    double best_gain = 0.0;
    for (int c = 0; c < k; ++c) {
      if (c == cu) continue;
      if ((*cluster_weight)[c] + g.vwgt[u] > max_weight) continue;
      const double gain = conn[c] - conn[cu];
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best != cu) {
      (*cluster_weight)[cu] -= g.vwgt[u];
      (*cluster_weight)[best] += g.vwgt[u];
      (*cluster_of)[u] = best;
      ++moves;
    }
  }
  return moves;
}

// Greedy initial partition at the coarsest level: stream vertices in
// decreasing weight, placing each where connectivity is highest among
// clusters with room.
void InitialPartition(const LevelGraph& g, int k, double max_weight,
                      Rng* rng, std::vector<int>* cluster_of,
                      std::vector<double>* cluster_weight) {
  std::vector<int64_t> order(g.n);
  std::iota(order.begin(), order.end(), 0);
  for (int64_t i = g.n - 1; i > 0; --i) {
    std::swap(order[i], order[rng->NextUint64(i + 1)]);
  }
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return g.vwgt[a] > g.vwgt[b];
  });

  cluster_of->assign(g.n, -1);
  cluster_weight->assign(k, 0.0);
  std::vector<double> conn(k, 0.0);
  for (int64_t u : order) {
    std::fill(conn.begin(), conn.end(), 0.0);
    for (const auto& [v, w] : g.adj[u]) {
      if ((*cluster_of)[v] >= 0) conn[(*cluster_of)[v]] += w;
    }
    int best = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if ((*cluster_weight)[c] + g.vwgt[u] > max_weight) continue;
      // Connectivity minus a light pressure toward even weights.
      const double score = conn[c] - 1e-3 * (*cluster_weight)[c];
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best < 0) {
      // Everything at cap (possible with lumpy vertex weights): take the
      // lightest cluster regardless.
      best = static_cast<int>(std::min_element(cluster_weight->begin(),
                                               cluster_weight->end()) -
                              cluster_weight->begin());
    }
    (*cluster_of)[u] = best;
    (*cluster_weight)[best] += g.vwgt[u];
  }
}

}  // namespace

std::vector<int> MultilevelPartitioner::Cluster(const WeightedGraph& graph,
                                                int k) const {
  HETGMP_CHECK_GT(k, 0);
  const int64_t n = graph.num_vertices();
  if (k == 1) return std::vector<int>(n, 0);

  Rng rng(options_.seed);
  std::vector<LevelGraph> levels;
  std::vector<std::vector<int64_t>> maps;  // maps[l]: level l → level l+1
  levels.push_back(FromWeighted(graph));

  const int64_t target =
      static_cast<int64_t>(k) * options_.coarsen_target_per_part;
  while (levels.back().n > target &&
         static_cast<int>(levels.size()) <= options_.max_levels) {
    std::vector<int64_t> map;
    LevelGraph coarse = Coarsen(levels.back(), &rng, &map);
    // Matching failed to shrink the graph (e.g. edgeless residue): stop.
    if (coarse.n >= levels.back().n) break;
    maps.push_back(std::move(map));
    levels.push_back(std::move(coarse));
  }

  const double total_weight = static_cast<double>(n);
  const double max_weight =
      (1.0 + options_.max_imbalance) * total_weight / k;

  // Partition coarsest level, then project back with refinement.
  std::vector<int> cluster_of;
  std::vector<double> cluster_weight;
  InitialPartition(levels.back(), k, max_weight, &rng, &cluster_of,
                   &cluster_weight);
  for (int pass = 0; pass < options_.refine_passes; ++pass) {
    if (RefinePass(levels.back(), k, max_weight, &cluster_of,
                   &cluster_weight) == 0) {
      break;
    }
  }

  for (int l = static_cast<int>(levels.size()) - 2; l >= 0; --l) {
    std::vector<int> fine(levels[l].n);
    for (int64_t u = 0; u < levels[l].n; ++u) {
      fine[u] = cluster_of[maps[l][u]];
    }
    cluster_of = std::move(fine);
    cluster_weight.assign(k, 0.0);
    for (int64_t u = 0; u < levels[l].n; ++u) {
      cluster_weight[cluster_of[u]] += levels[l].vwgt[u];
    }
    for (int pass = 0; pass < options_.refine_passes; ++pass) {
      if (RefinePass(levels[l], k, max_weight, &cluster_of,
                     &cluster_weight) == 0) {
        break;
      }
    }
  }
  return cluster_of;
}

double MultilevelPartitioner::CutWeight(const WeightedGraph& graph,
                                        const std::vector<int>& cluster_of) {
  double cut = 0.0;
  for (int64_t u = 0; u < graph.num_vertices(); ++u) {
    const auto* edges = graph.Neighbors(u);
    for (int64_t e = 0; e < graph.Degree(u); ++e) {
      if (cluster_of[u] != cluster_of[edges[e].to]) cut += edges[e].weight;
    }
  }
  return cut / 2.0;
}

}  // namespace hetgmp
