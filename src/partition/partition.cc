#include "partition/partition.h"

#include "common/logging.h"

namespace hetgmp {

int64_t Partition::TotalSecondaries() const {
  int64_t total = 0;
  for (const auto& s : secondaries) total += static_cast<int64_t>(s.size());
  return total;
}

double Partition::ReplicationFactor() const {
  const int64_t n = num_embeddings();
  if (n == 0) return 0.0;
  return 1.0 + static_cast<double>(TotalSecondaries()) /
                   static_cast<double>(n);
}

ReplicaIndex::ReplicaIndex(const Partition& partition)
    : num_parts_(partition.num_parts),
      num_embeddings_(partition.num_embeddings()),
      owner_(partition.embedding_owner) {
  HETGMP_CHECK_EQ(static_cast<int>(partition.secondaries.size()),
                  num_parts_);
  const int64_t total_bits =
      static_cast<int64_t>(num_parts_) * num_embeddings_;
  bits_.assign((total_bits + 63) / 64, 0);
  for (int w = 0; w < num_parts_; ++w) {
    for (FeatureId x : partition.secondaries[w]) {
      HETGMP_CHECK_NE(owner_[x], w)
          << " embedding " << x << " is both primary and secondary on "
          << w;
      const int64_t bit = Index(w, x);
      bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
  }
}

}  // namespace hetgmp
