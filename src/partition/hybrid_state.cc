#include "partition/hybrid_state.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/threading.h"

namespace hetgmp {

SparseCountTable::SparseCountTable(const Bigraph& graph, int num_parts) {
  const int64_t n_x = graph.num_embeddings();
  offsets_.resize(n_x + 1);
  len_.assign(n_x, 0);
  const std::vector<int64_t>& degrees = graph.embedding_degrees();
  int64_t total = 0;
  for (int64_t x = 0; x < n_x; ++x) {
    offsets_[x] = total;
    total += std::min<int64_t>(degrees[x], num_parts);
  }
  offsets_[n_x] = total;
  arena_.assign(total, Entry{0, 0});
}

int64_t SparseCountTable::Count(FeatureId x, int part) const {
  const Entry* row = Row(x);
  const int32_t len = len_[x];
  for (int32_t k = 0; k < len; ++k) {
    if (row[k].part == part) return row[k].count;
  }
  return 0;
}

void SparseCountTable::Inc(FeatureId x, int part) {
  Entry* row = arena_.data() + offsets_[x];
  const int32_t len = len_[x];
  for (int32_t k = 0; k < len; ++k) {
    if (row[k].part == part) {
      ++row[k].count;
      return;
    }
  }
  // A row can never need more than min(degree, N) distinct partitions; a
  // violation means the caller applied increments before the matching
  // decrements (or corrupted bookkeeping).
  HETGMP_CHECK_LT(offsets_[x] + len, offsets_[x + 1])
      << " count row overflow for embedding " << x;
  row[len] = Entry{part, 1};
  ++len_[x];
}

void SparseCountTable::Dec(FeatureId x, int part) {
  Entry* row = arena_.data() + offsets_[x];
  const int32_t len = len_[x];
  for (int32_t k = 0; k < len; ++k) {
    if (row[k].part == part) {
      HETGMP_CHECK_GT(row[k].count, 0);
      if (--row[k].count == 0) {
        row[k] = row[len - 1];
        --len_[x];
      }
      return;
    }
  }
  HETGMP_CHECK(false) << " decrementing absent count(" << x << ", " << part
                      << ")";
}

PartitionState::PartitionState(const Bigraph& graph, int num_parts,
                               const std::vector<std::vector<double>>& weight)
    : graph_(graph),
      n_(num_parts),
      weight_(weight),
      counts_(graph, num_parts),
      sample_count_(num_parts, 0),
      emb_count_(num_parts, 0),
      comm_cost_(num_parts, 0.0) {}

void PartitionState::InitFrom(const Partition& p) {
  sample_owner_ = p.sample_owner;
  emb_owner_ = p.embedding_owner;
  for (int64_t s = 0; s < graph_.num_samples(); ++s) {
    ++sample_count_[sample_owner_[s]];
    const FeatureId* feats = graph_.SampleNeighbors(s);
    for (int f = 0; f < graph_.arity(); ++f) {
      counts_.Inc(feats[f], sample_owner_[s]);
    }
  }
  for (int64_t x = 0; x < graph_.num_embeddings(); ++x) {
    ++emb_count_[emb_owner_[x]];
  }
  RecomputeCommCosts();
}

void PartitionState::RecomputeCommCosts(ThreadPool* pool) {
  const int64_t n_x = graph_.num_embeddings();
  if (pool == nullptr || pool->num_threads() <= 1) {
    std::fill(comm_cost_.begin(), comm_cost_.end(), 0.0);
    for (int64_t x = 0; x < n_x; ++x) {
      const int owner = emb_owner_[x];
      const SparseCountTable::Entry* row = counts_.Row(x);
      const int32_t len = counts_.RowSize(x);
      for (int32_t k = 0; k < len; ++k) {
        const int i = row[k].part;
        if (i == owner) continue;
        comm_cost_[i] +=
            static_cast<double>(row[k].count) * weight_[i][owner];
      }
    }
    return;
  }
  const int chunks = pool->num_threads();
  std::vector<std::vector<double>> partial(
      chunks, std::vector<double>(n_, 0.0));
  pool->RunChunks(n_x, chunks, [&](int chunk, int64_t begin, int64_t end) {
    std::vector<double>& acc = partial[chunk];
    for (int64_t x = begin; x < end; ++x) {
      const int owner = emb_owner_[x];
      const SparseCountTable::Entry* row = counts_.Row(x);
      const int32_t len = counts_.RowSize(x);
      for (int32_t k = 0; k < len; ++k) {
        const int i = row[k].part;
        if (i == owner) continue;
        acc[i] += static_cast<double>(row[k].count) * weight_[i][owner];
      }
    }
  });
  std::fill(comm_cost_.begin(), comm_cost_.end(), 0.0);
  for (int c = 0; c < chunks; ++c) {
    for (int i = 0; i < n_; ++i) comm_cost_[i] += partial[c][i];
  }
}

double PartitionState::AvgCommCost() const {
  return std::accumulate(comm_cost_.begin(), comm_cost_.end(), 0.0) / n_;
}

void PartitionState::DetachSample(int64_t s) {
  const int a = sample_owner_[s];
  --sample_count_[a];
  const FeatureId* feats = graph_.SampleNeighbors(s);
  for (int f = 0; f < graph_.arity(); ++f) {
    const FeatureId x = feats[f];
    counts_.Dec(x, a);
    const int o = emb_owner_[x];
    if (o != a) comm_cost_[a] -= weight_[a][o];
  }
  sample_owner_[s] = -1;
}

void PartitionState::AttachSample(int64_t s, int b) {
  sample_owner_[s] = b;
  ++sample_count_[b];
  const FeatureId* feats = graph_.SampleNeighbors(s);
  for (int f = 0; f < graph_.arity(); ++f) {
    const FeatureId x = feats[f];
    counts_.Inc(x, b);
    const int o = emb_owner_[x];
    if (o != b) comm_cost_[b] += weight_[b][o];
  }
}

void PartitionState::DetachEmbedding(int64_t x) {
  const int a = emb_owner_[x];
  --emb_count_[a];
  // Other partitions were paying for x; stop charging them while x is in
  // flight (AttachEmbedding re-charges for the new owner).
  const SparseCountTable::Entry* row = counts_.Row(x);
  const int32_t len = counts_.RowSize(x);
  for (int32_t k = 0; k < len; ++k) {
    const int i = row[k].part;
    if (i == a) continue;
    comm_cost_[i] -= static_cast<double>(row[k].count) * weight_[i][a];
  }
  emb_owner_[x] = -1;
}

void PartitionState::AttachEmbedding(int64_t x, int b) {
  emb_owner_[x] = b;
  ++emb_count_[b];
  const SparseCountTable::Entry* row = counts_.Row(x);
  const int32_t len = counts_.RowSize(x);
  for (int32_t k = 0; k < len; ++k) {
    const int i = row[k].part;
    if (i == b) continue;
    comm_cost_[i] += static_cast<double>(row[k].count) * weight_[i][b];
  }
}

double PartitionState::EmbeddingCommIfOwnedBy(int64_t x, int j) const {
  double cost = 0.0;
  const SparseCountTable::Entry* row = counts_.Row(x);
  const int32_t len = counts_.RowSize(x);
  for (int32_t k = 0; k < len; ++k) {
    const int i = row[k].part;
    if (i == j) continue;
    cost += static_cast<double>(row[k].count) * weight_[i][j];
  }
  return cost;
}

double PartitionState::SampleCommCost(int64_t s, int j) const {
  double cost = 0.0;
  const FeatureId* feats = graph_.SampleNeighbors(s);
  for (int f = 0; f < graph_.arity(); ++f) {
    const int o = emb_owner_[feats[f]];
    if (o != j && o >= 0) cost += weight_[j][o];
  }
  return cost;
}

}  // namespace hetgmp
