#ifndef HETGMP_PARTITION_QUALITY_H_
#define HETGMP_PARTITION_QUALITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bigraph.h"
#include "partition/partition.h"

namespace hetgmp {

// Static (pre-training) quality measures of a partition: how many
// embedding accesses per epoch would be remote, and how balanced the
// workload is. These are the quantities in Table 3 and Figure 9(b); the
// engine's runtime counters must agree with them under s=0.
struct PartitionQuality {
  // Accesses that find no replica (primary or secondary) on the sample's
  // worker — each one is a remote embedding fetch per epoch (Table 3's
  // "Communication" column).
  int64_t remote_accesses = 0;
  int64_t total_accesses = 0;

  // remote_accesses weighted by a pairwise cost matrix (hierarchy-aware
  // variant; identity weights give remote_accesses back).
  double weighted_remote = 0.0;

  // fetch_matrix[w][o]: accesses by samples on worker w served by the
  // primary on worker o (the Figure 9(b) heatmap). Local hits are on the
  // diagonal.
  std::vector<std::vector<int64_t>> fetch_matrix;

  // Load balance.
  int64_t min_samples = 0, max_samples = 0;
  int64_t min_embeddings = 0, max_embeddings = 0;
  double replication_factor = 1.0;

  double RemoteFraction() const {
    return total_accesses == 0
               ? 0.0
               : static_cast<double>(remote_accesses) /
                     static_cast<double>(total_accesses);
  }

  std::string ToString() const;
};

// `comm_weight` is optional (empty = homogeneous). When a secondary
// replica serves an access it counts as local (clean-cache assumption; the
// engine's staleness machinery measures the refresh traffic separately).
PartitionQuality EvaluatePartition(
    const Bigraph& graph, const Partition& partition,
    const std::vector<std::vector<double>>& comm_weight = {});

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_QUALITY_H_
