#ifndef HETGMP_PARTITION_RANDOM_PARTITIONER_H_
#define HETGMP_PARTITION_RANDOM_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace hetgmp {

// Uniform random placement of both samples and embeddings, no replication.
// This is the placement HugeCTR-style model parallelism uses (hash
// distribution of the embedding table) and the paper's "random" column in
// Figure 8 / Table 3.
class RandomPartitioner : public Partitioner {
 public:
  explicit RandomPartitioner(uint64_t seed = 7) : seed_(seed) {}

  Partition Run(const Bigraph& graph, int num_parts) override;
  const char* name() const override { return "random"; }

 private:
  uint64_t seed_;
};

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_RANDOM_PARTITIONER_H_
