#include "partition/partition_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace hetgmp {

namespace {

constexpr char kMagic[8] = {'H', 'G', 'M', 'P', 'P', 'T', '0', '1'};

class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

Status WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::InvalidArgument("truncated partition file");
  }
  return Status::OK();
}

template <typename T>
Status WriteVector(std::FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &n, sizeof(n)));
  if (n > 0) {
    HETGMP_RETURN_IF_ERROR(WriteBytes(f, v.data(), n * sizeof(T)));
  }
  return Status::OK();
}

template <typename T>
Status ReadVector(std::FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &n, sizeof(n)));
  if (n > (uint64_t{1} << 36)) {
    return Status::InvalidArgument("implausible element count (corrupt?)");
  }
  v->resize(n);
  if (n > 0) {
    HETGMP_RETURN_IF_ERROR(ReadBytes(f, v->data(), n * sizeof(T)));
  }
  return Status::OK();
}

}  // namespace

Status SavePartition(const Partition& partition, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, kMagic, sizeof(kMagic)));
  const int64_t num_parts = partition.num_parts;
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &num_parts, sizeof(num_parts)));
  HETGMP_RETURN_IF_ERROR(WriteVector(f, partition.sample_owner));
  HETGMP_RETURN_IF_ERROR(WriteVector(f, partition.embedding_owner));
  for (const auto& s : partition.secondaries) {
    HETGMP_RETURN_IF_ERROR(WriteVector(f, s));
  }
  return Status::OK();
}

Result<Partition> LoadPartition(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::FILE* f = file.get();
  char magic[8];
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a HET-GMP partition file: " + path);
  }
  int64_t num_parts = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &num_parts, sizeof(num_parts)));
  if (num_parts <= 0 || num_parts > 1 << 20) {
    return Status::InvalidArgument("implausible partition count");
  }
  Partition p;
  p.num_parts = static_cast<int>(num_parts);
  HETGMP_RETURN_IF_ERROR(ReadVector(f, &p.sample_owner));
  HETGMP_RETURN_IF_ERROR(ReadVector(f, &p.embedding_owner));
  p.secondaries.resize(p.num_parts);
  for (auto& s : p.secondaries) {
    HETGMP_RETURN_IF_ERROR(ReadVector(f, &s));
  }
  // Structural validation.
  for (int o : p.sample_owner) {
    if (o < 0 || o >= p.num_parts) {
      return Status::InvalidArgument("sample owner out of range");
    }
  }
  for (int o : p.embedding_owner) {
    if (o < 0 || o >= p.num_parts) {
      return Status::InvalidArgument("embedding owner out of range");
    }
  }
  const int64_t n_x = p.num_embeddings();
  for (int w = 0; w < p.num_parts; ++w) {
    for (FeatureId x : p.secondaries[w]) {
      if (x < 0 || x >= n_x) {
        return Status::InvalidArgument("secondary id out of range");
      }
      if (p.embedding_owner[x] == w) {
        return Status::InvalidArgument(
            "secondary duplicates a local primary");
      }
    }
  }
  return p;
}

}  // namespace hetgmp
