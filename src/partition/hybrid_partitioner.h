#ifndef HETGMP_PARTITION_HYBRID_PARTITIONER_H_
#define HETGMP_PARTITION_HYBRID_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"

namespace hetgmp {

// Options for the paper's Algorithm 1 (balanced hybrid graph partitioning).
struct HybridPartitionerOptions {
  // Rounds T of the outer loop (Table 3 sweeps 1/3/5).
  int rounds = 3;

  // Balance-formula weights (Eq. 4): α balances sample counts, β balances
  // embedding counts, γ balances per-partition communication (Eq. 5).
  double alpha = 2.0;
  double beta = 1.0;
  double gamma = 0.5;

  // 2D vertex-cut budget: each worker may hold up to this fraction of the
  // global embedding count as secondary replicas ("we select top 1%
  // embeddings as secondaries", §7). Set to 0 to disable vertex-cut and
  // get a pure 1D edge-cut partition (Figure 9's "no replication" mode).
  double secondary_fraction = 0.01;

  // Pairwise communication-cost weights, comm_weight[i][j] = relative cost
  // of moving one embedding between workers i and j (Eq. 3, "weighted
  // edge-cuts"). Empty = homogeneous (all ones off-diagonal). Used for the
  // hierarchical/topology-aware variants in Figure 9.
  std::vector<std::vector<double>> comm_weight;

  // Relative compute capacity per worker (§3: the load balancer considers
  // computation, not just communication): the sample-balance term targets
  // a share of samples proportional to capacity, so slow devices own less
  // data. Empty = uniform.
  std::vector<double> worker_capacity;

  uint64_t seed = 17;

  // --- Parallel execution ---
  // Threads for the 1D rounds and the 2D candidate ranking. 1 runs the
  // exact sequential algorithm; 0 uses hardware concurrency. The parallel
  // pass scores shuffled vertex blocks against a frozen snapshot of the
  // per-partition aggregates to *propose* moves, then commits proposals
  // serially at each block boundary, re-validated against the live exact
  // state. Its result differs from the sequential one (proposals are
  // candidate-filtered by the stale snapshot) but is deterministic for
  // fixed options and stays within a few percent on edge-cut quality
  // (see tests/partition_parallel_test.cc and
  // bench/bench_partitioner_scale.cc).
  int num_threads = 1;

  // Vertices per parallel block. Smaller blocks mean fresher balance
  // feedback but more barriers. 0 = auto (scales with graph size and
  // thread count).
  int64_t block_size = 0;

  // The parallel pass commits moves through the exact detach/attach ops,
  // so its per-partition comm-cost tallies are exact up to FP
  // reassociation from long incremental accumulation; an exact O(edges)
  // recomputation every this many blocks erases even that. <= 0 (the
  // default) recomputes only at round boundaries.
  int recompute_blocks = 0;
};

// Algorithm 1: T rounds of (1D edge-cut greedy vertex reassignment)
// followed by (2D vertex-cut greedy replication).
//
// Scoring note: the paper defines δ_g(G_i) = δ_c(G_i) − δ_b(G_i) with
// δ_b "the marginal cost of adding vertex v to G_i" (Eq. 2/4). Taken
// literally, subtracting a *cost* would make overloaded partitions more
// attractive under argmin, inverting the stated purpose ("balance the
// resource requirements"). We therefore score with the sign that matches
// the stated semantics: δ_g = δ_c + δ_b, i.e. balance terms penalize
// already-overloaded partitions. This is recorded in DESIGN.md.
class HybridPartitioner : public Partitioner {
 public:
  explicit HybridPartitioner(HybridPartitionerOptions options = {})
      : options_(options) {}

  Partition Run(const Bigraph& graph, int num_parts) override;
  const char* name() const override { return "hybrid"; }

  const HybridPartitionerOptions& options() const { return options_; }

 private:
  HybridPartitionerOptions options_;
};

}  // namespace hetgmp

#endif  // HETGMP_PARTITION_HYBRID_PARTITIONER_H_
