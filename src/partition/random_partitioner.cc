#include "partition/random_partitioner.h"

#include "common/logging.h"
#include "common/random.h"

namespace hetgmp {

Partition RandomPartitioner::Run(const Bigraph& graph, int num_parts) {
  HETGMP_CHECK_GT(num_parts, 0);
  Rng rng(seed_);
  Partition p;
  p.num_parts = num_parts;
  p.sample_owner.resize(graph.num_samples());
  p.embedding_owner.resize(graph.num_embeddings());
  p.secondaries.assign(num_parts, {});
  // Samples: round-robin from a random phase — exactly balanced,
  // uncorrelated with the graph structure. Embeddings: uniform random,
  // like hash placement of table shards.
  const uint64_t phase = rng.NextUint64(num_parts);
  for (int64_t s = 0; s < graph.num_samples(); ++s) {
    p.sample_owner[s] = static_cast<int>((s + phase) % num_parts);
  }
  for (int64_t x = 0; x < graph.num_embeddings(); ++x) {
    p.embedding_owner[x] = static_cast<int>(rng.NextUint64(num_parts));
  }
  return p;
}

}  // namespace hetgmp
