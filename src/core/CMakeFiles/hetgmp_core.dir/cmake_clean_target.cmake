file(REMOVE_RECURSE
  "libhetgmp_core.a"
)
