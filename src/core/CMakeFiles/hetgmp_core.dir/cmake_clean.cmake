file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_core.dir/config.cc.o"
  "CMakeFiles/hetgmp_core.dir/config.cc.o.d"
  "CMakeFiles/hetgmp_core.dir/engine.cc.o"
  "CMakeFiles/hetgmp_core.dir/engine.cc.o.d"
  "CMakeFiles/hetgmp_core.dir/engine_wire.cc.o"
  "CMakeFiles/hetgmp_core.dir/engine_wire.cc.o.d"
  "CMakeFiles/hetgmp_core.dir/runner.cc.o"
  "CMakeFiles/hetgmp_core.dir/runner.cc.o.d"
  "libhetgmp_core.a"
  "libhetgmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
