# Empty compiler generated dependencies file for hetgmp_core.
# This may be replaced when dependencies are built.
