#include "core/runner.h"

#include <sstream>

#include "common/logging.h"
#include "common/stringutil.h"
#include "partition/bicut_partitioner.h"
#include "partition/hybrid_partitioner.h"
#include "partition/random_partitioner.h"

namespace hetgmp {

Partition BuildPartition(const EngineConfig& config, const Bigraph& graph,
                         const Topology& topology) {
  const int N = topology.num_workers();
  switch (config.placement) {
    case PlacementPolicy::kRandom: {
      RandomPartitioner p(config.seed + 1);
      return p.Run(graph, N);
    }
    case PlacementPolicy::kBiCut: {
      BiCutPartitioner p(/*max_imbalance=*/0.05, config.seed + 1);
      return p.Run(graph, N);
    }
    case PlacementPolicy::kHybrid: {
      HybridPartitionerOptions options = config.hybrid_options;
      if (options.comm_weight.empty()) {
        options.comm_weight = topology.CommWeightMatrix();
      }
      if (config.balance_batch_to_capacity &&
          options.worker_capacity.empty() &&
          !config.worker_slowdown.empty()) {
        options.worker_capacity.resize(N, 1.0);
        for (int w = 0; w < N && w < static_cast<int>(
                                        config.worker_slowdown.size());
             ++w) {
          options.worker_capacity[w] = 1.0 / config.worker_slowdown[w];
        }
      }
      options.seed = config.seed + 1;
      HybridPartitioner p(options);
      return p.Run(graph, N);
    }
  }
  HETGMP_CHECK(false) << " unknown placement policy";
  return {};
}

ExperimentResult RunExperiment(EngineConfig config, const CtrDataset& train,
                               const CtrDataset& test,
                               const Topology& topology, int max_epochs,
                               double auc_target, double sim_time_budget) {
  Bigraph graph(train);
  ExperimentResult out;
  out.partition = BuildPartition(config, graph, topology);
  Engine engine(config, train, test, topology, out.partition);
  out.train = engine.Train(max_epochs, auc_target, sim_time_budget);
  std::ostringstream os;
  os << config.ToString() << " on " << train.name() << " ["
     << topology.name() << "]";
  out.description = os.str();
  return out;
}

std::string FormatConvergenceCurve(const TrainResult& result) {
  std::ostringstream os;
  os << "  sim_time(s)    AUC     loss\n";
  for (const RoundStats& r : result.rounds) {
    os << "  " << PadLeft(FormatDouble(r.sim_time, 4), 11) << " "
       << PadLeft(FormatDouble(r.auc, 4), 7) << " "
       << PadLeft(FormatDouble(r.train_loss, 4), 8) << "\n";
  }
  return os.str();
}

}  // namespace hetgmp
