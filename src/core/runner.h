#ifndef HETGMP_CORE_RUNNER_H_
#define HETGMP_CORE_RUNNER_H_

#include <memory>
#include <string>

#include "comm/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "graph/bigraph.h"
#include "partition/partition.h"

namespace hetgmp {

// Builds the partition a config implies. For the hybrid placement, empty
// comm weights are filled from the topology (the heterogeneity-aware
// default); pass Topology::UniformWeightMatrix() explicitly to get the
// "non-hierarchical" variant of Figure 9.
Partition BuildPartition(const EngineConfig& config, const Bigraph& graph,
                         const Topology& topology);

// One-call experiment: partition + engine + training run.
struct ExperimentResult {
  TrainResult train;
  Partition partition;
  std::string description;
};

ExperimentResult RunExperiment(EngineConfig config, const CtrDataset& train,
                               const CtrDataset& test,
                               const Topology& topology, int max_epochs,
                               double auc_target = -1.0,
                               double sim_time_budget = -1.0);

// Renders the convergence curve of a result as "time auc" rows.
std::string FormatConvergenceCurve(const TrainResult& result);

}  // namespace hetgmp

#endif  // HETGMP_CORE_RUNNER_H_
