#include "core/config.h"

#include <sstream>

namespace hetgmp {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kTfPs:
      return "TF-PS";
    case Strategy::kParallax:
      return "Parallax";
    case Strategy::kHugeCtr:
      return "HugeCTR";
    case Strategy::kHetMp:
      return "HET-MP";
    case Strategy::kHetGmp:
      return "HET-GMP";
  }
  return "?";
}

void ApplyStrategyDefaults(EngineConfig* config) {
  switch (config->strategy) {
    case Strategy::kTfPs:
    case Strategy::kParallax:
      config->placement = PlacementPolicy::kRandom;
      config->consistency = ConsistencyMode::kAsp;
      config->hybrid_options.secondary_fraction = 0.0;
      break;
    case Strategy::kHugeCtr:
    case Strategy::kHetMp:
      config->placement = PlacementPolicy::kRandom;
      config->consistency = ConsistencyMode::kBsp;
      config->hybrid_options.secondary_fraction = 0.0;
      break;
    case Strategy::kHetGmp:
      config->placement = PlacementPolicy::kHybrid;
      config->consistency = ConsistencyMode::kGraphBounded;
      break;
  }
}

std::string EngineConfig::ToString() const {
  std::ostringstream os;
  os << StrategyName(strategy) << "/" << ModelTypeName(model)
     << " d=" << embedding_dim << " batch=" << batch_size
     << " consistency=" << ConsistencyModeName(consistency);
  if (consistency == ConsistencyMode::kGraphBounded) {
    if (bound.unbounded()) {
      os << " s=inf";
    } else {
      os << " s=" << bound.s;
    }
  }
  if (tiered_store.enabled) {
    os << " tiered(hot=" << tiered_store.hot_rows
       << " warm=" << tiered_store.warm_rows
       << " prefetch=" << (tiered_store.prefetch ? "on" : "off") << ")";
  }
  return os.str();
}

}  // namespace hetgmp
