#ifndef HETGMP_CORE_ENGINE_WORKER_STATE_H_
#define HETGMP_CORE_ENGINE_WORKER_STATE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Per-worker mutable state. Only the owning worker thread touches it,
// except `iter_count` (read by SSP throttling), `sim_time` (read in the
// round-barrier serial section while the worker is parked), and the wire
// logs (read cross-worker in the serial section, same barrier-phase
// protection). Shared between engine.cc (the training hot path) and
// engine_wire.cc (the engine-over-transport exchange) — private to
// src/core, not part of the public engine API.
struct Engine::WorkerState {
  int id = 0;
  Rng rng{0};
  std::vector<int64_t> local_samples;
  int64_t cursor = 0;
  int64_t batch_size = 0;  // per-worker (capacity-scaled when configured)
  std::atomic<int64_t> iter_count{0};

  // Batch scratch (reused across iterations).
  std::vector<int64_t> batch_samples;
  std::vector<float> batch_labels;
  std::vector<FeatureId> unique_feats;
  // Reference hot path only: the node-based map the batch plan replaces.
  std::unordered_map<FeatureId, int32_t> feat_index;
  std::vector<uint8_t> feat_kind;
  std::vector<int64_t> feat_slot;
  std::vector<uint64_t> feat_clock;  // replica clock as gathered
  Tensor unique_values;
  Tensor unique_grads;
  Tensor emb_in, demb_in, logits, dlogits;

  // --- Planned hot-path scratch (all reused across iterations) ---

  // Flat [B×F] table: plan[b*F + f] is the unique index of sample b's
  // field-f feature. Built once per iteration; steps 3b/4/6 read it
  // instead of re-hashing.
  std::vector<int32_t> plan;
  // Open-addressed FeatureId → unique-index scratch map (linear probing,
  // load ≤ 0.5). Slots are empty unless their stamp equals the current
  // generation, so per-iteration reset is a counter bump, not a clear.
  std::vector<FeatureId> map_keys;
  std::vector<int32_t> map_vals;
  std::vector<uint32_t> map_stamp;
  uint32_t map_gen = 0;
  uint64_t map_mask = 0;

  // Step-3b screen state, hoisted per unique element so the O(B·F²)
  // occurrence scan touches two small arrays instead of re-dividing (and
  // in the pre-plan path, re-hashing) per pair. For fi >= fj > 0 the
  // §5.3 gap |ci·fj/fi − cj| equals min(fi,fj)·|ci/fi − cj/fj| in real
  // arithmetic, so min-freq times the difference of these per-element
  // normalized clocks — plus a rounding allowance — upper-bounds the
  // gap the full check would compute. ExecPairCheck refreshes update the
  // entries in place.
  std::vector<double> norm_clock;  // feat_clock / access_freq (0 if no freq)
  std::vector<double> raw_clock;   // double(feat_clock)
  std::vector<double> freq;        // access_freq as double
  // Per-row contiguous copies of the screen inputs (length F), so the
  // O(F²) scans read dense arrays instead of gathering through the plan.
  // Members (not step-3b locals) so the hot path stays allocation-free
  // after warmup (lint rule R4).
  std::vector<double> row_val;
  std::vector<double> row_freq;
  std::vector<uint8_t> row_kind;

  // Wall-clock stage timers (seconds), merged into
  // TrainResult::stage_secs by FinalizeResult.
  double stage_gather = 0.0;
  double stage_inter = 0.0;
  double stage_dense = 0.0;
  double stage_scatter = 0.0;
  double stage_flush = 0.0;

  // Per-iteration communication tallies, flushed into the fabric once per
  // peer per iteration (the batched message protocol of §6).
  std::vector<uint64_t> fetch_bytes;   // peer → me, embedding values
  std::vector<uint64_t> push_bytes;    // me → peer, gradients
  std::vector<uint64_t> index_bytes;   // me ↔ peer, ids and clocks
  std::vector<uint64_t> host_fetch_bytes;  // per machine (PS path)
  std::vector<uint64_t> host_push_bytes;
  std::vector<uint64_t> host_index_bytes;

  // Engine-over-transport wire log (engine_wire.cc): per peer, the exact
  // traffic the charge sites above accounted, recorded so the §6 typed
  // messages can be replayed over a real Transport at the round barrier.
  // push_back/insert on member scratch keeps the hot path allocation-free
  // after warmup (lint rule R4). Sized num_workers when
  // config.transport.enabled, empty otherwise. Directions: index/clock/
  // push travel me → peer; fetch rows travel peer → me (the peer serves
  // them, so the wire sender of a fetch block is the *peer* endpoint —
  // see WireExchangeRound).
  struct PeerWireLog {
    std::vector<FeatureId> index_ids;  // ids announced (kIdBytes each)
    std::vector<FeatureId> clock_ids;  // ids whose clocks were compared
    std::vector<FeatureId> push_ids;   // rows written back to the peer
    std::vector<float> push_vals;      // dim floats per push id
    std::vector<FeatureId> fetch_ids;  // rows fetched from the peer
    std::vector<float> fetch_vals;     // dim floats per fetch id
    void Clear() {
      index_ids.clear();
      clock_ids.clear();
      push_ids.clear();
      push_vals.clear();
      fetch_ids.clear();
      fetch_vals.clear();
    }
  };
  std::vector<PeerWireLog> wire_log;

  // Simulated clocks (seconds).
  double sim_time = 0.0;
  double compute_time = 0.0;
  double comm_time = 0.0;

  int64_t samples_done = 0;
  double loss_sum = 0.0;
  int64_t loss_count = 0;
  int64_t remote_fetches = 0;
  int64_t intra_refreshes = 0;
  int64_t inter_refreshes = 0;
  int64_t inter_flags = 0;

  // Per-worker staleness audit (merged into TrainResult::staleness after
  // the worker threads join — see StalenessAudit in engine.h).
  uint64_t max_intra_gap = 0;
  double max_inter_norm_gap = 0.0;
  int64_t inter_violations = 0;

  // SSP mode only: iteration at which each secondary slot was last
  // refreshed (SSP caches expire by worker-iteration age, §3 — no graph
  // view of per-embedding update activity).
  std::vector<int64_t> ssp_refresh_iter;

  // Tiered mode: flat (duplicated) feature ids of the *next* batch,
  // handed to the PrefetchPipeline each iteration. Member scratch so the
  // hot path stays allocation-free after warmup (lint rule R4).
  std::vector<FeatureId> prefetch_ids;

  std::unique_ptr<SgdOptimizer> dense_opt;

  void EnsureMapCapacity(int64_t max_entries) {
    uint64_t cap = 64;
    const uint64_t need = static_cast<uint64_t>(max_entries) * 2;
    while (cap < need) cap <<= 1;
    if (map_keys.size() >= cap) return;
    map_keys.assign(cap, 0);
    map_vals.assign(cap, 0);
    map_stamp.assign(cap, 0);
    map_mask = cap - 1;
    map_gen = 0;
  }

  void BumpMapGen() {
    if (++map_gen == 0) {  // stamp wrap: clear once every 2^32 iterations
      std::fill(map_stamp.begin(), map_stamp.end(), 0u);
      map_gen = 1;
    }
  }
};

}  // namespace hetgmp

#endif  // HETGMP_CORE_ENGINE_WORKER_STATE_H_
