#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "metrics/auc.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace hetgmp {

namespace {

// How a unique feature of the current batch was resolved.
enum FeatKind : uint8_t {
  kLocalPrimary = 0,  // this worker owns the primary — free access
  kSecondary = 1,     // served by the local secondary cache
  kRemoteFetch = 2,   // fetched from the owning worker this batch
  kHostFetch = 3,     // parameter-server path (CPU host)
};

constexpr uint64_t kIdBytes = 8;     // sparse index entry
constexpr uint64_t kClockBytes = 8;  // clock metadata entry

}  // namespace

// Per-worker mutable state. Only the owning worker thread touches it,
// except `iter_count` (read by SSP throttling) and `sim_time` (read in the
// round-barrier serial section while the worker is parked).
struct Engine::WorkerState {
  int id = 0;
  Rng rng{0};
  std::vector<int64_t> local_samples;
  int64_t cursor = 0;
  int64_t batch_size = 0;  // per-worker (capacity-scaled when configured)
  std::atomic<int64_t> iter_count{0};

  // Batch scratch (reused across iterations).
  std::vector<int64_t> batch_samples;
  std::vector<float> batch_labels;
  std::vector<FeatureId> unique_feats;
  std::unordered_map<FeatureId, int32_t> feat_index;
  std::vector<uint8_t> feat_kind;
  std::vector<int64_t> feat_slot;
  std::vector<uint64_t> feat_clock;  // replica clock as gathered
  Tensor unique_values;
  Tensor unique_grads;
  Tensor emb_in, demb_in, logits, dlogits;

  // Per-iteration communication tallies, flushed into the fabric once per
  // peer per iteration (the batched message protocol of §6).
  std::vector<uint64_t> fetch_bytes;   // peer → me, embedding values
  std::vector<uint64_t> push_bytes;    // me → peer, gradients
  std::vector<uint64_t> index_bytes;   // me ↔ peer, ids and clocks
  std::vector<uint64_t> host_fetch_bytes;  // per machine (PS path)
  std::vector<uint64_t> host_push_bytes;
  std::vector<uint64_t> host_index_bytes;

  // Simulated clocks (seconds).
  double sim_time = 0.0;
  double compute_time = 0.0;
  double comm_time = 0.0;

  int64_t samples_done = 0;
  double loss_sum = 0.0;
  int64_t loss_count = 0;
  int64_t remote_fetches = 0;
  int64_t intra_refreshes = 0;
  int64_t inter_refreshes = 0;
  int64_t inter_flags = 0;

  // Per-worker staleness audit (merged into TrainResult::staleness after
  // the worker threads join — see StalenessAudit in engine.h).
  uint64_t max_intra_gap = 0;
  double max_inter_norm_gap = 0.0;
  int64_t inter_violations = 0;

  // SSP mode only: iteration at which each secondary slot was last
  // refreshed (SSP caches expire by worker-iteration age, §3 — no graph
  // view of per-embedding update activity).
  std::vector<int64_t> ssp_refresh_iter;

  std::unique_ptr<SgdOptimizer> dense_opt;
};

Engine::Engine(const EngineConfig& config, const CtrDataset& train,
               const CtrDataset& test, const Topology& topology,
               Partition partition)
    : config_(config),
      train_(train),
      test_(test),
      topology_(topology),
      partition_(std::move(partition)),
      bigraph_(train),
      round_barrier_(topology.num_workers()),
      iter_barrier_(topology.num_workers()) {
  const int N = topology_.num_workers();
  HETGMP_CHECK_EQ(partition_.num_parts, N);
  HETGMP_CHECK_EQ(partition_.num_samples(), train_.num_samples());
  HETGMP_CHECK_EQ(partition_.num_embeddings(), train_.num_features());

  access_freq_ = bigraph_.AccessFrequencies();
  table_ = std::make_unique<EmbeddingTable>(
      train_.num_features(), config_.embedding_dim,
      config_.embed_init_stddev, config_.seed + 7,
      config_.embed_optimizer, config_.embed_lr);
  clocks_ = std::make_unique<ClockTable>(N, train_.num_features());
  fabric_ = std::make_unique<Fabric>(topology_);

  lru_caches_.assign(N, nullptr);
  for (int w = 0; w < N; ++w) {
    if (config_.replica_policy == ReplicaPolicy::kLruDynamic) {
      const int64_t capacity = static_cast<int64_t>(
          config_.lru_capacity_fraction *
          static_cast<double>(train_.num_features()));
      auto lru = std::make_unique<LruEmbeddingCache>(capacity,
                                                     config_.embedding_dim);
      lru_caches_[w] = lru.get();
      caches_.push_back(std::move(lru));
    } else {
      caches_.push_back(std::make_unique<SecondaryCache>(
          partition_.secondaries[w], config_.embedding_dim));
      // §6: "when the embedding table is created, space is allocated for
      // both primary and secondary embeddings guided by the partition
      // result" — secondaries start synchronized with their primaries
      // (clock 0 on both sides).
      ReplicaStore& cache = *caches_.back();
      for (int64_t slot = 0; slot < cache.size(); ++slot) {
        cache.SetValue(slot, table_->UnsafeRow(cache.IdAt(slot)));
      }
    }
    // Identical seed → identical initial dense replicas (the AllReduce
    // invariant of the hybrid architecture).
    Rng model_rng(config_.seed + 1000);
    models_.push_back(CreateFieldModel(config_.model, train_.num_fields(),
                                       config_.embedding_dim, &model_rng));

    auto ws = std::make_unique<WorkerState>();
    ws->id = w;
    ws->rng = Rng(config_.seed + 31 * w);
    ws->fetch_bytes.assign(N, 0);
    ws->push_bytes.assign(N, 0);
    ws->index_bytes.assign(N, 0);
    ws->host_fetch_bytes.assign(topology_.num_machines(), 0);
    ws->host_push_bytes.assign(topology_.num_machines(), 0);
    ws->host_index_bytes.assign(topology_.num_machines(), 0);
    ws->ssp_refresh_iter.assign(caches_[w]->size(), 0);
    ws->batch_size = config_.batch_size;
    if (config_.balance_batch_to_capacity &&
        static_cast<size_t>(w) < config_.worker_slowdown.size() &&
        config_.worker_slowdown[w] > 0) {
      ws->batch_size = std::max<int64_t>(
          1, static_cast<int64_t>(config_.batch_size /
                                  config_.worker_slowdown[w]));
    }
    ws->dense_opt = std::make_unique<SgdOptimizer>(config_.dense_lr);
    workers_.push_back(std::move(ws));
  }
  for (int64_t s = 0; s < train_.num_samples(); ++s) {
    workers_[partition_.sample_owner[s]]->local_samples.push_back(s);
  }
  // A worker with no local samples still participates in barriers; give it
  // at least one sample so every iteration has work.
  for (auto& ws : workers_) {
    if (ws->local_samples.empty()) ws->local_samples.push_back(0);
  }

  iters_per_epoch_ = std::max<int64_t>(
      1, (train_.num_samples() + static_cast<int64_t>(N) * config_.batch_size -
          1) /
             (static_cast<int64_t>(N) * config_.batch_size));
}

Engine::~Engine() = default;

void Engine::RefreshSecondary(WorkerState* ws, FeatureId x, int64_t slot) {
  // Pending local updates must reach the primary before the cached value
  // is overwritten, or they would be lost.
  FlushSecondary(ws, x, slot);
  ReplicaStore& cache = *caches_[ws->id];
  table_->ReadRow(x, cache.Value(slot));
  const uint64_t clock = PrimaryClock(x);
  cache.set_synced_clock(slot, clock);
  clocks_->Set(ws->id, x, clock);
  if (!ws->ssp_refresh_iter.empty()) {
    ws->ssp_refresh_iter[slot] =
        ws->iter_count.load(std::memory_order_relaxed);
  }
  const int owner = partition_.embedding_owner[x];
  ws->fetch_bytes[owner] += table_->RowBytes();
  ws->index_bytes[owner] += kIdBytes + kClockBytes;
}

void Engine::FlushSecondary(WorkerState* ws, FeatureId x, int64_t slot) {
  ReplicaStore& cache = *caches_[ws->id];
  const int64_t count = cache.pending_count(slot);
  if (count == 0) return;
  table_->ApplyGradient(x, cache.Pending(slot));
  const int owner = partition_.embedding_owner[x];
  // One flush = one update event on the primary clock ("local reduction
  // then write to primaries", §6 — the reduced write-back is the unit of
  // staleness, not its constituent sample gradients). The secondary has
  // already applied the same update locally, so its synced clock advances
  // too: it is only stale with respect to *foreign* updates.
  clocks_->Increment(owner, x, 1);
  cache.set_synced_clock(slot, cache.synced_clock(slot) + 1);
  cache.ClearPending(slot);
  ws->push_bytes[owner] += table_->RowBytes();
  ws->index_bytes[owner] += kIdBytes;
}

void Engine::ResolveFeature(WorkerState* ws, FeatureId x, float* out) {
  const int w = ws->id;
  const bool ps_path = config_.strategy == Strategy::kTfPs ||
                       config_.strategy == Strategy::kParallax;
  if (ps_path) {
    table_->ReadRow(x, out);
    const int host = static_cast<int>(x % topology_.num_machines());
    ws->host_fetch_bytes[host] += table_->RowBytes();
    ws->host_index_bytes[host] += kIdBytes;
    ws->feat_kind.push_back(kHostFetch);
    ws->feat_slot.push_back(-1);
    ws->feat_clock.push_back(0);
    ++ws->remote_fetches;
    return;
  }

  const int owner = partition_.embedding_owner[x];
  if (owner == w) {
    table_->ReadRow(x, out);
    ws->feat_kind.push_back(kLocalPrimary);
    ws->feat_slot.push_back(-1);
    ws->feat_clock.push_back(PrimaryClock(x));
    return;
  }

  ReplicaStore& cache = *caches_[w];
  const int64_t slot = cache.Slot(x);
  if (slot >= 0) {
    // Intra-embedding synchronization (① in Figure 6): compare the cached
    // replica's clock against the primary's; refresh when the gap exceeds
    // s. The clock exchange itself is index+clock traffic. Under SSP the
    // cache instead expires by worker-iteration age — SSP has no view of
    // per-embedding update activity (§3).
    ws->index_bytes[owner] += kIdBytes + kClockBytes;
    bool stale;
    uint64_t primary_used = 0;
    if (config_.consistency == ConsistencyMode::kSsp) {
      const int64_t it = ws->iter_count.load(std::memory_order_relaxed);
      stale = it - ws->ssp_refresh_iter[slot] > config_.ssp_slack;
    } else {
      primary_used = PrimaryClock(x);
      stale = !IntraEmbeddingFresh(cache.synced_clock(slot), primary_used,
                                   config_.bound);
    }
    if (stale) {
      RefreshSecondary(ws, x, slot);
      ++ws->intra_refreshes;
    }
    if (config_.consistency != ConsistencyMode::kSsp) {
      // Audit the intra bound on the value actually consumed, against the
      // primary clock the decision saw (a refresh resynchronizes to a
      // clock at least that fresh, so the residual gap is 0).
      const uint64_t synced = cache.synced_clock(slot);
      const uint64_t gap =
          primary_used > synced ? primary_used - synced : 0;
      if (gap > ws->max_intra_gap) ws->max_intra_gap = gap;
    }
    const float* v = cache.Value(slot);
    for (int c = 0; c < config_.embedding_dim; ++c) out[c] = v[c];
    ws->feat_kind.push_back(kSecondary);
    ws->feat_slot.push_back(slot);
    ws->feat_clock.push_back(cache.synced_clock(slot));
    return;
  }

  // No replica: fetch the primary row for this batch.
  table_->ReadRow(x, out);
  ws->fetch_bytes[owner] += table_->RowBytes();
  ws->index_bytes[owner] += kIdBytes;
  ++ws->remote_fetches;

  // Dynamic caching (HET-style): admit the fetched row into the LRU
  // cache, unless the eviction victim is another feature of this very
  // batch (whose slot is already referenced by earlier resolutions).
  LruEmbeddingCache* lru = lru_caches_[w];
  if (lru != nullptr && lru->size() > 0) {
    const int64_t victim = lru->EvictionCandidate();
    const FeatureId victim_id = victim >= 0 ? lru->IdAt(victim) : -1;
    if (victim_id < 0 || ws->feat_index.find(victim_id) ==
                             ws->feat_index.end()) {
      if (victim_id >= 0) FlushSecondary(ws, victim_id, victim);
      const int64_t new_slot = lru->Insert(x);
      lru->SetValue(new_slot, out);
      const uint64_t clock = PrimaryClock(x);
      lru->set_synced_clock(new_slot, clock);
      clocks_->Set(w, x, clock);
      if (!ws->ssp_refresh_iter.empty()) {
        ws->ssp_refresh_iter[new_slot] =
            ws->iter_count.load(std::memory_order_relaxed);
      }
      ws->feat_kind.push_back(kSecondary);
      ws->feat_slot.push_back(new_slot);
      ws->feat_clock.push_back(clock);
      return;
    }
  }

  ws->feat_kind.push_back(kRemoteFetch);
  ws->feat_slot.push_back(-1);
  ws->feat_clock.push_back(PrimaryClock(x));
}

void Engine::TrainIteration(WorkerState* ws) {
  const int w = ws->id;
  const int F = train_.num_fields();
  const int d = config_.embedding_dim;
  const int64_t B = ws->batch_size;

  // ---- 1. Select the batch (cyclic over local samples). ----
  ws->batch_samples.clear();
  ws->batch_labels.clear();
  const int64_t local = static_cast<int64_t>(ws->local_samples.size());
  for (int64_t b = 0; b < B; ++b) {
    const int64_t s = ws->local_samples[ws->cursor % local];
    ++ws->cursor;
    ws->batch_samples.push_back(s);
    ws->batch_labels.push_back(train_.label(s));
  }

  // ---- 2. Unique feature set of the batch. ----
  ws->feat_index.clear();
  ws->unique_feats.clear();
  ws->feat_kind.clear();
  ws->feat_slot.clear();
  ws->feat_clock.clear();
  for (int64_t s : ws->batch_samples) {
    const FeatureId* feats = train_.sample_features(s);
    for (int f = 0; f < F; ++f) {
      ws->feat_index.emplace(feats[f],
                             static_cast<int32_t>(ws->unique_feats.size()));
      if (static_cast<size_t>(ws->feat_index.size()) >
          ws->unique_feats.size()) {
        ws->unique_feats.push_back(feats[f]);
      }
    }
  }
  const int64_t U = static_cast<int64_t>(ws->unique_feats.size());

  // ---- 3. Gather (Read op) with staleness checks. ----
  ws->unique_values.Resize({U, d});
  for (int64_t u = 0; u < U; ++u) {
    ResolveFeature(ws, ws->unique_feats[u], ws->unique_values.row(u));
  }

  // ---- 3b. Inter-embedding synchronization (② in Figure 6). ----
  if (config_.consistency == ConsistencyMode::kGraphBounded &&
      !config_.bound.unbounded() && caches_[w]->size() > 0) {
    for (int64_t s : ws->batch_samples) {
      const FeatureId* feats = train_.sample_features(s);
      for (int a = 0; a < F; ++a) {
        const int32_t ua = ws->feat_index[feats[a]];
        for (int b = a + 1; b < F; ++b) {
          const int32_t ub = ws->feat_index[feats[b]];
          if (ua == ub) continue;
          // Only a secondary can be refreshed; primaries are never stale.
          const bool sec_a = ws->feat_kind[ua] == kSecondary;
          const bool sec_b = ws->feat_kind[ub] == kSecondary;
          if (!sec_a && !sec_b) continue;
          const FeatureId xa = ws->unique_feats[ua];
          const FeatureId xb = ws->unique_feats[ub];
          // Inlined InterEmbeddingFresh (the outer condition guarantees a
          // bounded s) so the accepted gap can feed the staleness audit.
          const double pair_gap = NormalizedClockGap(
              ws->feat_clock[ua], access_freq_[xa], ws->feat_clock[ub],
              access_freq_[xb], config_.bound.normalize_by_frequency);
          if (pair_gap <= static_cast<double>(config_.bound.s)) {
            if (pair_gap > ws->max_inter_norm_gap) {
              ws->max_inter_norm_gap = pair_gap;
            }
            continue;
          }
          ++ws->inter_flags;
          // Refresh the stale secondary (the one with the smaller
          // normalized clock); if both are secondary, refresh the laggard.
          // A refresh only helps if the replica actually lags its primary
          // (lag 0 replicas cannot be made fresher — re-fetching them
          // would thrash without changing the pair's clocks).
          const double na = access_freq_[xa] > 0
                                ? ws->feat_clock[ua] / access_freq_[xa]
                                : 0.0;
          const double nb = access_freq_[xb] > 0
                                ? ws->feat_clock[ub] / access_freq_[xb]
                                : 0.0;
          int32_t victim;
          if (sec_a && sec_b) {
            victim = na <= nb ? ua : ub;
          } else {
            victim = sec_a ? ua : ub;
          }
          const FeatureId xv = ws->unique_feats[victim];
          const uint64_t primary_v = PrimaryClock(xv);
          if (primary_v > ws->feat_clock[victim]) {
            RefreshSecondary(ws, xv, ws->feat_slot[victim]);
            ws->feat_clock[victim] =
                caches_[w]->synced_clock(ws->feat_slot[victim]);
            const float* v = caches_[w]->Value(ws->feat_slot[victim]);
            float* row = ws->unique_values.row(victim);
            for (int c = 0; c < d; ++c) row[c] = v[c];
            ++ws->inter_refreshes;
          }
          // Audit the §5.3 guarantee for flagged pairs: the sync pass must
          // leave the pair fresh, or the lagging replica fully caught up
          // with the primary clock the decision observed (any residual
          // normalized gap is then frequency asymmetry, not staleness).
          if (ws->feat_clock[victim] < primary_v &&
              !InterEmbeddingFresh(ws->feat_clock[ua], access_freq_[xa],
                                   ws->feat_clock[ub], access_freq_[xb],
                                   config_.bound)) {
            ++ws->inter_violations;
          }
        }
      }
    }
  }

  // ---- 4. Assemble the embedding block [B, F*d]. ----
  ws->emb_in.Resize({B, static_cast<int64_t>(F) * d});
  for (int64_t b = 0; b < B; ++b) {
    const FeatureId* feats = train_.sample_features(ws->batch_samples[b]);
    float* row = ws->emb_in.row(b);
    for (int f = 0; f < F; ++f) {
      const int32_t u = ws->feat_index[feats[f]];
      const float* v = ws->unique_values.row(u);
      for (int c = 0; c < d; ++c) row[f * d + c] = v[c];
    }
  }

  // ---- 5. Dense forward/backward. ----
  EmbeddingModel& model = *models_[w];
  model.Forward(ws->emb_in, &ws->logits);
  const double loss =
      BceWithLogits(ws->logits, ws->batch_labels, &ws->dlogits);
  model.Backward(ws->dlogits, &ws->demb_in);
  ws->loss_sum += loss;
  ++ws->loss_count;
  double compute_sec =
      static_cast<double>(B) *
      static_cast<double>(model.FlopsPerSample()) / config_.device_flops;
  if (static_cast<size_t>(w) < config_.worker_slowdown.size()) {
    compute_sec *= config_.worker_slowdown[w];
  }
  ws->compute_time += compute_sec;
  ws->sim_time += compute_sec;

  // ---- 6. Scatter embedding gradients (Update op). ----
  ws->unique_grads.Resize({U, d});
  for (int64_t b = 0; b < B; ++b) {
    const FeatureId* feats = train_.sample_features(ws->batch_samples[b]);
    const float* grow = ws->demb_in.row(b);
    for (int f = 0; f < F; ++f) {
      const int32_t u = ws->feat_index[feats[f]];
      float* g = ws->unique_grads.row(u);
      for (int c = 0; c < d; ++c) g[c] += grow[f * d + c];
    }
  }
  for (int64_t u = 0; u < U; ++u) {
    const FeatureId x = ws->unique_feats[u];
    const float* grad = ws->unique_grads.row(u);
    switch (ws->feat_kind[u]) {
      case kLocalPrimary:
        table_->ApplyGradient(x, grad);
        clocks_->Increment(w, x);
        break;
      case kSecondary: {
        // Local update on the cached copy plus a pending write-back.
        ReplicaStore& cache = *caches_[w];
        const int64_t slot = ws->feat_slot[u];
        SgdUpdateRow(cache.Value(slot), grad, d, config_.embed_lr);
        cache.AccumulatePending(slot, grad);
        break;
      }
      case kRemoteFetch: {
        const int owner = partition_.embedding_owner[x];
        table_->ApplyGradient(x, grad);
        clocks_->Increment(owner, x);
        ws->push_bytes[owner] += table_->RowBytes();
        ws->index_bytes[owner] += kIdBytes;
        break;
      }
      case kHostFetch: {
        table_->ApplyGradient(x, grad);
        const int host = static_cast<int>(x % topology_.num_machines());
        ws->host_push_bytes[host] += table_->RowBytes();
        ws->host_index_bytes[host] += kIdBytes;
        break;
      }
    }
  }

  // ---- 7. Write back pending secondary updates ("local reduction then
  // write to primaries", §6). With write_back_every > 1, flushes are
  // staggered across iterations by slot; RunWorkerRound force-flushes the
  // remainder at round barriers.
  const int64_t wbe = std::max(1, config_.write_back_every);
  const int64_t iter_now = ws->iter_count.load(std::memory_order_relaxed);
  for (int64_t u = 0; u < U; ++u) {
    if (ws->feat_kind[u] != kSecondary) continue;
    if (wbe == 1 || (iter_now + ws->feat_slot[u]) % wbe == 0) {
      FlushSecondary(ws, ws->unique_feats[u], ws->feat_slot[u]);
    }
  }

  // ---- 8. Charge batched per-peer transfers. ----
  ChargePendingTransfers(ws);

  ws->samples_done += B;
  ws->iter_count.fetch_add(1, std::memory_order_release);
}

// Flushes the per-iteration byte tallies into the fabric (one batched
// message per peer per direction) and charges the issuing worker's clock.
void Engine::ChargePendingTransfers(WorkerState* ws) {
  const int w = ws->id;
  double comm_sec = 0.0;
  const int N = topology_.num_workers();
  for (int o = 0; o < N; ++o) {
    if (ws->fetch_bytes[o] != 0) {
      comm_sec += fabric_->Transfer(o, w, ws->fetch_bytes[o],
                                    TrafficClass::kEmbedding);
      ws->fetch_bytes[o] = 0;
    }
    if (ws->push_bytes[o] != 0) {
      comm_sec += fabric_->Transfer(w, o, ws->push_bytes[o],
                                    TrafficClass::kEmbedding);
      ws->push_bytes[o] = 0;
    }
    if (ws->index_bytes[o] != 0) {
      comm_sec += fabric_->Transfer(w, o, ws->index_bytes[o],
                                    TrafficClass::kIndexClock);
      ws->index_bytes[o] = 0;
    }
  }
  for (int m = 0; m < topology_.num_machines(); ++m) {
    if (ws->host_fetch_bytes[m] != 0) {
      comm_sec += fabric_->TransferToHost(w, m, ws->host_fetch_bytes[m],
                                          TrafficClass::kEmbedding);
      ws->host_fetch_bytes[m] = 0;
    }
    if (ws->host_push_bytes[m] != 0) {
      comm_sec += fabric_->TransferToHost(w, m, ws->host_push_bytes[m],
                                          TrafficClass::kEmbedding);
      ws->host_push_bytes[m] = 0;
    }
    if (ws->host_index_bytes[m] != 0) {
      comm_sec += fabric_->TransferToHost(w, m, ws->host_index_bytes[m],
                                          TrafficClass::kIndexClock);
      ws->host_index_bytes[m] = 0;
    }
  }
  ws->comm_time += comm_sec;
  ws->sim_time += comm_sec;
}

void Engine::SyncDense(WorkerState* ws) {
  EmbeddingModel& model = *models_[ws->id];
  const uint64_t payload = model.DenseParamBytes();
  const int N = topology_.num_workers();
  double comm_sec = 0.0;
  if (config_.strategy == Strategy::kTfPs) {
    // Push gradients and pull parameters through the CPU PS.
    const int m = topology_.machine_of(ws->id);
    comm_sec += fabric_->TransferToHost(ws->id, m, payload,
                                        TrafficClass::kAllReduce);
    comm_sec += fabric_->TransferToHost(ws->id, m, payload,
                                        TrafficClass::kAllReduce);
  } else if (N > 1) {
    // Ring AllReduce; each worker charges its own outgoing hop so the
    // total matches one collective.
    const uint64_t hop = RingAllReduceBytesPerWorker(N, payload);
    fabric_->Transfer(ws->id, (ws->id + 1) % N, hop,
                      TrafficClass::kAllReduce);
    comm_sec += RingAllReduceTime(topology_, payload);
  }
  ws->comm_time += comm_sec;
  ws->sim_time += comm_sec;
}

void Engine::RunWorkerRound(WorkerState* ws, int64_t iters) {
  const bool bsp = config_.consistency == ConsistencyMode::kBsp;
  const int N = topology_.num_workers();

  for (int64_t it = 0; it < iters; ++it) {
    if (config_.consistency == ConsistencyMode::kSsp) {
      // Throttle: stay within ssp_slack iterations of the slowest worker.
      for (;;) {
        int64_t min_iter = workers_[0]->iter_count.load(
            std::memory_order_acquire);
        for (int p = 1; p < N; ++p) {
          min_iter = std::min(min_iter, workers_[p]->iter_count.load(
                                            std::memory_order_acquire));
        }
        if (ws->iter_count.load(std::memory_order_relaxed) - min_iter <=
            config_.ssp_slack) {
          break;
        }
        std::this_thread::yield();
      }
    }

    TrainIteration(ws);
    SyncDense(ws);

    if (bsp && N > 1) {
      // Exact BSP: average dense gradients across replicas and align
      // simulated clocks to the straggler, every iteration.
      if (iter_barrier_.ArriveAndWait()) {
        const size_t num_tensors = models_[0]->DenseGrads().size();
        for (size_t t = 0; t < num_tensors; ++t) {
          Tensor* first = models_[0]->DenseGrads()[t];
          for (int p = 1; p < N; ++p) {
            Tensor* other = models_[p]->DenseGrads()[t];
            for (int64_t i = 0; i < first->size(); ++i) {
              first->at(i) += other->at(i);
            }
          }
          const float inv = 1.0f / static_cast<float>(N);
          for (int64_t i = 0; i < first->size(); ++i) first->at(i) *= inv;
          for (int p = 1; p < N; ++p) {
            Tensor* other = models_[p]->DenseGrads()[t];
            for (int64_t i = 0; i < first->size(); ++i) {
              other->at(i) = first->at(i);
            }
          }
        }
        bsp_shared_max_time_ = 0.0;
        for (int p = 0; p < N; ++p) {
          bsp_shared_max_time_ =
              std::max(bsp_shared_max_time_, workers_[p]->sim_time);
        }
      }
      iter_barrier_.ArriveAndWait();
      ws->sim_time = bsp_shared_max_time_;
    }

    // Apply the (possibly averaged) dense gradients.
    ws->dense_opt->Step(models_[ws->id]->DenseParams(),
                        models_[ws->id]->DenseGrads());
    models_[ws->id]->ZeroGrads();
    if (bsp && N > 1) {
      // Keep replicas bit-identical: a third rendezvous before anyone
      // starts mutating gradients again.
      iter_barrier_.ArriveAndWait();
    }
  }

  // Round boundary: force-flush every pending secondary write-back so the
  // primaries are complete for evaluation (per-iteration flushing leaves
  // nothing pending when write_back_every == 1).
  if (config_.write_back_every > 1) {
    ReplicaStore& cache = *caches_[ws->id];
    for (int64_t slot = 0; slot < cache.size(); ++slot) {
      const FeatureId id = cache.IdAt(slot);
      if (id >= 0 && cache.pending_count(slot) > 0) {
        FlushSecondary(ws, id, slot);
      }
    }
    ChargePendingTransfers(ws);
  }
}

Status Engine::ValidateInvariants() const {
  const int N = topology_.num_workers();
  for (int w = 0; w < N; ++w) {
    const ReplicaStore& cache = *caches_[w];
    for (int64_t slot = 0; slot < cache.size(); ++slot) {
      const FeatureId id = cache.IdAt(slot);
      if (id < 0) continue;
      if (cache.pending_count(slot) != 0) {
        return Status::Internal(
            "worker " + std::to_string(w) + " slot " +
            std::to_string(slot) + " has unflushed pending updates");
      }
      const uint64_t primary =
          clocks_->Get(partition_.embedding_owner[id], id);
      if (cache.synced_clock(slot) > primary) {
        return Status::Internal(
            "worker " + std::to_string(w) + " replica of embedding " +
            std::to_string(id) + " is ahead of its primary clock");
      }
    }
  }
  // Dense replicas agree (round boundaries re-average them).
  auto params0 = models_[0]->DenseParams();
  for (int w = 1; w < N; ++w) {
    auto params = models_[w]->DenseParams();
    if (params.size() != params0.size()) {
      return Status::Internal("dense tensor count mismatch");
    }
    for (size_t t = 0; t < params.size(); ++t) {
      for (int64_t i = 0; i < params0[t]->size(); ++i) {
        if (params[t]->at(i) != params0[t]->at(i)) {
          return Status::Internal(
              "dense replicas diverge at worker " + std::to_string(w) +
              " tensor " + std::to_string(t));
        }
      }
    }
  }
  return Status::OK();
}

double Engine::EvaluateAuc() {
  const int F = train_.num_fields();
  const int d = config_.embedding_dim;
  const int64_t n = test_.num_samples();
  if (n == 0) return 0.5;
  constexpr int64_t kChunk = 2048;
  std::vector<float> scores;
  scores.reserve(n);
  Tensor emb_in;
  Tensor logits;
  EmbeddingModel& model = *models_[0];
  for (int64_t start = 0; start < n; start += kChunk) {
    const int64_t len = std::min(kChunk, n - start);
    emb_in.Resize({len, static_cast<int64_t>(F) * d});
    for (int64_t i = 0; i < len; ++i) {
      const FeatureId* feats = test_.sample_features(start + i);
      float* row = emb_in.row(i);
      for (int f = 0; f < F; ++f) {
        const float* v = table_->UnsafeRow(feats[f]);
        for (int c = 0; c < d; ++c) row[f * d + c] = v[c];
      }
    }
    model.Forward(emb_in, &logits);
    for (int64_t i = 0; i < len; ++i) {
      scores.push_back(logits.at(i));
    }
  }
  return ComputeAuc(scores, test_.labels());
}

void Engine::SetPublishHook(PublishHook hook, int every_rounds) {
  publish_hook_ = std::move(hook);
  publish_every_rounds_ = every_rounds;
}

TrainResult Engine::Train(int max_epochs, double auc_target,
                          double sim_time_budget) {
  HETGMP_CHECK_GT(max_epochs, 0);
  const int N = topology_.num_workers();
  const int rounds_per_epoch = std::max(1, config_.rounds_per_epoch);
  const int64_t iters_per_round = std::max<int64_t>(
      1, (iters_per_epoch_ + rounds_per_epoch - 1) / rounds_per_epoch);
  const int total_rounds = max_epochs * rounds_per_epoch;

  stop_.store(false, std::memory_order_relaxed);
  TrainResult result;
  Mutex result_mu;

  // Ownership hand-off: replica stores were last touched by whichever
  // thread constructed the engine or ran the previous Train; from here
  // each store belongs to its worker thread.
  for (auto& cache : caches_) cache->ResetOwner();

  auto worker_main = [&](int w) {
    WorkerState* ws = workers_[w].get();
    for (int round = 0; round < total_rounds; ++round) {
      if (stop_.load(std::memory_order_acquire)) break;
      RunWorkerRound(ws, iters_per_round);
      if (round_barrier_.ArriveAndWait()) {
        // ---- Serial round-end section (exactly one thread). ----
        if (config_.consistency != ConsistencyMode::kBsp && N > 1) {
          // Asynchronous modes: re-average the dense replicas (local-SGD
          // style; per-iteration sync cost was already charged).
          const size_t num_tensors = models_[0]->DenseParams().size();
          for (size_t t = 0; t < num_tensors; ++t) {
            Tensor* first = models_[0]->DenseParams()[t];
            for (int p = 1; p < N; ++p) {
              Tensor* other = models_[p]->DenseParams()[t];
              for (int64_t i = 0; i < first->size(); ++i) {
                first->at(i) += other->at(i);
              }
            }
            const float inv = 1.0f / static_cast<float>(N);
            for (int64_t i = 0; i < first->size(); ++i) {
              first->at(i) *= inv;
            }
            for (int p = 1; p < N; ++p) {
              Tensor* other = models_[p]->DenseParams()[t];
              for (int64_t i = 0; i < first->size(); ++i) {
                other->at(i) = first->at(i);
              }
            }
          }
        }
        double max_time = 0.0;
        for (int p = 0; p < N; ++p) {
          max_time = std::max(max_time, workers_[p]->sim_time);
        }
        for (int p = 0; p < N; ++p) workers_[p]->sim_time = max_time;

        RoundStats rs;
        rs.round = round;
        rs.sim_time = max_time;
        rs.auc = EvaluateAuc();
        double loss_sum = 0.0;
        int64_t loss_count = 0;
        for (int p = 0; p < N; ++p) {
          rs.iterations_done += workers_[p]->iter_count.load();
          rs.remote_fetches += workers_[p]->remote_fetches;
          rs.intra_refreshes += workers_[p]->intra_refreshes;
          rs.inter_refreshes += workers_[p]->inter_refreshes;
          rs.inter_flags += workers_[p]->inter_flags;
          loss_sum += workers_[p]->loss_sum;
          loss_count += workers_[p]->loss_count;
          workers_[p]->loss_sum = 0.0;
          workers_[p]->loss_count = 0;
        }
        rs.train_loss = loss_count > 0 ? loss_sum / loss_count : 0.0;
        rs.embedding_bytes = fabric_->TotalBytes(TrafficClass::kEmbedding);
        rs.index_clock_bytes =
            fabric_->TotalBytes(TrafficClass::kIndexClock);
        rs.allreduce_bytes = fabric_->TotalBytes(TrafficClass::kAllReduce);
        {
          MutexLock lock(result_mu);
          result.rounds.push_back(rs);
        }
        bool stop = false;
        if (auc_target > 0 && rs.auc >= auc_target) {
          result.reached_target = true;
          stop = true;
        }
        if (sim_time_budget > 0 && rs.sim_time >= sim_time_budget) {
          stop = true;
        }
        if (round == total_rounds - 1) stop = true;
        // Snapshot publication: every k-th round plus the final round, in
        // the serial section (all other workers are parked at the round
        // barrier, so the unsafe table reads in the hook are quiesced).
        if (publish_hook_ != nullptr && publish_every_rounds_ > 0 &&
            ((round + 1) % publish_every_rounds_ == 0 || stop)) {
          const std::vector<Tensor*> dense = models_[0]->DenseParams();
          const PublishContext ctx{*table_, dense, round, rs.iterations_done,
                                   rs.sim_time};
          const Status pub = publish_hook_(ctx);
          MutexLock lock(result_mu);
          if (pub.ok()) {
            ++result.snapshots_published;
          } else {
            ++result.publish_failures;
            HETGMP_LOG(Warning) << "snapshot publish failed at round " << round
                                << ": " << pub.ToString();
          }
        }
        if (stop) stop_.store(true, std::memory_order_release);
      }
      round_barrier_.ArriveAndWait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(N);
  for (int w = 0; w < N; ++w) threads.emplace_back(worker_main, w);
  for (auto& t : threads) t.join();

  // Hand ownership back to the calling thread (tests and checkpointing
  // touch the stores after training).
  for (auto& cache : caches_) cache->ResetOwner();

  result.final_auc = result.rounds.empty() ? 0.5 : result.rounds.back().auc;
  double compute = 0.0, comm = 0.0;
  for (int p = 0; p < N; ++p) {
    result.total_sim_time =
        std::max(result.total_sim_time, workers_[p]->sim_time);
    compute += workers_[p]->compute_time;
    comm += workers_[p]->comm_time;
    result.total_iterations += workers_[p]->iter_count.load();
    result.samples_processed += workers_[p]->samples_done;
    result.staleness.max_intra_gap =
        std::max(result.staleness.max_intra_gap, workers_[p]->max_intra_gap);
    result.staleness.max_inter_norm_gap = std::max(
        result.staleness.max_inter_norm_gap, workers_[p]->max_inter_norm_gap);
    result.staleness.inter_violations += workers_[p]->inter_violations;
  }
  result.compute_time = compute / N;
  result.comm_time = comm / N;
  return result;
}

}  // namespace hetgmp
