#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "comm/protocol.h"
#include "core/engine_worker_state.h"
#include "common/lint_tags.h"
#include "common/logging.h"
#include "metrics/auc.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "store/prefetch.h"
#include "store/tiered_store.h"
#include "tensor/ops.h"

namespace hetgmp {

namespace {

// How a unique feature of the current batch was resolved.
enum FeatKind : uint8_t {
  kLocalPrimary = 0,  // this worker owns the primary — free access
  kSecondary = 1,     // served by the local secondary cache
  kRemoteFetch = 2,   // fetched from the owning worker this batch
  kHostFetch = 3,     // parameter-server path (CPU host)
};

// Rounding allowance for the step-3b screen (see DESIGN.md §5e): the
// screen value min(fi,fj)·|ci/fi − cj/fj| equals the §5.3 gap
// |ci·fj/fi − cj| in real arithmetic, and the few double roundings on
// either route differ by at most ~|clock|·2⁻⁵⁰ — below 1e-6 for any
// clock this simulator can reach. An occurrence whose padded screen
// value stays under both the bound and the running max-gap audit is a
// no-op for every counter the full check maintains.
constexpr double kScreenSlack = 1e-6;

// The per-entry wire sizes kIdBytes / kClockBytes now live in
// comm/protocol.h next to the typed encodings that define them; the
// accounting below charges the same values it always has.

// splitmix64 finalizer: cheap, and avalanches the near-sequential feature
// ids that dominate the synthetic workloads.
inline uint64_t HashId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Accumulates wall-clock time between stage boundaries of one iteration.
class StageClock {
 public:
  StageClock() : last_(std::chrono::steady_clock::now()) {}
  double Lap() {
    const auto now = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    return sec;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

}  // namespace

// WorkerState moved to engine_worker_state.h so engine_wire.cc (the
// engine-over-transport exchange) can replay the logged traffic.

Engine::Engine(const EngineConfig& config, const CtrDataset& train,
               const CtrDataset& test, const Topology& topology,
               Partition partition)
    : config_(config),
      train_(train),
      test_(test),
      topology_(topology),
      partition_(std::move(partition)),
      bigraph_(train),
      round_barrier_(topology.num_workers()),
      iter_barrier_(topology.num_workers()) {
  const int N = topology_.num_workers();
  HETGMP_CHECK_EQ(partition_.num_parts, N);
  HETGMP_CHECK_EQ(partition_.num_samples(), train_.num_samples());
  HETGMP_CHECK_EQ(partition_.num_embeddings(), train_.num_features());

  access_freq_ = bigraph_.AccessFrequencies();
  table_ = std::make_unique<EmbeddingTable>(
      train_.num_features(), config_.embedding_dim,
      config_.embed_init_stddev, config_.seed + 7,
      config_.embed_optimizer, config_.embed_lr);
  clocks_ = std::make_unique<ClockTable>(N, train_.num_features());
  fabric_ = std::make_unique<Fabric>(topology_);

  lru_caches_.assign(N, nullptr);
  for (int w = 0; w < N; ++w) {
    if (config_.replica_policy == ReplicaPolicy::kLruDynamic) {
      const int64_t capacity = static_cast<int64_t>(
          config_.lru_capacity_fraction *
          static_cast<double>(train_.num_features()));
      auto lru = std::make_unique<LruEmbeddingCache>(capacity,
                                                     config_.embedding_dim);
      lru_caches_[w] = lru.get();
      caches_.push_back(std::move(lru));
    } else {
      caches_.push_back(std::make_unique<SecondaryCache>(
          partition_.secondaries[w], config_.embedding_dim));
      // §6: "when the embedding table is created, space is allocated for
      // both primary and secondary embeddings guided by the partition
      // result" — secondaries start synchronized with their primaries
      // (clock 0 on both sides).
      ReplicaStore& cache = *caches_.back();
      for (int64_t slot = 0; slot < cache.size(); ++slot) {
        cache.SetValue(slot, table_->UnsafeRow(cache.IdAt(slot)));
      }
    }
    // Identical seed → identical initial dense replicas (the AllReduce
    // invariant of the hybrid architecture).
    Rng model_rng(config_.seed + 1000);
    models_.push_back(CreateFieldModel(config_.model, train_.num_fields(),
                                       config_.embedding_dim, &model_rng));

    auto ws = std::make_unique<WorkerState>();
    ws->id = w;
    ws->rng = Rng(config_.seed + 31 * w);
    ws->fetch_bytes.assign(N, 0);
    ws->push_bytes.assign(N, 0);
    ws->index_bytes.assign(N, 0);
    ws->host_fetch_bytes.assign(topology_.num_machines(), 0);
    ws->host_push_bytes.assign(topology_.num_machines(), 0);
    ws->host_index_bytes.assign(topology_.num_machines(), 0);
    ws->ssp_refresh_iter.assign(caches_[w]->size(), 0);
    ws->batch_size = config_.batch_size;
    if (config_.balance_batch_to_capacity &&
        static_cast<size_t>(w) < config_.worker_slowdown.size() &&
        config_.worker_slowdown[w] > 0) {
      ws->batch_size = std::max<int64_t>(
          1, static_cast<int64_t>(config_.batch_size /
                                  config_.worker_slowdown[w]));
    }
    ws->dense_opt = std::make_unique<SgdOptimizer>(config_.dense_lr);
    workers_.push_back(std::move(ws));
  }
  for (int64_t s = 0; s < train_.num_samples(); ++s) {
    workers_[partition_.sample_owner[s]]->local_samples.push_back(s);
  }
  // A worker with no local samples still participates in barriers; give it
  // at least one sample so every iteration has work.
  for (auto& ws : workers_) {
    if (ws->local_samples.empty()) ws->local_samples.push_back(0);
  }

  iters_per_epoch_ = std::max<int64_t>(
      1, (train_.num_samples() + static_cast<int64_t>(N) * config_.batch_size -
          1) /
             (static_cast<int64_t>(N) * config_.batch_size));

  int pool_threads = config_.serial_section_threads;
  if (pool_threads <= 0) {
    pool_threads = std::min<int>(
        N, std::max(1u, std::thread::hardware_concurrency()));
  }
  if (!config_.reference_hotpath && N > 1 && pool_threads > 1) {
    serial_pool_ = std::make_unique<ThreadPool>(pool_threads);
  }

  if (config_.tiered_store.enabled) {
    // The hierarchy relies on the batch-plan pin protocol; the frozen
    // reference hot path reads the arena directly and must stay exactly
    // as the seed measured it.
    HETGMP_CHECK(!config_.reference_hotpath);
    const int64_t n = train_.num_features();
    TieredStoreOptions topts;
    topts.hot_rows = config_.tiered_store.hot_rows > 0
                         ? config_.tiered_store.hot_rows
                         : std::max<int64_t>(1, n / 10);
    topts.warm_rows = config_.tiered_store.warm_rows > 0
                          ? config_.tiered_store.warm_rows
                          : std::max<int64_t>(1, n / 5);
    topts.stripes = config_.tiered_store.stripes;
    topts.cold_path = config_.tiered_store.cold_path;
    // Built after the secondary caches seeded from the (still fully
    // resident) arena; Create demotes the cold tail immediately.
    auto store =
        TieredEmbeddingStore::Create(table_.get(), access_freq_, topts);
    HETGMP_CHECK(store.ok());
    tier_store_ = std::move(store.value());
    if (config_.tiered_store.prefetch) {
      prefetch_ = std::make_unique<PrefetchPipeline>(tier_store_.get(), N);
    }
  }

  if (config_.transport.enabled) SetupWireTransport();
}

// Out of line for the unique_ptr<TieredEmbeddingStore/PrefetchPipeline>
// members (forward-declared in the header); member order destroys the
// pipeline before the store it promotes into.
Engine::~Engine() = default;

void Engine::PrimaryReadRow(FeatureId x, float* out) {
  if (tier_store_ != nullptr) {
    tier_store_->ReadRow(x, out);
  } else {
    table_->ReadRow(x, out);
  }
}

void Engine::PrimaryApplyGradient(FeatureId x, const float* grad) {
  if (tier_store_ != nullptr) {
    tier_store_->ApplyGradient(x, grad);
  } else {
    table_->ApplyGradient(x, grad);
  }
}

void Engine::PeekPrimaryRow(FeatureId x, float* out) {
  if (tier_store_ != nullptr) {
    tier_store_->PeekRow(x, out);
  } else {
    CopyRow(out, table_->UnsafeRow(x), config_.embedding_dim);
  }
}

void Engine::SubmitNextBatchPrefetch(WorkerState* ws) {
  // Stage 1 already advanced the cyclic cursor past the current batch,
  // so the upcoming window starts at `cursor` — exactly the samples the
  // next TrainIteration will select.
  const int64_t local = static_cast<int64_t>(ws->local_samples.size());
  const int F = train_.num_fields();
  ws->prefetch_ids.clear();
  for (int64_t b = 0; b < ws->batch_size; ++b) {
    const int64_t s = ws->local_samples[(ws->cursor + b) % local];
    const FeatureId* feats = train_.sample_features(s);
    for (int f = 0; f < F; ++f) ws->prefetch_ids.push_back(feats[f]);
  }
  prefetch_->Submit(ws->id, ws->prefetch_ids.data(),
                    static_cast<int64_t>(ws->prefetch_ids.size()));
}

void Engine::RefreshSecondary(WorkerState* ws, FeatureId x, int64_t slot) {
  // Pending local updates must reach the primary before the cached value
  // is overwritten, or they would be lost.
  FlushSecondary(ws, x, slot);
  ReplicaStore& cache = *caches_[ws->id];
  PrimaryReadRow(x, cache.Value(slot));
  const uint64_t clock = PrimaryClock(x);
  cache.set_synced_clock(slot, clock);
  clocks_->Set(ws->id, x, clock);
  if (!ws->ssp_refresh_iter.empty()) {
    ws->ssp_refresh_iter[slot] =
        ws->iter_count.load(std::memory_order_relaxed);
  }
  const int owner = partition_.embedding_owner[x];
  ws->fetch_bytes[owner] += table_->RowBytes();
  ws->index_bytes[owner] += kIdBytes + kClockBytes;
  if (config_.transport.enabled) {
    WorkerState::PeerWireLog& log = ws->wire_log[owner];
    log.index_ids.push_back(x);
    log.clock_ids.push_back(x);
    log.fetch_ids.push_back(x);
    const float* v = cache.Value(slot);
    log.fetch_vals.insert(log.fetch_vals.end(), v,
                          v + config_.embedding_dim);
  }
}

void Engine::FlushSecondary(WorkerState* ws, FeatureId x, int64_t slot) {
  ReplicaStore& cache = *caches_[ws->id];
  const int64_t count = cache.pending_count(slot);
  if (count == 0) return;
  PrimaryApplyGradient(x, cache.Pending(slot));
  const int owner = partition_.embedding_owner[x];
  if (config_.transport.enabled) {
    // The wire payload is the reduced pending gradient ("local reduction
    // then write to primaries", §6) — logged before ClearPending.
    WorkerState::PeerWireLog& log = ws->wire_log[owner];
    log.index_ids.push_back(x);
    log.push_ids.push_back(x);
    const float* g = cache.Pending(slot);
    log.push_vals.insert(log.push_vals.end(), g,
                         g + config_.embedding_dim);
  }
  // One flush = one update event on the primary clock ("local reduction
  // then write to primaries", §6 — the reduced write-back is the unit of
  // staleness, not its constituent sample gradients). The secondary has
  // already applied the same update locally, so its synced clock advances
  // too: it is only stale with respect to *foreign* updates.
  clocks_->Increment(owner, x, 1);
  cache.set_synced_clock(slot, cache.synced_clock(slot) + 1);
  cache.ClearPending(slot);
  ws->push_bytes[owner] += table_->RowBytes();
  ws->index_bytes[owner] += kIdBytes;
}

bool Engine::BatchContains(const WorkerState* ws, FeatureId x) const {
  if (config_.reference_hotpath) {
    return ws->feat_index.find(x) != ws->feat_index.end();
  }
  if (ws->map_mask == 0) return false;
  uint64_t slot = HashId(static_cast<uint64_t>(x)) & ws->map_mask;
  while (ws->map_stamp[slot] == ws->map_gen) {
    if (ws->map_keys[slot] == x) return true;
    slot = (slot + 1) & ws->map_mask;
  }
  return false;
}

HETGMP_HOT_PATH void Engine::ResolveFeature(WorkerState* ws, FeatureId x,
                                           float* out) {
  const int w = ws->id;
  const bool ps_path = config_.strategy == Strategy::kTfPs ||
                       config_.strategy == Strategy::kParallax;
  if (ps_path) {
    PrimaryReadRow(x, out);
    const int host = static_cast<int>(x % topology_.num_machines());
    ws->host_fetch_bytes[host] += table_->RowBytes();
    ws->host_index_bytes[host] += kIdBytes;
    ws->feat_kind.push_back(kHostFetch);
    ws->feat_slot.push_back(-1);
    ws->feat_clock.push_back(0);
    ++ws->remote_fetches;
    return;
  }

  const int owner = partition_.embedding_owner[x];
  if (owner == w) {
    PrimaryReadRow(x, out);
    ws->feat_kind.push_back(kLocalPrimary);
    ws->feat_slot.push_back(-1);
    ws->feat_clock.push_back(PrimaryClock(x));
    return;
  }

  ReplicaStore& cache = *caches_[w];
  const int64_t slot = cache.Slot(x);
  if (slot >= 0) {
    // Intra-embedding synchronization (① in Figure 6): compare the cached
    // replica's clock against the primary's; refresh when the gap exceeds
    // s. The clock exchange itself is index+clock traffic. Under SSP the
    // cache instead expires by worker-iteration age — SSP has no view of
    // per-embedding update activity (§3).
    ws->index_bytes[owner] += kIdBytes + kClockBytes;
    if (config_.transport.enabled) {
      ws->wire_log[owner].index_ids.push_back(x);
      ws->wire_log[owner].clock_ids.push_back(x);
    }
    bool stale;
    uint64_t primary_used = 0;
    if (config_.consistency == ConsistencyMode::kSsp) {
      const int64_t it = ws->iter_count.load(std::memory_order_relaxed);
      stale = it - ws->ssp_refresh_iter[slot] > config_.ssp_slack;
    } else {
      primary_used = PrimaryClock(x);
      stale = !IntraEmbeddingFresh(cache.synced_clock(slot), primary_used,
                                   config_.bound);
    }
    if (stale) {
      RefreshSecondary(ws, x, slot);
      ++ws->intra_refreshes;
    }
    if (config_.consistency != ConsistencyMode::kSsp) {
      // Audit the intra bound on the value actually consumed, against the
      // primary clock the decision saw (a refresh resynchronizes to a
      // clock at least that fresh, so the residual gap is 0).
      const uint64_t synced = cache.synced_clock(slot);
      const uint64_t gap =
          primary_used > synced ? primary_used - synced : 0;
      if (gap > ws->max_intra_gap) ws->max_intra_gap = gap;
    }
    const float* v = cache.Value(slot);
    for (int c = 0; c < config_.embedding_dim; ++c) out[c] = v[c];
    ws->feat_kind.push_back(kSecondary);
    ws->feat_slot.push_back(slot);
    ws->feat_clock.push_back(cache.synced_clock(slot));
    return;
  }

  // No replica: fetch the primary row for this batch.
  PrimaryReadRow(x, out);
  ws->fetch_bytes[owner] += table_->RowBytes();
  ws->index_bytes[owner] += kIdBytes;
  ++ws->remote_fetches;
  if (config_.transport.enabled) {
    WorkerState::PeerWireLog& log = ws->wire_log[owner];
    log.index_ids.push_back(x);
    log.fetch_ids.push_back(x);
    log.fetch_vals.insert(log.fetch_vals.end(), out,
                          out + config_.embedding_dim);
  }

  // Dynamic caching (HET-style): admit the fetched row into the LRU
  // cache, unless the eviction victim is another feature of this very
  // batch (whose slot is already referenced by earlier resolutions).
  LruEmbeddingCache* lru = lru_caches_[w];
  if (lru != nullptr && lru->size() > 0) {
    const int64_t victim = lru->EvictionCandidate();
    const FeatureId victim_id = victim >= 0 ? lru->IdAt(victim) : -1;
    if (victim_id < 0 || !BatchContains(ws, victim_id)) {
      if (victim_id >= 0) FlushSecondary(ws, victim_id, victim);
      const int64_t new_slot = lru->Insert(x);
      lru->SetValue(new_slot, out);
      const uint64_t clock = PrimaryClock(x);
      lru->set_synced_clock(new_slot, clock);
      clocks_->Set(w, x, clock);
      if (!ws->ssp_refresh_iter.empty()) {
        ws->ssp_refresh_iter[new_slot] =
            ws->iter_count.load(std::memory_order_relaxed);
      }
      ws->feat_kind.push_back(kSecondary);
      ws->feat_slot.push_back(new_slot);
      ws->feat_clock.push_back(clock);
      return;
    }
  }

  ws->feat_kind.push_back(kRemoteFetch);
  ws->feat_slot.push_back(-1);
  ws->feat_clock.push_back(PrimaryClock(x));
}

HETGMP_HOT_PATH int64_t Engine::BuildBatchPlan(WorkerState* ws) {
  const int F = train_.num_fields();
  const int64_t B = static_cast<int64_t>(ws->batch_samples.size());
  ws->plan.resize(B * F);
  ws->unique_feats.clear();
  ws->EnsureMapCapacity(B * F);
  ws->BumpMapGen();
  const uint32_t gen = ws->map_gen;
  const uint64_t mask = ws->map_mask;
  int32_t next = 0;
  int32_t* plan = ws->plan.data();
  for (int64_t b = 0; b < B; ++b) {
    const FeatureId* feats = train_.sample_features(ws->batch_samples[b]);
    for (int f = 0; f < F; ++f) {
      const FeatureId x = feats[f];
      uint64_t slot = HashId(static_cast<uint64_t>(x)) & mask;
      while (ws->map_stamp[slot] == gen && ws->map_keys[slot] != x) {
        slot = (slot + 1) & mask;
      }
      int32_t idx;
      if (ws->map_stamp[slot] == gen) {
        idx = ws->map_vals[slot];
      } else {
        // First occurrence: unique_feats keeps first-occurrence order, so
        // gather order — and with it LRU admission/traffic — matches the
        // reference hot path exactly.
        ws->map_stamp[slot] = gen;
        ws->map_keys[slot] = x;
        ws->map_vals[slot] = next;
        ws->unique_feats.push_back(x);
        idx = next;
        ++next;
      }
      plan[b * F + f] = idx;
    }
  }
#ifndef NDEBUG
  for (int64_t i = 0; i < B * F; ++i) {
    HETGMP_DCHECK(plan[i] >= 0 && plan[i] < next);
  }
#endif
  return next;
}

void Engine::ExecPairCheck(WorkerState* ws, int32_t ua, int32_t ub) {
  // Exactly one reference occurrence of the ordered pair (ua, ub): gap
  // test, flag, victim selection by this occurrence's orientation (the
  // na == nb tie-break picks the earlier field), refresh, audit.
  const FeatureId xa = ws->unique_feats[ua];
  const FeatureId xb = ws->unique_feats[ub];
  const double pair_gap = NormalizedClockGap(
      ws->feat_clock[ua], access_freq_[xa], ws->feat_clock[ub],
      access_freq_[xb], config_.bound.normalize_by_frequency);
  if (pair_gap <= static_cast<double>(config_.bound.s)) {
    if (pair_gap > ws->max_inter_norm_gap) {
      ws->max_inter_norm_gap = pair_gap;
    }
    return;
  }
  ++ws->inter_flags;
  // Refresh the stale secondary (the one with the smaller normalized
  // clock); if both are secondary, refresh the laggard. A refresh only
  // helps if the replica actually lags its primary (lag 0 replicas cannot
  // be made fresher — re-fetching them would thrash without changing the
  // pair's clocks).
  const bool sec_a = ws->feat_kind[ua] == kSecondary;
  const bool sec_b = ws->feat_kind[ub] == kSecondary;
  const double na = access_freq_[xa] > 0
                        ? ws->feat_clock[ua] / access_freq_[xa]
                        : 0.0;
  const double nb = access_freq_[xb] > 0
                        ? ws->feat_clock[ub] / access_freq_[xb]
                        : 0.0;
  int32_t victim;
  if (sec_a && sec_b) {
    victim = na <= nb ? ua : ub;
  } else {
    victim = sec_a ? ua : ub;
  }
  const FeatureId xv = ws->unique_feats[victim];
  const uint64_t primary_v = PrimaryClock(xv);
  if (primary_v > ws->feat_clock[victim]) {
    RefreshSecondary(ws, xv, ws->feat_slot[victim]);
    ws->feat_clock[victim] =
        caches_[ws->id]->synced_clock(ws->feat_slot[victim]);
    CopyRow(ws->unique_values.row(victim),
            caches_[ws->id]->Value(ws->feat_slot[victim]),
            config_.embedding_dim);
    ++ws->inter_refreshes;
    // Keep the screen's hoisted clocks in step with the refresh.
    if (!ws->raw_clock.empty()) {
      const double fv = ws->freq[victim];
      const double cv = static_cast<double>(ws->feat_clock[victim]);
      ws->raw_clock[victim] = cv;
      ws->norm_clock[victim] = fv > 0.0 ? cv / fv : 0.0;
    }
  }
  // Audit the §5.3 guarantee for flagged pairs: the sync pass must leave
  // the pair fresh, or the lagging replica fully caught up with the
  // primary clock the decision observed (any residual normalized gap is
  // then frequency asymmetry, not staleness).
  if (ws->feat_clock[victim] < primary_v &&
      !InterEmbeddingFresh(ws->feat_clock[ua], access_freq_[xa],
                           ws->feat_clock[ub], access_freq_[xb],
                           config_.bound)) {
    ++ws->inter_violations;
  }
}

HETGMP_HOT_PATH void Engine::TrainIteration(WorkerState* ws) {
  if (config_.reference_hotpath) {
    TrainIterationReference(ws);
  } else {
    TrainIterationPlanned(ws);
  }
}

HETGMP_HOT_PATH HETGMP_BIT_STABLE void Engine::TrainIterationPlanned(
    WorkerState* ws) {
  const int w = ws->id;
  const int F = train_.num_fields();
  const int d = config_.embedding_dim;
  const int64_t B = ws->batch_size;
  StageClock stage;

  // ---- 1. Select the batch (cyclic over local samples). ----
  ws->batch_samples.clear();
  ws->batch_labels.clear();
  const int64_t local = static_cast<int64_t>(ws->local_samples.size());
  for (int64_t b = 0; b < B; ++b) {
    const int64_t s = ws->local_samples[ws->cursor % local];
    ++ws->cursor;
    ws->batch_samples.push_back(s);
    ws->batch_labels.push_back(train_.label(s));
  }

  // ---- 2. Batch plan: one [B×F] → unique-index table for the whole
  // iteration (steps 3b, 4 and 6 consume it; nothing re-hashes). ----
  ws->feat_kind.clear();
  ws->feat_slot.clear();
  ws->feat_clock.clear();
  const int64_t U = BuildBatchPlan(ws);

  if (tier_store_ != nullptr) {
    // Hold the batch's working set resident for the whole iteration (the
    // arena math below runs only on pinned rows), then hand the *next*
    // batch's features to the prefetcher so its promotions overlap this
    // iteration's compute.
    tier_store_->PinBatch(ws->unique_feats.data(), U);
    if (prefetch_ != nullptr) SubmitNextBatchPrefetch(ws);
  }

  // ---- 3. Gather (Read op) with staleness checks. ----
  ws->unique_values.ResizeUninit(U, d);  // every row written by Resolve
  for (int64_t u = 0; u < U; ++u) {
    ResolveFeature(ws, ws->unique_feats[u], ws->unique_values.row(u));
  }
  ws->stage_gather += stage.Lap();

  // ---- 3b. Inter-embedding synchronization (② in Figure 6), screened:
  // the occurrence scan is unchanged, but each occurrence first compares
  // a per-element hoisted bound against min(s, running max gap). An
  // occurrence under that bound is provably a no-op of the full check
  // (fresh, and folding its gap cannot move the max), so only stale or
  // near-max pairs execute the per-occurrence math — which stays exactly
  // the reference's, refresh interleaving included. ----
  if (config_.consistency == ConsistencyMode::kGraphBounded &&
      !config_.bound.unbounded() && caches_[w]->size() > 0) {
    const bool normalize = config_.bound.normalize_by_frequency;
    ws->norm_clock.resize(static_cast<size_t>(U));
    ws->raw_clock.resize(static_cast<size_t>(U));
    ws->freq.resize(static_cast<size_t>(U));
    for (int64_t u = 0; u < U; ++u) {
      const double f = access_freq_[ws->unique_feats[u]];
      const double c = static_cast<double>(ws->feat_clock[u]);
      ws->freq[u] = f;
      ws->raw_clock[u] = c;
      ws->norm_clock[u] = f > 0.0 ? c / f : 0.0;
    }
    const double s_bound = static_cast<double>(config_.bound.s);
    const int32_t* plan = ws->plan.data();
    const double* norm = ws->norm_clock.data();
    const double* raw = ws->raw_clock.data();
    const double* freq = ws->freq.data();
    const uint8_t* kind = ws->feat_kind.data();
    // Per-row contiguous copies of the screen inputs (reused WorkerState
    // scratch — see row_val's comment), so the O(F^2) scans read dense
    // arrays instead of gathering through the plan; rval holds the
    // normalized (or raw) clock the per-pair screen compares.
    ws->row_val.resize(static_cast<size_t>(F));
    ws->row_freq.resize(static_cast<size_t>(F));
    ws->row_kind.resize(static_cast<size_t>(F));
    double* const rval = ws->row_val.data();
    double* const rfreq = ws->row_freq.data();
    uint8_t* const rkind = ws->row_kind.data();
    for (int64_t b = 0; b < B; ++b) {
      const int32_t* prow = plan + b * F;
      bool nonpos_freq = false;
      double maxv = -1.0, minv = 0.0;
      for (int f = 0; f < F; ++f) {
        const int32_t u = prow[f];
        const double v = normalize ? norm[u] : raw[u];
        rval[f] = v;
        rfreq[f] = freq[u];
        rkind[f] = kind[u];
        if (freq[u] <= 0.0) nonpos_freq = true;
        if (f == 0) {
          maxv = minv = v;
        } else {
          if (v > maxv) maxv = v;
          if (v < minv) minv = v;
        }
      }
      double thresh = s_bound < ws->max_inter_norm_gap
                          ? s_bound
                          : ws->max_inter_norm_gap;
      // Elements with a mix of normalized and raw partners (freq <= 0
      // under normalization) fall through to the per-pair screen; in
      // practice every batch feature has freq >= 1.
      const bool element_screen = !(normalize && nonpos_freq);
      for (int a = 0; a < F; ++a) {
        if (element_screen) {
          // Whole-element screen: every pair bound involving a is at most
          // f_a * spread_a + slack (f_min <= f_a and |n_a - n_b| <= the
          // row spread around a), so one comparison can retire all F-a-1
          // pairs at once.
          const double hi = maxv - rval[a];
          const double lo = rval[a] - minv;
          const double spread = hi > lo ? hi : lo;
          const double qa =
              normalize ? rfreq[a] * spread + kScreenSlack : spread;
          if (qa <= thresh) continue;
        }
        const int32_t ua = prow[a];
        const bool sec_a = rkind[a] == kSecondary;
        for (int b2 = a + 1; b2 < F; ++b2) {
          const int32_t ub = prow[b2];
          if (ua == ub) continue;
          // Only a secondary can be refreshed; primaries are never stale.
          if (!sec_a && rkind[b2] != kSecondary) continue;
          double bound;
          const double fa = rfreq[a], fb = rfreq[b2];
          if (normalize && fa > 0.0 && fb > 0.0) {
            const double diff = rval[a] - rval[b2];
            const double fmin = fa < fb ? fa : fb;
            bound = fmin * (diff < 0 ? -diff : diff) + kScreenSlack;
          } else {
            // Raw-clock gap: integer-valued doubles, exact either route.
            const double diff = raw[ua] - raw[ub];
            bound = diff < 0 ? -diff : diff;
          }
          if (bound <= thresh) continue;
          const int64_t refreshes_before = ws->inter_refreshes;
          ExecPairCheck(ws, ua, ub);
          // The check may have grown the running max gap (cheap: just
          // re-derive the threshold). Only a refresh moves a clock; when
          // one happened, re-sync every cached copy (either element can
          // recur later in the row) and widen the spread so later
          // screens stay exact.
          thresh = s_bound < ws->max_inter_norm_gap
                       ? s_bound
                       : ws->max_inter_norm_gap;
          if (ws->inter_refreshes != refreshes_before) {
            const double va = normalize ? norm[ua] : raw[ua];
            const double vb = normalize ? norm[ub] : raw[ub];
            for (int f = 0; f < F; ++f) {
              if (prow[f] == ua) rval[f] = va;
              if (prow[f] == ub) rval[f] = vb;
            }
            if (va > maxv) maxv = va;
            if (va < minv) minv = va;
            if (vb > maxv) maxv = vb;
            if (vb < minv) minv = vb;
          }
        }
      }
    }
  }
  ws->stage_inter += stage.Lap();

  // ---- 4. Assemble the embedding block [B, F*d] via the plan. ----
  ws->emb_in.ResizeUninit(B, static_cast<int64_t>(F) * d);
  {
    const int32_t* plan = ws->plan.data();
    for (int64_t b = 0; b < B; ++b) {
      const int32_t* prow = plan + b * F;
      float* row = ws->emb_in.row(b);
      for (int f = 0; f < F; ++f) {
        CopyRow(row + static_cast<int64_t>(f) * d,
                ws->unique_values.row(prow[f]), d);
      }
    }
  }
  ws->stage_gather += stage.Lap();

  // ---- 5. Dense forward/backward. ----
  EmbeddingModel& model = *models_[w];
  model.Forward(ws->emb_in, &ws->logits);
  const double loss =
      BceWithLogits(ws->logits, ws->batch_labels, &ws->dlogits);
  model.Backward(ws->dlogits, &ws->demb_in);
  ws->loss_sum += loss;
  ++ws->loss_count;
  double compute_sec =
      static_cast<double>(B) *
      static_cast<double>(model.FlopsPerSample()) / config_.device_flops;
  if (static_cast<size_t>(w) < config_.worker_slowdown.size()) {
    compute_sec *= config_.worker_slowdown[w];
  }
  ws->compute_time += compute_sec;
  ws->sim_time += compute_sec;
  ws->stage_dense += stage.Lap();

  // ---- 6. Scatter embedding gradients (Update op) via the plan. ----
  ws->unique_grads.Resize(U, d);  // zero-filled accumulator
  {
    const int32_t* plan = ws->plan.data();
    for (int64_t b = 0; b < B; ++b) {
      const int32_t* prow = plan + b * F;
      const float* grow = ws->demb_in.row(b);
      for (int f = 0; f < F; ++f) {
        AccumulateRow(ws->unique_grads.row(prow[f]),
                      grow + static_cast<int64_t>(f) * d, d);
      }
    }
  }
  ScatterGradients(ws);
  ws->stage_scatter += stage.Lap();

  // ---- 7./8. Write-back + batched fabric charges. ----
  FlushStaggered(ws);
  ChargePendingTransfers(ws);
  if (tier_store_ != nullptr) {
    tier_store_->UnpinBatch(ws->unique_feats.data(), U);
  }
  ws->stage_flush += stage.Lap();

  ws->samples_done += B;
  ws->iter_count.fetch_add(1, std::memory_order_release);
}

// The pre-batch-plan implementation, kept verbatim as the measured
// baseline for bench_train_hotpath and the golden-trajectory tests
// (EngineConfig::reference_hotpath). Do not optimize this path.
void Engine::TrainIterationReference(WorkerState* ws) {
  const int w = ws->id;
  const int F = train_.num_fields();
  const int d = config_.embedding_dim;
  const int64_t B = ws->batch_size;
  StageClock stage;

  // ---- 1. Select the batch (cyclic over local samples). ----
  ws->batch_samples.clear();
  ws->batch_labels.clear();
  const int64_t local = static_cast<int64_t>(ws->local_samples.size());
  for (int64_t b = 0; b < B; ++b) {
    const int64_t s = ws->local_samples[ws->cursor % local];
    ++ws->cursor;
    ws->batch_samples.push_back(s);
    ws->batch_labels.push_back(train_.label(s));
  }

  // ---- 2. Unique feature set of the batch. ----
  ws->feat_index.clear();
  ws->unique_feats.clear();
  ws->feat_kind.clear();
  ws->feat_slot.clear();
  ws->feat_clock.clear();
  for (int64_t s : ws->batch_samples) {
    const FeatureId* feats = train_.sample_features(s);
    for (int f = 0; f < F; ++f) {
      ws->feat_index.emplace(feats[f],
                             static_cast<int32_t>(ws->unique_feats.size()));
      if (static_cast<size_t>(ws->feat_index.size()) >
          ws->unique_feats.size()) {
        ws->unique_feats.push_back(feats[f]);
      }
    }
  }
  const int64_t U = static_cast<int64_t>(ws->unique_feats.size());

  // ---- 3. Gather (Read op) with staleness checks. ----
  ws->unique_values.Resize({U, d});
  for (int64_t u = 0; u < U; ++u) {
    ResolveFeature(ws, ws->unique_feats[u], ws->unique_values.row(u));
  }
  ws->stage_gather += stage.Lap();

  // ---- 3b. Inter-embedding synchronization (② in Figure 6). ----
  if (config_.consistency == ConsistencyMode::kGraphBounded &&
      !config_.bound.unbounded() && caches_[w]->size() > 0) {
    for (int64_t s : ws->batch_samples) {
      const FeatureId* feats = train_.sample_features(s);
      for (int a = 0; a < F; ++a) {
        const int32_t ua = ws->feat_index[feats[a]];
        for (int b = a + 1; b < F; ++b) {
          const int32_t ub = ws->feat_index[feats[b]];
          if (ua == ub) continue;
          // Only a secondary can be refreshed; primaries are never stale.
          const bool sec_a = ws->feat_kind[ua] == kSecondary;
          const bool sec_b = ws->feat_kind[ub] == kSecondary;
          if (!sec_a && !sec_b) continue;
          const FeatureId xa = ws->unique_feats[ua];
          const FeatureId xb = ws->unique_feats[ub];
          // Inlined InterEmbeddingFresh (the outer condition guarantees a
          // bounded s) so the accepted gap can feed the staleness audit.
          const double pair_gap = NormalizedClockGap(
              ws->feat_clock[ua], access_freq_[xa], ws->feat_clock[ub],
              access_freq_[xb], config_.bound.normalize_by_frequency);
          if (pair_gap <= static_cast<double>(config_.bound.s)) {
            if (pair_gap > ws->max_inter_norm_gap) {
              ws->max_inter_norm_gap = pair_gap;
            }
            continue;
          }
          ++ws->inter_flags;
          // Refresh the stale secondary (the one with the smaller
          // normalized clock); if both are secondary, refresh the laggard.
          // A refresh only helps if the replica actually lags its primary
          // (lag 0 replicas cannot be made fresher — re-fetching them
          // would thrash without changing the pair's clocks).
          const double na = access_freq_[xa] > 0
                                ? ws->feat_clock[ua] / access_freq_[xa]
                                : 0.0;
          const double nb = access_freq_[xb] > 0
                                ? ws->feat_clock[ub] / access_freq_[xb]
                                : 0.0;
          int32_t victim;
          if (sec_a && sec_b) {
            victim = na <= nb ? ua : ub;
          } else {
            victim = sec_a ? ua : ub;
          }
          const FeatureId xv = ws->unique_feats[victim];
          const uint64_t primary_v = PrimaryClock(xv);
          if (primary_v > ws->feat_clock[victim]) {
            RefreshSecondary(ws, xv, ws->feat_slot[victim]);
            ws->feat_clock[victim] =
                caches_[w]->synced_clock(ws->feat_slot[victim]);
            const float* v = caches_[w]->Value(ws->feat_slot[victim]);
            float* row = ws->unique_values.row(victim);
            for (int c = 0; c < d; ++c) row[c] = v[c];
            ++ws->inter_refreshes;
          }
          // Audit the §5.3 guarantee for flagged pairs: the sync pass must
          // leave the pair fresh, or the lagging replica fully caught up
          // with the primary clock the decision observed (any residual
          // normalized gap is then frequency asymmetry, not staleness).
          if (ws->feat_clock[victim] < primary_v &&
              !InterEmbeddingFresh(ws->feat_clock[ua], access_freq_[xa],
                                   ws->feat_clock[ub], access_freq_[xb],
                                   config_.bound)) {
            ++ws->inter_violations;
          }
        }
      }
    }
  }
  ws->stage_inter += stage.Lap();

  // ---- 4. Assemble the embedding block [B, F*d]. ----
  ws->emb_in.Resize({B, static_cast<int64_t>(F) * d});
  for (int64_t b = 0; b < B; ++b) {
    const FeatureId* feats = train_.sample_features(ws->batch_samples[b]);
    float* row = ws->emb_in.row(b);
    for (int f = 0; f < F; ++f) {
      const int32_t u = ws->feat_index[feats[f]];
      const float* v = ws->unique_values.row(u);
      for (int c = 0; c < d; ++c) row[f * d + c] = v[c];
    }
  }
  ws->stage_gather += stage.Lap();

  // ---- 5. Dense forward/backward. ----
  EmbeddingModel& model = *models_[w];
  model.Forward(ws->emb_in, &ws->logits);
  const double loss =
      BceWithLogits(ws->logits, ws->batch_labels, &ws->dlogits);
  model.Backward(ws->dlogits, &ws->demb_in);
  ws->loss_sum += loss;
  ++ws->loss_count;
  double compute_sec =
      static_cast<double>(B) *
      static_cast<double>(model.FlopsPerSample()) / config_.device_flops;
  if (static_cast<size_t>(w) < config_.worker_slowdown.size()) {
    compute_sec *= config_.worker_slowdown[w];
  }
  ws->compute_time += compute_sec;
  ws->sim_time += compute_sec;
  ws->stage_dense += stage.Lap();

  // ---- 6. Scatter embedding gradients (Update op). ----
  ws->unique_grads.Resize({U, d});
  for (int64_t b = 0; b < B; ++b) {
    const FeatureId* feats = train_.sample_features(ws->batch_samples[b]);
    const float* grow = ws->demb_in.row(b);
    for (int f = 0; f < F; ++f) {
      const int32_t u = ws->feat_index[feats[f]];
      float* g = ws->unique_grads.row(u);
      for (int c = 0; c < d; ++c) g[c] += grow[f * d + c];
    }
  }
  ScatterGradients(ws);
  ws->stage_scatter += stage.Lap();

  // ---- 7./8. Write-back + batched fabric charges. ----
  FlushStaggered(ws);
  ChargePendingTransfers(ws);
  ws->stage_flush += stage.Lap();

  ws->samples_done += B;
  ws->iter_count.fetch_add(1, std::memory_order_release);
}

HETGMP_HOT_PATH void Engine::ScatterGradients(WorkerState* ws) {
  const int w = ws->id;
  const int d = config_.embedding_dim;
  const int64_t U = static_cast<int64_t>(ws->unique_feats.size());
  for (int64_t u = 0; u < U; ++u) {
    const FeatureId x = ws->unique_feats[u];
    const float* grad = ws->unique_grads.row(u);
    switch (ws->feat_kind[u]) {
      case kLocalPrimary:
        PrimaryApplyGradient(x, grad);
        clocks_->Increment(w, x);
        break;
      case kSecondary: {
        // Local update on the cached copy plus a pending write-back.
        ReplicaStore& cache = *caches_[w];
        const int64_t slot = ws->feat_slot[u];
        SgdUpdateRow(cache.Value(slot), grad, d, config_.embed_lr);
        cache.AccumulatePending(slot, grad);
        break;
      }
      case kRemoteFetch: {
        const int owner = partition_.embedding_owner[x];
        PrimaryApplyGradient(x, grad);
        clocks_->Increment(owner, x);
        ws->push_bytes[owner] += table_->RowBytes();
        ws->index_bytes[owner] += kIdBytes;
        if (config_.transport.enabled) {
          WorkerState::PeerWireLog& log = ws->wire_log[owner];
          log.index_ids.push_back(x);
          log.push_ids.push_back(x);
          log.push_vals.insert(log.push_vals.end(), grad, grad + d);
        }
        break;
      }
      case kHostFetch: {
        PrimaryApplyGradient(x, grad);
        const int host = static_cast<int>(x % topology_.num_machines());
        ws->host_push_bytes[host] += table_->RowBytes();
        ws->host_index_bytes[host] += kIdBytes;
        break;
      }
    }
  }
}

// Step 7: write back pending secondary updates ("local reduction then
// write to primaries", §6). With write_back_every > 1, flushes are
// staggered across iterations by slot; ForceFlushRound covers the
// remainder at round barriers.
HETGMP_HOT_PATH void Engine::FlushStaggered(WorkerState* ws) {
  const int64_t U = static_cast<int64_t>(ws->unique_feats.size());
  const int64_t wbe = std::max(1, config_.write_back_every);
  const int64_t iter_now = ws->iter_count.load(std::memory_order_relaxed);
  for (int64_t u = 0; u < U; ++u) {
    if (ws->feat_kind[u] != kSecondary) continue;
    if (wbe == 1 || (iter_now + ws->feat_slot[u]) % wbe == 0) {
      FlushSecondary(ws, ws->unique_feats[u], ws->feat_slot[u]);
    }
  }
}

void Engine::ForceFlushRound(WorkerState* ws) {
  ReplicaStore& cache = *caches_[ws->id];
  for (int64_t slot = 0; slot < cache.size(); ++slot) {
    const FeatureId id = cache.IdAt(slot);
    if (id >= 0 && cache.pending_count(slot) > 0) {
      FlushSecondary(ws, id, slot);
    }
  }
  ChargePendingTransfers(ws);
}

// Flushes the per-iteration byte tallies into the fabric (one batched
// message per peer per direction) and charges the issuing worker's clock.
HETGMP_HOT_PATH void Engine::ChargePendingTransfers(WorkerState* ws) {
  const int w = ws->id;
  double comm_sec = 0.0;
  const int N = topology_.num_workers();
  for (int o = 0; o < N; ++o) {
    if (ws->fetch_bytes[o] != 0) {
      comm_sec += fabric_->Transfer(o, w, ws->fetch_bytes[o],
                                    TrafficClass::kEmbedding);
      ws->fetch_bytes[o] = 0;
    }
    if (ws->push_bytes[o] != 0) {
      comm_sec += fabric_->Transfer(w, o, ws->push_bytes[o],
                                    TrafficClass::kEmbedding);
      ws->push_bytes[o] = 0;
    }
    if (ws->index_bytes[o] != 0) {
      comm_sec += fabric_->Transfer(w, o, ws->index_bytes[o],
                                    TrafficClass::kIndexClock);
      ws->index_bytes[o] = 0;
    }
  }
  for (int m = 0; m < topology_.num_machines(); ++m) {
    if (ws->host_fetch_bytes[m] != 0) {
      comm_sec += fabric_->TransferToHost(w, m, ws->host_fetch_bytes[m],
                                          TrafficClass::kEmbedding);
      ws->host_fetch_bytes[m] = 0;
    }
    if (ws->host_push_bytes[m] != 0) {
      comm_sec += fabric_->TransferToHost(w, m, ws->host_push_bytes[m],
                                          TrafficClass::kEmbedding);
      ws->host_push_bytes[m] = 0;
    }
    if (ws->host_index_bytes[m] != 0) {
      comm_sec += fabric_->TransferToHost(w, m, ws->host_index_bytes[m],
                                          TrafficClass::kIndexClock);
      ws->host_index_bytes[m] = 0;
    }
  }
  ws->comm_time += comm_sec;
  ws->sim_time += comm_sec;
}

void Engine::SyncDense(WorkerState* ws) {
  EmbeddingModel& model = *models_[ws->id];
  const uint64_t payload = model.DenseParamBytes();
  const int N = topology_.num_workers();
  double comm_sec = 0.0;
  if (config_.strategy == Strategy::kTfPs) {
    // Push gradients and pull parameters through the CPU PS.
    const int m = topology_.machine_of(ws->id);
    comm_sec += fabric_->TransferToHost(ws->id, m, payload,
                                        TrafficClass::kAllReduce);
    comm_sec += fabric_->TransferToHost(ws->id, m, payload,
                                        TrafficClass::kAllReduce);
  } else if (N > 1) {
    // Ring AllReduce; each worker charges its own outgoing hop so the
    // total matches one collective.
    const uint64_t hop = RingAllReduceBytesPerWorker(N, payload);
    fabric_->Transfer(ws->id, (ws->id + 1) % N, hop,
                      TrafficClass::kAllReduce);
    comm_sec += RingAllReduceTime(topology_, payload);
  }
  ws->comm_time += comm_sec;
  ws->sim_time += comm_sec;
}

HETGMP_BIT_STABLE void Engine::AverageDenseReplicas(bool grads) {
  const int N = topology_.num_workers();
  if (N <= 1) return;
  std::vector<std::vector<Tensor*>> all(N);
  for (int p = 0; p < N; ++p) {
    all[p] = grads ? models_[p]->DenseGrads() : models_[p]->DenseParams();
  }
  const size_t num_tensors = all[0].size();
  const float inv = 1.0f / static_cast<float>(N);

  if (config_.reference_hotpath) {
    // Reference: three separate passes (sum into replica 0, scale,
    // broadcast), as the pre-plan engine did.
    for (size_t t = 0; t < num_tensors; ++t) {
      Tensor* first = all[0][t];
      for (int p = 1; p < N; ++p) {
        Tensor* other = all[p][t];
        for (int64_t i = 0; i < first->size(); ++i) {
          first->at(i) += other->at(i);
        }
      }
      for (int64_t i = 0; i < first->size(); ++i) first->at(i) *= inv;
      for (int p = 1; p < N; ++p) {
        Tensor* other = all[p][t];
        for (int64_t i = 0; i < first->size(); ++i) {
          other->at(i) = first->at(i);
        }
      }
    }
    return;
  }

  // Fused sum+scale+broadcast: one pass, one store per replica element.
  // Bit-identical to the reference — element i accumulates replicas in
  // ascending worker order in float (matching the reference's += into
  // replica 0), scales once, then broadcasts. Elements are independent,
  // so chunking across serial_pool_ preserves every result bit.
  std::vector<float*> rows(N);
  for (size_t t = 0; t < num_tensors; ++t) {
    const int64_t size = all[0][t]->size();
    if (size == 0) continue;
    for (int p = 0; p < N; ++p) rows[p] = all[p][t]->data();
    auto fuse = [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        float acc = rows[0][i];
        for (int p = 1; p < N; ++p) acc += rows[p][i];
        acc *= inv;
        for (int p = 0; p < N; ++p) rows[p][i] = acc;
      }
    };
    if (serial_pool_ != nullptr && size >= 4096) {
      serial_pool_->RunChunks(
          size, serial_pool_->num_threads(),
          [&](int /*chunk*/, int64_t begin, int64_t end) {
            fuse(begin, end);
          });
    } else {
      fuse(0, size);
    }
  }
}

void Engine::RunWorkerRound(WorkerState* ws, int64_t iters) {
  const bool bsp = config_.consistency == ConsistencyMode::kBsp;
  const int N = topology_.num_workers();

  for (int64_t it = 0; it < iters; ++it) {
    if (config_.consistency == ConsistencyMode::kSsp) {
      // Throttle: stay within ssp_slack iterations of the slowest worker.
      for (;;) {
        int64_t min_iter = workers_[0]->iter_count.load(
            std::memory_order_acquire);
        for (int p = 1; p < N; ++p) {
          min_iter = std::min(min_iter, workers_[p]->iter_count.load(
                                            std::memory_order_acquire));
        }
        if (ws->iter_count.load(std::memory_order_relaxed) - min_iter <=
            config_.ssp_slack) {
          break;
        }
        std::this_thread::yield();
      }
    }

    TrainIteration(ws);
    SyncDense(ws);

    if (bsp && N > 1) {
      // Exact BSP: average dense gradients across replicas and align
      // simulated clocks to the straggler, every iteration.
      if (iter_barrier_.ArriveAndWait()) {
        AverageDenseReplicas(/*grads=*/true);
        bsp_shared_max_time_ = 0.0;
        for (int p = 0; p < N; ++p) {
          bsp_shared_max_time_ =
              std::max(bsp_shared_max_time_, workers_[p]->sim_time);
        }
      }
      iter_barrier_.ArriveAndWait();
      ws->sim_time = bsp_shared_max_time_;
    }

    // Apply the (possibly averaged) dense gradients.
    ws->dense_opt->Step(models_[ws->id]->DenseParams(),
                        models_[ws->id]->DenseGrads());
    models_[ws->id]->ZeroGrads();
    if (bsp && N > 1) {
      // Keep replicas bit-identical: a third rendezvous before anyone
      // starts mutating gradients again.
      iter_barrier_.ArriveAndWait();
    }
  }

  // Round boundary: force-flush every pending secondary write-back so the
  // primaries are complete for evaluation (per-iteration flushing leaves
  // nothing pending when write_back_every == 1).
  if (config_.write_back_every > 1) {
    ForceFlushRound(ws);
  }
}

Status Engine::ValidateInvariants() const {
  const int N = topology_.num_workers();
  for (int w = 0; w < N; ++w) {
    const ReplicaStore& cache = *caches_[w];
    for (int64_t slot = 0; slot < cache.size(); ++slot) {
      const FeatureId id = cache.IdAt(slot);
      if (id < 0) continue;
      if (cache.pending_count(slot) != 0) {
        return Status::Internal(
            "worker " + std::to_string(w) + " slot " +
            std::to_string(slot) + " has unflushed pending updates");
      }
      const uint64_t primary =
          clocks_->Get(partition_.embedding_owner[id], id);
      if (cache.synced_clock(slot) > primary) {
        return Status::Internal(
            "worker " + std::to_string(w) + " replica of embedding " +
            std::to_string(id) + " is ahead of its primary clock");
      }
    }
  }
  // Dense replicas agree (round boundaries re-average them).
  auto params0 = models_[0]->DenseParams();
  for (int w = 1; w < N; ++w) {
    auto params = models_[w]->DenseParams();
    if (params.size() != params0.size()) {
      return Status::Internal("dense tensor count mismatch");
    }
    for (size_t t = 0; t < params.size(); ++t) {
      for (int64_t i = 0; i < params0[t]->size(); ++i) {
        if (params[t]->at(i) != params0[t]->at(i)) {
          return Status::Internal(
              "dense replicas diverge at worker " + std::to_string(w) +
              " tensor " + std::to_string(t));
        }
      }
    }
  }
  return Status::OK();
}

HETGMP_BIT_STABLE double Engine::EvaluateAuc() {
  const int F = train_.num_fields();
  const int d = config_.embedding_dim;
  const int64_t n = test_.num_samples();
  if (n == 0) return 0.5;
  constexpr int64_t kChunk = 2048;
  const int N = topology_.num_workers();

  if (serial_pool_ != nullptr && n >= 2 * kChunk) {
    // Parallel evaluation across the serial pool. Every per-row score is
    // computed by exactly the same per-row math as the serial path (the
    // dense forward is row-independent), and the model replicas are
    // bit-identical whenever this runs (same-seed init; re-averaged at
    // every round boundary before evaluation), so chunk c may use
    // replica c without changing a single bit of the result.
    const int num_chunks =
        std::min(serial_pool_->num_threads(), N);
    std::vector<float> scores(n);
    serial_pool_->RunChunks(
        n, num_chunks, [&](int chunk, int64_t begin, int64_t end) {
          Tensor emb_in;
          Tensor logits;
          EmbeddingModel& model = *models_[chunk];
          for (int64_t start = begin; start < end; start += kChunk) {
            const int64_t len = std::min(kChunk, end - start);
            emb_in.Resize({len, static_cast<int64_t>(F) * d});
            for (int64_t i = 0; i < len; ++i) {
              const FeatureId* feats = test_.sample_features(start + i);
              float* row = emb_in.row(i);
              for (int f = 0; f < F; ++f) {
                PeekPrimaryRow(feats[f],
                               row + static_cast<int64_t>(f) * d);
              }
            }
            model.Forward(emb_in, &logits);
            for (int64_t i = 0; i < len; ++i) {
              scores[start + i] = logits.at(i);
            }
          }
        });
    return ComputeAuc(scores, test_.labels());
  }

  std::vector<float> scores;
  scores.reserve(n);
  Tensor emb_in;
  Tensor logits;
  EmbeddingModel& model = *models_[0];
  for (int64_t start = 0; start < n; start += kChunk) {
    const int64_t len = std::min(kChunk, n - start);
    emb_in.Resize({len, static_cast<int64_t>(F) * d});
    for (int64_t i = 0; i < len; ++i) {
      const FeatureId* feats = test_.sample_features(start + i);
      float* row = emb_in.row(i);
      for (int f = 0; f < F; ++f) {
        if (tier_store_ != nullptr) {
          PeekPrimaryRow(feats[f], row + static_cast<int64_t>(f) * d);
        } else {
          const float* v = table_->UnsafeRow(feats[f]);
          for (int c = 0; c < d; ++c) row[f * d + c] = v[c];
        }
      }
    }
    model.Forward(emb_in, &logits);
    for (int64_t i = 0; i < len; ++i) {
      scores.push_back(logits.at(i));
    }
  }
  return ComputeAuc(scores, test_.labels());
}

void Engine::SetPublishHook(PublishHook hook, int every_rounds) {
  publish_hook_ = std::move(hook);
  publish_every_rounds_ = every_rounds;
}

bool Engine::RoundSerialSection(int round, int total_rounds,
                                double auc_target, double sim_time_budget,
                                TrainResult* result, Mutex* result_mu) {
  const int N = topology_.num_workers();
  // Engine-over-transport: replay the round's logged traffic over the
  // real Transport before the dense re-average mutates the replicas (the
  // wire AllReduce runs on scratch copies of the still-divergent params,
  // exactly the state the re-average below consumes). Touches neither
  // fabric_ nor any RoundStats input, so trajectories stay bit-identical.
  if (config_.transport.enabled) WireExchangeRound(round);
  if (config_.consistency != ConsistencyMode::kBsp && N > 1) {
    // Asynchronous modes: re-average the dense replicas (local-SGD
    // style; per-iteration sync cost was already charged).
    AverageDenseReplicas(/*grads=*/false);
  }
  double max_time = 0.0;
  for (int p = 0; p < N; ++p) {
    max_time = std::max(max_time, workers_[p]->sim_time);
  }
  for (int p = 0; p < N; ++p) workers_[p]->sim_time = max_time;

  RoundStats rs;
  rs.round = round;
  rs.sim_time = max_time;
  rs.auc = EvaluateAuc();
  double loss_sum = 0.0;
  int64_t loss_count = 0;
  for (int p = 0; p < N; ++p) {
    rs.iterations_done += workers_[p]->iter_count.load();
    rs.remote_fetches += workers_[p]->remote_fetches;
    rs.intra_refreshes += workers_[p]->intra_refreshes;
    rs.inter_refreshes += workers_[p]->inter_refreshes;
    rs.inter_flags += workers_[p]->inter_flags;
    loss_sum += workers_[p]->loss_sum;
    loss_count += workers_[p]->loss_count;
    workers_[p]->loss_sum = 0.0;
    workers_[p]->loss_count = 0;
  }
  rs.train_loss = loss_count > 0 ? loss_sum / loss_count : 0.0;
  rs.embedding_bytes = fabric_->TotalBytes(TrafficClass::kEmbedding);
  rs.index_clock_bytes =
      fabric_->TotalBytes(TrafficClass::kIndexClock);
  rs.allreduce_bytes = fabric_->TotalBytes(TrafficClass::kAllReduce);
  {
    MutexLock lock(*result_mu);
    result->rounds.push_back(rs);
  }
  bool stop = false;
  if (auc_target > 0 && rs.auc >= auc_target) {
    result->reached_target = true;
    stop = true;
  }
  if (sim_time_budget > 0 && rs.sim_time >= sim_time_budget) {
    stop = true;
  }
  if (round == total_rounds - 1) stop = true;
  // Snapshot publication: every k-th round plus the final round, in
  // the serial section (all other workers are parked at the round
  // barrier, so the unsafe table reads in the hook are quiesced).
  if (publish_hook_ != nullptr && publish_every_rounds_ > 0 &&
      ((round + 1) % publish_every_rounds_ == 0 || stop)) {
    const std::vector<Tensor*> dense = models_[0]->DenseParams();
    const PublishContext ctx{*table_, dense, round, rs.iterations_done,
                             rs.sim_time, tier_store_.get()};
    const Status pub = publish_hook_(ctx);
    MutexLock lock(*result_mu);
    if (pub.ok()) {
      ++result->snapshots_published;
    } else {
      ++result->publish_failures;
      HETGMP_LOG(Warning) << "snapshot publish failed at round " << round
                          << ": " << pub.ToString();
    }
  }
  if (stop) stop_.store(true, std::memory_order_release);
  return stop;
}

void Engine::TrainRoundRobin(int total_rounds, int64_t iters_per_round,
                             double auc_target, double sim_time_budget,
                             TrainResult* result, Mutex* result_mu) {
  const int N = topology_.num_workers();
  const bool bsp = config_.consistency == ConsistencyMode::kBsp;
  // Note on SSP: the threaded driver throttles fast workers against the
  // slowest one's iteration count. Under this schedule workers advance in
  // lockstep (never more than one iteration apart), so the slack bound
  // can never be exceeded and the spin-wait is skipped rather than
  // polled.
  for (int round = 0; round < total_rounds; ++round) {
    if (stop_.load(std::memory_order_acquire)) break;
    for (int64_t it = 0; it < iters_per_round; ++it) {
      for (int w = 0; w < N; ++w) {
        TrainIteration(workers_[w].get());
        SyncDense(workers_[w].get());
      }
      if (bsp && N > 1) {
        AverageDenseReplicas(/*grads=*/true);
        double max_time = 0.0;
        for (int p = 0; p < N; ++p) {
          max_time = std::max(max_time, workers_[p]->sim_time);
        }
        for (int p = 0; p < N; ++p) workers_[p]->sim_time = max_time;
      }
      for (int w = 0; w < N; ++w) {
        workers_[w]->dense_opt->Step(models_[w]->DenseParams(),
                                     models_[w]->DenseGrads());
        models_[w]->ZeroGrads();
      }
    }
    if (config_.write_back_every > 1) {
      for (int w = 0; w < N; ++w) ForceFlushRound(workers_[w].get());
    }
    RoundSerialSection(round, total_rounds, auc_target, sim_time_budget,
                       result, result_mu);
  }
}

void Engine::FinalizeResult(TrainResult* result) {
  const int N = topology_.num_workers();
  result->final_auc =
      result->rounds.empty() ? 0.5 : result->rounds.back().auc;
  double compute = 0.0, comm = 0.0;
  for (int p = 0; p < N; ++p) {
    result->total_sim_time =
        std::max(result->total_sim_time, workers_[p]->sim_time);
    compute += workers_[p]->compute_time;
    comm += workers_[p]->comm_time;
    result->total_iterations += workers_[p]->iter_count.load();
    result->samples_processed += workers_[p]->samples_done;
    result->staleness.max_intra_gap = std::max(
        result->staleness.max_intra_gap, workers_[p]->max_intra_gap);
    result->staleness.max_inter_norm_gap =
        std::max(result->staleness.max_inter_norm_gap,
                 workers_[p]->max_inter_norm_gap);
    result->staleness.inter_violations += workers_[p]->inter_violations;
    result->stage_secs.gather += workers_[p]->stage_gather;
    result->stage_secs.inter_sync += workers_[p]->stage_inter;
    result->stage_secs.dense += workers_[p]->stage_dense;
    result->stage_secs.scatter += workers_[p]->stage_scatter;
    result->stage_secs.flush += workers_[p]->stage_flush;
  }
  result->compute_time = compute / N;
  result->comm_time = comm / N;
  for (int w = 0; w < N; ++w) {
    if (lru_caches_[w] != nullptr) {
      result->replica_cache.Merge(lru_caches_[w]->counters());
    }
  }
  if (tier_store_ != nullptr) {
    result->tiered = true;
    result->tiers = tier_store_->Stats();
    if (prefetch_ != nullptr) {
      const PrefetchPipeline::Stats ps = prefetch_->stats();
      result->tiers.prefetch_batches = ps.batches;
      result->tiers.prefetch_dropped = ps.dropped;
    }
  }
  result->wire = wire_stats_;
}

TrainResult Engine::Train(int max_epochs, double auc_target,
                          double sim_time_budget) {
  HETGMP_CHECK_GT(max_epochs, 0);
  const int N = topology_.num_workers();
  const int rounds_per_epoch = std::max(1, config_.rounds_per_epoch);
  const int64_t iters_per_round = std::max<int64_t>(
      1, (iters_per_epoch_ + rounds_per_epoch - 1) / rounds_per_epoch);
  const int total_rounds = max_epochs * rounds_per_epoch;

  stop_.store(false, std::memory_order_relaxed);
  TrainResult result;
  Mutex result_mu{lock_rank::kEngineMerge};

  // Per-Train wire accounting (the transport endpoints themselves keep
  // cumulative tallies, which tests compare after a single Train).
  wire_stats_ = TrainResult::WireStats{};
  wire_stats_.enabled = config_.transport.enabled;

  // Ownership hand-off: replica stores were last touched by whichever
  // thread constructed the engine or ran the previous Train; from here
  // each store belongs to its worker thread (or the round-robin driver).
  for (auto& cache : caches_) cache->ResetOwner();

  if (config_.deterministic) {
    TrainRoundRobin(total_rounds, iters_per_round, auc_target,
                    sim_time_budget, &result, &result_mu);
  } else {
    auto worker_main = [&](int w) {
      WorkerState* ws = workers_[w].get();
      for (int round = 0; round < total_rounds; ++round) {
        if (stop_.load(std::memory_order_acquire)) break;
        RunWorkerRound(ws, iters_per_round);
        if (round_barrier_.ArriveAndWait()) {
          // ---- Serial round-end section (exactly one thread). ----
          RoundSerialSection(round, total_rounds, auc_target,
                             sim_time_budget, &result, &result_mu);
        }
        round_barrier_.ArriveAndWait();
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(N);
    for (int w = 0; w < N; ++w) threads.emplace_back(worker_main, w);
    for (auto& t : threads) t.join();
  }

  // Hand ownership back to the calling thread (tests and checkpointing
  // touch the stores after training).
  for (auto& cache : caches_) cache->ResetOwner();

  // Let in-flight promotions land before the stats snapshot (and before
  // callers start peeking rows for checkpointing).
  if (prefetch_ != nullptr) prefetch_->Quiesce();

  FinalizeResult(&result);
  return result;
}

}  // namespace hetgmp
