// Engine-over-Transport (DESIGN.md §5h): replays the traffic the training
// hot path charged to the simulated Fabric ledger as real typed messages
// over a Transport, once per round, from the round-serial section. The
// cost model is untouched — fabric_, RoundStats, and simulated time are
// exactly what a transport-off run produces (golden parity tests) — while
// the bytes themselves move through the in-proc mailbox world or a
// connected SocketFabric mesh and are verified bit-exactly on arrival.
//
// Message plan, per ordered worker pair (w → o), per round, always sent
// (empty logs ship empty messages so counts stay deterministic):
//   exchange A (tag 2·round):   IndexClockMsg  index_ids  + clock
//                               EmbeddingBlock push rows  (w's write-backs)
//   exchange B (tag 2·round+1): IndexClockMsg  clock_ids  + clock
//                               EmbeddingBlock fetch rows o pulled from w
//                               (w owns them, so w is the wire sender)
// then one TransportAllReduceAverage over scratch copies of the dense
// parameters. Every payload a rank receives is compared against the
// locally reproduced expectation: in-proc trivially (all workers live
// here), under sockets because every rank runs the same deterministic
// simulation of all N workers — which is what makes a cross-process run
// a true end-to-end check, not just plumbing.
//
// Deadlock freedom of the pairwise loop (both backends buffer sends and
// deliver them even while the sender blocks in Recv): suppose every rank
// is blocked. Rank a blocked on peer b means b has not yet *started* its
// exchange with a (starting would have buffered the sends), so b's
// current peer p(b) < a, as peers are visited in increasing order. Pick
// the blocked rank r* whose current peer o* is minimal; then p(o*) < r*
// but also p(o*) >= o* by minimality — and o* <= p(o*) < r* gives a rank
// whose target is below the minimum. Contradiction, so someone always
// progresses.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "comm/protocol.h"
#include "common/logging.h"
#include "core/engine.h"
#include "core/engine_worker_state.h"

namespace hetgmp {

namespace {

// Bytes TransportAllReduceAverage sends from rank r for `total` floats
// over an n-rank world — the exact chunk schedule of protocol.cc
// (reduce-scatter chunk (r-s) mod n, allgather chunk (r+1-s) mod n, n-1
// steps each), so the tally is exact, not RingAllReduceBytesPerWorker's
// rounded closed form.
uint64_t RingAllReduceSentBytes(int n, int r, int64_t total) {
  if (n <= 1 || total == 0) return 0;
  const auto lo = [&](int c) { return static_cast<int64_t>(c) * total / n; };
  const auto chunk_bytes = [&](int c) {
    return static_cast<uint64_t>(lo(c + 1) - lo(c)) * sizeof(float);
  };
  uint64_t bytes = 0;
  for (int s = 0; s < n - 1; ++s) {
    bytes += chunk_bytes((r - s % n + n) % n);
    bytes += chunk_bytes((r + 1 - s + 2 * n) % n);
  }
  return bytes;
}

bool SameIds(const std::vector<FeatureId>& a,
             const std::vector<FeatureId>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(FeatureId)) == 0);
}

bool SameFloats(const std::vector<float>& a, const std::vector<float>& b) {
  // memcmp, not ==: bit-exact is the contract (and NaN-safe).
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

}  // namespace

void Engine::SetupWireTransport() {
  const int N = topology_.num_workers();
  using Backend = EngineConfig::TransportConfig::Backend;
  if (config_.transport.backend == Backend::kSocket) {
    // Socket SPMD mode: this process drives exactly one rank's endpoint,
    // and relies on the deterministic schedule so that every process's
    // full-world simulation agrees — that is what makes received payloads
    // verifiable (and the partition/trajectory identical across ranks).
    HETGMP_CHECK(config_.transport.socket != nullptr);
    HETGMP_CHECK(config_.deterministic);
    wire_socket_ = config_.transport.socket;
    HETGMP_CHECK_EQ(wire_socket_->world_size(), N);
    HETGMP_CHECK_GE(wire_socket_->rank(), 0);
    HETGMP_CHECK_LT(wire_socket_->rank(), N);
  } else {
    // In-proc default: a private mailbox world with Fabric charging on.
    // The charged ledger is wire_fabric_, never the engine's fabric_ —
    // the engine ledger feeds RoundStats and must stay bit-identical to
    // transport-off runs; the wire ledger exists so tests can equate the
    // two accountings per (src, dst, class).
    wire_fabric_ = std::make_unique<Fabric>(topology_);
    wire_group_ =
        std::make_unique<InProcTransportGroup>(N, wire_fabric_.get());
  }
  for (auto& ws : workers_) ws->wire_log.resize(N);
}

const Transport* Engine::wire_endpoint(int w) const {
  if (wire_group_ != nullptr) return wire_group_->endpoint(w);
  if (wire_socket_ != nullptr && w == wire_socket_->rank()) {
    return wire_socket_;
  }
  return nullptr;
}

void Engine::ClearWireLogs() {
  for (auto& ws : workers_) {
    for (auto& log : ws->wire_log) log.Clear();
  }
}

void Engine::WireExchangeRound(int round) {
  const int N = topology_.num_workers();
  const int d = config_.embedding_dim;
  const uint32_t tag_a = static_cast<uint32_t>(2 * round);
  const uint32_t tag_b = tag_a + 1;

  // Every worker has finished the same number of iterations at a round
  // barrier (fixed iters per round, stop only between rounds), so the
  // clock a peer announces is locally predictable.
  const uint64_t iter_clock =
      static_cast<uint64_t>(workers_[0]->iter_count.load());

  int64_t dense_total = 0;
  if (N > 1) {
    for (const Tensor* t : models_[0]->DenseParams()) {
      dense_total += t->size();
    }
  }

  // Fused expected average of the (still divergent) dense replicas,
  // ascending-worker float accumulation — the same order the engine's
  // own re-average uses. The ring collective sums in ring order instead,
  // so the comparison below is tolerance-based, never bitwise, and the
  // result is discarded rather than written back (the engine's
  // AverageDenseReplicas remains the single source of truth).
  std::vector<Tensor> dense_expected;
  if (N > 1 && dense_total > 0) {
    const std::vector<Tensor*> first = models_[0]->DenseParams();
    for (const Tensor* t : first) dense_expected.push_back(*t);
    for (int p = 1; p < N; ++p) {
      const std::vector<Tensor*> other = models_[p]->DenseParams();
      for (size_t t = 0; t < dense_expected.size(); ++t) {
        for (int64_t i = 0; i < dense_expected[t].size(); ++i) {
          dense_expected[t].at(i) += other[t]->at(i);
        }
      }
    }
    const float inv = 1.0f / static_cast<float>(N);
    for (Tensor& t : dense_expected) {
      for (int64_t i = 0; i < t.size(); ++i) t.at(i) *= inv;
    }
  }

  // The SPMD body one rank executes: pairwise §6 exchanges with every
  // peer in increasing order, then the dense collective on scratch
  // copies. Returns the number of verification failures.
  auto rank_body = [&](int w, Transport* t) -> int64_t {
    int64_t failures = 0;
    const WorkerState& me = *workers_[w];
    for (int o = 0; o < N; ++o) {
      if (o == w) continue;
      const WorkerState::PeerWireLog& out_log = me.wire_log[o];
      // What peer o sends toward w — reproduced from the local
      // simulation of worker o.
      const WorkerState::PeerWireLog& peer_out = workers_[o]->wire_log[w];

      // Exchange A: index announcements + pushed (written-back) rows.
      IndexClockMsg my_index;
      my_index.ids = out_log.index_ids;
      my_index.clock = iter_clock;
      EmbeddingBlockMsg my_push;
      my_push.dim = d;
      my_push.ids = out_log.push_ids;
      my_push.values = out_log.push_vals;
      IndexClockMsg peer_index;
      EmbeddingBlockMsg peer_push;
      Status st = ExchangeIndexClockThenEmbeddings(
          t, o, tag_a, my_index, my_push, &peer_index, &peer_push);
      if (!st.ok()) {
        HETGMP_LOG(Warning) << "wire exchange A rank " << w << " peer "
                            << o << " round " << round << ": "
                            << st.ToString();
        ++failures;
        continue;
      }
      if (!SameIds(peer_index.ids, peer_out.index_ids) ||
          peer_index.clock != iter_clock) {
        ++failures;
      }
      if (peer_push.dim != d || !SameIds(peer_push.ids, peer_out.push_ids) ||
          !SameFloats(peer_push.values, peer_out.push_vals)) {
        ++failures;
      }

      // Exchange B: clock reads + fetched rows. Rows o fetched from w are
      // owned (served) by w, so w is their wire sender; symmetrically the
      // block w receives here is what it fetched from o this round.
      IndexClockMsg my_clock;
      my_clock.ids = out_log.clock_ids;
      my_clock.clock = iter_clock;
      EmbeddingBlockMsg my_serve;
      my_serve.dim = d;
      my_serve.ids = peer_out.fetch_ids;
      my_serve.values = peer_out.fetch_vals;
      IndexClockMsg peer_clock;
      EmbeddingBlockMsg fetched;
      st = ExchangeIndexClockThenEmbeddings(t, o, tag_b, my_clock, my_serve,
                                            &peer_clock, &fetched);
      if (!st.ok()) {
        HETGMP_LOG(Warning) << "wire exchange B rank " << w << " peer "
                            << o << " round " << round << ": "
                            << st.ToString();
        ++failures;
        continue;
      }
      if (!SameIds(peer_clock.ids, peer_out.clock_ids) ||
          peer_clock.clock != iter_clock) {
        ++failures;
      }
      if (fetched.dim != d || !SameIds(fetched.ids, out_log.fetch_ids) ||
          !SameFloats(fetched.values, out_log.fetch_vals)) {
        ++failures;
      }
    }

    // Dense AllReduce on scratch copies of this rank's replica.
    if (N > 1 && dense_total > 0) {
      std::vector<Tensor> scratch;
      for (const Tensor* src : models_[w]->DenseParams()) {
        scratch.push_back(*src);
      }
      std::vector<Tensor*> ptrs;
      ptrs.reserve(scratch.size());
      for (Tensor& s : scratch) ptrs.push_back(&s);
      const Status st = TransportAllReduceAverage(t, ptrs);
      if (!st.ok()) {
        HETGMP_LOG(Warning) << "wire allreduce rank " << w << " round "
                            << round << ": " << st.ToString();
        ++failures;
      } else {
        for (size_t ti = 0; ti < scratch.size(); ++ti) {
          for (int64_t i = 0; i < scratch[ti].size(); ++i) {
            const float got = scratch[ti].at(i);
            const float want = dense_expected[ti].at(i);
            const float tol =
                1e-4f * std::max(1.0f, std::abs(want));
            if (std::abs(got - want) > tol) {
              ++failures;
            }
          }
        }
      }
    }
    return failures;
  };

  int64_t failures = 0;
  if (wire_socket_ != nullptr) {
    failures = rank_body(wire_socket_->rank(), wire_socket_);
  } else {
    // In-proc: one thread per endpoint (the Transport thread contract is
    // one driver per endpoint, and both the pairwise exchanges and the
    // collective block on peers). Workers are parked at the round
    // barrier, so the wire logs are frozen for concurrent reads.
    std::vector<int64_t> per_rank(N, 0);
    std::vector<std::thread> threads;
    threads.reserve(N);
    for (int w = 0; w < N; ++w) {
      threads.emplace_back([&, w] {
        per_rank[w] = rank_body(w, wire_group_->endpoint(w));
      });
    }
    for (auto& t : threads) t.join();
    for (int w = 0; w < N; ++w) failures += per_rank[w];
  }
  if (failures > 0) {
    HETGMP_LOG(Warning) << "wire round " << round << ": " << failures
                        << " payload verification failure(s)";
  }

  // Accounting for the ranks this process drives (all N in-proc, one
  // under sockets — so each process's expectations equal its own
  // endpoints' tallies).
  wire_stats_.verify_failures += failures;
  ++wire_stats_.rounds_exchanged;
  const int drive_lo = wire_socket_ != nullptr ? wire_socket_->rank() : 0;
  const int drive_hi = wire_socket_ != nullptr ? drive_lo + 1 : N;
  for (int w = drive_lo; w < drive_hi; ++w) {
    const WorkerState& me = *workers_[w];
    for (int o = 0; o < N; ++o) {
      if (o == w) continue;
      const WorkerState::PeerWireLog& out_log = me.wire_log[o];
      const WorkerState::PeerWireLog& peer_out = workers_[o]->wire_log[w];
      wire_stats_.index_messages += 2;
      wire_stats_.embedding_messages += 2;
      wire_stats_.index_entries +=
          static_cast<int64_t>(out_log.index_ids.size());
      wire_stats_.clock_entries +=
          static_cast<int64_t>(out_log.clock_ids.size());
      wire_stats_.pushed_rows +=
          static_cast<int64_t>(out_log.push_ids.size());
      wire_stats_.fetched_rows +=
          static_cast<int64_t>(peer_out.fetch_ids.size());
      wire_stats_.expected_index_clock_bytes +=
          IndexClockWireBytes(out_log.index_ids.size()) +
          IndexClockWireBytes(out_log.clock_ids.size());
      wire_stats_.expected_embedding_bytes +=
          EmbeddingBlockWireBytes(out_log.push_ids.size(), d) +
          EmbeddingBlockWireBytes(peer_out.fetch_ids.size(), d);
    }
    wire_stats_.expected_allreduce_bytes +=
        RingAllReduceSentBytes(N, w, dense_total);
  }

  ClearWireLogs();
}

}  // namespace hetgmp
