#ifndef HETGMP_CORE_ENGINE_H_
#define HETGMP_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/allreduce.h"
#include "comm/fabric.h"
#include "comm/topology.h"
#include "comm/transport.h"
#include "common/status.h"
#include "common/threading.h"
#include "core/config.h"
#include "data/dataset.h"
#include "embed/cache_counters.h"
#include "embed/embedding_table.h"
#include "embed/lru_cache.h"
#include "embed/replica_store.h"
#include "embed/secondary_cache.h"
#include "store/tier_stats.h"
#include "graph/bigraph.h"
#include "models/model.h"
#include "partition/partition.h"
#include "sync/clock_table.h"
#include "tensor/tensor.h"

namespace hetgmp {

class TieredEmbeddingStore;
class PrefetchPipeline;

// Metrics recorded at every round barrier.
struct RoundStats {
  int round = 0;
  int64_t iterations_done = 0;      // global iteration count so far
  double sim_time = 0.0;            // max worker simulated time so far
  double auc = 0.5;                 // test AUC at this point
  // Mean BCE over the round, aggregated across every worker's iterations
  // (each worker contributes its per-batch loss sum and batch count; the
  // serial section merges and resets them at the round barrier).
  double train_loss = 0.0;
  uint64_t embedding_bytes = 0;     // cumulative fabric counters
  uint64_t index_clock_bytes = 0;
  uint64_t allreduce_bytes = 0;
  int64_t remote_fetches = 0;       // cumulative
  int64_t intra_refreshes = 0;
  int64_t inter_refreshes = 0;
  // Inter-embedding pairs flagged stale by the check (whether or not a
  // refresh could help) — the raw false-positive rate the frequency
  // normalization of §5.3 is designed to suppress.
  int64_t inter_flags = 0;
};

// Runtime audit of the §5.3 staleness guarantees, aggregated over every
// Read the engine performed (tracked per worker, merged after the worker
// threads join). This is the invariant the concurrency tooling protects:
// a data race on the clock tables or caches shows up here as a bound
// violation long before it corrupts training metrics.
struct StalenessAudit {
  // Largest primary-minus-secondary clock gap of any value consumed by a
  // Read (post-refresh). Never exceeds bound.s in kGraphBounded mode.
  uint64_t max_intra_gap = 0;
  // Largest normalized inter-embedding gap among pairs the check accepted
  // as fresh. Never exceeds bound.s in kGraphBounded mode.
  double max_inter_norm_gap = 0.0;
  // Pairs flagged stale that the inter-sync pass left neither fresh nor
  // fully synchronized with the observed primary clock. Always 0 unless
  // the refresh protocol is broken.
  int64_t inter_violations = 0;
};

// Wall-clock seconds spent in each training-iteration stage, summed over
// all workers (so on a multi-core host the sum can exceed elapsed time).
// Filled by Train for both the planned and the reference hot path;
// bench_train_hotpath prints the breakdown per configuration.
struct HotpathStageSeconds {
  double gather = 0.0;      // batch select + index plan + Read op + assemble
  double inter_sync = 0.0;  // inter-embedding pair checks (② in Figure 6)
  double dense = 0.0;       // dense forward/backward + loss
  double scatter = 0.0;     // gradient accumulate + Update op
  double flush = 0.0;       // write-back + fabric charging
  double Total() const {
    return gather + inter_sync + dense + scatter + flush;
  }
};

struct TrainResult {
  std::vector<RoundStats> rounds;
  StalenessAudit staleness;
  HotpathStageSeconds stage_secs;
  // Snapshot publications performed through the publish hook (serving
  // path); failures count hook invocations that returned a non-OK Status.
  int64_t snapshots_published = 0;
  int64_t publish_failures = 0;
  double final_auc = 0.5;
  double total_sim_time = 0.0;       // simulated seconds
  double compute_time = 0.0;         // simulated seconds in dense compute
  double comm_time = 0.0;            // simulated seconds in communication
  int64_t total_iterations = 0;      // per-worker iterations × workers
  int64_t samples_processed = 0;
  bool reached_target = false;

  // Aggregated LruEmbeddingCache counters across workers (non-zero only
  // under ReplicaPolicy::kLruDynamic).
  CacheCounters replica_cache;
  // Tiered-store breakdown; `tiered` is false (and the stats zero) when
  // the hierarchy is disabled.
  bool tiered = false;
  TieredStoreStats tiers;

  // Engine-over-Transport accounting (src/core/engine_wire.cc, DESIGN.md
  // §5h). All zero unless config.transport.enabled. "Expected" bytes are
  // the §6 wire-format sizes of the messages the engine decided to send;
  // the transport endpoints' own payload tallies must equal them exactly,
  // and they relate to the Fabric ledger by closed forms (the ledger
  // charges ids/rows only, the wire adds per-message headers) — both
  // locked in by EngineTransportTest.
  struct WireStats {
    bool enabled = false;
    int rounds_exchanged = 0;
    int64_t index_messages = 0;      // IndexClockMsg sends (index + clock)
    int64_t embedding_messages = 0;  // EmbeddingBlockMsg sends (push+fetch)
    int64_t index_entries = 0;       // feature ids in index messages
    int64_t clock_entries = 0;       // feature ids in clock messages
    int64_t pushed_rows = 0;         // gradient/write-back rows shipped
    int64_t fetched_rows = 0;        // fetched embedding rows shipped
    uint64_t expected_index_clock_bytes = 0;
    uint64_t expected_embedding_bytes = 0;
    uint64_t expected_allreduce_bytes = 0;
    // Received payloads that failed bit-exact verification against the
    // locally reproduced expectation (always 0 on a healthy run).
    int64_t verify_failures = 0;
  };
  WireStats wire;

  double Throughput() const {        // samples / simulated second
    return total_sim_time > 0 ? samples_processed / total_sim_time : 0.0;
  }
};

// The simulated distributed trainer. One OS thread per worker; shared
// primary embedding arena; per-worker secondary caches, dense model
// replicas, and simulated clocks. All cross-worker data movement is
// charged to the Fabric (bytes exactly, time via the link model).
//
// The dataset, topology, and partition must outlive the engine.
class Engine {
 public:
  Engine(const EngineConfig& config, const CtrDataset& train,
         const CtrDataset& test, const Topology& topology,
         Partition partition);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs up to `max_epochs` epochs; stops early once test AUC reaches
  // `auc_target` (ignored if <= 0) or simulated time exceeds
  // `sim_time_budget` seconds (ignored if <= 0).
  TrainResult Train(int max_epochs, double auc_target = -1.0,
                    double sim_time_budget = -1.0);

  // --- Snapshot publication (online serving, src/serve) ---
  //
  // State handed to the publish hook. The table and dense parameters are
  // safe to read through the unsafe accessors for the duration of the
  // call: the hook runs in the round-serial barrier section, where every
  // other worker is parked at the round barrier (the same window
  // EvaluateAuc uses).
  struct PublishContext {
    const EmbeddingTable& table;
    const std::vector<Tensor*>& dense_params;  // worker 0's dense model
    int round = 0;                 // 0-based round just completed
    int64_t iterations_done = 0;   // global iteration count so far
    double sim_time = 0.0;
    // Non-null when the tiered store is enabled: rows outside the hot
    // tier are NOT valid in `table` (demoted bytes are dead) — publish
    // by reading through tiers->PeekRow instead of table.UnsafeRow.
    TieredEmbeddingStore* tiers = nullptr;
  };
  using PublishHook = std::function<Status(const PublishContext&)>;

  // Registers `hook` to run after every `every_rounds`-th round and after
  // the final round of Train (so the last snapshot always reflects the
  // finished model). Pass a null hook to detach. Not thread-safe against
  // a concurrent Train — set it up before training starts.
  void SetPublishHook(PublishHook hook, int every_rounds = 1);

  // Test AUC with the current primary table + worker 0's dense model.
  double EvaluateAuc();

  // Debug invariant check (call with quiesced workers, e.g. after Train):
  //  * every replica's pending write-back is flushed (rounds end with a
  //    force-flush when batching is on, and per-iteration flush otherwise);
  //  * no replica's synced clock is ahead of its primary clock;
  //  * dense model replicas agree across workers (they are re-averaged at
  //    every round boundary).
  Status ValidateInvariants() const;

  const Fabric& fabric() const { return *fabric_; }
  // Serving shares the training fabric so lookup traffic lands in the
  // same comm_report (TrafficClass::kLookup keeps it separable).
  Fabric* mutable_fabric() { return fabric_.get(); }
  const EmbeddingTable& table() const { return *table_; }
  // Quiesced-only mutable access (no workers running): the quantization
  // bench overwrites rows with their dequantized images to measure the
  // served model's AUC delta, then restores them.
  EmbeddingTable* mutable_table() { return table_.get(); }
  const Partition& partition() const { return partition_; }
  const EngineConfig& config() const { return config_; }
  int num_workers() const { return topology_.num_workers(); }
  // Null unless config.tiered_store.enabled.
  TieredEmbeddingStore* tiered_store() { return tier_store_.get(); }

  // Engine-over-transport introspection (engine_wire.cc). wire_endpoint
  // returns worker w's Transport endpoint — in-proc: the private mailbox
  // world's endpoint; socket: the borrowed fabric when w is this
  // process's rank, null otherwise. wire_fabric is the private ledger the
  // in-proc backend charges (null for socket / transport-off).
  const Transport* wire_endpoint(int w) const;
  const Fabric* wire_fabric() const { return wire_fabric_.get(); }

 private:
  struct WorkerState;

  // Dispatches to the planned hot path, or to the frozen pre-plan
  // reference implementation when config_.reference_hotpath is set. The
  // two are semantically identical (golden-trajectory tests compare their
  // metrics bit-for-bit under config_.deterministic).
  void TrainIteration(WorkerState* ws);
  void TrainIterationReference(WorkerState* ws);
  void TrainIterationPlanned(WorkerState* ws);

  // Planned hot path: fills ws->plan (flat [B×F] → unique-index table) and
  // ws->unique_feats in first-occurrence order via the generation-stamped
  // open-addressed scratch map. Returns the unique count U.
  int64_t BuildBatchPlan(WorkerState* ws);
  // Runs the full inter-embedding check for one ordered co-accessed pair
  // (reference occurrence semantics: gap test, flag, victim refresh,
  // audit); the planned path only calls it for occurrences the hoisted
  // screen could not prove to be no-ops (see DESIGN.md §5e).
  void ExecPairCheck(WorkerState* ws, int32_t ua, int32_t ub);
  // True iff `x` is a unique feature of the batch currently being
  // resolved (LRU admission must not evict a feature this batch uses).
  [[nodiscard]] bool BatchContains(const WorkerState* ws, FeatureId x) const;

  // Primary-table access routed through the tiered store when enabled
  // (pin → arena op → unpin; in-batch rows are already pinned so the
  // extra pin just nests) and straight at the arena otherwise.
  void PrimaryReadRow(FeatureId x, float* out);
  void PrimaryApplyGradient(FeatureId x, const float* grad);
  // Read-only row fetch for evaluation/publishing: tier read-through
  // without residency changes when tiered, UnsafeRow copy otherwise.
  void PeekPrimaryRow(FeatureId x, float* out);
  // Snoops worker ws's next batch (the cyclic cursor's upcoming window)
  // and hands its feature ids to the prefetch pipeline.
  void SubmitNextBatchPrefetch(WorkerState* ws);

  // Resolves one unique feature of the current batch into `out` (dim
  // floats), charging communication as needed.
  void ResolveFeature(WorkerState* ws, FeatureId x, float* out);
  void RefreshSecondary(WorkerState* ws, FeatureId x, int64_t slot);
  void FlushSecondary(WorkerState* ws, FeatureId x, int64_t slot);
  void ChargePendingTransfers(WorkerState* ws);
  // Applies the batch's per-unique-feature gradients through the Update
  // op switch (primary / secondary / remote / host paths).
  void ScatterGradients(WorkerState* ws);
  // Step-7 staggered write-back of pending secondary updates.
  void FlushStaggered(WorkerState* ws);
  // Round-boundary force-flush of every pending write-back (only needed
  // when write_back_every > 1), including the fabric charge.
  void ForceFlushRound(WorkerState* ws);
  void SyncDense(WorkerState* ws);
  void RunWorkerRound(WorkerState* ws, int64_t iters);

  // Averages the dense replicas element-wise across workers and copies
  // the mean back to every replica; `grads` selects DenseGrads (BSP
  // per-iteration sync) vs DenseParams (async round-boundary re-average).
  // The planned implementation fuses sum+scale+broadcast into one pass
  // and may chunk it on serial_pool_; both are bit-identical to the
  // reference triple-loop because the per-element accumulation order is
  // preserved. Caller must hold barrier-phase protection.
  void AverageDenseReplicas(bool grads);
  // The round-end serial section (dense re-average, AUC eval, stats
  // collection, publish hook, stop decision). Returns true when training
  // should stop. Runs under barrier-phase protection in threaded mode and
  // directly on the driver thread in deterministic mode.
  bool RoundSerialSection(int round, int total_rounds, double auc_target,
                          double sim_time_budget, TrainResult* result,
                          Mutex* result_mu);
  // Deterministic driver: executes the whole schedule round-robin on the
  // calling thread (worker 0, 1, …, N-1 within each iteration) instead of
  // spawning one OS thread per worker. See EngineConfig::deterministic.
  void TrainRoundRobin(int total_rounds, int64_t iters_per_round,
                       double auc_target, double sim_time_budget,
                       TrainResult* result, Mutex* result_mu);
  // Merges per-worker totals (times, counters, staleness audit, stage
  // timers) into `result` after the schedule finishes.
  void FinalizeResult(TrainResult* result);

  // --- Engine-over-Transport (src/core/engine_wire.cc) ---
  // Validates config_.transport and builds the in-proc world / binds the
  // borrowed socket endpoint. Called from the constructor.
  void SetupWireTransport();
  // Replays the round's logged per-peer traffic over the transport — four
  // typed messages per ordered worker pair (index ids, clock ids, pushed
  // rows, fetched rows) plus one dense TransportAllReduceAverage on
  // scratch copies — verifies every received payload bit-exactly against
  // the locally reproduced expectation, accumulates wire_stats_, and
  // clears the logs. Runs at the top of the round-serial section, so the
  // engine's own metrics and ledger are untouched (bit-identical
  // trajectories either way).
  void WireExchangeRound(int round);
  void ClearWireLogs();

  uint64_t PrimaryClock(FeatureId x) const {
    return clocks_->Get(partition_.embedding_owner[x], x);
  }

  const EngineConfig config_;
  const CtrDataset& train_;
  const CtrDataset& test_;
  const Topology& topology_;
  Partition partition_;
  Bigraph bigraph_;
  std::vector<double> access_freq_;

  std::unique_ptr<EmbeddingTable> table_;
  // Hot/warm/cold hierarchy over table_ plus its plan-driven prefetcher;
  // null when config_.tiered_store.enabled is false (the seed-identical
  // fully-resident path).
  std::unique_ptr<TieredEmbeddingStore> tier_store_;
  std::unique_ptr<PrefetchPipeline> prefetch_;
  std::unique_ptr<ClockTable> clocks_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<ReplicaStore>> caches_;
  // Non-null aliases into caches_ when replica_policy == kLruDynamic.
  std::vector<LruEmbeddingCache*> lru_caches_;
  std::vector<std::unique_ptr<EmbeddingModel>> models_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  // Pool for the round-serial section's parallel work (AUC chunks, fused
  // dense re-average). Null when the section runs serially (reference
  // hot path, single worker, or serial_section_threads == 1). Only ever
  // driven from a barrier serial section or the deterministic driver, so
  // at most one thread submits work at a time.
  std::unique_ptr<ThreadPool> serial_pool_;

  // Locking/synchronization discipline (see DESIGN.md "Locking
  // hierarchy"): shared state is reached three ways —
  //  * atomics (stop_, ClockTable cells, Fabric counters, iter_count);
  //  * the EmbeddingTable's striped row mutexes;
  //  * barrier phases: the round/iter barrier serial sections may touch
  //    any worker's state because every other worker is between its own
  //    last pre-barrier write and first post-barrier read, and Barrier
  //    orders those accesses (see Barrier's memory-model comment).
  // Barrier-phase protection is invisible to Clang's thread-safety
  // analysis, so barrier-guarded members carry comments, not annotations.
  Barrier round_barrier_;
  Barrier iter_barrier_;
  // Scratch for BSP straggler alignment; written only inside the
  // iter_barrier_ serial section, read by all workers strictly between
  // the second and third iter_barrier_ rendezvous of the same iteration.
  double bsp_shared_max_time_ = 0.0;
  std::atomic<bool> stop_{false};

  // Publish hook state; written before Train spawns workers, read only in
  // the round-serial barrier section (barrier-phase protection, like
  // bsp_shared_max_time_ above).
  PublishHook publish_hook_;
  int publish_every_rounds_ = 0;

  // Per-epoch iteration budget per worker.
  int64_t iters_per_epoch_ = 0;

  // Engine-over-transport state (engine_wire.cc). wire_fabric_ is a
  // PRIVATE ledger for the in-proc backend's charging — never fabric_,
  // whose counters and simulated time feed RoundStats and must stay
  // bit-identical to transport-off runs. Only touched from the
  // round-serial section / constructor, so barrier-phase protected.
  std::unique_ptr<Fabric> wire_fabric_;
  std::unique_ptr<InProcTransportGroup> wire_group_;
  Transport* wire_socket_ = nullptr;  // borrowed from config (kSocket)
  TrainResult::WireStats wire_stats_;
};

}  // namespace hetgmp

#endif  // HETGMP_CORE_ENGINE_H_
