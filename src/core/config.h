#ifndef HETGMP_CORE_CONFIG_H_
#define HETGMP_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "embed/embedding_table.h"
#include "models/model.h"
#include "partition/hybrid_partitioner.h"
#include "sync/staleness.h"

namespace hetgmp {

class Transport;

// The training-system designs compared in §7. All run on the same engine
// backbone (as the paper does with HET-MP, precisely to isolate the
// placement/consistency policy from the implementation substrate):
//
//  kTfPs     TensorFlow-PS: embedding table on CPU hosts, every lookup and
//            update crosses the GPU↔host link; dense parameters also pushed
//            through the PS; fully asynchronous.
//  kParallax Hybrid architecture: sparse via CPU PS, dense via AllReduce;
//            fully asynchronous.
//  kHugeCtr  GPU model parallelism: table hash-partitioned over GPU memory,
//            remote fetch per batch, BSP.
//  kHetMp    The paper's auxiliary baseline: this engine with random
//            partitioning, no replication, BSP.
//  kHetGmp   The full system: hybrid graph partitioning + vertex-cut
//            replication + graph-based bounded asynchrony.
enum class Strategy { kTfPs, kParallax, kHugeCtr, kHetMp, kHetGmp };

const char* StrategyName(Strategy s);

// Which placement algorithm produces the partition.
enum class PlacementPolicy { kRandom, kBiCut, kHybrid };

// How non-local embeddings are replicated on each worker:
//  kStaticVertexCut — Algorithm 1's 2D pass decides membership up front
//                     (HET-GMP's design);
//  kLruDynamic      — a runtime LRU cache of fixed capacity (the
//                     cache-enabled architecture of HET [34], kept here as
//                     the design-comparison baseline).
enum class ReplicaPolicy { kStaticVertexCut, kLruDynamic };

struct EngineConfig {
  Strategy strategy = Strategy::kHetGmp;
  ModelType model = ModelType::kWdl;

  int embedding_dim = 16;
  // Per-worker batch size. Epoch accounting is *nominal*: one epoch is
  // ceil(num_samples / (num_workers * batch_size)) iterations per worker —
  // the iteration budget of a global pass at this batch size — even when
  // balance_batch_to_capacity shrinks a slow worker's actual per-iteration
  // batch. Capacity scaling changes how much work an iteration does, never
  // how many iterations an epoch has (all workers must agree on the round
  // schedule to meet at the same barriers). Locked in by
  // EpochSemanticsTest.
  int batch_size = 512;
  float dense_lr = 0.05f;
  float embed_lr = 0.05f;
  EmbeddingOptimizer embed_optimizer = EmbeddingOptimizer::kAdaGrad;
  float embed_init_stddev = 0.01f;

  // Consistency. Strategies pick their defaults via ApplyStrategyDefaults;
  // HET-GMP honours `bound` (Table 2 sweeps bound.s).
  ConsistencyMode consistency = ConsistencyMode::kGraphBounded;
  StalenessBound bound;
  // SSP iteration slack (only used when consistency == kSsp).
  int ssp_slack = 4;

  // Write-back batching for secondary replicas: a touched secondary
  // flushes its accumulated gradient to the primary every k-th iteration
  // (staggered by slot) instead of every iteration. 1 reproduces the
  // paper's §6 protocol exactly; larger values trade primary freshness
  // (still covered by the staleness bound — pending updates are local
  // updates the bound accounts for) for less write-back traffic. All
  // pending updates are force-flushed at round barriers.
  int write_back_every = 1;

  // Placement (HET-GMP defaults to kHybrid; baselines to kRandom).
  PlacementPolicy placement = PlacementPolicy::kHybrid;
  HybridPartitionerOptions hybrid_options;

  // Replication mechanism; kLruDynamic replaces the static secondaries
  // with an LRU cache holding lru_capacity_fraction of the global table.
  ReplicaPolicy replica_policy = ReplicaPolicy::kStaticVertexCut;
  double lru_capacity_fraction = 0.01;

  // Simulated-compute calibration: effective device FLOP/s for the dense
  // towers (a GPU-class device; this is what makes embedding communication
  // dominate iteration time as in Figure 1). See DESIGN.md §5.
  double device_flops = 8e12;

  // Per-worker compute slowdown factors (straggler injection): worker w's
  // compute time is multiplied by worker_slowdown[w]. Empty = all 1.0.
  // Used by the straggler-resilience ablation (BSP pays the slowest
  // worker every iteration; bounded asynchrony does not).
  std::vector<double> worker_slowdown;

  // Heterogeneity-aware load balancing (§3: the balancer considers
  // computation too): when true, each worker's per-iteration batch is
  // scaled by 1/worker_slowdown[w] and the hybrid partitioner targets
  // capacity-proportional sample counts, so slow devices do less work per
  // step instead of stalling everyone. Epoch length is unaffected — see
  // the batch_size comment above for the nominal-epoch contract.
  bool balance_batch_to_capacity = false;

  // --- Training hot-path execution (see DESIGN.md §5e) ---

  // Runs the pre-batch-plan implementation of the training iteration
  // (per-element hash-map indexing, per-sample O(B·F²) inter-embedding
  // scan) and a fully serial round-serial section. Semantically identical
  // to the default planned hot path — the golden-trajectory tests assert
  // bit-identical metrics — but slower; kept as the measured baseline for
  // bench_train_hotpath.
  bool reference_hotpath = false;

  // Runs the worker schedule round-robin on the calling thread instead of
  // on one OS thread per worker: within each iteration workers execute in
  // id order, so training is exactly reproducible run-to-run (threaded
  // execution interleaves cross-worker primary updates and clock reads
  // nondeterministically). Simulated time and byte accounting are
  // unchanged. Used by the golden-trajectory equivalence tests.
  bool deterministic = false;

  // Threads for the round-serial section's parallel work (AUC evaluation
  // chunks, fused dense re-average) while the workers are parked at the
  // round barrier. 0 = min(num_workers, hardware concurrency); 1 runs the
  // section serially. Ignored (always serial) under reference_hotpath.
  // Results are bit-identical for any value: evaluation scores are
  // row-independent and the re-average keeps the per-element worker
  // summation order.
  int serial_section_threads = 0;

  // --- Tiered embedding storage (src/store, DESIGN.md §5f) ---

  // Hot/warm/cold storage hierarchy under the embedding table. Off by
  // default: the flat fully-resident arena, bit-identical to the seed
  // behavior. Requires the planned hot path (not reference_hotpath).
  struct TieredStoreConfig {
    bool enabled = false;
    // Row budgets; 0 = num_features/10 (hot) and num_features/5 (warm).
    int64_t hot_rows = 0;
    int64_t warm_rows = 0;
    int stripes = 64;
    // Async plan-driven promotion of the next iteration's batch.
    bool prefetch = true;
    // Cold-tier spill file; empty = process-private unlinked temp file.
    std::string cold_path;
  };
  TieredStoreConfig tiered_store;

  // --- Engine-over-Transport (src/core/engine_wire.cc, DESIGN.md §5h) ---

  // Drives the engine's per-round traffic — index/clock exchanges,
  // embedding push/fetch blocks, dense AllReduce — through the typed §6
  // protocol over a real Transport, in addition to charging the simulated
  // Fabric ledger (the cost model is unchanged either way: RoundStats
  // stay bit-identical to transport-off runs; golden parity tests lock
  // this in). kInProc runs a private mailbox world inside the process,
  // with Fabric charging on, and is the default backend. kSocket drives
  // only this process's rank over `socket` (a connected SocketFabric,
  // borrowed, world_size == num_workers) while every rank deterministically
  // simulates all workers, so received bytes are verified against locally
  // reproduced expectations — requires `deterministic`.
  struct TransportConfig {
    enum class Backend { kInProc, kSocket };
    bool enabled = false;
    Backend backend = Backend::kInProc;
    Transport* socket = nullptr;  // borrowed; required iff kSocket
  };
  TransportConfig transport;

  // Barrier/evaluation cadence: each epoch is split into this many rounds;
  // every round ends with a light global barrier where the runner may
  // evaluate AUC and asynchronous modes re-average dense parameters.
  int rounds_per_epoch = 4;

  uint64_t seed = 12345;

  std::string ToString() const;
};

// Fills strategy-implied fields (placement, consistency, replication) in
// place; explicit user choices for `bound.s` are preserved.
void ApplyStrategyDefaults(EngineConfig* config);

}  // namespace hetgmp

#endif  // HETGMP_CORE_CONFIG_H_
