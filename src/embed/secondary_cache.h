#ifndef HETGMP_EMBED_SECONDARY_CACHE_H_
#define HETGMP_EMBED_SECONDARY_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "embed/replica_store.h"

namespace hetgmp {

// One worker's secondary replicas (§5.2/§6): for every embedding the
// vertex-cut assigned to this worker, a cached value row, a pending
// gradient buffer (updates applied locally but not yet written back), and
// the primary clock at the last refresh. Membership is *static* — decided
// by Algorithm 1's 2D pass, not by runtime access patterns.
//
// Single-owner: only the owning worker touches its cache, so no locking.
// (The extra space for "stale gradients" the paper mentions in §6 is the
// pending buffer.)
class SecondaryCache : public ReplicaStore {
 public:
  SecondaryCache(const std::vector<FeatureId>& embedding_ids, int dim);

  int dim() const override { return dim_; }
  int64_t size() const override { return static_cast<int64_t>(ids_.size()); }
  const std::vector<FeatureId>& ids() const { return ids_; }
  FeatureId IdAt(int64_t slot) const override { return ids_[slot]; }

  // Slot of embedding x, or -1 when x is not cached here.
  int64_t Slot(FeatureId x) override {
    const auto it = slot_of_.find(x);
    return it == slot_of_.end() ? -1 : it->second;
  }

  float* Value(int64_t slot) override { return values_.data() + slot * dim_; }
  const float* Value(int64_t slot) const {
    return values_.data() + slot * dim_;
  }
  float* Pending(int64_t slot) override {
    return pending_.data() + slot * dim_;
  }
  int64_t pending_count(int64_t slot) const override {
    return pending_count_[slot];
  }

  uint64_t synced_clock(int64_t slot) const override {
    return synced_clock_[slot];
  }
  void set_synced_clock(int64_t slot, uint64_t clock) override {
    synced_clock_[slot] = clock;
  }

  // Adds a gradient to the pending buffer (local update awaiting
  // write-back).
  void AccumulatePending(int64_t slot, const float* grad) override;

  // Clears the pending buffer after write-back.
  void ClearPending(int64_t slot) override;

  // Overwrites the cached value (refresh from primary).
  void SetValue(int64_t slot, const float* value) override;

 private:
  int dim_;
  std::vector<FeatureId> ids_;
  std::unordered_map<FeatureId, int64_t> slot_of_;
  std::vector<float> values_;
  std::vector<float> pending_;
  std::vector<int64_t> pending_count_;
  std::vector<uint64_t> synced_clock_;
};

}  // namespace hetgmp

#endif  // HETGMP_EMBED_SECONDARY_CACHE_H_
