#include "embed/embedding_table.h"

#include "common/logging.h"
#include "nn/optimizer.h"

namespace hetgmp {

EmbeddingTable::EmbeddingTable(int64_t num_embeddings, int dim,
                               float init_stddev, uint64_t seed,
                               EmbeddingOptimizer optimizer, float lr)
    : num_embeddings_(num_embeddings),
      dim_(dim),
      optimizer_(optimizer),
      lr_(lr),
      mutexes_(kMutexStripes) {
  HETGMP_CHECK_GT(dim, 0);
  // Stripes share one rank: the runtime lock-rank checker aborts on a
  // second equal-rank acquisition, which is exactly the "never two stripe
  // locks at once" contract (DESIGN.md §5b).
  for (Mutex& mu : mutexes_) mu.SetRank(lock_rank::kEmbedStripe);
  values_.resize(num_embeddings * dim);
  Rng rng(seed);
  for (auto& v : values_) {
    v = static_cast<float>(rng.NextGaussian()) * init_stddev;
  }
  if (optimizer_ == EmbeddingOptimizer::kAdaGrad) {
    accum_.assign(values_.size(), 0.0f);
  }
}

void EmbeddingTable::ReadRow(int64_t x, float* out) const {
  MutexLock lock(RowMutex(x));
  const float* row = values_.data() + x * dim_;
  for (int c = 0; c < dim_; ++c) out[c] = row[c];
}

void EmbeddingTable::ApplyGradient(int64_t x, const float* grad) {
  MutexLock lock(RowMutex(x));
  float* row = values_.data() + x * dim_;
  if (optimizer_ == EmbeddingOptimizer::kAdaGrad) {
    AdaGradUpdateRow(row, grad, accum_.data() + x * dim_, dim_, lr_);
  } else {
    SgdUpdateRow(row, grad, dim_, lr_);
  }
}

}  // namespace hetgmp
