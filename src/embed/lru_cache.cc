#include "embed/lru_cache.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

LruEmbeddingCache::LruEmbeddingCache(int64_t capacity, int dim)
    : dim_(dim), capacity_(capacity) {
  HETGMP_CHECK_GT(dim, 0);
  HETGMP_CHECK_GE(capacity, 0);
  id_of_.assign(capacity, -1);
  prev_.assign(capacity, -1);
  next_.assign(capacity, -1);
  free_slots_.reserve(capacity);
  for (int64_t s = capacity - 1; s >= 0; --s) free_slots_.push_back(s);
  values_.assign(capacity * dim_, 0.0f);
  pending_.assign(capacity * dim_, 0.0f);
  pending_count_.assign(capacity, 0);
  synced_clock_.assign(capacity, 0);
  slot_of_.reserve(capacity * 2);
}

void LruEmbeddingCache::Unlink(int64_t slot) {
  const int64_t p = prev_[slot], n = next_[slot];
  if (p != -1) {
    next_[p] = n;
  } else {
    head_ = n;
  }
  if (n != -1) {
    prev_[n] = p;
  } else {
    tail_ = p;
  }
  prev_[slot] = next_[slot] = -1;
}

void LruEmbeddingCache::LinkFront(int64_t slot) {
  prev_[slot] = -1;
  next_[slot] = head_;
  if (head_ != -1) prev_[head_] = slot;
  head_ = slot;
  if (tail_ == -1) tail_ = slot;
}

void LruEmbeddingCache::MoveToFront(int64_t slot) {
  if (head_ == slot) return;
  Unlink(slot);
  LinkFront(slot);
}

int64_t LruEmbeddingCache::Slot(FeatureId x) {
  owner_checker_.Check();  // lookups mutate recency and hit counters
  const auto it = slot_of_.find(x);
  if (it == slot_of_.end()) {
    ++counters_.misses;
    return -1;
  }
  ++counters_.hits;
  MoveToFront(it->second);
  return it->second;
}

int64_t LruEmbeddingCache::EvictionCandidate() const {
  if (!free_slots_.empty() || capacity_ == 0) return -1;
  return tail_;
}

int64_t LruEmbeddingCache::Insert(FeatureId x) {
  owner_checker_.Check();
  HETGMP_CHECK_GT(capacity_, 0);
  HETGMP_CHECK(slot_of_.find(x) == slot_of_.end())
      << " inserting already-cached embedding " << x;
  int64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    // Walk from the LRU tail toward the head for a clean victim: the
    // tail may carry an unflushed pending gradient (the caller flushed
    // EvictionCandidate, but a concurrent Accumulate against a different
    // entry's refresh can leave a dirty entry at the tail). Evicting a
    // dirty slot would silently drop its gradient, so skip past dirty
    // entries and only fail if *every* slot is dirty.
    slot = tail_;
    while (slot != -1 && pending_count_[slot] != 0) slot = prev_[slot];
    HETGMP_CHECK_GE(slot, 0)
        << " all " << capacity_
        << " slots hold unflushed pending gradients; flush before Insert";
    slot_of_.erase(id_of_[slot]);
    Unlink(slot);
    ++counters_.demotions;
  }
  ++counters_.promotions;
  id_of_[slot] = x;
  slot_of_.emplace(x, slot);
  LinkFront(slot);
  float* v = Value(slot);
  float* p = Pending(slot);
  for (int c = 0; c < dim_; ++c) {
    v[c] = 0.0f;
    p[c] = 0.0f;
  }
  pending_count_[slot] = 0;
  synced_clock_[slot] = 0;
  return slot;
}

void LruEmbeddingCache::AccumulatePending(int64_t slot, const float* grad) {
  owner_checker_.Check();
  AccumulateRow(Pending(slot), grad, dim_);
  ++pending_count_[slot];
}

void LruEmbeddingCache::ClearPending(int64_t slot) {
  owner_checker_.Check();
  if (pending_count_[slot] > 0) ++counters_.writebacks;
  float* p = Pending(slot);
  for (int c = 0; c < dim_; ++c) p[c] = 0.0f;
  pending_count_[slot] = 0;
}

void LruEmbeddingCache::SetValue(int64_t slot, const float* value) {
  owner_checker_.Check();
  CopyRow(Value(slot), value, dim_);
}

}  // namespace hetgmp
