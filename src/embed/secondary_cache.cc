#include "embed/secondary_cache.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

SecondaryCache::SecondaryCache(const std::vector<FeatureId>& embedding_ids,
                               int dim)
    : dim_(dim), ids_(embedding_ids) {
  HETGMP_CHECK_GT(dim, 0);
  slot_of_.reserve(ids_.size() * 2);
  for (size_t i = 0; i < ids_.size(); ++i) {
    const bool inserted =
        slot_of_.emplace(ids_[i], static_cast<int64_t>(i)).second;
    HETGMP_CHECK(inserted) << " duplicate secondary id " << ids_[i];
  }
  values_.assign(ids_.size() * dim_, 0.0f);
  pending_.assign(ids_.size() * dim_, 0.0f);
  pending_count_.assign(ids_.size(), 0);
  synced_clock_.assign(ids_.size(), 0);
}

void SecondaryCache::AccumulatePending(int64_t slot, const float* grad) {
  owner_checker_.Check();
  AccumulateRow(Pending(slot), grad, dim_);
  ++pending_count_[slot];
}

void SecondaryCache::ClearPending(int64_t slot) {
  owner_checker_.Check();
  float* p = Pending(slot);
  for (int c = 0; c < dim_; ++c) p[c] = 0.0f;
  pending_count_[slot] = 0;
}

void SecondaryCache::SetValue(int64_t slot, const float* value) {
  owner_checker_.Check();
  CopyRow(Value(slot), value, dim_);
}

}  // namespace hetgmp
