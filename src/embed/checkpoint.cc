#include "embed/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace hetgmp {

namespace {

// Format 02 adds the footer sentinel (torn-write detection); 01 files
// predate it and are rejected as unrecognized.
constexpr char kMagic[8] = {'H', 'G', 'M', 'P', 'C', 'K', '0', '2'};
constexpr char kFooter[8] = {'H', 'G', 'M', 'P', 'E', 'N', 'D', '2'};

class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() { Close(); }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }
  // Explicit close (flushes); returns false on flush/close failure.
  bool Close() {
    if (f_ == nullptr) return true;
    const bool closed_ok = std::fclose(f_) == 0;
    f_ = nullptr;
    return closed_ok;
  }

 private:
  std::FILE* f_;
};

Status WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::InvalidArgument("truncated checkpoint");
  }
  return Status::OK();
}

Status ReadHeader(std::FILE* f, const std::string& path, int64_t* rows,
                  int64_t* dim) {
  char magic[8];
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a HET-GMP checkpoint: " + path);
  }
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, rows, sizeof(*rows)));
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, dim, sizeof(*dim)));
  if (*rows < 0 || *dim <= 0) {
    return Status::InvalidArgument(
        "corrupt checkpoint header: rows=" + std::to_string(*rows) +
        " dim=" + std::to_string(*dim));
  }
  return Status::OK();
}

// The footer must be the last bytes of the file: present AND followed by
// EOF. A torn write that truncated mid-payload lacks it; a short read that
// stopped early (e.g. a dense-count mismatch masked by garbage) leaves
// trailing bytes after it.
Status VerifyFooter(std::FILE* f, const std::string& path) {
  char footer[8];
  if (std::fread(footer, 1, sizeof(footer), f) != sizeof(footer) ||
      std::memcmp(footer, kFooter, sizeof(kFooter)) != 0) {
    return Status::InvalidArgument(
        "torn or truncated checkpoint (missing footer): " + path);
  }
  if (std::fgetc(f) != EOF) {
    return Status::InvalidArgument("trailing bytes after checkpoint footer: " +
                                   path);
  }
  return Status::OK();
}

// Skips the dense-parameter section (self-describing: count, then
// size-prefixed tensors).
Status SkipDenseSection(std::FILE* f) {
  uint64_t num_tensors = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &num_tensors, sizeof(num_tensors)));
  for (uint64_t t = 0; t < num_tensors; ++t) {
    int64_t size = 0;
    HETGMP_RETURN_IF_ERROR(ReadBytes(f, &size, sizeof(size)));
    if (size < 0) return Status::InvalidArgument("corrupt dense tensor size");
    if (std::fseek(f, static_cast<long>(size * sizeof(float)), SEEK_CUR) !=
        0) {
      return Status::InvalidArgument("truncated checkpoint");
    }
  }
  return Status::OK();
}

// `row(x)` yields the dim-float row x; shared by the live-table and
// materialized-buffer savers.
template <typename RowFn>
Status WritePayload(std::FILE* f, int64_t rows, int64_t dim, RowFn&& row,
                    const std::vector<Tensor*>& dense_params) {
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, kMagic, sizeof(kMagic)));
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &rows, sizeof(rows)));
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &dim, sizeof(dim)));
  for (int64_t x = 0; x < rows; ++x) {
    HETGMP_RETURN_IF_ERROR(WriteBytes(f, row(x), dim * sizeof(float)));
  }
  const uint64_t num_tensors = dense_params.size();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &num_tensors, sizeof(num_tensors)));
  for (const Tensor* t : dense_params) {
    const int64_t size = t->size();
    HETGMP_RETURN_IF_ERROR(WriteBytes(f, &size, sizeof(size)));
    HETGMP_RETURN_IF_ERROR(WriteBytes(f, t->data(), size * sizeof(float)));
  }
  return WriteBytes(f, kFooter, sizeof(kFooter));
}

// Write-to-temp + rename: readers of `path` never observe a partial
// file, and a crash mid-write leaves the previous checkpoint intact.
template <typename RowFn>
Status SaveAtomically(int64_t rows, int64_t dim, RowFn&& row,
                      const std::vector<Tensor*>& dense_params,
                      const std::string& path) {
  const std::string tmp = path + ".tmp";
  Status st;
  {
    File file(tmp, "wb");
    if (!file.ok()) {
      return Status::InvalidArgument("cannot open for writing: " + tmp);
    }
    st = WritePayload(file.get(), rows, dim, row, dense_params);
    if (st.ok() && !file.Close()) {
      st = Status::Internal("flush failed: " + tmp);
    }
  }
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  if (!st.ok()) std::remove(tmp.c_str());
  return st;
}

}  // namespace

Status SaveCheckpoint(const EmbeddingTable& table,
                      const std::vector<Tensor*>& dense_params,
                      const std::string& path) {
  return SaveAtomically(
      table.num_embeddings(), table.dim(),
      [&table](int64_t x) { return table.UnsafeRow(x); }, dense_params, path);
}

Status SaveCheckpointRows(int64_t rows, int dim, const float* values,
                          const std::vector<Tensor*>& dense_params,
                          const std::string& path) {
  return SaveAtomically(
      rows, dim, [values, dim](int64_t x) { return values + x * dim; },
      dense_params, path);
}

Status LoadCheckpoint(const std::string& path, EmbeddingTable* table,
                      const std::vector<Tensor*>& dense_params) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::FILE* f = file.get();
  int64_t rows = 0, dim = 0;
  HETGMP_RETURN_IF_ERROR(ReadHeader(f, path, &rows, &dim));
  if (rows != table->num_embeddings() || dim != table->dim()) {
    return Status::InvalidArgument(
        "checkpoint shape mismatch: file has " + std::to_string(rows) + "x" +
        std::to_string(dim) + ", table is " +
        std::to_string(table->num_embeddings()) + "x" +
        std::to_string(table->dim()));
  }
  for (int64_t x = 0; x < rows; ++x) {
    HETGMP_RETURN_IF_ERROR(
        ReadBytes(f, table->UnsafeMutableRow(x), dim * sizeof(float)));
  }
  uint64_t num_tensors = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &num_tensors, sizeof(num_tensors)));
  if (num_tensors != dense_params.size()) {
    return Status::InvalidArgument("dense tensor count mismatch");
  }
  for (Tensor* t : dense_params) {
    int64_t size = 0;
    HETGMP_RETURN_IF_ERROR(ReadBytes(f, &size, sizeof(size)));
    if (size != t->size()) {
      return Status::InvalidArgument("dense tensor size mismatch");
    }
    HETGMP_RETURN_IF_ERROR(ReadBytes(f, t->data(), size * sizeof(float)));
  }
  return VerifyFooter(f, path);
}

Result<CheckpointEmbeddings> LoadCheckpointEmbeddings(
    const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::FILE* f = file.get();
  CheckpointEmbeddings out;
  int64_t rows = 0, dim = 0;
  HETGMP_RETURN_IF_ERROR(ReadHeader(f, path, &rows, &dim));
  out.rows = rows;
  out.dim = static_cast<int>(dim);
  out.values.resize(static_cast<size_t>(rows * dim));
  HETGMP_RETURN_IF_ERROR(
      ReadBytes(f, out.values.data(), out.values.size() * sizeof(float)));
  HETGMP_RETURN_IF_ERROR(SkipDenseSection(f));
  HETGMP_RETURN_IF_ERROR(VerifyFooter(f, path));
  return out;
}

}  // namespace hetgmp
