#include "embed/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace hetgmp {

namespace {

constexpr char kMagic[8] = {'H', 'G', 'M', 'P', 'C', 'K', '0', '1'};

class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

Status WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::InvalidArgument("truncated checkpoint");
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const EmbeddingTable& table,
                      const std::vector<Tensor*>& dense_params,
                      const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, kMagic, sizeof(kMagic)));
  const int64_t rows = table.num_embeddings();
  const int64_t dim = table.dim();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &rows, sizeof(rows)));
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &dim, sizeof(dim)));
  for (int64_t x = 0; x < rows; ++x) {
    HETGMP_RETURN_IF_ERROR(
        WriteBytes(f, table.UnsafeRow(x), dim * sizeof(float)));
  }
  const uint64_t num_tensors = dense_params.size();
  HETGMP_RETURN_IF_ERROR(WriteBytes(f, &num_tensors, sizeof(num_tensors)));
  for (const Tensor* t : dense_params) {
    const int64_t size = t->size();
    HETGMP_RETURN_IF_ERROR(WriteBytes(f, &size, sizeof(size)));
    HETGMP_RETURN_IF_ERROR(
        WriteBytes(f, t->data(), size * sizeof(float)));
  }
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, EmbeddingTable* table,
                      const std::vector<Tensor*>& dense_params) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::FILE* f = file.get();
  char magic[8];
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a HET-GMP checkpoint: " + path);
  }
  int64_t rows = 0, dim = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &rows, sizeof(rows)));
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &dim, sizeof(dim)));
  if (rows != table->num_embeddings() || dim != table->dim()) {
    return Status::InvalidArgument(
        "checkpoint shape mismatch: file has " + std::to_string(rows) +
        "x" + std::to_string(dim) + ", table is " +
        std::to_string(table->num_embeddings()) + "x" +
        std::to_string(table->dim()));
  }
  for (int64_t x = 0; x < rows; ++x) {
    HETGMP_RETURN_IF_ERROR(
        ReadBytes(f, table->UnsafeMutableRow(x), dim * sizeof(float)));
  }
  uint64_t num_tensors = 0;
  HETGMP_RETURN_IF_ERROR(ReadBytes(f, &num_tensors, sizeof(num_tensors)));
  if (num_tensors != dense_params.size()) {
    return Status::InvalidArgument("dense tensor count mismatch");
  }
  for (Tensor* t : dense_params) {
    int64_t size = 0;
    HETGMP_RETURN_IF_ERROR(ReadBytes(f, &size, sizeof(size)));
    if (size != t->size()) {
      return Status::InvalidArgument("dense tensor size mismatch");
    }
    HETGMP_RETURN_IF_ERROR(
        ReadBytes(f, t->data(), size * sizeof(float)));
  }
  return Status::OK();
}

}  // namespace hetgmp
