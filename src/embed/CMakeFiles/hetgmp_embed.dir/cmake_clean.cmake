file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_embed.dir/checkpoint.cc.o"
  "CMakeFiles/hetgmp_embed.dir/checkpoint.cc.o.d"
  "CMakeFiles/hetgmp_embed.dir/embedding_table.cc.o"
  "CMakeFiles/hetgmp_embed.dir/embedding_table.cc.o.d"
  "CMakeFiles/hetgmp_embed.dir/lru_cache.cc.o"
  "CMakeFiles/hetgmp_embed.dir/lru_cache.cc.o.d"
  "CMakeFiles/hetgmp_embed.dir/secondary_cache.cc.o"
  "CMakeFiles/hetgmp_embed.dir/secondary_cache.cc.o.d"
  "libhetgmp_embed.a"
  "libhetgmp_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
