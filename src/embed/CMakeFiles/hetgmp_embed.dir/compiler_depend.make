# Empty compiler generated dependencies file for hetgmp_embed.
# This may be replaced when dependencies are built.
