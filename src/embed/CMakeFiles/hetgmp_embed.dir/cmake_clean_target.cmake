file(REMOVE_RECURSE
  "libhetgmp_embed.a"
)
