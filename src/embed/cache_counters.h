#ifndef HETGMP_EMBED_CACHE_COUNTERS_H_
#define HETGMP_EMBED_CACHE_COUNTERS_H_

#include <cstdint>

namespace hetgmp {

// Hit/miss/movement counters shared by every row cache and storage tier
// (LruEmbeddingCache, the tiered store's hot/warm/cold tiers), so the
// CLI summary and the tiering bench report one schema regardless of
// which layer produced the numbers.
struct CacheCounters {
  int64_t hits = 0;        // lookups served by this tier/cache
  int64_t misses = 0;      // lookups that had to go deeper
  int64_t writebacks = 0;  // dirty entries flushed to the backing store
  int64_t promotions = 0;  // rows brought into this tier
  int64_t demotions = 0;   // rows pushed out of this tier

  void Merge(const CacheCounters& o) {
    hits += o.hits;
    misses += o.misses;
    writebacks += o.writebacks;
    promotions += o.promotions;
    demotions += o.demotions;
  }

  [[nodiscard]] int64_t lookups() const { return hits + misses; }
  [[nodiscard]] double HitRate() const {
    const int64_t n = lookups();
    return n > 0 ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

}  // namespace hetgmp

#endif  // HETGMP_EMBED_CACHE_COUNTERS_H_
