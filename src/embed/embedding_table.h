#ifndef HETGMP_EMBED_EMBEDDING_TABLE_H_
#define HETGMP_EMBED_EMBEDDING_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/thread_annotations.h"

namespace hetgmp {

// Optimizer applied to embedding rows. CTR systems use per-row AdaGrad;
// SGD is kept for the convergence-theory tests (§5.4 assumes plain
// gradient steps).
enum class EmbeddingOptimizer { kSgd, kAdaGrad };

// The primary replicas of all embedding rows, sharded logically by the
// partition's embedding_owner but stored in one arena (the simulated
// cluster shares an address space; *access* still goes through the
// engine's fabric accounting — see core/engine.cc).
//
// Thread-safety: row updates and reads take a striped lock so concurrent
// write-backs from different workers never interleave within a row. The
// stripe set cannot be expressed as a single GUARDED_BY capability (which
// stripe protects a row depends on x), so values_/accum_ carry no
// annotation; the locking contract is: every access to row x goes through
// MutexLock(RowMutex(x)) except the Unsafe* accessors, which require
// externally quiesced workers.
class EmbeddingTable {
 public:
  EmbeddingTable(int64_t num_embeddings, int dim, float init_stddev,
                 uint64_t seed,
                 EmbeddingOptimizer optimizer = EmbeddingOptimizer::kAdaGrad,
                 float lr = 0.05f);

  int64_t num_embeddings() const { return num_embeddings_; }
  int dim() const { return dim_; }

  // Copies row x into out[0..dim).
  void ReadRow(int64_t x, float* out) const;

  // Applies one optimizer step with `grad` (scaled by count identical
  // gradient applications when a secondary flushes a batch of `count`
  // accumulated updates).
  void ApplyGradient(int64_t x, const float* grad);

  // Direct row access without locking — only safe when workers are
  // quiesced (evaluation, tests).
  const float* UnsafeRow(int64_t x) const {
    return values_.data() + x * dim_;
  }
  float* UnsafeMutableRow(int64_t x) { return values_.data() + x * dim_; }

  // Optimizer state for row x (nullptr when the optimizer keeps none,
  // i.e. SGD). Same quiesce contract as UnsafeRow; the tiered store
  // additionally uses these for rows it has made private by pinning
  // (store/tiered_store.h), where no other thread can touch the row.
  bool has_accum() const { return !accum_.empty(); }
  const float* UnsafeAccumRow(int64_t x) const {
    return accum_.empty() ? nullptr : accum_.data() + x * dim_;
  }
  float* UnsafeMutableAccumRow(int64_t x) {
    return accum_.empty() ? nullptr : accum_.data() + x * dim_;
  }

  uint64_t RowBytes() const {
    return static_cast<uint64_t>(dim_) * sizeof(float);
  }

 private:
  // lint: rank(kEmbedStripe)
  Mutex& RowMutex(int64_t x) const {
    return mutexes_[static_cast<size_t>(x) % kMutexStripes];
  }

  static constexpr size_t kMutexStripes = 1024;

  const int64_t num_embeddings_;
  const int dim_;
  const EmbeddingOptimizer optimizer_;
  const float lr_;
  // lint: unguarded(striped by RowMutex(x): every row access holds the
  // row's stripe; Unsafe* accessors require externally quiesced workers)
  std::vector<float> values_;
  // lint: unguarded(striped by RowMutex(x), same contract as values_)
  std::vector<float> accum_;  // AdaGrad accumulators (empty for SGD)
  mutable std::vector<Mutex> mutexes_;  // lint: rank(kEmbedStripe)
};

}  // namespace hetgmp

#endif  // HETGMP_EMBED_EMBEDDING_TABLE_H_
