#ifndef HETGMP_EMBED_CHECKPOINT_H_
#define HETGMP_EMBED_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "embed/embedding_table.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Model checkpointing: embedding table rows plus the dense parameter
// tensors, in one binary file. Long CTR training jobs checkpoint the
// embedding state because regenerating it is the expensive part.
//
// Crash safety: the file is written to "<path>.tmp" and atomically
// renamed into place, so a crash mid-save leaves either the previous
// checkpoint or none — never a torn file under `path`. The payload is
// additionally terminated by a footer sentinel; loading rejects any file
// that ends early (a torn write from a non-atomic producer) even when
// the header shapes happen to match.
//
// Only call with quiesced workers (the table is read through the unsafe
// row accessors).

Status SaveCheckpoint(const EmbeddingTable& table,
                      const std::vector<Tensor*>& dense_params,
                      const std::string& path);

// Same format, but the embedding rows come from a flat row-major buffer
// (`values` is rows*dim floats) instead of a live table. Used by the
// serve publish path when the training table is tiered: the publisher
// materializes rows through the store first and checkpoints the copy.
Status SaveCheckpointRows(int64_t rows, int dim, const float* values,
                          const std::vector<Tensor*>& dense_params,
                          const std::string& path);

// Restores into an existing table/params of identical shape; shape
// mismatches are InvalidArgument.
Status LoadCheckpoint(const std::string& path, EmbeddingTable* table,
                      const std::vector<Tensor*>& dense_params);

// The embedding-table section of a checkpoint, self-describing (the
// caller does not need to know the shape up front). This is the serving
// loader: an inference process restores published rows without
// constructing the dense model the file was saved with.
struct CheckpointEmbeddings {
  int64_t rows = 0;
  int dim = 0;
  std::vector<float> values;  // rows * dim, row-major
};

// Reads only the embedding rows; the dense section is skipped, but the
// footer is still verified so torn files are rejected.
Result<CheckpointEmbeddings> LoadCheckpointEmbeddings(const std::string& path);

}  // namespace hetgmp

#endif  // HETGMP_EMBED_CHECKPOINT_H_
