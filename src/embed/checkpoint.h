#ifndef HETGMP_EMBED_CHECKPOINT_H_
#define HETGMP_EMBED_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "embed/embedding_table.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Model checkpointing: embedding table rows plus the dense parameter
// tensors, in one binary file. Long CTR training jobs checkpoint the
// embedding state because regenerating it is the expensive part.
//
// Only call with quiesced workers (the table is read through the unsafe
// row accessors).

Status SaveCheckpoint(const EmbeddingTable& table,
                      const std::vector<Tensor*>& dense_params,
                      const std::string& path);

// Restores into an existing table/params of identical shape; shape
// mismatches are InvalidArgument.
Status LoadCheckpoint(const std::string& path, EmbeddingTable* table,
                      const std::vector<Tensor*>& dense_params);

}  // namespace hetgmp

#endif  // HETGMP_EMBED_CHECKPOINT_H_
