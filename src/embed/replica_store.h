#ifndef HETGMP_EMBED_REPLICA_STORE_H_
#define HETGMP_EMBED_REPLICA_STORE_H_

#include <cstdint>

#include "common/thread_annotations.h"
#include "data/dataset.h"

namespace hetgmp {

// A worker's local replica storage: slot-addressed rows with a cached
// value, a pending (not yet written back) gradient, and the primary clock
// reflected in the value. Two implementations:
//
//  * SecondaryCache  — static membership from the 2D vertex-cut (§5.2,
//    HET-GMP's design);
//  * LruEmbeddingCache — dynamic LRU membership (the cache-enabled
//    architecture of HET, the paper's predecessor system [34]).
//
// Single-owner: only the owning worker thread touches its store. There is
// deliberately no mutex — exclusivity is the contract, enforced in debug
// builds by `owner_checker_` (mutating implementations call
// owner_checker_.Check(); the engine calls ResetOwner() at the hand-off
// points where the store legally changes threads: before spawning workers
// and after joining them).
class ReplicaStore {
 public:
  virtual ~ReplicaStore() = default;

  // Declares an ownership hand-off: the next mutating call may come from a
  // different thread than previous ones. Only valid between the old
  // owner's last access and the new owner's first (i.e. with the store
  // quiesced) — calling it concurrently with accesses defeats the check.
  void ResetOwner() { owner_checker_.Reset(); }

  virtual int dim() const = 0;
  // Number of slots (capacity for dynamic stores).
  virtual int64_t size() const = 0;
  // Slot holding embedding x, or -1. Dynamic stores refresh recency.
  virtual int64_t Slot(FeatureId x) = 0;
  // Embedding held by `slot`, or -1 when the slot is unoccupied.
  virtual FeatureId IdAt(int64_t slot) const = 0;

  virtual float* Value(int64_t slot) = 0;
  virtual float* Pending(int64_t slot) = 0;
  virtual int64_t pending_count(int64_t slot) const = 0;
  virtual uint64_t synced_clock(int64_t slot) const = 0;
  virtual void set_synced_clock(int64_t slot, uint64_t clock) = 0;

  virtual void AccumulatePending(int64_t slot, const float* grad) = 0;
  virtual void ClearPending(int64_t slot) = 0;
  virtual void SetValue(int64_t slot, const float* value) = 0;

  uint64_t RowBytes() const {
    return static_cast<uint64_t>(dim()) * sizeof(float);
  }

 protected:
  SingleOwnerChecker owner_checker_;
};

}  // namespace hetgmp

#endif  // HETGMP_EMBED_REPLICA_STORE_H_
