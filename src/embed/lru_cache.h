#ifndef HETGMP_EMBED_LRU_CACHE_H_
#define HETGMP_EMBED_LRU_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "embed/cache_counters.h"
#include "embed/replica_store.h"

namespace hetgmp {

// Fixed-capacity LRU replica store — the *dynamic* caching design of HET
// (the paper's predecessor system [34]), implemented so HET-GMP's static
// graph-derived replication can be compared against runtime-adaptive
// caching under identical staleness machinery
// (bench_ablation_cache_policy).
//
// Slots are recycled: inserting into a full cache evicts the least
// recently used entry. The caller must write back the evictee's pending
// gradient first (Insert reports it).
class LruEmbeddingCache : public ReplicaStore {
 public:
  LruEmbeddingCache(int64_t capacity, int dim);

  int dim() const override { return dim_; }
  int64_t size() const override { return capacity_; }
  int64_t occupied() const { return static_cast<int64_t>(slot_of_.size()); }
  FeatureId IdAt(int64_t slot) const override { return id_of_[slot]; }

  // Looks up x; a hit refreshes recency.
  int64_t Slot(FeatureId x) override;

  // Candidate eviction victim if an insert happened now: the LRU occupied
  // slot, or -1 when there is still free space. The caller flushes its
  // pending gradient, then calls Insert.
  int64_t EvictionCandidate() const;

  // Inserts x (must not be present), evicting the least recently used
  // *clean* entry if full: slots with unflushed pending gradients are
  // skipped (evicting one would drop the gradient), walking from the
  // tail toward the head. Fails only if every slot is dirty. Returns
  // the slot now holding x, with value/pending zeroed and clock 0.
  int64_t Insert(FeatureId x);

  float* Value(int64_t slot) override { return values_.data() + slot * dim_; }
  float* Pending(int64_t slot) override {
    return pending_.data() + slot * dim_;
  }
  int64_t pending_count(int64_t slot) const override {
    return pending_count_[slot];
  }
  uint64_t synced_clock(int64_t slot) const override {
    return synced_clock_[slot];
  }
  void set_synced_clock(int64_t slot, uint64_t clock) override {
    synced_clock_[slot] = clock;
  }

  void AccumulatePending(int64_t slot, const float* grad) override;
  void ClearPending(int64_t slot) override;
  void SetValue(int64_t slot, const float* value) override;

  // Hit-rate instrumentation (CacheCounters is the shared schema with the
  // tiered store; promotions = inserts, demotions = evictions, writebacks
  // = pending-gradient flushes through ClearPending).
  int64_t hits() const { return counters_.hits; }
  int64_t misses() const { return counters_.misses; }
  const CacheCounters& counters() const { return counters_; }

 private:
  void MoveToFront(int64_t slot);
  void Unlink(int64_t slot);
  void LinkFront(int64_t slot);

  int dim_;
  int64_t capacity_;
  std::unordered_map<FeatureId, int64_t> slot_of_;
  std::vector<FeatureId> id_of_;      // -1 = unoccupied
  std::vector<int64_t> prev_, next_;  // recency list over slots
  int64_t head_ = -1;                 // most recent
  int64_t tail_ = -1;                 // least recent
  std::vector<int64_t> free_slots_;
  std::vector<float> values_;
  std::vector<float> pending_;
  std::vector<int64_t> pending_count_;
  std::vector<uint64_t> synced_clock_;
  CacheCounters counters_;
};

}  // namespace hetgmp

#endif  // HETGMP_EMBED_LRU_CACHE_H_
