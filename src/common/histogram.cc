#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace hetgmp {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

double Histogram::BucketUpper(int b) {
  // Bucket 0 holds values <= 0; bucket b holds (upper(b-1), upper(b)] with
  // upper(b) = 10^((b-77)/5.1), giving ~5 buckets per decade.
  if (b <= 0) return 0.0;
  return std::pow(10.0, (b - 77) / 5.1);
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  int b = 0;
  if (value > 0.0) {
    b = static_cast<int>(std::ceil(std::log10(value) * 5.1 + 77.0));
    b = std::clamp(b, 1, kNumBuckets - 1);
  }
  ++buckets_[b];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
}

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::min() const { return min_; }
double Histogram::max() const { return max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0.0;
  const double mean = Mean();
  const double var =
      std::max(0.0, sum_sq_ / static_cast<double>(count_) - mean * mean);
  return std::sqrt(var);
}

double Histogram::Quantile(double p) const {
  HETGMP_CHECK_GE(p, 0.0);
  HETGMP_CHECK_LE(p, 1.0);
  if (count_ == 0) return 0.0;
  const double target = p * static_cast<double>(count_);
  double seen = 0.0;
  for (int b = 0; b < kNumBuckets; ++b) {
    // Empty buckets carry no mass and must not satisfy the cumulative
    // test: with target == 0 (p = 0) an empty leading bucket would
    // otherwise be selected and its upper edge returned instead of the
    // true minimum.
    if (buckets_[b] == 0) continue;
    seen += static_cast<double>(buckets_[b]);
    if (seen >= target) {
      const double lower = b == 0 ? min_ : BucketUpper(b - 1);
      const double upper = BucketUpper(b);
      // Interpolate within the bucket, clamped to the observed range.
      const double frac =
          1.0 - (seen - target) / static_cast<double>(buckets_[b]);
      double q = lower + frac * (upper - lower);
      return std::clamp(q, min_, max_);
    }
  }
  return max_;
}

std::vector<double> Histogram::PercentileMany(
    const std::vector<double>& percents) const {
  std::vector<double> out(percents.size(), 0.0);
  if (percents.empty()) return out;
  // Sort internally (indices, ascending percent) so one cumulative scan
  // answers every entry; callers may pass any order with duplicates. The
  // per-entry math below is exactly Quantile's, so each result matches a
  // standalone Percentile(p) call bit for bit.
  std::vector<size_t> order(percents.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&percents](size_t a, size_t b) {
              return percents[a] < percents[b];
            });
  for (double p : percents) {
    HETGMP_CHECK_GE(p, 0.0);
    HETGMP_CHECK_LE(p, 100.0);
  }
  if (count_ == 0) return out;  // empty histogram: 0 for every percentile
  size_t k = 0;
  double seen = 0.0;
  for (int b = 0; b < kNumBuckets && k < order.size(); ++b) {
    if (buckets_[b] == 0) continue;  // no mass, same skip as Quantile
    seen += static_cast<double>(buckets_[b]);
    while (k < order.size()) {
      const double target =
          percents[order[k]] / 100.0 * static_cast<double>(count_);
      if (seen < target) break;  // later bucket answers this (and the rest)
      const double lower = b == 0 ? min_ : BucketUpper(b - 1);
      const double upper = BucketUpper(b);
      const double frac =
          1.0 - (seen - target) / static_cast<double>(buckets_[b]);
      out[order[k]] = std::clamp(lower + frac * (upper - lower), min_, max_);
      ++k;
    }
  }
  for (; k < order.size(); ++k) out[order[k]] = max_;
  return out;
}

double Histogram::Gini() const {
  // Gini from bucket midpoints: G = Σ Σ |x_i - x_j| f_i f_j / (2 μ).
  if (count_ == 0 || sum_ <= 0.0) return 0.0;
  std::vector<std::pair<double, double>> mass;  // (midpoint, fraction)
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double lower = b == 0 ? 0.0 : BucketUpper(b - 1);
    const double mid = 0.5 * (lower + BucketUpper(b));
    mass.emplace_back(mid, static_cast<double>(buckets_[b]) /
                               static_cast<double>(count_));
  }
  const double mu = Mean();
  double acc = 0.0;
  for (const auto& [xi, fi] : mass) {
    for (const auto& [xj, fj] : mass) {
      acc += std::abs(xi - xj) * fi * fj;
    }
  }
  return acc / (2.0 * mu);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " stddev=" << StdDev()
     << " min=" << min_ << " p50=" << P50() << " p99=" << P99()
     << " max=" << max_;
  return os.str();
}

}  // namespace hetgmp
