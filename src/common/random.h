#ifndef HETGMP_COMMON_RANDOM_H_
#define HETGMP_COMMON_RANDOM_H_

#include <cstdint>

namespace hetgmp {

// Xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, and fully
// deterministic for a given seed — every stochastic component in the library
// takes an explicit seed so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over all 64-bit values.
  uint64_t NextUint64();

  // Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  uint64_t NextUint64(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Bernoulli draw.
  [[nodiscard]] bool NextBool(double p_true);

  // Splits off an independent generator (for per-worker streams).
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hetgmp

#endif  // HETGMP_COMMON_RANDOM_H_
