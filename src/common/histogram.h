#ifndef HETGMP_COMMON_HISTOGRAM_H_
#define HETGMP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hetgmp {

// Streaming summary of a scalar distribution (degree skew, per-worker load,
// iteration latencies). Keeps exact moments plus a log-scale bucket count;
// quantiles are approximate (bucket interpolation).
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double StdDev() const;

  // Approximate p-quantile, p in [0, 1].
  double Quantile(double p) const;

  // Latency-reporting conveniences (p in percent for PercentileMany, so
  // P50() == Percentile(50) == Quantile(0.5)). An empty histogram reports
  // 0 for every percentile.
  double Percentile(double percent) const { return Quantile(percent / 100.0); }
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
  double P999() const { return Quantile(0.999); }

  // Evaluates several percentiles (in percent, each in [0, 100]) in one
  // call, returned in the caller's order. The input need not be sorted or
  // deduplicated: entries are evaluated in ascending order internally
  // over a single cumulative scan, then scattered back to caller order.
  // Each result is identical to Percentile(p) for that entry.
  std::vector<double> PercentileMany(const std::vector<double>& percents) const;

  // Gini coefficient of positive added values; 0 = perfectly even,
  // → 1 = maximally skewed. Approximated from buckets.
  double Gini() const;

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 154;  // covers [0, 1e30) log-spaced
  static double BucketUpper(int b);

  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<int64_t> buckets_;
};

}  // namespace hetgmp

#endif  // HETGMP_COMMON_HISTOGRAM_H_
