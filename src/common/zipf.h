#ifndef HETGMP_COMMON_ZIPF_H_
#define HETGMP_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace hetgmp {

// Samples from a Zipf distribution over {0, 1, ..., n-1}: P(k) ∝ 1/(k+1)^θ.
// This is the access-skew model the paper relies on ("highly skewed
// power-law degree distributions", §4): with θ≈1 the top 1% of items absorb
// the majority of accesses.
//
// Uses the rejection-inversion method of Hörmann & Derflinger (1996), which
// is O(1) per sample with no table precomputation, so it stays cheap even
// for n in the hundreds of millions.
class ZipfSampler {
 public:
  // n: support size (must be >= 1); theta: exponent (>= 0; 0 is uniform).
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Exact probability mass of item k (for tests and normalization); O(n) to
  // compute the normalizer on first call.
  double Pmf(uint64_t k) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
  mutable double normalizer_ = -1.0;  // lazily computed for Pmf()
};

// Convenience: empirical frequency of each item over `draws` samples.
std::vector<double> EmpiricalZipfFrequencies(const ZipfSampler& sampler,
                                             uint64_t draws, Rng* rng);

}  // namespace hetgmp

#endif  // HETGMP_COMMON_ZIPF_H_
