#ifndef HETGMP_COMMON_STATUS_H_
#define HETGMP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hetgmp {

// Error categories used across the library. Kept deliberately small: the
// library runs in-process and most failures are configuration errors.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  // Transport-layer outcomes (src/comm): a peer died / closed the
  // connection (kUnavailable) or an operation did not finish within its
  // deadline (kDeadlineExceeded). Both are retryable in principle, unlike
  // kInternal, which the transport reserves for corrupt frames.
  kUnavailable,
  kDeadlineExceeded,
};

// Lightweight status object in the RocksDB/Abseil style. Functions that can
// fail due to caller input return Status (or Result<T>); programmer errors
// use CHECK macros from logging.h instead.
//
// [[nodiscard]] on the class makes silently dropping any returned Status a
// compile error under -Werror (the tree builds with unused-result promoted
// to an error; see scripts/check.sh). Callers that genuinely want to
// ignore a failure say so explicitly with HETGMP_IGNORE_STATUS.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "InvalidArgument: num_parts must be > 0".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

// Result<T>: either a value or an error Status. Use value() only after
// checking ok(); value() on an error aborts via CHECK.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

// Propagates errors to the caller: `HETGMP_RETURN_IF_ERROR(DoThing());`
#define HETGMP_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::hetgmp::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

// Explicitly discards a Status where failure is genuinely acceptable
// (best-effort cleanup paths). Grep-able, unlike a bare (void) cast.
#define HETGMP_IGNORE_STATUS(expr) \
  do {                             \
    (void)(expr);                  \
  } while (0)

}  // namespace hetgmp

#endif  // HETGMP_COMMON_STATUS_H_
