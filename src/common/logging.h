#ifndef HETGMP_COMMON_LOGGING_H_
#define HETGMP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hetgmp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level that is actually emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-style log sink. Emits on destruction; `fatal` aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

// Swallows streamed values when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed expression into void so CHECK can sit inside a ternary
// (operator& binds looser than << and tighter than ?:).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace hetgmp

#define HETGMP_LOG(level)                                                  \
  ::hetgmp::internal_logging::LogMessage(::hetgmp::LogLevel::k##level,     \
                                         __FILE__, __LINE__)               \
      .stream()

// Programmer-error assertions: abort with a message. Used for invariants
// that indicate bugs rather than bad input (bad input gets a Status).
#define HETGMP_CHECK(cond)                                                  \
  (cond) ? (void)0                                                          \
         : ::hetgmp::internal_logging::Voidify() &                          \
               ::hetgmp::internal_logging::LogMessage(                      \
                   ::hetgmp::LogLevel::kError, __FILE__, __LINE__, true)    \
                   .stream()                                                \
               << "Check failed: " #cond " "

#define HETGMP_CHECK_OK(expr)                                               \
  do {                                                                      \
    ::hetgmp::Status _st = (expr);                                          \
    HETGMP_CHECK(_st.ok()) << _st.ToString();                               \
  } while (0)

// Debug-only assertion: enforced in debug builds, compiled away (but still
// type-checked) under NDEBUG. Use on hot paths where the check would cost
// real time per element (e.g. the engine's batch-plan bounds checks).
#ifdef NDEBUG
#define HETGMP_DCHECK(cond) \
  while (false) HETGMP_CHECK(cond)
#else
#define HETGMP_DCHECK(cond) HETGMP_CHECK(cond)
#endif

#define HETGMP_CHECK_EQ(a, b) HETGMP_CHECK((a) == (b))
#define HETGMP_CHECK_NE(a, b) HETGMP_CHECK((a) != (b))
#define HETGMP_CHECK_LT(a, b) HETGMP_CHECK((a) < (b))
#define HETGMP_CHECK_LE(a, b) HETGMP_CHECK((a) <= (b))
#define HETGMP_CHECK_GT(a, b) HETGMP_CHECK((a) > (b))
#define HETGMP_CHECK_GE(a, b) HETGMP_CHECK((a) >= (b))

#endif  // HETGMP_COMMON_LOGGING_H_
