#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/thread_annotations.h"

namespace hetgmp {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes whole lines so concurrent workers do not interleave output.
// Leaked intentionally: log lines can be emitted from static destructors
// after a scoped mutex would already be gone.
Mutex& OutputMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool enabled =
      fatal_ || static_cast<int>(level_) >=
                    g_min_level.load(std::memory_order_relaxed);
  if (enabled) {
    MutexLock lock(OutputMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace hetgmp
