#ifndef HETGMP_COMMON_LINT_TAGS_H_
#define HETGMP_COMMON_LINT_TAGS_H_

// Function tags consumed by tools/hetgmp_lint (the project-contract static
// analyzer; see DESIGN.md §5b for the rule catalogue). The tags sit before
// the return type of a function definition:
//
//   HETGMP_HOT_PATH void Engine::TrainIterationPlanned(WorkerState* ws) {
//
// HETGMP_HOT_PATH — rule R4: the body may not introduce per-call-lifetime
// allocations (new / make_unique / make_shared / malloc-family, or local
// declarations of allocating containers). Amortized growth of reused
// member scratch (ws->buf.resize(...) after warmup) is allowed; a
// genuinely required allocation carries `// lint: allow_alloc(reason)`.
// Under GCC/Clang the tag doubles as __attribute__((hot)) so the compiler
// also treats the function as hot for inlining/layout decisions.
//
// HETGMP_BIT_STABLE — rule R5: the body is part of a bit-stable section
// (the PR 4/5 golden-trajectory guarantees) and may not introduce
// reassociating reductions (std::reduce / std::transform_reduce /
// std::execution policies, OpenMP reductions) or iteration over unordered
// containers feeding FP accumulation. Waiver: `// lint: allow_reassoc(reason)`
// or `// lint: allow_unordered(reason)`.

#if defined(__GNUC__) || defined(__clang__)
#define HETGMP_HOT_PATH __attribute__((hot))
#else
#define HETGMP_HOT_PATH
#endif

// Pure lint marker; expands to nothing.
#define HETGMP_BIT_STABLE

#endif  // HETGMP_COMMON_LINT_TAGS_H_
