#ifndef HETGMP_COMMON_STRINGUTIL_H_
#define HETGMP_COMMON_STRINGUTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hetgmp {

// "1.5 GiB", "312.0 MiB", ... for log and report output.
std::string HumanBytes(uint64_t bytes);

// "1.2M", "34.5k" style counts.
std::string HumanCount(double count);

// Fixed-precision double rendering ("%.*f").
std::string FormatDouble(double v, int precision);

// Joins elements with `sep` using operator<< rendering.
std::string JoinInts(const std::vector<int64_t>& values,
                     const std::string& sep);

// Left-pads `s` with spaces to at least `width` characters (for tables).
std::string PadLeft(const std::string& s, size_t width);

// Renders `fraction` (0..1) as "NN.N%".
std::string Percent(double fraction);

}  // namespace hetgmp

#endif  // HETGMP_COMMON_STRINGUTIL_H_
