#ifndef HETGMP_COMMON_THREAD_ANNOTATIONS_H_
#define HETGMP_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety analysis support (Abseil-style macro names, see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) plus the small
// annotated synchronization vocabulary the rest of the library uses:
//
//   * Mutex / MutexLock — std::mutex behind a CAPABILITY-annotated wrapper
//     (libstdc++'s std::mutex carries no capability attributes, so the
//     analysis can only check locking discipline through a wrapper);
//   * CondVar — condition variable bound to a Mutex, with REQUIRES-checked
//     waits;
//   * SingleOwnerChecker — a debug-build dynamic assertion for structures
//     whose contract is "one owning thread at a time" rather than a lock
//     (the engine's per-worker replica stores);
//   * lock_rank — the numeric acquisition-order table from DESIGN.md §5b.
//     A ranked Mutex records its rank in the per-thread held-rank set on
//     Lock() and aborts on inversion (acquiring a rank <= any held rank),
//     so the prose "acquisition order" paragraph is executable. Checks are
//     live whenever NDEBUG is undefined (sanitized builds) or the build
//     defines HETGMP_LOCK_RANK_CHECKS (cmake -DHETGMP_LOCK_RANK=ON).
//
// Builds under GCC compile the annotations away; scripts/check.sh and CI
// run the Clang `-Wthread-safety -Werror=thread-safety` configuration that
// actually enforces them.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#if defined(__clang__) && !defined(SWIG)
#define HETGMP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HETGMP_THREAD_ANNOTATION__(x)
#endif

// Data members: which mutex guards them.
#define HETGMP_GUARDED_BY(x) HETGMP_THREAD_ANNOTATION__(guarded_by(x))
#define HETGMP_PT_GUARDED_BY(x) HETGMP_THREAD_ANNOTATION__(pt_guarded_by(x))

// Functions: locks that must (not) be held on entry.
#define HETGMP_REQUIRES(...) \
  HETGMP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define HETGMP_REQUIRES_SHARED(...) \
  HETGMP_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define HETGMP_EXCLUDES(...) \
  HETGMP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Functions: locks acquired/released as a side effect.
#define HETGMP_ACQUIRE(...) \
  HETGMP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define HETGMP_RELEASE(...) \
  HETGMP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define HETGMP_TRY_ACQUIRE(...) \
  HETGMP_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// Lock ordering documentation (checked by the analysis when complete).
#define HETGMP_ACQUIRED_BEFORE(...) \
  HETGMP_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define HETGMP_ACQUIRED_AFTER(...) \
  HETGMP_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// Types: lockable capabilities and RAII scopes over them.
#define HETGMP_CAPABILITY(x) HETGMP_THREAD_ANNOTATION__(capability(x))
#define HETGMP_SCOPED_CAPABILITY HETGMP_THREAD_ANNOTATION__(scoped_lockable)
#define HETGMP_RETURN_CAPABILITY(x) \
  HETGMP_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch for code whose protection the analysis cannot express
// (e.g. barrier-phase protocols). Always pairs with a comment saying what
// the actual synchronization is.
#define HETGMP_NO_THREAD_SAFETY_ANALYSIS \
  HETGMP_THREAD_ANNOTATION__(no_thread_safety_analysis)

// Runtime lock-rank checking is live in any build where NDEBUG is off
// (sanitized builds leave it undefined on purpose) and can be forced into
// optimized builds with -DHETGMP_LOCK_RANK=ON (scripts/check.sh lockrank).
#if defined(HETGMP_LOCK_RANK_CHECKS) || !defined(NDEBUG)
#define HETGMP_LOCK_RANK_ENABLED 1
#endif

namespace hetgmp {

// The numeric lock-rank table from DESIGN.md §5b. Ranks are acquired in
// strictly increasing order per thread: taking a mutex whose rank is <=
// any rank already held aborts (debug builds) and is flagged statically
// by tools/hetgmp_lint (rule R1). Equal ranks also abort, which is what
// enforces "never two EmbeddingTable stripe locks at once". kNone opts a
// mutex out entirely — reserved for locks that must be acquirable from
// anywhere (the logging output mutex, which CHECK-failure paths take
// under arbitrary locks).
//
// tools/hetgmp_lint mirrors this table (tests/lint_test.cc cross-checks
// the two); when adding a rank, update DESIGN.md §5b and the linter's
// table in tools/hetgmp_lint/rules.cc.
namespace lock_rank {
inline constexpr int kNone = 0;             // exempt (logging)
inline constexpr int kBatcher = 10;         // RequestBatcher::mu_
inline constexpr int kStorePrefetch = 15;   // PrefetchPipeline::mu_
inline constexpr int kSnapshotPublish = 20; // SnapshotStore::publish_mu_
inline constexpr int kSnapshotSlot = 30;    // SnapshotStore::Slot::mu
inline constexpr int kServeShard = 40;      // LookupService::Shard::mu
inline constexpr int kEngineMerge = 50;     // Engine::Train result merge
inline constexpr int kStoreWarm = 52;       // TieredEmbeddingStore stripe
inline constexpr int kStoreCold = 54;       // ColdTierFile::mu_
inline constexpr int kCommConn = 56;        // SocketFabric::Conn::mu
inline constexpr int kCommMailbox = 58;     // InProcTransportGroup mailbox
inline constexpr int kEmbedStripe = 60;     // EmbeddingTable::RowMutex
inline constexpr int kLeaf = 100;           // Barrier/ThreadPool internals
}  // namespace lock_rank

#ifdef HETGMP_LOCK_RANK_ENABLED
namespace lock_rank_detail {
// Per-thread multiset of held ranks, fixed-capacity so the tracker never
// allocates (it runs inside every Lock/Unlock, including the allocator's
// own locks would be fine — but keep it trivially reentrant anyway).
struct HeldRanks {
  static constexpr int kMax = 64;
  int ranks[kMax];
  int count = 0;
};

inline HeldRanks& Held() {
  thread_local HeldRanks held;
  return held;
}

// Called BEFORE blocking on the mutex, so an inversion aborts with a
// report instead of deadlocking silently.
inline void CheckAcquire(int rank) {
  if (rank == lock_rank::kNone) return;
  const HeldRanks& held = Held();
  for (int i = 0; i < held.count; ++i) {
    if (held.ranks[i] >= rank) {
      std::fprintf(
          stderr,
          "lock-rank inversion: acquiring a rank-%d mutex while holding a "
          "rank-%d mutex; ranks must be acquired in strictly increasing "
          "order (DESIGN.md §5b, tools/hetgmp_lint rule R1)\n",
          rank, held.ranks[i]);
      std::abort();
    }
  }
}

inline void Push(int rank) {
  if (rank == lock_rank::kNone) return;
  HeldRanks& held = Held();
  if (held.count >= HeldRanks::kMax) {
    std::fprintf(stderr,
                 "lock-rank tracker overflow: more than %d ranked mutexes "
                 "held by one thread\n",
                 HeldRanks::kMax);
    std::abort();
  }
  held.ranks[held.count++] = rank;
}

inline void Pop(int rank) {
  if (rank == lock_rank::kNone) return;
  HeldRanks& held = Held();
  for (int i = held.count - 1; i >= 0; --i) {
    if (held.ranks[i] == rank) {
      held.ranks[i] = held.ranks[--held.count];
      return;
    }
  }
  // Unlock of a rank we never recorded: a SetRank between Lock and Unlock
  // (misuse) — fail loudly rather than corrupt the tracker.
  std::fprintf(stderr, "lock-rank tracker: unlock of unheld rank %d\n", rank);
  std::abort();
}
}  // namespace lock_rank_detail
#endif  // HETGMP_LOCK_RANK_ENABLED

// std::mutex with capability annotations. Interface mirrors the subset of
// absl::Mutex the library needs, plus an optional lock rank (see
// lock_rank above) checked dynamically in debug builds.
class HETGMP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // Rank is a contract, not state: set it at construction (or immediately
  // after, for container-resident mutexes) and never while locked.
  explicit Mutex(int rank) { SetRank(rank); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#ifdef HETGMP_LOCK_RANK_ENABLED
  void SetRank(int rank) { rank_ = rank; }
  int rank() const { return rank_; }

  void Lock() HETGMP_ACQUIRE() {
    lock_rank_detail::CheckAcquire(rank_);
    mu_.lock();
    lock_rank_detail::Push(rank_);
  }
  void Unlock() HETGMP_RELEASE() {
    lock_rank_detail::Pop(rank_);
    mu_.unlock();
  }
  // TryLock cannot deadlock, so rank order is recorded but not enforced:
  // a failed speculative acquisition in any order is legal.
  [[nodiscard]] bool TryLock() HETGMP_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank_detail::Push(rank_);
    return true;
  }
#else
  void SetRank(int rank) { (void)rank; }
  int rank() const { return lock_rank::kNone; }

  void Lock() HETGMP_ACQUIRE() { mu_.lock(); }
  void Unlock() HETGMP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() HETGMP_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }
#endif

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef HETGMP_LOCK_RANK_ENABLED
  int rank_ = lock_rank::kNone;
#endif
};

// RAII lock over a Mutex, visible to the analysis as a scoped capability.
class HETGMP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HETGMP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() HETGMP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with Mutex. Wait() takes the Mutex explicitly
// so the analysis can check the caller holds it; predicates stay in the
// caller as `while (!pred) cv.Wait(mu);` loops, which keeps every guarded
// read inside an annotated scope (no lambda escapes the analysis).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, and reacquires it before returning.
  // Spurious wakeups are possible; callers loop on their predicate.
  void Wait(Mutex& mu) HETGMP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  // Timed variant: waits at most `timeout`. Returns false if the wait
  // ended by timeout (spurious wakeups return true; callers loop on their
  // predicate and recompute the remaining budget either way).
  template <class Rep, class Period>
  [[nodiscard]] bool WaitFor(Mutex& mu,
                             const std::chrono::duration<Rep, Period>& timeout)
      HETGMP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();  // the caller's scope still owns the mutex
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Debug-build dynamic check for single-owner structures (no mutex to
// annotate; the contract is exclusive access by one thread at a time, with
// explicit hand-off points). First Check() after a Reset() binds the
// calling thread as owner; a Check() from any other thread aborts. Release
// builds compile to nothing.
//
// TSan complements this: the checker catches contract violations even when
// the accesses happen not to race in a given schedule.
class SingleOwnerChecker {
 public:
#ifndef NDEBUG
  // Binds on first use; aborts on a second thread. Called from mutating
  // methods of the checked structure.
  void Check() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unbound
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return;  // we just became the owner
    }
    if (expected != self) {
      // Deliberate hard stop: this is a programming error, exactly like a
      // failed HETGMP_CHECK (not pulled in here to keep this header free
      // of the logging dependency).
      std::abort();
    }
  }
  // Hand-off point: the next Check() may come from a different thread.
  void Reset() const {
    owner_.store(std::thread::id{}, std::memory_order_release);
  }

 private:
  mutable std::atomic<std::thread::id> owner_{};
#else
  void Check() const {}
  void Reset() const {}
#endif
};

}  // namespace hetgmp

#endif  // HETGMP_COMMON_THREAD_ANNOTATIONS_H_
