#include "common/threading.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace hetgmp {

Barrier::Barrier(int num_threads) : num_threads_(num_threads) {
  HETGMP_CHECK_GT(num_threads, 0);
}

bool Barrier::ArriveAndWait() {
  MutexLock lock(mu_);
  const uint64_t gen = generation_;
  if (++waiting_ == num_threads_) {
    waiting_ = 0;
    ++generation_;
    cv_.NotifyAll();
    return true;
  }
  while (generation_ == gen) cv_.Wait(mu_);
  return false;
}

ThreadPool::ThreadPool(int num_threads) {
  HETGMP_CHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    HETGMP_CHECK(!shutdown_);
    queue_.push(std::move(fn));
    ++in_flight_;
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with drained queue
      fn = std::move(queue_.front());
      queue_.pop();
    }
    fn();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::RunChunks(
    int64_t n, int num_chunks,
    const std::function<void(int, int64_t, int64_t)>& fn) {
  if (n <= 0 || num_chunks <= 0) return;
  num_chunks = static_cast<int>(std::min<int64_t>(num_chunks, n));
  if (num_chunks == 1) {
    fn(0, 0, n);
    return;
  }
  const int64_t per = n / num_chunks;
  const int64_t extra = n % num_chunks;
  int64_t begin = 0;
  for (int c = 0; c < num_chunks; ++c) {
    const int64_t end = begin + per + (c < extra ? 1 : 0);
    Submit([&fn, c, begin, end] { fn(c, begin, end); });
    begin = end;
  }
  Wait();
}

void ThreadPool::ParallelFor(int num_threads, int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  num_threads = std::max(1, std::min<int>(num_threads, n));
  if (num_threads == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int64_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace hetgmp
