file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_common.dir/histogram.cc.o"
  "CMakeFiles/hetgmp_common.dir/histogram.cc.o.d"
  "CMakeFiles/hetgmp_common.dir/logging.cc.o"
  "CMakeFiles/hetgmp_common.dir/logging.cc.o.d"
  "CMakeFiles/hetgmp_common.dir/random.cc.o"
  "CMakeFiles/hetgmp_common.dir/random.cc.o.d"
  "CMakeFiles/hetgmp_common.dir/status.cc.o"
  "CMakeFiles/hetgmp_common.dir/status.cc.o.d"
  "CMakeFiles/hetgmp_common.dir/stringutil.cc.o"
  "CMakeFiles/hetgmp_common.dir/stringutil.cc.o.d"
  "CMakeFiles/hetgmp_common.dir/threading.cc.o"
  "CMakeFiles/hetgmp_common.dir/threading.cc.o.d"
  "CMakeFiles/hetgmp_common.dir/zipf.cc.o"
  "CMakeFiles/hetgmp_common.dir/zipf.cc.o.d"
  "libhetgmp_common.a"
  "libhetgmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
