file(REMOVE_RECURSE
  "libhetgmp_common.a"
)
