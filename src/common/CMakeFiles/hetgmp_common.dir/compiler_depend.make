# Empty compiler generated dependencies file for hetgmp_common.
# This may be replaced when dependencies are built.
