#include "common/stringutil.h"

#include <cstdio>
#include <sstream>

namespace hetgmp {

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string HumanCount(double count) {
  static const char* kUnits[] = {"", "k", "M", "B", "T"};
  double v = count;
  int unit = 0;
  while (v >= 1000.0 && unit < 4) {
    v /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string JoinInts(const std::vector<int64_t>& values,
                     const std::string& sep) {
  std::ostringstream os;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << sep;
    os << values[i];
  }
  return os.str();
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string Percent(double fraction) {
  return FormatDouble(fraction * 100.0, 1) + "%";
}

}  // namespace hetgmp
