#include "common/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace hetgmp {

namespace {

// h(x) = x^-θ evaluated in log space for numerical stability.
double HFunction(double x, double theta) {
  return std::exp(-theta * std::log(x));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  HETGMP_CHECK_GE(n, 1u);
  HETGMP_CHECK_GE(theta, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - HFunction(2.0, theta_));
}

double ZipfSampler::H(double x) const {
  // ∫ t^-θ dt: log(x) when θ==1, else (x^{1-θ} - 1)/(1-θ).
  const double log_x = std::log(x);
  if (std::abs(theta_ - 1.0) < 1e-12) return log_x;
  return std::expm1((1.0 - theta_) * log_x) / (1.0 - theta_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(theta_ - 1.0) < 1e-12) return std::exp(x);
  return std::exp(std::log1p(x * (1.0 - theta_)) / (1.0 - theta_));
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  if (theta_ == 0.0 || n_ == 1) {
    return rng->NextUint64(n_);
  }
  // Rejection-inversion (Hörmann & Derflinger 1996): invert the integral of
  // the continuous majorizing density, then accept/reject against the
  // discrete pmf. Expected iterations < 2 for all θ.
  for (;;) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ || u >= H(k + 0.5) - HFunction(k, theta_)) {
      return static_cast<uint64_t>(k) - 1;  // shift to 0-based ids
    }
  }
}

double ZipfSampler::Pmf(uint64_t k) const {
  HETGMP_CHECK_LT(k, n_);
  if (normalizer_ < 0.0) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      sum += HFunction(static_cast<double>(i), theta_);
    }
    normalizer_ = sum;
  }
  return HFunction(static_cast<double>(k + 1), theta_) / normalizer_;
}

std::vector<double> EmpiricalZipfFrequencies(const ZipfSampler& sampler,
                                             uint64_t draws, Rng* rng) {
  std::vector<double> freq(sampler.n(), 0.0);
  for (uint64_t i = 0; i < draws; ++i) {
    freq[sampler.Sample(rng)] += 1.0;
  }
  for (auto& f : freq) f /= static_cast<double>(draws);
  return freq;
}

}  // namespace hetgmp
