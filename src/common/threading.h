#ifndef HETGMP_COMMON_THREADING_H_
#define HETGMP_COMMON_THREADING_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hetgmp {

// Reusable cyclic barrier for N participants. Used by the engine to
// implement BSP supersteps and epoch boundaries across simulated workers.
class Barrier {
 public:
  explicit Barrier(int num_threads);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  // Blocks until all participants arrive. Returns true on exactly one
  // participant per generation (the "serial" thread), mirroring
  // pthread_barrier's PTHREAD_BARRIER_SERIAL_THREAD.
  bool ArriveAndWait();

  int num_threads() const { return num_threads_; }

 private:
  const int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  uint64_t generation_ = 0;
};

// Fixed-size pool executing posted closures. Used for data generation and
// evaluation parallelism (the training engine manages its own worker
// threads directly, because workers own per-shard state).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> fn);

  // Blocks until all submitted work has completed.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  static void ParallelFor(int num_threads, int64_t n,
                          const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace hetgmp

#endif  // HETGMP_COMMON_THREADING_H_
