#ifndef HETGMP_COMMON_THREADING_H_
#define HETGMP_COMMON_THREADING_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace hetgmp {

// Reusable cyclic barrier for N participants. Used by the engine to
// implement BSP supersteps and epoch boundaries across simulated workers.
//
// Memory model: every participant's writes before ArriveAndWait() happen
// before every participant's reads after it (all arrivals and departures
// synchronize through mu_). The engine's round-serial sections rely on
// exactly this edge to read and reset other workers' statistics.
class Barrier {
 public:
  explicit Barrier(int num_threads);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  // Blocks until all participants arrive. Returns true on exactly one
  // participant per generation (the "serial" thread), mirroring
  // pthread_barrier's PTHREAD_BARRIER_SERIAL_THREAD. The serial thread is
  // the last arriver, so when it returns true every other participant is
  // either parked in this generation's wait or past it — but note the
  // others are *released*, not parked, once the serial thread returns;
  // protocols that need them parked must use a second rendezvous.
  bool ArriveAndWait() HETGMP_EXCLUDES(mu_);

  int num_threads() const { return num_threads_; }

 private:
  const int num_threads_;
  Mutex mu_{lock_rank::kLeaf};
  CondVar cv_;
  int waiting_ HETGMP_GUARDED_BY(mu_) = 0;
  uint64_t generation_ HETGMP_GUARDED_BY(mu_) = 0;
};

// Fixed-size pool executing posted closures. Used for data generation and
// evaluation parallelism (the training engine manages its own worker
// threads directly, because workers own per-shard state).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> fn) HETGMP_EXCLUDES(mu_);

  // Blocks until all submitted work has completed.
  void Wait() HETGMP_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  static void ParallelFor(int num_threads, int64_t n,
                          const std::function<void(int64_t)>& fn);

  // Splits [0, n) into num_chunks contiguous ranges and runs
  // fn(chunk, begin, end) for each on this pool, then waits for all of
  // them. Unlike the static ParallelFor above this reuses the pool's
  // threads, so callers issuing many small phases (the parallel
  // partitioner dispatches two per vertex block) do not pay thread
  // creation per phase. The chunk index is stable for a given (n,
  // num_chunks) regardless of which pool thread runs the chunk, so
  // callers can use it to address per-chunk scratch buffers and merge
  // them deterministically. Wait()'s mutex handoff orders every chunk's
  // writes before RunChunks returns.
  void RunChunks(int64_t n, int num_chunks,
                 const std::function<void(int, int64_t, int64_t)>& fn)
      HETGMP_EXCLUDES(mu_);

 private:
  void WorkerLoop() HETGMP_EXCLUDES(mu_);

  // lint: unguarded(filled in the constructor, joined in the destructor;
  // never touched while worker threads run)
  std::vector<std::thread> threads_;
  Mutex mu_{lock_rank::kLeaf};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::queue<std::function<void()>> queue_ HETGMP_GUARDED_BY(mu_);
  int64_t in_flight_ HETGMP_GUARDED_BY(mu_) = 0;
  bool shutdown_ HETGMP_GUARDED_BY(mu_) = false;
};

}  // namespace hetgmp

#endif  // HETGMP_COMMON_THREADING_H_
