#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace hetgmp {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  HETGMP_CHECK_GT(n, 0u);
  // Rejection sampling over the largest multiple of n.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  HETGMP_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace hetgmp
