#ifndef HETGMP_GRAPH_COOCCURRENCE_H_
#define HETGMP_GRAPH_COOCCURRENCE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace hetgmp {

// Undirected weighted graph over embedding vertices where edge weight is
// the number of samples in which the two embeddings co-occur (§4,
// "embedding co-occurrence graph"). This is the input to the METIS-like
// clustering that produces the Figure 3 block structure, and to the
// multilevel partitioner.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  // adjacency[(u)] is a list of (v, w); must be symmetric.
  WeightedGraph(int64_t num_vertices,
                std::vector<std::vector<std::pair<int64_t, double>>> adj);

  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return num_edges_; }  // undirected count

  struct Edge {
    int64_t to;
    double weight;
  };
  const Edge* Neighbors(int64_t u) const { return adj_.data() + offsets_[u]; }
  int64_t Degree(int64_t u) const { return offsets_[u + 1] - offsets_[u]; }
  double VertexWeight(int64_t u) const { return vertex_weight_[u]; }
  double total_edge_weight() const { return total_edge_weight_; }

 private:
  int64_t num_vertices_ = 0;
  int64_t num_edges_ = 0;
  double total_edge_weight_ = 0.0;
  std::vector<int64_t> offsets_;
  std::vector<Edge> adj_;
  std::vector<double> vertex_weight_;  // sum of incident edge weights
};

struct CooccurrenceOptions {
  // Caps the number of feature pairs recorded per sample to bound work on
  // wide datasets (43 fields → 903 pairs); pairs are chosen round-robin
  // over field offsets so every field participates.
  int max_pairs_per_sample = 64;
  // Drops edges with weight below this after accumulation (noise pruning).
  double min_weight = 1.0;
};

WeightedGraph BuildCooccurrenceGraph(const CtrDataset& dataset,
                                     const CooccurrenceOptions& options = {});

// Fraction of total edge weight that falls inside clusters, given a
// cluster assignment — the quantitative form of Figure 3's "dense diagonal
// regions". Random assignments score ≈ 1/num_clusters.
double WithinClusterWeightFraction(const WeightedGraph& graph,
                                   const std::vector<int>& cluster_of);

}  // namespace hetgmp

#endif  // HETGMP_GRAPH_COOCCURRENCE_H_
