#include "graph/cooccurrence.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace hetgmp {

WeightedGraph::WeightedGraph(
    int64_t num_vertices,
    std::vector<std::vector<std::pair<int64_t, double>>> adj)
    : num_vertices_(num_vertices) {
  HETGMP_CHECK_EQ(static_cast<int64_t>(adj.size()), num_vertices);
  offsets_.assign(num_vertices + 1, 0);
  for (int64_t u = 0; u < num_vertices; ++u) {
    offsets_[u + 1] = offsets_[u] + static_cast<int64_t>(adj[u].size());
  }
  adj_.reserve(offsets_.back());
  vertex_weight_.assign(num_vertices, 0.0);
  for (int64_t u = 0; u < num_vertices; ++u) {
    for (const auto& [v, w] : adj[u]) {
      HETGMP_CHECK_GE(v, 0);
      HETGMP_CHECK_LT(v, num_vertices);
      adj_.push_back(Edge{v, w});
      vertex_weight_[u] += w;
      total_edge_weight_ += w;
    }
  }
  // Each undirected edge is stored twice.
  num_edges_ = static_cast<int64_t>(adj_.size()) / 2;
  total_edge_weight_ /= 2.0;
}

WeightedGraph BuildCooccurrenceGraph(const CtrDataset& dataset,
                                     const CooccurrenceOptions& options) {
  const int F = dataset.num_fields();
  const int64_t n = dataset.num_features();

  // Enumerate pairs (a, b) of field indices in a fixed order that cycles
  // through all fields, truncated to max_pairs_per_sample.
  std::vector<std::pair<int, int>> pair_order;
  for (int d = 1; d < F && static_cast<int>(pair_order.size()) <
                               options.max_pairs_per_sample;
       ++d) {
    for (int a = 0; a + d < F && static_cast<int>(pair_order.size()) <
                                     options.max_pairs_per_sample;
         ++a) {
      pair_order.emplace_back(a, a + d);
    }
  }

  // Accumulate pair counts keyed by (min_id << 32 unsafe for big ids) —
  // use a 128-bit-safe composite key via unordered_map<uint64_t> with ids
  // packed only when they fit, otherwise a pair-keyed map. Feature counts
  // in this library stay < 2^31, so packing is safe; enforce it.
  HETGMP_CHECK_LT(n, (int64_t{1} << 31));
  std::unordered_map<uint64_t, double> counts;
  counts.reserve(dataset.num_samples() * 4);
  for (int64_t s = 0; s < dataset.num_samples(); ++s) {
    const FeatureId* feats = dataset.sample_features(s);
    for (const auto& [a, b] : pair_order) {
      FeatureId u = feats[a], v = feats[b];
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const uint64_t key =
          (static_cast<uint64_t>(u) << 31) | static_cast<uint64_t>(v);
      counts[key] += 1.0;
    }
  }

  std::vector<std::vector<std::pair<int64_t, double>>> adj(n);
  for (const auto& [key, w] : counts) {
    if (w < options.min_weight) continue;
    const int64_t u = static_cast<int64_t>(key >> 31);
    const int64_t v = static_cast<int64_t>(key & ((uint64_t{1} << 31) - 1));
    adj[u].emplace_back(v, w);
    adj[v].emplace_back(u, w);
  }
  return WeightedGraph(n, std::move(adj));
}

double WithinClusterWeightFraction(const WeightedGraph& graph,
                                   const std::vector<int>& cluster_of) {
  HETGMP_CHECK_EQ(static_cast<int64_t>(cluster_of.size()),
                  graph.num_vertices());
  if (graph.total_edge_weight() <= 0.0) return 0.0;
  double within = 0.0;
  for (int64_t u = 0; u < graph.num_vertices(); ++u) {
    const auto* edges = graph.Neighbors(u);
    for (int64_t e = 0; e < graph.Degree(u); ++e) {
      if (cluster_of[u] == cluster_of[edges[e].to]) within += edges[e].weight;
    }
  }
  return within / (2.0 * graph.total_edge_weight());
}

}  // namespace hetgmp
