#include "graph/bigraph.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace hetgmp {

Bigraph::Bigraph(const CtrDataset& dataset)
    : num_samples_(dataset.num_samples()),
      num_embeddings_(dataset.num_features()),
      arity_(dataset.num_fields()),
      sample_features_(dataset.feature_ids().data()) {
  degrees_.assign(num_embeddings_, 0);
  for (FeatureId f : dataset.feature_ids()) ++degrees_[f];

  emb_offsets_.assign(num_embeddings_ + 1, 0);
  for (int64_t x = 0; x < num_embeddings_; ++x) {
    emb_offsets_[x + 1] = emb_offsets_[x] + degrees_[x];
  }
  emb_adj_.resize(emb_offsets_.back());
  std::vector<int64_t> cursor(emb_offsets_.begin(), emb_offsets_.end() - 1);
  for (int64_t s = 0; s < num_samples_; ++s) {
    const FeatureId* feats = SampleNeighbors(s);
    for (int f = 0; f < arity_; ++f) {
      emb_adj_[cursor[feats[f]]++] = s;
    }
  }
}

std::vector<FeatureId> Bigraph::EmbeddingsByDegreeDesc() const {
  std::vector<FeatureId> ids(num_embeddings_);
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](FeatureId a, FeatureId b) {
    return degrees_[a] > degrees_[b];
  });
  return ids;
}

std::vector<double> Bigraph::AccessFrequencies() const {
  const double total = static_cast<double>(num_edges());
  std::vector<double> p(num_embeddings_);
  for (int64_t x = 0; x < num_embeddings_; ++x) {
    p[x] = total > 0 ? static_cast<double>(degrees_[x]) / total : 0.0;
  }
  return p;
}

}  // namespace hetgmp
