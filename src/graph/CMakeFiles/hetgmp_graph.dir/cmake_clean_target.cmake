file(REMOVE_RECURSE
  "libhetgmp_graph.a"
)
