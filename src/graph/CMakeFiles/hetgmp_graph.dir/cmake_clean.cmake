file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_graph.dir/bigraph.cc.o"
  "CMakeFiles/hetgmp_graph.dir/bigraph.cc.o.d"
  "CMakeFiles/hetgmp_graph.dir/cooccurrence.cc.o"
  "CMakeFiles/hetgmp_graph.dir/cooccurrence.cc.o.d"
  "libhetgmp_graph.a"
  "libhetgmp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
