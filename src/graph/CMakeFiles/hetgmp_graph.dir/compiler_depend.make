# Empty compiler generated dependencies file for hetgmp_graph.
# This may be replaced when dependencies are built.
