
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bigraph.cc" "src/graph/CMakeFiles/hetgmp_graph.dir/bigraph.cc.o" "gcc" "src/graph/CMakeFiles/hetgmp_graph.dir/bigraph.cc.o.d"
  "/root/repo/src/graph/cooccurrence.cc" "src/graph/CMakeFiles/hetgmp_graph.dir/cooccurrence.cc.o" "gcc" "src/graph/CMakeFiles/hetgmp_graph.dir/cooccurrence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/data/CMakeFiles/hetgmp_data.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/hetgmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
