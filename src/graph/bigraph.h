#ifndef HETGMP_GRAPH_BIGRAPH_H_
#define HETGMP_GRAPH_BIGRAPH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace hetgmp {

// The paper's bigraph abstraction (§5.1): G = (V_x, V_ξ, E) with embedding
// vertices x, sample vertices ξ, and an edge (x_i, ξ_j) whenever sample j
// uses embedding i. Both directions are materialized in CSR form:
//  * sample → embeddings is the dataset CSR (fixed arity = num_fields);
//  * embedding → samples is built here.
class Bigraph {
 public:
  // `dataset` must outlive the Bigraph (the sample-side CSR is borrowed).
  explicit Bigraph(const CtrDataset& dataset);

  int64_t num_samples() const { return num_samples_; }
  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t num_edges() const {
    return num_samples_ * static_cast<int64_t>(arity_);
  }
  int arity() const { return arity_; }  // embeddings per sample

  // Embeddings adjacent to sample s (exactly arity() entries).
  const FeatureId* SampleNeighbors(int64_t s) const {
    return sample_features_ + s * arity_;
  }

  // Samples adjacent to embedding x.
  const int64_t* EmbeddingNeighbors(FeatureId x) const {
    return emb_adj_.data() + emb_offsets_[x];
  }
  int64_t EmbeddingDegree(FeatureId x) const {
    return emb_offsets_[x + 1] - emb_offsets_[x];
  }

  const std::vector<int64_t>& embedding_degrees() const { return degrees_; }

  // Embedding ids in descending degree order (hot-first; used by the
  // vertex-cut pass and by frequency-normalized clocks).
  std::vector<FeatureId> EmbeddingsByDegreeDesc() const;

  // Access probability p_i = degree_i / Σ degrees (for clock
  // normalization, §5.3).
  std::vector<double> AccessFrequencies() const;

 private:
  int64_t num_samples_;
  int64_t num_embeddings_;
  int arity_;
  const FeatureId* sample_features_;  // borrowed from the dataset
  std::vector<int64_t> emb_offsets_;  // size num_embeddings + 1
  std::vector<int64_t> emb_adj_;      // sample ids
  std::vector<int64_t> degrees_;
};

}  // namespace hetgmp

#endif  // HETGMP_GRAPH_BIGRAPH_H_
