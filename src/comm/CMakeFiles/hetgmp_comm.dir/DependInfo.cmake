
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/allreduce.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/allreduce.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/allreduce.cc.o.d"
  "/root/repo/src/comm/fabric.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/fabric.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/fabric.cc.o.d"
  "/root/repo/src/comm/fault_transport.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/fault_transport.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/fault_transport.cc.o.d"
  "/root/repo/src/comm/protocol.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/protocol.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/protocol.cc.o.d"
  "/root/repo/src/comm/socket_transport.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/socket_transport.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/socket_transport.cc.o.d"
  "/root/repo/src/comm/topology.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/topology.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/topology.cc.o.d"
  "/root/repo/src/comm/transport.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/transport.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/transport.cc.o.d"
  "/root/repo/src/comm/wire.cc" "src/comm/CMakeFiles/hetgmp_comm.dir/wire.cc.o" "gcc" "src/comm/CMakeFiles/hetgmp_comm.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/tensor/CMakeFiles/hetgmp_tensor.dir/DependInfo.cmake"
  "/root/repo/src/data/CMakeFiles/hetgmp_data.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/hetgmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
