# Empty compiler generated dependencies file for hetgmp_comm.
# This may be replaced when dependencies are built.
