file(REMOVE_RECURSE
  "libhetgmp_comm.a"
)
