file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_comm.dir/allreduce.cc.o"
  "CMakeFiles/hetgmp_comm.dir/allreduce.cc.o.d"
  "CMakeFiles/hetgmp_comm.dir/fabric.cc.o"
  "CMakeFiles/hetgmp_comm.dir/fabric.cc.o.d"
  "CMakeFiles/hetgmp_comm.dir/fault_transport.cc.o"
  "CMakeFiles/hetgmp_comm.dir/fault_transport.cc.o.d"
  "CMakeFiles/hetgmp_comm.dir/protocol.cc.o"
  "CMakeFiles/hetgmp_comm.dir/protocol.cc.o.d"
  "CMakeFiles/hetgmp_comm.dir/socket_transport.cc.o"
  "CMakeFiles/hetgmp_comm.dir/socket_transport.cc.o.d"
  "CMakeFiles/hetgmp_comm.dir/topology.cc.o"
  "CMakeFiles/hetgmp_comm.dir/topology.cc.o.d"
  "CMakeFiles/hetgmp_comm.dir/transport.cc.o"
  "CMakeFiles/hetgmp_comm.dir/transport.cc.o.d"
  "CMakeFiles/hetgmp_comm.dir/wire.cc.o"
  "CMakeFiles/hetgmp_comm.dir/wire.cc.o.d"
  "libhetgmp_comm.a"
  "libhetgmp_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
