#ifndef HETGMP_COMM_FAULT_TRANSPORT_H_
#define HETGMP_COMM_FAULT_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "comm/transport.h"
#include "common/random.h"

namespace hetgmp {

// Deterministic seeded fault injection for any Transport backend
// (DESIGN.md §5g fault matrix). The wrapper perturbs the *send* side —
// the one place both backends look identical — so one schedule drives
// the in-proc mailboxes and the socket stream the same way:
//
//   drop       frame silently vanishes (receiver sees kDeadlineExceeded)
//   truncate   only a prefix of the payload is sent; the frame itself is
//              well-formed, so corruption surfaces where it should: in
//              the typed protocol decoder, as a Status
//   duplicate  frame delivered twice (stale duplicate must be ignorable)
//   delay      frame held back across 1..max_delay_sends later Sends,
//              then released — reordering across tags
//
// All randomness comes from one Rng seeded by `seed`, so a schedule is a
// pure function of (seed, call sequence): a failing seed replays exactly.
// The property under test (tests/comm_fault_test.cc): any schedule ends
// in success or a propagated Status within the recv deadline — never a
// hang, never a CHECK abort on the receive side.
struct FaultOptions {
  uint64_t seed = 1;
  double drop_prob = 0.0;
  double truncate_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  // Upper bound on how many subsequent Sends a delayed frame may wait.
  int max_delay_sends = 3;
};

class FaultyTransport : public Transport {
 public:
  // `inner` must outlive the wrapper. Single-caller contract is inherited
  // from Transport (the held-frame queue is unsynchronized on purpose).
  FaultyTransport(Transport* inner, FaultOptions options);

  const char* backend_name() const override {
    return inner_->backend_name();
  }
  int rank() const override { return inner_->rank(); }
  int world_size() const override { return inner_->world_size(); }

  Status Send(int dst, TrafficClass cls, uint32_t tag, const void* data,
              size_t len) override;
  Status Recv(int src, TrafficClass cls, uint32_t tag,
              std::vector<uint8_t>* payload) override;
  // Flush drains the inner backend only; frames the wrapper is holding
  // back stay held (that is the fault being injected).
  Status Flush() override { return inner_->Flush(); }

  // Tallies delegate to the inner backend: they report what actually
  // moved, which is the point of the accounting.
  uint64_t SentPayloadBytes(int dst, TrafficClass cls) const override {
    return inner_->SentPayloadBytes(dst, cls);
  }
  uint64_t ReceivedPayloadBytes(int src, TrafficClass cls) const override {
    return inner_->ReceivedPayloadBytes(src, cls);
  }

  // Releases every still-held delayed frame in FIFO order; returns how
  // many were flushed. Call at end-of-schedule when the scenario should
  // converge rather than time out on a frame nobody will ever age out.
  size_t ReleaseDelayed();

  // Human-readable log of every fault injected so far, in order —
  // failing property-test seeds print this for replay triage.
  const std::vector<std::string>& injected() const { return injected_; }

 private:
  struct Held {
    int dst;
    TrafficClass cls;
    uint32_t tag;
    std::vector<uint8_t> payload;
    int sends_left;  // released once this reaches zero
  };

  // Ages held frames by one Send and flushes the due ones.
  Status AgeAndRelease();

  Transport* const inner_;
  const FaultOptions options_;
  Rng rng_;
  std::vector<Held> held_;
  std::vector<std::string> injected_;
};

}  // namespace hetgmp

#endif  // HETGMP_COMM_FAULT_TRANSPORT_H_
