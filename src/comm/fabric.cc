#include "comm/fabric.h"

#include <sstream>

#include "common/logging.h"
#include "common/stringutil.h"

namespace hetgmp {

const char* TrafficClassName(TrafficClass c) {
  switch (c) {
    case TrafficClass::kEmbedding:
      return "embedding";
    case TrafficClass::kIndexClock:
      return "index+clock";
    case TrafficClass::kAllReduce:
      return "allreduce";
    case TrafficClass::kLookup:
      return "lookup";
    default:
      return "?";
  }
}

Fabric::Fabric(const Topology& topology)
    : topology_(topology), n_(topology.num_workers()) {
  const int64_t cells =
      static_cast<int64_t>(TrafficClass::kNumClasses) * n_ * n_;
  bytes_ = std::make_unique<std::atomic<uint64_t>[]>(cells);
  for (int64_t i = 0; i < cells; ++i) {
    bytes_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& h : host_bytes_) h.store(0, std::memory_order_relaxed);
  machine_sharers_.assign(n_, 1);
  for (int w = 0; w < n_; ++w) {
    int count = 0;
    for (int v = 0; v < n_; ++v) {
      if (topology_.machine_of(v) == topology_.machine_of(w)) ++count;
    }
    machine_sharers_[w] = count;
  }
}

double Fabric::Transfer(int src, int dst, uint64_t bytes, TrafficClass cls) {
  HETGMP_CHECK_GE(src, 0);
  HETGMP_CHECK_LT(src, n_);
  HETGMP_CHECK_GE(dst, 0);
  HETGMP_CHECK_LT(dst, n_);
  if (src == dst || bytes == 0) return 0.0;
  bytes_[Index(src, dst, cls)].fetch_add(bytes, std::memory_order_relaxed);
  double bw = topology_.BandwidthBytesPerSec(src, dst);
  // Point-to-point flows that leave the machine share its NIC with every
  // co-located worker's flows (all workers communicate each iteration in
  // steady state). Collectives are not divided — a ring crosses each NIC
  // as a single stream (see RingAllReduceTime).
  if (topology_.machine_of(src) != topology_.machine_of(dst)) {
    bw /= static_cast<double>(machine_sharers_[src]);
  }
  return topology_.LatencySec(src, dst) + static_cast<double>(bytes) / bw;
}

double Fabric::TransferToHost(int worker, int host_machine, uint64_t bytes,
                              TrafficClass cls) {
  if (bytes == 0) return 0.0;
  host_bytes_[static_cast<int>(cls)].fetch_add(bytes,
                                               std::memory_order_relaxed);
  return topology_.HostLatencySec(worker, host_machine) +
         static_cast<double>(bytes) /
             topology_.HostBandwidthBytesPerSec(worker, host_machine);
}

uint64_t Fabric::TotalBytes(TrafficClass cls) const {
  uint64_t total =
      host_bytes_[static_cast<int>(cls)].load(std::memory_order_relaxed);
  for (int s = 0; s < n_; ++s) {
    for (int d = 0; d < n_; ++d) {
      total += bytes_[Index(s, d, cls)].load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t Fabric::TotalBytes() const {
  uint64_t total = 0;
  for (int c = 0; c < static_cast<int>(TrafficClass::kNumClasses); ++c) {
    total += TotalBytes(static_cast<TrafficClass>(c));
  }
  return total;
}

uint64_t Fabric::PairBytes(int src, int dst, TrafficClass cls) const {
  return bytes_[Index(src, dst, cls)].load(std::memory_order_relaxed);
}

std::vector<std::vector<uint64_t>> Fabric::PairMatrix(
    TrafficClass cls) const {
  std::vector<std::vector<uint64_t>> m(n_, std::vector<uint64_t>(n_, 0));
  for (int s = 0; s < n_; ++s) {
    for (int d = 0; d < n_; ++d) m[s][d] = PairBytes(s, d, cls);
  }
  return m;
}

void Fabric::ResetCounters() {
  const int64_t cells =
      static_cast<int64_t>(TrafficClass::kNumClasses) * n_ * n_;
  for (int64_t i = 0; i < cells; ++i) {
    bytes_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& h : host_bytes_) h.store(0, std::memory_order_relaxed);
}

std::string Fabric::ReportString() const {
  std::ostringstream os;
  os << "fabric[" << topology_.name() << "]";
  for (int c = 0; c < static_cast<int>(TrafficClass::kNumClasses); ++c) {
    const auto cls = static_cast<TrafficClass>(c);
    os << " " << TrafficClassName(cls) << "=" << HumanBytes(TotalBytes(cls));
  }
  return os.str();
}

}  // namespace hetgmp
