#ifndef HETGMP_COMM_TOPOLOGY_H_
#define HETGMP_COMM_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hetgmp {

// Interconnect technologies with effective per-direction bandwidth. The
// absolute values are calibration constants for the simulator (DESIGN.md
// §2); the experiments depend on their *ratios*, which follow the hardware
// in the paper's clusters.
enum class LinkType {
  kLocal,     // same device
  kNvlink,    // intra-node NVLink mesh (cluster B)
  kPcie,      // PCIe 3.0 x16 within a switch group (cluster A)
  kQpi,       // cross-socket within a node
  kEth10G,    // 10 Gb Ethernet between nodes (cluster B)
  kEth1G,     // 1 Gb Ethernet between nodes (cluster A)
};

double LinkBandwidthBytesPerSec(LinkType type);
double LinkLatencySec(LinkType type);
const char* LinkTypeName(LinkType type);

// A cluster of workers (simulated GPUs) plus a CPU host per machine (used
// by the parameter-server baselines). Pairwise link types determine
// bandwidth and latency; machines group workers for hierarchy-aware
// partitioning.
class Topology {
 public:
  // Generic constructor: machine_of[w] gives the machine hosting worker w;
  // link(w1, w2) is derived from the builder presets below.
  Topology(std::string name, std::vector<int> machine_of,
           std::vector<std::vector<LinkType>> links);

  // --- Presets matching the paper's experimental settings (§7) ---
  // Figure 1 environments:
  static Topology FourGpuNvlink();
  static Topology FourGpuPcie();
  static Topology EightGpuQpi();
  // Cluster A: nodes of 8 PCIe GPUs (two 4-GPU switch groups joined by
  // QPI), 1 GbE between nodes.
  static Topology ClusterA(int num_workers);
  // Cluster B: nodes of 8 NVLink GPUs, 10 GbE between nodes.
  static Topology ClusterB(int num_workers);

  const std::string& name() const { return name_; }
  int num_workers() const { return static_cast<int>(machine_of_.size()); }
  int num_machines() const { return num_machines_; }
  int machine_of(int worker) const { return machine_of_[worker]; }

  LinkType link(int a, int b) const { return links_[a][b]; }
  double BandwidthBytesPerSec(int a, int b) const;
  double LatencySec(int a, int b) const;

  // GPU ↔ host CPU of the worker's machine (PCIe); a worker reaching
  // another machine's host pays the inter-machine link instead.
  double HostBandwidthBytesPerSec(int worker, int host_machine) const;
  double HostLatencySec(int worker, int host_machine) const;

  // Pairwise cost weights for the partitioner: cost(i,j) proportional to
  // 1/bandwidth, normalized so the cheapest remote link weighs 1.0.
  // (Figure 9's "hierarchical" policy; the paper sets inter-machine 10x
  // intra-machine, which these weights reproduce on cluster B.)
  std::vector<std::vector<double>> CommWeightMatrix() const;

  // Uniform off-diagonal weights (Figure 9's "non-hierarchical" policy).
  std::vector<std::vector<double>> UniformWeightMatrix() const;

 private:
  std::string name_;
  std::vector<int> machine_of_;
  std::vector<std::vector<LinkType>> links_;
  int num_machines_ = 0;
};

}  // namespace hetgmp

#endif  // HETGMP_COMM_TOPOLOGY_H_
