#ifndef HETGMP_COMM_ALLREDUCE_H_
#define HETGMP_COMM_ALLREDUCE_H_

#include <vector>

#include "comm/fabric.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Ring AllReduce over the simulated fabric (the dense-parameter path of
// the hybrid architecture, §5). Semantically: every worker's tensors are
// replaced by the element-wise average across workers. Cost model: the
// standard 2(N-1) ring steps, each moving a 1/N chunk over that ring hop,
// all hops overlapped — so the step time is the *slowest* hop's time.
//
// `replicas[w]` is worker w's list of dense parameter tensors; all workers
// must pass identically-shaped lists. Returns the simulated seconds *per
// worker* (every worker is busy for the whole collective) and charges the
// fabric's AllReduce counters.
double RingAllReduceAverage(Fabric* fabric,
                            const std::vector<std::vector<Tensor*>>& replicas);

// Cost-only variant used when the caller synchronizes values itself.
double RingAllReduceTime(const Topology& topology, uint64_t bytes_per_worker);

// Bytes each worker sends in a full ring AllReduce of a payload of
// `bytes_per_worker`: 2 * (N-1)/N * payload.
uint64_t RingAllReduceBytesPerWorker(int num_workers,
                                     uint64_t bytes_per_worker);

}  // namespace hetgmp

#endif  // HETGMP_COMM_ALLREDUCE_H_
