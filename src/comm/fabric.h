#ifndef HETGMP_COMM_FABRIC_H_
#define HETGMP_COMM_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/topology.h"

namespace hetgmp {

// Traffic categories matching the Figure 8 breakdown, plus the online
// serving class (src/serve) so inference traffic is accounted on the same
// fabric — and shows up in comm_report — without polluting the training
// categories the paper plots.
enum class TrafficClass {
  kEmbedding = 0,   // embedding values and their gradients
  kIndexClock = 1,  // sparse indexes + clock metadata
  kAllReduce = 2,   // dense-parameter synchronization
  kLookup = 3,      // online serving: lookup requests + returned rows
  kNumClasses = 4,
};

const char* TrafficClassName(TrafficClass c);

// The simulated interconnect. Every remote operation in the engine goes
// through Transfer(), which (a) tallies exact byte counts per (src, dst,
// class) and (b) returns the simulated wall time the transfer would take
// on the modeled link (latency + bytes/bandwidth). The engine adds that
// time to the issuing worker's simulated clock.
//
// Thread-safe: counters are relaxed atomics. Relaxed is justified here —
// unlike the ClockTable, nothing ever branches on a counter while workers
// run: each cell is independently monotonic, no cross-cell invariant is
// read concurrently, and every aggregate accessor (TotalBytes, PairMatrix,
// ReportString) is documented to run after workers quiesce, where the
// thread join / round barrier already provides the ordering.
class Fabric {
 public:
  explicit Fabric(const Topology& topology);

  const Topology& topology() const { return topology_; }
  int num_workers() const { return topology_.num_workers(); }

  // Accounts a src→dst transfer and returns its simulated duration in
  // seconds. src == dst is free (local memory traffic is part of compute).
  double Transfer(int src, int dst, uint64_t bytes, TrafficClass cls);

  // GPU worker ↔ CPU host of `host_machine` (parameter-server path).
  // Tallied in a separate per-class host counter, NOT in the pair
  // matrix: host traffic has no peer worker, so PairBytes/PairMatrix
  // exclude it entirely, while TotalBytes includes it exactly once.
  double TransferToHost(int worker, int host_machine, uint64_t bytes,
                        TrafficClass cls);

  // --- Counter access (call after workers quiesce) ---
  uint64_t TotalBytes(TrafficClass cls) const;
  uint64_t TotalBytes() const;
  uint64_t PairBytes(int src, int dst, TrafficClass cls) const;
  // Worker-to-worker embedding traffic matrix (Figure 9(b)).
  std::vector<std::vector<uint64_t>> PairMatrix(TrafficClass cls) const;

  void ResetCounters();

  std::string ReportString() const;

 private:
  int64_t Index(int src, int dst, TrafficClass cls) const {
    return (static_cast<int64_t>(cls) * n_ + src) * n_ + dst;
  }

  const Topology& topology_;
  const int n_;
  std::vector<int> machine_sharers_;  // workers on each worker's machine
  std::unique_ptr<std::atomic<uint64_t>[]> bytes_;
  std::atomic<uint64_t> host_bytes_[static_cast<int>(
      TrafficClass::kNumClasses)];
};

}  // namespace hetgmp

#endif  // HETGMP_COMM_FABRIC_H_
