#ifndef HETGMP_COMM_WIRE_H_
#define HETGMP_COMM_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace hetgmp {

// Framed serialization for the multi-process transport (DESIGN.md §5g),
// modeled on buffered network layers like Galois's: every message crosses
// the socket as one length-prefixed frame whose fixed-size header is
// CRC-protected independently of the payload. The header CRC lets the
// receiver reject a garbled or truncated stream *before* trusting the
// length field (a corrupt length would otherwise make it mis-frame every
// subsequent byte); the payload CRC catches corruption inside a frame
// whose header survived.
//
// All integers are little-endian on the wire. The layout (28 bytes):
//
//   offset  size  field
//        0     4  magic        "HGMP"
//        4     2  src          sending rank
//        6     2  dst          receiving rank
//        8     1  traffic class (TrafficClass, < kNumClasses)
//        9     1  frame type   (FrameType)
//       10     2  reserved     must be zero
//       12     4  tag          caller-chosen matching tag
//       16     4  payload_len  bytes following the header
//       20     4  payload_crc  CRC-32 of the payload bytes
//       24     4  header_crc   CRC-32 of header bytes [0, 24)
//
// Malformed input is a *peer* error, so every decoding path returns a
// clean Status. Oversize payloads on the *send* side are a programmer
// error and CHECK-abort (tests/comm_fault_test.cc locks both behaviors
// in).

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `seed` chains
// incremental computations: pass a previous return value to continue.
uint32_t WireCrc32(const void* data, size_t len, uint32_t seed = 0);

inline constexpr uint32_t kFrameMagic = 0x504D4748u;  // "HGMP" little-endian
inline constexpr size_t kFrameHeaderBytes = 28;
// Hard cap on a single frame's payload. Large transfers are the caller's
// job to chunk; the cap bounds receiver buffer growth when a header is
// adversarially large yet CRC-valid (cannot happen by corruption, but
// keeps the invariant local).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

enum class FrameType : uint8_t {
  kData = 0,   // payload routed to Transport::Recv by (src, class, tag)
  kHello = 1,  // rendezvous handshake; consumed before Recv ever runs
};

struct FrameHeader {
  uint16_t src = 0;
  uint16_t dst = 0;
  uint8_t cls = 0;
  FrameType type = FrameType::kData;
  uint32_t tag = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

// Serializes `hdr` into `out[0, kFrameHeaderBytes)`, computing both CRCs
// (payload_crc must already be set by the caller; header_crc is derived).
// CHECK-aborts if payload_len exceeds kMaxFramePayload — the send side
// owns its own frames, so an oversize frame is a bug, not input.
void EncodeFrameHeader(const FrameHeader& hdr, uint8_t* out);

// Parses and validates a header from `in[0, kFrameHeaderBytes)`. Returns
// a Status (never aborts) on bad magic, header-CRC mismatch, nonzero
// reserved bits, out-of-range traffic class, or oversize payload_len.
Status DecodeFrameHeader(const uint8_t* in, FrameHeader* out);

// Appends a complete frame (header + payload) to `buf` — the buffered
// write path: callers batch one or more frames into a single flat buffer
// and hand it to the socket in one write.
void AppendFrame(const FrameHeader& hdr, const void* payload,
                 std::vector<uint8_t>* buf);

}  // namespace hetgmp

#endif  // HETGMP_COMM_WIRE_H_
