#include "comm/protocol.h"

#include <cstring>

#include "common/logging.h"

namespace hetgmp {

namespace {

// Message kinds (first payload byte); the transport frame already carries
// the traffic class, the kind byte catches class/decoder mismatches.
constexpr uint8_t kKindIndexClock = 1;
constexpr uint8_t kKindEmbeddingBlock = 2;

constexpr size_t kIndexClockHeader = 16;     // kind+pad(4) count(4) clock(8)
constexpr size_t kEmbeddingBlockHeader = 12; // kind+pad(4) count(4) dim(4)

void PutU32(uint32_t v, std::vector<uint8_t>* buf) {
  buf->push_back(static_cast<uint8_t>(v));
  buf->push_back(static_cast<uint8_t>(v >> 8));
  buf->push_back(static_cast<uint8_t>(v >> 16));
  buf->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(uint64_t v, std::vector<uint8_t>* buf) {
  PutU32(static_cast<uint32_t>(v), buf);
  PutU32(static_cast<uint32_t>(v >> 32), buf);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

void PutF32(float v, std::vector<uint8_t>* buf) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits, buf);
}

float GetF32(const uint8_t* p) {
  const uint32_t bits = GetU32(p);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status Malformed(const char* what, const char* why) {
  return Status::InvalidArgument(std::string("decode ") + what + ": " + why +
                                 " (truncated or corrupt message)");
}

}  // namespace

uint64_t IndexClockWireBytes(size_t num_ids) {
  return kIndexClockHeader + num_ids * kIdBytes;
}

uint64_t EmbeddingBlockWireBytes(size_t num_ids, int32_t dim) {
  return kEmbeddingBlockHeader +
         num_ids * (kIdBytes + 4 * static_cast<uint64_t>(dim));
}

std::vector<uint8_t> EncodeIndexClock(const IndexClockMsg& msg) {
  HETGMP_CHECK_LE(msg.ids.size(), UINT32_MAX);
  std::vector<uint8_t> buf;
  buf.reserve(IndexClockWireBytes(msg.ids.size()));
  buf.push_back(kKindIndexClock);
  buf.insert(buf.end(), 3, 0);  // pad
  PutU32(static_cast<uint32_t>(msg.ids.size()), &buf);
  PutU64(msg.clock, &buf);
  for (FeatureId id : msg.ids) PutU64(static_cast<uint64_t>(id), &buf);
  return buf;
}

Status DecodeIndexClock(const uint8_t* data, size_t len, IndexClockMsg* out) {
  if (len < kIndexClockHeader) return Malformed("IndexClock", "short header");
  if (data[0] != kKindIndexClock) {
    return Malformed("IndexClock", "wrong kind byte");
  }
  const uint32_t count = GetU32(data + 4);
  if (len != IndexClockWireBytes(count)) {
    return Malformed("IndexClock", "length does not match id count");
  }
  out->clock = GetU64(data + 8);
  out->ids.resize(count);
  const uint8_t* p = data + kIndexClockHeader;
  for (uint32_t i = 0; i < count; ++i, p += 8) {
    out->ids[i] = static_cast<FeatureId>(GetU64(p));
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeEmbeddingBlock(const EmbeddingBlockMsg& msg) {
  HETGMP_CHECK_GE(msg.dim, 0);
  HETGMP_CHECK_LE(msg.ids.size(), UINT32_MAX);
  HETGMP_CHECK_EQ(msg.values.size(),
                  msg.ids.size() * static_cast<size_t>(msg.dim));
  std::vector<uint8_t> buf;
  buf.reserve(EmbeddingBlockWireBytes(msg.ids.size(), msg.dim));
  buf.push_back(kKindEmbeddingBlock);
  buf.insert(buf.end(), 3, 0);  // pad
  PutU32(static_cast<uint32_t>(msg.ids.size()), &buf);
  PutU32(static_cast<uint32_t>(msg.dim), &buf);
  for (FeatureId id : msg.ids) PutU64(static_cast<uint64_t>(id), &buf);
  for (float v : msg.values) PutF32(v, &buf);
  return buf;
}

Status DecodeEmbeddingBlock(const uint8_t* data, size_t len,
                            EmbeddingBlockMsg* out) {
  if (len < kEmbeddingBlockHeader) {
    return Malformed("EmbeddingBlock", "short header");
  }
  if (data[0] != kKindEmbeddingBlock) {
    return Malformed("EmbeddingBlock", "wrong kind byte");
  }
  const uint32_t count = GetU32(data + 4);
  const uint32_t dim = GetU32(data + 8);
  if (dim > static_cast<uint32_t>(INT32_MAX)) {
    return Malformed("EmbeddingBlock", "dim out of range");
  }
  if (len != EmbeddingBlockWireBytes(count, static_cast<int32_t>(dim))) {
    return Malformed("EmbeddingBlock", "length does not match count*dim");
  }
  out->dim = static_cast<int32_t>(dim);
  out->ids.resize(count);
  const uint8_t* p = data + kEmbeddingBlockHeader;
  for (uint32_t i = 0; i < count; ++i, p += 8) {
    out->ids[i] = static_cast<FeatureId>(GetU64(p));
  }
  const size_t nvals = static_cast<size_t>(count) * dim;
  out->values.resize(nvals);
  for (size_t i = 0; i < nvals; ++i, p += 4) out->values[i] = GetF32(p);
  return Status::OK();
}

Status SendIndexClock(Transport* t, int dst, uint32_t tag,
                      const IndexClockMsg& msg) {
  const std::vector<uint8_t> buf = EncodeIndexClock(msg);
  return t->Send(dst, TrafficClass::kIndexClock, tag, buf.data(), buf.size());
}

Status RecvIndexClock(Transport* t, int src, uint32_t tag,
                      IndexClockMsg* out) {
  std::vector<uint8_t> buf;
  HETGMP_RETURN_IF_ERROR(t->Recv(src, TrafficClass::kIndexClock, tag, &buf));
  return DecodeIndexClock(buf.data(), buf.size(), out);
}

Status SendEmbeddingBlock(Transport* t, int dst, uint32_t tag,
                          const EmbeddingBlockMsg& msg) {
  const std::vector<uint8_t> buf = EncodeEmbeddingBlock(msg);
  return t->Send(dst, TrafficClass::kEmbedding, tag, buf.data(), buf.size());
}

Status RecvEmbeddingBlock(Transport* t, int src, uint32_t tag,
                          EmbeddingBlockMsg* out) {
  std::vector<uint8_t> buf;
  HETGMP_RETURN_IF_ERROR(t->Recv(src, TrafficClass::kEmbedding, tag, &buf));
  return DecodeEmbeddingBlock(buf.data(), buf.size(), out);
}

Status ExchangeIndexClockThenEmbeddings(Transport* t, int peer,
                                        uint32_t round,
                                        const IndexClockMsg& my_index,
                                        const EmbeddingBlockMsg& my_block,
                                        IndexClockMsg* peer_index,
                                        EmbeddingBlockMsg* peer_block) {
  // Both sends complete before either receive so the symmetric call
  // cannot deadlock (Send is buffered on every backend).
  HETGMP_RETURN_IF_ERROR(SendIndexClock(t, peer, round, my_index));
  HETGMP_RETURN_IF_ERROR(SendEmbeddingBlock(t, peer, round, my_block));
  HETGMP_RETURN_IF_ERROR(RecvIndexClock(t, peer, round, peer_index));
  HETGMP_RETURN_IF_ERROR(RecvEmbeddingBlock(t, peer, round, peer_block));
  // Our receives completing proves nothing about our *sends*: on a
  // buffered backend part of them may still be queued while the peer is
  // blocked waiting. Drain before returning so a rank that goes quiet
  // after the exchange cannot starve its peer.
  return t->Flush();
}

Status TransportAllReduceAverage(Transport* t,
                                 const std::vector<Tensor*>& tensors) {
  const int n = t->world_size();
  const int r = t->rank();
  int64_t total = 0;
  for (const Tensor* tensor : tensors) {
    HETGMP_CHECK(tensor != nullptr);
    total += tensor->size();
  }
  if (n == 1 || total == 0) return Status::OK();

  // Flatten: the ring works on one contiguous buffer split into n chunks.
  std::vector<float> flat(static_cast<size_t>(total));
  {
    int64_t off = 0;
    for (const Tensor* tensor : tensors) {
      std::memcpy(flat.data() + off, tensor->data(),
                  static_cast<size_t>(tensor->size()) * sizeof(float));
      off += tensor->size();
    }
  }

  const auto lo = [&](int c) { return static_cast<int64_t>(c) * total / n; };
  const int next = (r + 1) % n;
  const int prev = (r - 1 + n) % n;
  std::vector<uint8_t> buf;
  std::vector<float> scratch;

  const auto recv_chunk = [&](uint32_t tag, int chunk,
                              const float** vals) -> Status {
    HETGMP_RETURN_IF_ERROR(t->Recv(prev, TrafficClass::kAllReduce, tag, &buf));
    const int64_t count = lo(chunk + 1) - lo(chunk);
    if (buf.size() != static_cast<size_t>(count) * sizeof(float)) {
      return Status::Internal("allreduce: chunk " + std::to_string(chunk) +
                              " arrived with " + std::to_string(buf.size()) +
                              " bytes, want " +
                              std::to_string(count * sizeof(float)));
    }
    scratch.resize(static_cast<size_t>(count));
    std::memcpy(scratch.data(), buf.data(), buf.size());
    *vals = scratch.data();
    return Status::OK();
  };

  // Reduce-scatter: after step s, the chunk received in that step holds
  // the partial sum of s+2 ranks; after n-1 steps rank r owns the full
  // sum of chunk (r+1) mod n.
  for (int s = 0; s < n - 1; ++s) {
    const int send_chunk = (r - s % n + n) % n;
    const int recv_c = (r - s - 1 + 2 * n) % n;
    HETGMP_RETURN_IF_ERROR(t->Send(
        next, TrafficClass::kAllReduce, static_cast<uint32_t>(s),
        flat.data() + lo(send_chunk),
        static_cast<size_t>(lo(send_chunk + 1) - lo(send_chunk)) *
            sizeof(float)));
    const float* vals = nullptr;
    HETGMP_RETURN_IF_ERROR(
        recv_chunk(static_cast<uint32_t>(s), recv_c, &vals));
    float* dst = flat.data() + lo(recv_c);
    const int64_t count = lo(recv_c + 1) - lo(recv_c);
    for (int64_t i = 0; i < count; ++i) dst[i] += vals[i];
  }

  // Scale the owned chunk: downstream ranks receive averages directly.
  {
    const int own = (r + 1) % n;
    const float inv = 1.0f / static_cast<float>(n);
    for (int64_t i = lo(own); i < lo(own + 1); ++i) flat[i] *= inv;
  }

  // Allgather: circulate completed chunks; tags offset by 1000 to stay
  // disjoint from the reduce-scatter tag range.
  for (int s = 0; s < n - 1; ++s) {
    const int send_chunk = (r + 1 - s + 2 * n) % n;
    const int recv_c = (r - s + 2 * n) % n;
    HETGMP_RETURN_IF_ERROR(t->Send(
        next, TrafficClass::kAllReduce, static_cast<uint32_t>(1000 + s),
        flat.data() + lo(send_chunk),
        static_cast<size_t>(lo(send_chunk + 1) - lo(send_chunk)) *
            sizeof(float)));
    const float* vals = nullptr;
    HETGMP_RETURN_IF_ERROR(
        recv_chunk(static_cast<uint32_t>(1000 + s), recv_c, &vals));
    std::memcpy(flat.data() + lo(recv_c), vals,
                static_cast<size_t>(lo(recv_c + 1) - lo(recv_c)) *
                    sizeof(float));
  }

  // Scatter the averaged buffer back into the tensors.
  {
    int64_t off = 0;
    for (Tensor* tensor : tensors) {
      std::memcpy(tensor->data(), flat.data() + off,
                  static_cast<size_t>(tensor->size()) * sizeof(float));
      off += tensor->size();
    }
  }
  // The last allgather Send may still sit in a buffered backend's queue
  // (the successor's final Recv depends on it, and this rank makes no
  // further transport calls inside the collective) — drain it.
  return t->Flush();
}

}  // namespace hetgmp
