#ifndef HETGMP_COMM_PROTOCOL_H_
#define HETGMP_COMM_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "comm/transport.h"
#include "common/status.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Typed message layer over Transport (DESIGN.md §5g). The §6 exchange —
// indices + clock first, embedding payload after — and the dense ring
// AllReduce are expressed here once, against the Transport interface, so
// the identical protocol code drives the in-proc and socket backends;
// tests/comm_transport_test.cc runs one conformance body against both.
//
// Accounting constants: one sparse index entry and one clock metadata
// entry on the wire. These are the simulator's §6 cost-model figures —
// the engine charges fetch/push traffic as N·kIdBytes (+ kClockBytes per
// refresh) through Fabric::Transfer — and the typed encodings below use
// the same 8-byte ids and 8-byte clocks, plus a fixed self-describing
// message header the cost model deliberately ignores (it is O(1) per
// message, not per entry).
inline constexpr uint64_t kIdBytes = 8;     // sparse index entry
inline constexpr uint64_t kClockBytes = 8;  // clock metadata entry

// Step one of the §6 exchange: which rows the peer should send back, and
// the sender's sync clock for staleness screening.
struct IndexClockMsg {
  std::vector<FeatureId> ids;
  uint64_t clock = 0;
};

// Step two: the embedding rows themselves, ids paired with a dense
// [ids.size() x dim] value block (values.size() == ids.size() * dim).
struct EmbeddingBlockMsg {
  int32_t dim = 0;
  std::vector<FeatureId> ids;
  std::vector<float> values;
};

// Encoded payload sizes (message header included). Encodings are
// little-endian and host-endianness-independent.
uint64_t IndexClockWireBytes(size_t num_ids);
uint64_t EmbeddingBlockWireBytes(size_t num_ids, int32_t dim);

// Encode never fails (programmer-error shapes CHECK); Decode returns
// kInvalidArgument on anything malformed — wrong kind byte, count/length
// mismatch (which is how a fault-injected truncation surfaces), or an
// inconsistent values block. Decode never aborts.
std::vector<uint8_t> EncodeIndexClock(const IndexClockMsg& msg);
Status DecodeIndexClock(const uint8_t* data, size_t len, IndexClockMsg* out);
std::vector<uint8_t> EncodeEmbeddingBlock(const EmbeddingBlockMsg& msg);
Status DecodeEmbeddingBlock(const uint8_t* data, size_t len,
                            EmbeddingBlockMsg* out);

// Typed send/recv: class kIndexClock for index+clock frames, kEmbedding
// for row blocks. Tags distinguish concurrent rounds.
Status SendIndexClock(Transport* t, int dst, uint32_t tag,
                      const IndexClockMsg& msg);
Status RecvIndexClock(Transport* t, int src, uint32_t tag,
                      IndexClockMsg* out);
Status SendEmbeddingBlock(Transport* t, int dst, uint32_t tag,
                          const EmbeddingBlockMsg& msg);
Status RecvEmbeddingBlock(Transport* t, int src, uint32_t tag,
                          EmbeddingBlockMsg* out);

// One symmetric §6 round with `peer`: both sides send their index+clock,
// then their embedding block, then receive the peer's two messages. All
// sends are buffered before any receive, so the same call works on both
// ends without deadlock. `round` namespaces the tags.
Status ExchangeIndexClockThenEmbeddings(Transport* t, int peer,
                                        uint32_t round,
                                        const IndexClockMsg& my_index,
                                        const EmbeddingBlockMsg& my_block,
                                        IndexClockMsg* peer_index,
                                        EmbeddingBlockMsg* peer_block);

// SPMD ring AllReduce-average over a Transport: every rank calls this
// with its endpoint and identically-shaped tensor lists; on success each
// tensor holds the element-wise average across ranks. Reduce-scatter
// steps use tags [0, n-1), allgather steps tags [1000, 1000+n-1), class
// kAllReduce; payload bytes per rank match allreduce.h's
// RingAllReduceBytesPerWorker up to chunk rounding. A world of one is a
// no-op. Any transport failure propagates as that rank's Status.
Status TransportAllReduceAverage(Transport* t,
                                 const std::vector<Tensor*>& tensors);

}  // namespace hetgmp

#endif  // HETGMP_COMM_PROTOCOL_H_
