#ifndef HETGMP_COMM_TRANSPORT_H_
#define HETGMP_COMM_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "comm/fabric.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hetgmp {

// Abstract message transport between `world_size()` ranks (DESIGN.md §5g).
// Two backends implement it:
//
//   * InProcTransportGroup (this header) — the in-process simulator
//     backend: mailboxes between threads of one process, optionally
//     charging a Fabric so traffic lands in the same ledger the engine
//     reports from. The default everywhere; keeps every figure bit-stable.
//   * SocketFabric (socket_transport.h) — real processes over
//     socketpair/loopback TCP with CRC-framed buffered serialization.
//
// The protocol layer (protocol.h) — the §6 index+clock-then-embedding
// exchange, gradient push-back, ring AllReduce — is written against this
// interface only, so the identical protocol code drives both backends;
// tests/comm_transport_test.cc runs one conformance body against each.
//
// Semantics:
//   * Send is non-blocking from the caller's perspective (buffered); it
//     fails with kUnavailable if the peer is known dead.
//   * Recv matches by (src, traffic class, tag) — MPI-style: frames that
//     arrive before anyone asked for them are stashed and claimed by a
//     later matching Recv, so tag-disjoint exchanges may interleave
//     freely. Per (src, class, tag) order is FIFO.
//   * Recv never blocks past the configured timeout: it returns
//     kDeadlineExceeded instead of hanging, and kUnavailable when the
//     peer is gone — fault handling is Status-shaped, never a deadlock.
//   * Self-send is a programmer error (kInvalidArgument): local traffic
//     is free compute, exactly like Fabric::Transfer's src == dst rule.
//
// Accounting: both backends tally *payload* bytes per (src, dst,
// TrafficClass) — frame headers are transport overhead and excluded —
// so per-class tallies are directly comparable across backends (the
// conformance suite asserts byte-for-byte parity).
//
// Thread contract: one endpoint is driven by one rank's thread at a time
// (like ReplicaStore). Endpoints of the same group/world may run
// concurrently with each other.

struct TransportOptions {
  // Upper bound on any single Recv's blocking time.
  int recv_timeout_ms = 5000;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* backend_name() const = 0;
  virtual int rank() const = 0;
  virtual int world_size() const = 0;

  // Queues `len` payload bytes to `dst` under (cls, tag).
  virtual Status Send(int dst, TrafficClass cls, uint32_t tag,
                      const void* data, size_t len) = 0;

  // Receives the oldest frame matching (src, cls, tag) into `payload`
  // (replacing its contents). Blocks up to the recv timeout.
  virtual Status Recv(int src, TrafficClass cls, uint32_t tag,
                      std::vector<uint8_t>* payload) = 0;

  // Pushes every queued-but-undelivered byte to the peers, blocking up
  // to the recv timeout. A buffered backend needs this before a rank
  // goes quiet: queued bytes otherwise drain only on its later
  // Send/Recv calls, and a rank that finished its half of a protocol
  // may never make one (its peer would then starve). The protocol-layer
  // collectives call it on exit; call it yourself after a trailing raw
  // Send. No-op on the in-proc backend.
  virtual Status Flush() { return Status::OK(); }

  // --- Payload-byte tallies (see accounting note above) ---
  virtual uint64_t SentPayloadBytes(int dst, TrafficClass cls) const = 0;
  virtual uint64_t ReceivedPayloadBytes(int src, TrafficClass cls) const = 0;

  // Sender-side tally serialized as one "src dst class bytes" line per
  // non-zero cell, sorted — the cross-backend parity format (each rank
  // reports the cells it is the source of; a driver concatenates ranks).
  [[nodiscard]] std::string SentTallyReport() const;
};

// Bounds-checks shared by every backend; returns OK or kInvalidArgument.
Status ValidatePeer(const Transport& t, int peer, const char* op);

// ---------------------------------------------------------------------------
// In-process backend.

// Owns the mailboxes of an N-rank world inside one process. Hand each
// rank's thread its endpoint(); the group must outlive all use.
class InProcTransportGroup {
 public:
  // `fabric` (optional, must outlive the group) is charged
  // Transfer(src, dst, payload, cls) for every Send, so in-process
  // protocol traffic shows up in the simulator's ledger and cost model
  // exactly like engine traffic.
  explicit InProcTransportGroup(int world, Fabric* fabric = nullptr,
                                TransportOptions options = {});
  ~InProcTransportGroup();

  InProcTransportGroup(const InProcTransportGroup&) = delete;
  InProcTransportGroup& operator=(const InProcTransportGroup&) = delete;

  Transport* endpoint(int rank);
  int world_size() const { return world_; }

 private:
  friend class InProcEndpoint;

  struct InMsg {
    TrafficClass cls;
    uint32_t tag;
    std::vector<uint8_t> payload;
  };

  // One mailbox per directed (src, dst) pair: per-pair FIFO matches the
  // socket backend's per-connection stream order.
  struct Mailbox {
    Mutex mu{lock_rank::kCommMailbox};
    CondVar cv;
    std::deque<InMsg> msgs HETGMP_GUARDED_BY(mu);
    bool closed HETGMP_GUARDED_BY(mu) = false;
  };

  Mailbox* box(int src, int dst) {
    return boxes_[static_cast<size_t>(src) * world_ + dst].get();
  }

  const int world_;
  Fabric* const fabric_;
  const TransportOptions options_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<std::unique_ptr<Transport>> endpoints_;
};

}  // namespace hetgmp

#endif  // HETGMP_COMM_TRANSPORT_H_
