#include "comm/allreduce.h"

#include <algorithm>

#include "common/logging.h"

namespace hetgmp {

uint64_t RingAllReduceBytesPerWorker(int num_workers,
                                     uint64_t bytes_per_worker) {
  if (num_workers <= 1) return 0;
  return 2 * static_cast<uint64_t>(num_workers - 1) * bytes_per_worker /
         static_cast<uint64_t>(num_workers);
}

double RingAllReduceTime(const Topology& topology,
                         uint64_t bytes_per_worker) {
  const int n = topology.num_workers();
  if (n <= 1 || bytes_per_worker == 0) return 0.0;
  // Ring order 0→1→...→n-1→0; 2(n-1) steps each moving a payload/n chunk
  // over the slowest hop. Chunks are deeply pipelined (NCCL-style), so the
  // per-step latency is not paid serially — the collective pays the
  // bandwidth term plus roughly one round-trip of the worst link.
  const double chunk = static_cast<double>(bytes_per_worker) / n;
  double max_latency = 0.0;
  double min_bw = topology.BandwidthBytesPerSec(0, n > 1 ? 1 : 0);
  for (int w = 0; w < n; ++w) {
    const int next = (w + 1) % n;
    max_latency = std::max(max_latency, topology.LatencySec(w, next));
    min_bw = std::min(min_bw, topology.BandwidthBytesPerSec(w, next));
  }
  return 2.0 * (n - 1) * chunk / min_bw + 2.0 * max_latency;
}

double RingAllReduceAverage(
    Fabric* fabric, const std::vector<std::vector<Tensor*>>& replicas) {
  const int n = static_cast<int>(replicas.size());
  HETGMP_CHECK_GT(n, 0);
  if (n == 1) return 0.0;
  const size_t num_tensors = replicas[0].size();
  uint64_t payload = 0;
  for (Tensor* t : replicas[0]) payload += t->bytes();

  // Semantics: average element-wise across workers.
  for (size_t t = 0; t < num_tensors; ++t) {
    Tensor* first = replicas[0][t];
    for (int w = 1; w < n; ++w) {
      HETGMP_CHECK_EQ(replicas[w].size(), num_tensors);
      Tensor* other = replicas[w][t];
      HETGMP_CHECK_EQ(other->size(), first->size());
      for (int64_t i = 0; i < first->size(); ++i) {
        first->at(i) += other->at(i);
      }
    }
    const float inv = 1.0f / static_cast<float>(n);
    for (int64_t i = 0; i < first->size(); ++i) first->at(i) *= inv;
    for (int w = 1; w < n; ++w) {
      Tensor* other = replicas[w][t];
      for (int64_t i = 0; i < first->size(); ++i) {
        other->at(i) = first->at(i);
      }
    }
  }

  // Cost accounting: each worker ships 2(n-1)/n of the payload around the
  // ring; charge each hop so the pair counters reflect ring traffic.
  const Topology& topo = fabric->topology();
  const uint64_t per_hop_total =
      RingAllReduceBytesPerWorker(n, payload);
  for (int w = 0; w < n; ++w) {
    fabric->Transfer(w, (w + 1) % n, per_hop_total,
                     TrafficClass::kAllReduce);
  }
  return RingAllReduceTime(topo, payload);
}

}  // namespace hetgmp
