#include "comm/wire.h"

#include <cstring>
#include <string>

#include "common/logging.h"

namespace hetgmp {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t WireCrc32(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const Crc32Table& t = Table();
  for (size_t i = 0; i < len; ++i) {
    c = t.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void EncodeFrameHeader(const FrameHeader& hdr, uint8_t* out) {
  HETGMP_CHECK_LE(hdr.payload_len, kMaxFramePayload)
      << "frame payload exceeds kMaxFramePayload; chunk the transfer";
  PutU32(out + 0, kFrameMagic);
  PutU16(out + 4, hdr.src);
  PutU16(out + 6, hdr.dst);
  out[8] = hdr.cls;
  out[9] = static_cast<uint8_t>(hdr.type);
  PutU16(out + 10, 0);  // reserved
  PutU32(out + 12, hdr.tag);
  PutU32(out + 16, hdr.payload_len);
  PutU32(out + 20, hdr.payload_crc);
  PutU32(out + 24, WireCrc32(out, 24));
}

Status DecodeFrameHeader(const uint8_t* in, FrameHeader* out) {
  if (GetU32(in + 0) != kFrameMagic) {
    return Status::Internal("corrupt frame header: bad magic");
  }
  const uint32_t want_crc = GetU32(in + 24);
  if (WireCrc32(in, 24) != want_crc) {
    return Status::Internal("corrupt frame header: header CRC mismatch");
  }
  if (GetU16(in + 10) != 0) {
    return Status::Internal("corrupt frame header: reserved bits set");
  }
  FrameHeader hdr;
  hdr.src = GetU16(in + 4);
  hdr.dst = GetU16(in + 6);
  hdr.cls = in[8];
  if (hdr.cls >= 4) {  // TrafficClass::kNumClasses; kept literal to avoid
                       // a fabric.h dependency in the wire layer
    return Status::Internal("corrupt frame header: traffic class " +
                            std::to_string(hdr.cls) + " out of range");
  }
  const uint8_t type = in[9];
  if (type > static_cast<uint8_t>(FrameType::kHello)) {
    return Status::Internal("corrupt frame header: unknown frame type " +
                            std::to_string(type));
  }
  hdr.type = static_cast<FrameType>(type);
  hdr.tag = GetU32(in + 12);
  hdr.payload_len = GetU32(in + 16);
  if (hdr.payload_len > kMaxFramePayload) {
    return Status::Internal("corrupt frame header: payload length " +
                            std::to_string(hdr.payload_len) +
                            " exceeds frame cap");
  }
  hdr.payload_crc = GetU32(in + 20);
  *out = hdr;
  return Status::OK();
}

void AppendFrame(const FrameHeader& hdr, const void* payload,
                 std::vector<uint8_t>* buf) {
  const size_t base = buf->size();
  buf->resize(base + kFrameHeaderBytes + hdr.payload_len);
  EncodeFrameHeader(hdr, buf->data() + base);
  if (hdr.payload_len > 0) {
    std::memcpy(buf->data() + base + kFrameHeaderBytes, payload,
                hdr.payload_len);
  }
}

}  // namespace hetgmp
