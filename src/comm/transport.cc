#include "comm/transport.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.h"

namespace hetgmp {

// wire.cc validates the on-wire class byte against a literal 4 to stay
// free of a fabric.h dependency; pin the enum here so drift is a compile
// error next to the transport that relies on it.
static_assert(static_cast<int>(TrafficClass::kNumClasses) == 4,
              "update wire.cc's class-range check alongside TrafficClass");

std::string Transport::SentTallyReport() const {
  std::ostringstream os;
  const int n = world_size();
  for (int dst = 0; dst < n; ++dst) {
    for (int c = 0; c < static_cast<int>(TrafficClass::kNumClasses); ++c) {
      const uint64_t b = SentPayloadBytes(dst, static_cast<TrafficClass>(c));
      if (b != 0) {
        os << rank() << " " << dst << " " << c << " " << b << "\n";
      }
    }
  }
  return os.str();
}

Status ValidatePeer(const Transport& t, int peer, const char* op) {
  if (peer < 0 || peer >= t.world_size()) {
    return Status::InvalidArgument(std::string(op) + ": peer rank " +
                                   std::to_string(peer) + " outside world [0," +
                                   std::to_string(t.world_size()) + ")");
  }
  if (peer == t.rank()) {
    return Status::InvalidArgument(std::string(op) +
                                   ": self-transfer is local compute, not "
                                   "transport traffic (rank " +
                                   std::to_string(peer) + ")");
  }
  return Status::OK();
}

namespace {
constexpr int kNumCls = static_cast<int>(TrafficClass::kNumClasses);
}  // namespace

// Named (not anonymous-namespace) so the friend declaration in
// transport.h binds; the definition still never leaves this TU.
class InProcEndpoint : public Transport {
 public:
  InProcEndpoint(InProcTransportGroup* group, int rank, int world)
      : group_(group), rank_(rank), world_(world) {
    const size_t cells = static_cast<size_t>(world) * kNumCls;
    sent_ = std::make_unique<std::atomic<uint64_t>[]>(cells);
    received_ = std::make_unique<std::atomic<uint64_t>[]>(cells);
    for (size_t i = 0; i < cells; ++i) {
      sent_[i].store(0, std::memory_order_relaxed);
      received_[i].store(0, std::memory_order_relaxed);
    }
  }

  const char* backend_name() const override { return "inproc"; }
  int rank() const override { return rank_; }
  int world_size() const override { return world_; }

  Status Send(int dst, TrafficClass cls, uint32_t tag, const void* data,
              size_t len) override;
  Status Recv(int src, TrafficClass cls, uint32_t tag,
              std::vector<uint8_t>* payload) override;

  uint64_t SentPayloadBytes(int dst, TrafficClass cls) const override {
    return sent_[Cell(dst, cls)].load(std::memory_order_relaxed);
  }
  uint64_t ReceivedPayloadBytes(int src, TrafficClass cls) const override {
    return received_[Cell(src, cls)].load(std::memory_order_relaxed);
  }

 private:
  size_t Cell(int peer, TrafficClass cls) const {
    return static_cast<size_t>(peer) * kNumCls + static_cast<int>(cls);
  }

  InProcTransportGroup* const group_;
  const int rank_;
  const int world_;
  // Tallies are relaxed atomics like Fabric's counters: independently
  // monotonic, aggregated only after the world quiesces.
  std::unique_ptr<std::atomic<uint64_t>[]> sent_;
  std::unique_ptr<std::atomic<uint64_t>[]> received_;
};

Status InProcEndpoint::Send(int dst, TrafficClass cls, uint32_t tag,
                            const void* data, size_t len) {
  HETGMP_RETURN_IF_ERROR(ValidatePeer(*this, dst, "Send"));
  auto* box = group_->box(rank_, dst);
  {
    MutexLock lock(box->mu);
    if (box->closed) {
      return Status::Unavailable("Send: mailbox to rank " +
                                 std::to_string(dst) + " is closed");
    }
    InProcTransportGroup::InMsg msg;
    msg.cls = cls;
    msg.tag = tag;
    const auto* bytes = static_cast<const uint8_t*>(data);
    msg.payload.assign(bytes, bytes + len);
    box->msgs.push_back(std::move(msg));
  }
  box->cv.NotifyAll();
  sent_[Cell(dst, cls)].fetch_add(len, std::memory_order_relaxed);
  if (group_->fabric_ != nullptr) {
    group_->fabric_->Transfer(rank_, dst, len, cls);
  }
  return Status::OK();
}

Status InProcEndpoint::Recv(int src, TrafficClass cls, uint32_t tag,
                            std::vector<uint8_t>* payload) {
  HETGMP_RETURN_IF_ERROR(ValidatePeer(*this, src, "Recv"));
  auto* box = group_->box(src, rank_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(group_->options_.recv_timeout_ms);
  MutexLock lock(box->mu);
  for (;;) {
    for (auto it = box->msgs.begin(); it != box->msgs.end(); ++it) {
      if (it->cls == cls && it->tag == tag) {
        *payload = std::move(it->payload);
        box->msgs.erase(it);
        received_[Cell(src, cls)].fetch_add(payload->size(),
                                            std::memory_order_relaxed);
        return Status::OK();
      }
    }
    if (box->closed) {
      return Status::Unavailable("Recv: rank " + std::to_string(src) +
                                 " closed its mailbox");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded(
          "Recv: no frame from rank " + std::to_string(src) + " class " +
          TrafficClassName(cls) + " tag " + std::to_string(tag) + " within " +
          std::to_string(group_->options_.recv_timeout_ms) + "ms");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    // Timed wait (not Wait) so a dropped frame can never park us forever;
    // the loop re-checks the deadline on every wakeup, spurious or not.
    (void)box->cv.WaitFor(box->mu, remaining);
  }
}

InProcTransportGroup::InProcTransportGroup(int world, Fabric* fabric,
                                           TransportOptions options)
    : world_(world), fabric_(fabric), options_(options) {
  HETGMP_CHECK_GT(world, 0);
  if (fabric != nullptr) {
    HETGMP_CHECK_EQ(fabric->num_workers(), world);
  }
  boxes_.resize(static_cast<size_t>(world) * world);
  for (auto& b : boxes_) b = std::make_unique<Mailbox>();
  endpoints_.resize(world);
  for (int r = 0; r < world; ++r) {
    endpoints_[r] = std::make_unique<InProcEndpoint>(this, r, world);
  }
}

InProcTransportGroup::~InProcTransportGroup() {
  for (auto& b : boxes_) {
    {
      MutexLock lock(b->mu);
      b->closed = true;
    }
    b->cv.NotifyAll();
  }
}

Transport* InProcTransportGroup::endpoint(int rank) {
  HETGMP_CHECK_GE(rank, 0);
  HETGMP_CHECK_LT(rank, world_);
  return endpoints_[rank].get();
}

}  // namespace hetgmp
