#include "comm/topology.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hetgmp {

double LinkBandwidthBytesPerSec(LinkType type) {
  // Effective (not peak) per-direction bandwidths.
  switch (type) {
    case LinkType::kLocal:
      return 600e9;  // on-device memory path; effectively free
    case LinkType::kNvlink:
      return 120e9;
    case LinkType::kPcie:
      return 12e9;
    case LinkType::kQpi:
      return 7e9;
    case LinkType::kEth10G:
      return 1.1e9;
    case LinkType::kEth1G:
      return 0.11e9;
  }
  return 1e9;
}

double LinkLatencySec(LinkType type) {
  switch (type) {
    case LinkType::kLocal:
      return 0.0;
    case LinkType::kNvlink:
      return 2e-6;
    case LinkType::kPcie:
      return 3e-6;
    case LinkType::kQpi:
      return 2e-6;
    case LinkType::kEth10G:
      return 25e-6;
    case LinkType::kEth1G:
      return 50e-6;
  }
  return 1e-5;
}

const char* LinkTypeName(LinkType type) {
  switch (type) {
    case LinkType::kLocal:
      return "local";
    case LinkType::kNvlink:
      return "NVLink";
    case LinkType::kPcie:
      return "PCIe";
    case LinkType::kQpi:
      return "QPI";
    case LinkType::kEth10G:
      return "10GbE";
    case LinkType::kEth1G:
      return "1GbE";
  }
  return "?";
}

Topology::Topology(std::string name, std::vector<int> machine_of,
                   std::vector<std::vector<LinkType>> links)
    : name_(std::move(name)),
      machine_of_(std::move(machine_of)),
      links_(std::move(links)) {
  const int n = num_workers();
  HETGMP_CHECK_GT(n, 0);
  HETGMP_CHECK_EQ(static_cast<int>(links_.size()), n);
  for (const auto& row : links_) {
    HETGMP_CHECK_EQ(static_cast<int>(row.size()), n);
  }
  num_machines_ = 1 + *std::max_element(machine_of_.begin(),
                                        machine_of_.end());
}

namespace {

// Builds an n-worker topology: intra_group within groups of `group_size`
// on a machine, intra_machine across groups of one machine, inter_machine
// otherwise. `machine_size` workers per machine.
Topology BuildGrouped(std::string name, int num_workers, int machine_size,
                      int group_size, LinkType intra_group,
                      LinkType intra_machine, LinkType inter_machine) {
  HETGMP_CHECK_GT(num_workers, 0);
  std::vector<int> machine_of(num_workers);
  for (int w = 0; w < num_workers; ++w) machine_of[w] = w / machine_size;
  std::vector<std::vector<LinkType>> links(
      num_workers, std::vector<LinkType>(num_workers, LinkType::kLocal));
  for (int a = 0; a < num_workers; ++a) {
    for (int b = 0; b < num_workers; ++b) {
      if (a == b) continue;
      if (machine_of[a] != machine_of[b]) {
        links[a][b] = inter_machine;
      } else if (a / group_size != b / group_size) {
        links[a][b] = intra_machine;
      } else {
        links[a][b] = intra_group;
      }
    }
  }
  return Topology(std::move(name), std::move(machine_of), std::move(links));
}

}  // namespace

Topology Topology::FourGpuNvlink() {
  return BuildGrouped("4-GPU NVLink", 4, 4, 4, LinkType::kNvlink,
                      LinkType::kNvlink, LinkType::kEth10G);
}

Topology Topology::FourGpuPcie() {
  return BuildGrouped("4-GPU PCIe", 4, 4, 4, LinkType::kPcie,
                      LinkType::kPcie, LinkType::kEth1G);
}

Topology Topology::EightGpuQpi() {
  // Two 4-GPU PCIe switch groups joined by QPI.
  return BuildGrouped("8-GPU QPI", 8, 8, 4, LinkType::kPcie, LinkType::kQpi,
                      LinkType::kEth1G);
}

Topology Topology::ClusterA(int num_workers) {
  return BuildGrouped("cluster-A(" + std::to_string(num_workers) + ")",
                      num_workers, 8, 4, LinkType::kPcie, LinkType::kQpi,
                      LinkType::kEth1G);
}

Topology Topology::ClusterB(int num_workers) {
  // NVLink forms islands of 4 GPUs; crossing islands inside a node rides
  // QPI ("the inter-GPU connections change from NVLink to QPI and Ethernet
  // when involving more GPUs", §7.4).
  return BuildGrouped("cluster-B(" + std::to_string(num_workers) + ")",
                      num_workers, 8, 4, LinkType::kNvlink, LinkType::kQpi,
                      LinkType::kEth10G);
}

double Topology::BandwidthBytesPerSec(int a, int b) const {
  return LinkBandwidthBytesPerSec(links_[a][b]);
}

double Topology::LatencySec(int a, int b) const {
  return LinkLatencySec(links_[a][b]);
}

double Topology::HostBandwidthBytesPerSec(int worker,
                                          int host_machine) const {
  // The CPU parameter server is a shared resource: all GPUs of a machine
  // funnel through one PCIe root complex and the host's memory bus, so the
  // effective per-worker bandwidth is the link divided by the sharers.
  // (This is the CPU-GPU bottleneck §3 attributes to PS designs.)
  int sharers = 0;
  for (int m : machine_of_) {
    if (m == machine_of_[worker]) ++sharers;
  }
  double bw = LinkBandwidthBytesPerSec(LinkType::kPcie) /
              std::max(1, sharers);
  if (machine_of_[worker] == host_machine) return bw;
  // Cross-machine host access additionally rides the slowest
  // inter-machine link this worker has, shared with its co-located
  // workers' flows like any other inter-machine traffic.
  for (int b = 0; b < num_workers(); ++b) {
    if (machine_of_[b] == host_machine) {
      bw = std::min(bw, BandwidthBytesPerSec(worker, b) /
                            std::max(1, sharers));
    }
  }
  return bw;
}

double Topology::HostLatencySec(int worker, int host_machine) const {
  // PS software stack (request handling, CPU-side lookup) dwarfs the raw
  // link latency.
  constexpr double kPsSoftwareLatency = 30e-6;
  if (machine_of_[worker] == host_machine) {
    return kPsSoftwareLatency + LinkLatencySec(LinkType::kPcie);
  }
  double lat = LinkLatencySec(LinkType::kPcie);
  for (int b = 0; b < num_workers(); ++b) {
    if (machine_of_[b] == host_machine) {
      lat = std::max(lat, LatencySec(worker, b));
    }
  }
  return kPsSoftwareLatency + lat;
}

std::vector<std::vector<double>> Topology::CommWeightMatrix() const {
  const int n = num_workers();
  // Cheapest (fastest) remote link defines weight 1.0.
  double best_bw = 0.0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b) best_bw = std::max(best_bw, BandwidthBytesPerSec(a, b));
    }
  }
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      w[a][b] = best_bw / BandwidthBytesPerSec(a, b);
    }
  }
  return w;
}

std::vector<std::vector<double>> Topology::UniformWeightMatrix() const {
  const int n = num_workers();
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 1.0));
  for (int a = 0; a < n; ++a) w[a][a] = 0.0;
  return w;
}

}  // namespace hetgmp
