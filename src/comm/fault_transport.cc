#include "comm/fault_transport.h"

#include <sstream>
#include <utility>

#include "common/logging.h"

namespace hetgmp {

namespace {

std::string Describe(const char* what, int dst, TrafficClass cls,
                     uint32_t tag, size_t len) {
  std::ostringstream os;
  os << what << " dst=" << dst << " cls=" << TrafficClassName(cls)
     << " tag=" << tag << " len=" << len;
  return os.str();
}

}  // namespace

FaultyTransport::FaultyTransport(Transport* inner, FaultOptions options)
    : inner_(inner), options_(options), rng_(options.seed) {
  HETGMP_CHECK(inner != nullptr);
  HETGMP_CHECK_GT(options.max_delay_sends, 0);
}

Status FaultyTransport::Send(int dst, TrafficClass cls, uint32_t tag,
                             const void* data, size_t len) {
  // Validate even for frames about to be dropped: a bad peer rank is the
  // caller's bug regardless of the schedule.
  HETGMP_RETURN_IF_ERROR(ValidatePeer(*inner_, dst, "Send"));

  // Decisions are drawn in a fixed order so a schedule is a pure function
  // of (seed, call sequence).
  const bool drop = rng_.NextBool(options_.drop_prob);
  const bool truncate = rng_.NextBool(options_.truncate_prob);
  const bool duplicate = rng_.NextBool(options_.duplicate_prob);
  const bool delay = rng_.NextBool(options_.delay_prob);

  Status st;
  if (drop) {
    injected_.push_back(Describe("drop", dst, cls, tag, len));
  } else {
    size_t send_len = len;
    if (truncate && len > 0) {
      send_len = static_cast<size_t>(rng_.NextUint64(len));
      injected_.push_back(Describe("truncate", dst, cls, tag, send_len));
    }
    if (delay) {
      Held h;
      h.dst = dst;
      h.cls = cls;
      h.tag = tag;
      const auto* bytes = static_cast<const uint8_t*>(data);
      h.payload.assign(bytes, bytes + send_len);
      h.sends_left =
          1 + static_cast<int>(rng_.NextUint64(
                  static_cast<uint64_t>(options_.max_delay_sends)));
      injected_.push_back(Describe("delay", dst, cls, tag, send_len));
      held_.push_back(std::move(h));
    } else {
      st = inner_->Send(dst, cls, tag, data, send_len);
      if (st.ok() && duplicate) {
        injected_.push_back(Describe("duplicate", dst, cls, tag, send_len));
        st = inner_->Send(dst, cls, tag, data, send_len);
      }
    }
  }

  const Status aged = AgeAndRelease();
  return st.ok() ? aged : st;
}

Status FaultyTransport::Recv(int src, TrafficClass cls, uint32_t tag,
                             std::vector<uint8_t>* payload) {
  return inner_->Recv(src, cls, tag, payload);
}

Status FaultyTransport::AgeAndRelease() {
  Status first_error;
  size_t kept = 0;
  for (size_t i = 0; i < held_.size(); ++i) {
    Held& h = held_[i];
    if (--h.sends_left <= 0) {
      const Status st =
          inner_->Send(h.dst, h.cls, h.tag, h.payload.data(),
                       h.payload.size());
      if (!st.ok() && first_error.ok()) first_error = st;
    } else {
      if (kept != i) held_[kept] = std::move(h);
      ++kept;
    }
  }
  held_.resize(kept);
  return first_error;
}

size_t FaultyTransport::ReleaseDelayed() {
  const size_t n = held_.size();
  Status first_error;
  for (Held& h : held_) {
    const Status st = inner_->Send(h.dst, h.cls, h.tag, h.payload.data(),
                                   h.payload.size());
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  held_.clear();
  // Release is best-effort by design: a dead peer at drain time is the
  // receiver's kUnavailable/kDeadlineExceeded to report.
  HETGMP_IGNORE_STATUS(first_error);
  return n;
}

}  // namespace hetgmp
