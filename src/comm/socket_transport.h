#ifndef HETGMP_COMM_SOCKET_TRANSPORT_H_
#define HETGMP_COMM_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "comm/transport.h"
#include "comm/wire.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hetgmp {

// The multi-process Transport backend (DESIGN.md §5g): each rank is a real
// process (or thread) holding one connected stream socket per peer —
// socketpair(2) for pre-forked local worlds, loopback TCP via file-based
// rendezvous for independently launched processes.
//
// Framing is wire.h's CRC-checked length-prefixed format. Writes are
// buffered and never block: Send appends header + payload to a per-
// connection userspace write queue and flushes opportunistically with
// MSG_DONTWAIT; whatever the kernel will not take stays queued and is
// drained by later Sends and by every Recv, which pumps ALL connections'
// pending writes while it polls. That last part is what makes symmetric
// SPMD exchanges safe: in a ring step every rank sends then receives, and
// if Send blocked once payloads outgrew the kernel socket buffers, all
// ranks would sit in send() waiting for readers that never come. Reads
// pull whatever the socket has into a per-connection buffer and parse
// complete frames out of it, so short reads and coalesced frames are both
// handled. Frames that arrive before their Recv are stashed and matched
// later (same MPI-style matching as the in-proc backend).
//
// Every failure surfaces as a Status: peer death (EOF, ECONNRESET, EPIPE)
// is kUnavailable, a quiet link past the timeout is kDeadlineExceeded,
// and a garbled stream (bad magic / CRC mismatch / class out of range) is
// kInternal. Nothing in the receive path aborts or blocks forever.
//
// Accounting matches the in-proc backend: payload bytes per (src, dst,
// TrafficClass), frame headers excluded.

// Rendezvous configuration for RendezvousTcp. The session token is the
// freshness check: every rank of one world must pass the same token, and
// an address file carrying any other token is treated as stale (a
// leftover from a dead world in the same directory) rather than being
// connected to. Publication uses ColdTierFile's tmp+fsync+rename
// discipline, so a file is either absent or complete — a malformed file
// can only be stale garbage, never a half-written fresh one. Because a
// fresh publish atomically overwrites a leftover, a reader that finds a
// stale file keeps re-reading until the token matches or the connect
// deadline expires; only then does it surface kFailedPrecondition. This
// is what lets consecutive worlds share one rendezvous directory.
struct RendezvousOptions {
  std::string session_token;
  int connect_timeout_ms = 10000;
  int recv_timeout_ms = 5000;
};

class SocketFabric : public Transport {
 public:
  // Adopts pre-connected stream sockets: fds[i] talks to rank i
  // (fds[rank] ignored, conventionally -1). Closes them on destruction.
  // Use CreateLocalMesh + fork (tests/multiproc_driver.h) or socketpairs
  // of your own making.
  static std::unique_ptr<SocketFabric> FromFds(int rank, int world,
                                               std::vector<int> fds,
                                               TransportOptions options = {});

  // Full TCP rendezvous through `dir`: listens on 127.0.0.1, publishes
  // "<dir>/hetgmp_rank<r>.addr" atomically, connects to every lower rank
  // and accepts every higher one, validating the session token both in
  // the address files and in the in-band hello frames. A stale address
  // file (wrong token / geometry — a leftover from a dead world) is
  // re-read until the peer's fresh publish overwrites it; if it is still
  // stale at the deadline the stale kFailedPrecondition is returned.
  // On success this rank's own address file is unlinked (again in the
  // destructor as a backstop), so one directory serves consecutive
  // worlds. Returns a connected fabric or a Status (stale file at
  // deadline: kFailedPrecondition; nobody showed up: kDeadlineExceeded).
  static Result<std::unique_ptr<SocketFabric>> RendezvousTcp(
      const std::string& dir, int rank, int world,
      const RendezvousOptions& options);

  // world*world fd matrix for a pre-forked local world: mesh[i][j] is
  // rank i's socket to rank j (-1 on the diagonal), built from
  // socketpair(2). Caller owns every fd (children close the rows they
  // don't use; see tests/multiproc_driver.h).
  static Result<std::vector<std::vector<int>>> CreateLocalMesh(int world);

  ~SocketFabric() override;

  SocketFabric(const SocketFabric&) = delete;
  SocketFabric& operator=(const SocketFabric&) = delete;

  const char* backend_name() const override { return "socket"; }
  int rank() const override { return rank_; }
  int world_size() const override { return world_; }

  Status Send(int dst, TrafficClass cls, uint32_t tag, const void* data,
              size_t len) override;
  Status Recv(int src, TrafficClass cls, uint32_t tag,
              std::vector<uint8_t>* payload) override;
  // Blocking drain of every pending-write queue (poll POLLOUT, bounded
  // by recv_timeout_ms). See Transport::Flush for when this is required.
  Status Flush() override;

  uint64_t SentPayloadBytes(int dst, TrafficClass cls) const override;
  uint64_t ReceivedPayloadBytes(int src, TrafficClass cls) const override;

 private:
  struct Frame {
    FrameHeader hdr;
    std::vector<uint8_t> payload;
  };

  // Per-peer connection state. The mutex serializes the (single-threaded
  // by contract) owner against diagnostic readers and keeps the analysis
  // honest about what guards what.
  struct Conn {
    Mutex mu{lock_rank::kCommConn};
    int fd HETGMP_GUARDED_BY(mu) = -1;
    // Pending-write queue: [wpos, wbuf.size()) is not yet in the kernel.
    std::vector<uint8_t> wbuf HETGMP_GUARDED_BY(mu);
    size_t wpos HETGMP_GUARDED_BY(mu) = 0;
    std::vector<uint8_t> rbuf HETGMP_GUARDED_BY(mu);
    size_t rpos HETGMP_GUARDED_BY(mu) = 0;  // parsed prefix of rbuf
    std::deque<Frame> stash HETGMP_GUARDED_BY(mu);
  };

  SocketFabric(int rank, int world, std::vector<int> fds,
               TransportOptions options);

  // Closes the fd and discards both stream buffers: a garbled stream
  // cannot be re-framed, so poisoning fails later calls fast with
  // kUnavailable instead of re-reporting the same garbage.
  static void PoisonLocked(Conn* conn) HETGMP_REQUIRES(conn->mu);
  // Non-blocking flush of conn's pending-write queue: writes with
  // MSG_DONTWAIT until the queue empties or the kernel buffer fills
  // (EAGAIN, which is OK — the bytes stay queued). A hard write error
  // poisons the connection.
  Status TryFlushLocked(Conn* conn, int dst) HETGMP_REQUIRES(conn->mu);
  // TryFlush on every connection with queued bytes, one lock at a time.
  // A failure on a third-party link poisons that link and surfaces on the
  // next operation touching it; only a failure on the `src` link is
  // returned (it is the one the current Recv depends on).
  Status PumpWrites(int src);
  // Parses every complete frame already in rbuf into the stash. A
  // garbled stream (bad magic / CRC / routing) poisons the connection
  // and returns kInternal.
  Status ParseFramesLocked(Conn* conn, int src) HETGMP_REQUIRES(conn->mu);
  // Drains whatever the socket has right now (MSG_DONTWAIT) into rbuf.
  // EOF / reset poison the connection but return OK so already-buffered
  // frames are still delivered; the Recv loop surfaces kUnavailable once
  // the stash runs dry.
  Status ReadAvailableLocked(Conn* conn) HETGMP_REQUIRES(conn->mu);

  size_t Cell(int peer, TrafficClass cls) const {
    return static_cast<size_t>(peer) *
               static_cast<int>(TrafficClass::kNumClasses) +
           static_cast<int>(cls);
  }

  const int rank_;
  const int world_;
  const TransportOptions options_;
  // Path of the rendezvous address file this rank published, if the
  // fabric came from RendezvousTcp; unlinked in the destructor so the
  // directory stays reusable for the next world. Empty for FromFds
  // fabrics.
  std::string addr_file_;
  std::vector<std::unique_ptr<Conn>> conns_;
  // Same accounting contract as Fabric's counters: relaxed, monotonic,
  // aggregated after quiesce.
  std::unique_ptr<std::atomic<uint64_t>[]> sent_;
  std::unique_ptr<std::atomic<uint64_t>[]> received_;
};

// --- Rendezvous-file helpers (exposed for tests) ---

// Atomically publishes `contents` at `path` via tmp + fsync + rename —
// the ColdTierFile/checkpoint discipline, so readers never observe a
// partial file.
Status PublishRendezvousFile(const std::string& path,
                             const std::string& contents);

// Renders / parses the address-file format. Parse rejects anything that
// is not a complete, token-matching, geometry-matching file for `rank` in
// a `world`-rank session as kFailedPrecondition("stale rendezvous
// file...") — see RendezvousOptions for why malformed implies stale.
std::string RenderRendezvousFile(const std::string& session_token, int world,
                                 int rank, int port);
Status ParseRendezvousFile(const std::string& contents,
                           const std::string& expect_token, int expect_world,
                           int expect_rank, int* port_out);

}  // namespace hetgmp

#endif  // HETGMP_COMM_SOCKET_TRANSPORT_H_
