#include "comm/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace hetgmp {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ErrnoText(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

// Blocking full write with short-write/EINTR handling; MSG_NOSIGNAL turns
// a dead peer into EPIPE instead of a process-killing SIGPIPE.
Status WriteFully(int fd, const uint8_t* data, size_t len, int peer) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer rank " + std::to_string(peer) +
                                   " died mid-write (" + ErrnoText("send") +
                                   ")");
      }
      return Status::Internal(ErrnoText("send"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads one complete frame from a raw fd (handshake path, before any Conn
// buffering exists). Deadline is absolute steady-clock ms.
Status ReadFrameRaw(int fd, int64_t deadline_ms, FrameHeader* hdr,
                    std::vector<uint8_t>* payload) {
  uint8_t hbuf[kFrameHeaderBytes];
  size_t have = 0;
  auto read_some = [&](uint8_t* out, size_t want, size_t* got) -> Status {
    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return Status::DeadlineExceeded("handshake read timed out");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0 && errno != EINTR) return Status::Internal(ErrnoText("poll"));
    if (pr <= 0) return Status::OK();  // retry (timeout re-checked above)
    const ssize_t n = ::recv(fd, out, want, 0);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Status::Unavailable(ErrnoText("recv"));
    }
    if (n == 0) {
      return Status::Unavailable("peer closed connection during handshake");
    }
    *got += static_cast<size_t>(n);
    return Status::OK();
  };
  while (have < kFrameHeaderBytes) {
    size_t got = have;
    HETGMP_RETURN_IF_ERROR(read_some(hbuf + have, kFrameHeaderBytes - have,
                                     &got));
    have = got;
  }
  HETGMP_RETURN_IF_ERROR(DecodeFrameHeader(hbuf, hdr));
  payload->resize(hdr->payload_len);
  have = 0;
  while (have < hdr->payload_len) {
    size_t got = have;
    HETGMP_RETURN_IF_ERROR(
        read_some(payload->data() + have, hdr->payload_len - have, &got));
    have = got;
  }
  if (hdr->payload_len > 0 &&
      WireCrc32(payload->data(), payload->size()) != hdr->payload_crc) {
    return Status::Internal("corrupt frame: payload CRC mismatch");
  }
  return Status::OK();
}

Status SendFrameRaw(int fd, const FrameHeader& hdr, const void* payload,
                    int peer) {
  std::vector<uint8_t> buf;
  AppendFrame(hdr, payload, &buf);
  return WriteFully(fd, buf.data(), buf.size(), peer);
}

}  // namespace

// --------------------------------------------------------------- factory

SocketFabric::SocketFabric(int rank, int world, std::vector<int> fds,
                           TransportOptions options)
    : rank_(rank), world_(world), options_(options) {
  const size_t cells =
      static_cast<size_t>(world) * static_cast<int>(TrafficClass::kNumClasses);
  sent_ = std::make_unique<std::atomic<uint64_t>[]>(cells);
  received_ = std::make_unique<std::atomic<uint64_t>[]>(cells);
  for (size_t i = 0; i < cells; ++i) {
    sent_[i].store(0, std::memory_order_relaxed);
    received_[i].store(0, std::memory_order_relaxed);
  }
  conns_.resize(world);
  for (int p = 0; p < world; ++p) {
    conns_[p] = std::make_unique<Conn>();
    MutexLock lock(conns_[p]->mu);
    conns_[p]->fd = p == rank ? -1 : fds[p];
  }
}

std::unique_ptr<SocketFabric> SocketFabric::FromFds(int rank, int world,
                                                    std::vector<int> fds,
                                                    TransportOptions options) {
  HETGMP_CHECK_GT(world, 0);
  HETGMP_CHECK_GE(rank, 0);
  HETGMP_CHECK_LT(rank, world);
  HETGMP_CHECK_EQ(static_cast<int>(fds.size()), world);
  for (int p = 0; p < world; ++p) {
    if (p != rank) HETGMP_CHECK_GE(fds[p], 0);
  }
  return std::unique_ptr<SocketFabric>(
      new SocketFabric(rank, world, std::move(fds), options));
}

SocketFabric::~SocketFabric() {
  // Best-effort bounded drain before closing: a rank can finish its half
  // of a symmetric exchange while its last frame to a slower peer is
  // still in the userspace queue (the peer's Recv completing is what
  // proves OUR bytes arrived, and peers finish at different times).
  // close(2) delivers bytes the kernel already accepted, then EOF — only
  // the userspace remainder would be lost, so push it with a short
  // deadline and close regardless (a peer that is not reading by then
  // was not going to).
  const int64_t drain_deadline_ms = NowMs() + 200;
  for (int p = 0; p < world_; ++p) {
    Conn* conn = conns_[p].get();
    if (conn == nullptr) continue;
    MutexLock lock(conn->mu);
    while (conn->fd >= 0 && conn->wpos < conn->wbuf.size()) {
      HETGMP_IGNORE_STATUS(TryFlushLocked(conn, p));
      if (conn->fd < 0 || conn->wpos >= conn->wbuf.size()) break;
      const int64_t remaining = drain_deadline_ms - NowMs();
      if (remaining <= 0) break;
      struct pollfd pfd = {conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, static_cast<int>(remaining)) <= 0) break;
    }
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  // Rendezvous cleanup backstop: the success path of RendezvousTcp
  // already unlinked the file, but a fabric torn down after a partial
  // exchange should still leave the directory reusable.
  if (!addr_file_.empty()) ::unlink(addr_file_.c_str());
}

Result<std::vector<std::vector<int>>> SocketFabric::CreateLocalMesh(
    int world) {
  std::vector<std::vector<int>> mesh(world, std::vector<int>(world, -1));
  for (int i = 0; i < world; ++i) {
    for (int j = i + 1; j < world; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        for (auto& row : mesh) {
          for (int fd : row) {
            if (fd >= 0) ::close(fd);
          }
        }
        return Status::ResourceExhausted(ErrnoText("socketpair"));
      }
      mesh[i][j] = sv[0];
      mesh[j][i] = sv[1];
    }
  }
  return mesh;
}

// ------------------------------------------------------------- send/recv

Status SocketFabric::Send(int dst, TrafficClass cls, uint32_t tag,
                          const void* data, size_t len) {
  HETGMP_RETURN_IF_ERROR(ValidatePeer(*this, dst, "Send"));
  // Oversize frames are the sender's bug (chunking is the caller's job) —
  // CHECK here mirrors EncodeFrameHeader and aborts before any bytes move.
  HETGMP_CHECK_LE(len, kMaxFramePayload)
      << "Send payload exceeds kMaxFramePayload; chunk the transfer";
  Conn* conn = conns_[dst].get();
  MutexLock lock(conn->mu);
  if (conn->fd < 0) {
    return Status::Unavailable("Send: connection to rank " +
                               std::to_string(dst) + " is closed");
  }
  FrameHeader hdr;
  hdr.src = static_cast<uint16_t>(rank_);
  hdr.dst = static_cast<uint16_t>(dst);
  hdr.cls = static_cast<uint8_t>(cls);
  hdr.type = FrameType::kData;
  hdr.tag = tag;
  hdr.payload_len = static_cast<uint32_t>(len);
  hdr.payload_crc = len > 0 ? WireCrc32(data, len) : 0;
  AppendFrame(hdr, data, &conn->wbuf);
  const Status st = TryFlushLocked(conn, dst);
  if (st.ok()) {
    // Queued counts as sent: the bytes are committed to the stream and
    // will drain on later Sends / Recv pumps, so accounting stays
    // identical to the in-proc backend's at-Send tally.
    sent_[Cell(dst, cls)].fetch_add(len, std::memory_order_relaxed);
  }
  return st;
}

Status SocketFabric::TryFlushLocked(Conn* conn, int dst) {
  while (conn->wpos < conn->wbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->wbuf.data() + conn->wpos,
               conn->wbuf.size() - conn->wpos, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::OK();  // kernel buffer full; the rest stays queued
      }
      ::close(conn->fd);
      conn->fd = -1;
      conn->wbuf.clear();
      conn->wpos = 0;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer rank " + std::to_string(dst) +
                                   " died mid-write (" + ErrnoText("send") +
                                   ")");
      }
      return Status::Internal(ErrnoText("send"));
    }
    conn->wpos += static_cast<size_t>(n);
  }
  conn->wbuf.clear();
  conn->wpos = 0;
  return Status::OK();
}

Status SocketFabric::Flush() {
  const int64_t deadline_ms = NowMs() + options_.recv_timeout_ms;
  for (int p = 0; p < world_; ++p) {
    if (p == rank_) continue;
    Conn* conn = conns_[p].get();
    MutexLock lock(conn->mu);
    while (conn->fd >= 0 && conn->wpos < conn->wbuf.size()) {
      HETGMP_RETURN_IF_ERROR(TryFlushLocked(conn, p));
      if (conn->fd < 0 || conn->wpos >= conn->wbuf.size()) break;
      const int64_t remaining = deadline_ms - NowMs();
      if (remaining <= 0) {
        return Status::DeadlineExceeded(
            "Flush: rank " + std::to_string(p) + " is not draining (" +
            std::to_string(conn->wbuf.size() - conn->wpos) +
            " bytes still queued)");
      }
      struct pollfd pfd = {conn->fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (pr < 0 && errno != EINTR) {
        return Status::Internal(ErrnoText("poll"));
      }
    }
  }
  return Status::OK();
}

Status SocketFabric::PumpWrites(int src) {
  for (int p = 0; p < world_; ++p) {
    if (p == rank_) continue;
    Conn* conn = conns_[p].get();
    MutexLock lock(conn->mu);
    if (conn->fd < 0 || conn->wpos >= conn->wbuf.size()) continue;
    const Status st = TryFlushLocked(conn, p);
    if (!st.ok() && p == src) return st;
  }
  return Status::OK();
}

Status SocketFabric::Recv(int src, TrafficClass cls, uint32_t tag,
                          std::vector<uint8_t>* payload) {
  HETGMP_RETURN_IF_ERROR(ValidatePeer(*this, src, "Recv"));
  Conn* conn = conns_[src].get();
  const int64_t deadline_ms = NowMs() + options_.recv_timeout_ms;
  for (;;) {
    {
      MutexLock lock(conn->mu);
      HETGMP_RETURN_IF_ERROR(ParseFramesLocked(conn, src));
      for (auto it = conn->stash.begin(); it != conn->stash.end(); ++it) {
        if (it->hdr.cls == static_cast<uint8_t>(cls) && it->hdr.tag == tag) {
          *payload = std::move(it->payload);
          conn->stash.erase(it);
          received_[Cell(src, cls)].fetch_add(payload->size(),
                                              std::memory_order_relaxed);
          return Status::OK();
        }
      }
      // Stash is dry: a dead link can no longer produce the frame.
      if (conn->fd < 0) {
        return Status::Unavailable("Recv: connection to rank " +
                                   std::to_string(src) +
                                   " is closed (peer died or the stream "
                                   "was poisoned)");
      }
    }

    // No matching frame buffered. First push our own queued bytes out on
    // every link — in a symmetric exchange those are exactly what the
    // peer is waiting for before it can send ours.
    HETGMP_RETURN_IF_ERROR(PumpWrites(src));

    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return Status::DeadlineExceeded(
          "Recv: no frame from rank " + std::to_string(src) + " within " +
          std::to_string(options_.recv_timeout_ms) + "ms");
    }

    // Sleep until src has bytes for us or any queued write can drain.
    // (Snapshot fds one lock at a time; the single-caller contract means
    // nothing closes them while we poll.)
    std::vector<struct pollfd> pfds;
    for (int p = 0; p < world_; ++p) {
      if (p == rank_) continue;
      Conn* c = conns_[p].get();
      MutexLock lock(c->mu);
      if (c->fd < 0) continue;
      short events = p == src ? POLLIN : 0;
      if (c->wpos < c->wbuf.size()) events |= POLLOUT;
      if (events != 0) pfds.push_back({c->fd, events, 0});
    }
    const int pr = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                          static_cast<int>(remaining));
    if (pr < 0 && errno != EINTR) {
      return Status::Internal(ErrnoText("poll"));
    }

    MutexLock lock(conn->mu);
    HETGMP_RETURN_IF_ERROR(ReadAvailableLocked(conn));
  }
}

void SocketFabric::PoisonLocked(Conn* conn) {
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->rbuf.clear();
  conn->rpos = 0;
  conn->wbuf.clear();
  conn->wpos = 0;
}

Status SocketFabric::ParseFramesLocked(Conn* conn, int src) {
  while (conn->rbuf.size() - conn->rpos >= kFrameHeaderBytes) {
    FrameHeader hdr;
    const Status st = DecodeFrameHeader(conn->rbuf.data() + conn->rpos, &hdr);
    if (!st.ok()) {
      // A garbled stream cannot be re-framed; poison the connection (and
      // drop the unparseable remainder) so later calls fail fast with
      // kUnavailable rather than re-reporting the same garbage.
      PoisonLocked(conn);
      return st;
    }
    if (conn->rbuf.size() - conn->rpos < kFrameHeaderBytes + hdr.payload_len) {
      break;  // payload still in flight
    }
    const uint8_t* body = conn->rbuf.data() + conn->rpos + kFrameHeaderBytes;
    if (hdr.payload_len > 0 &&
        WireCrc32(body, hdr.payload_len) != hdr.payload_crc) {
      PoisonLocked(conn);
      return Status::Internal("corrupt frame: payload CRC mismatch from "
                              "rank " +
                              std::to_string(src));
    }
    if (hdr.src != static_cast<uint16_t>(src) ||
        hdr.dst != static_cast<uint16_t>(rank_)) {
      PoisonLocked(conn);
      return Status::Internal(
          "corrupt frame: routing mismatch (header says " +
          std::to_string(hdr.src) + "->" + std::to_string(hdr.dst) +
          " on the rank-" + std::to_string(src) + " connection)");
    }
    conn->rpos += kFrameHeaderBytes + hdr.payload_len;
    if (hdr.type == FrameType::kData) {
      Frame f;
      f.hdr = hdr;
      f.payload.assign(body, body + hdr.payload_len);
      conn->stash.push_back(std::move(f));
    }
    // Hello frames are handshake-only; one arriving here is a stray
    // duplicate (e.g. injected) and is dropped, not an error.
  }
  if (conn->rpos == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rpos = 0;
  } else if (conn->rpos > (1u << 20)) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<ptrdiff_t>(conn->rpos));
    conn->rpos = 0;
  }
  return Status::OK();
}

Status SocketFabric::ReadAvailableLocked(Conn* conn) {
  if (conn->fd < 0) return Status::OK();  // Recv's stash-dry check reports
  uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      if (errno == ECONNRESET) {
        ::close(conn->fd);
        conn->fd = -1;
        return Status::OK();  // buffered frames still deliverable
      }
      return Status::Internal(ErrnoText("recv"));
    }
    if (n == 0) {
      ::close(conn->fd);
      conn->fd = -1;
      return Status::OK();  // EOF; drain the stash, then kUnavailable
    }
    conn->rbuf.insert(conn->rbuf.end(), chunk, chunk + n);
    if (n < static_cast<ssize_t>(sizeof(chunk))) return Status::OK();
  }
}

uint64_t SocketFabric::SentPayloadBytes(int dst, TrafficClass cls) const {
  return sent_[Cell(dst, cls)].load(std::memory_order_relaxed);
}

uint64_t SocketFabric::ReceivedPayloadBytes(int src, TrafficClass cls) const {
  return received_[Cell(src, cls)].load(std::memory_order_relaxed);
}

// ------------------------------------------------------------ rendezvous

Status PublishRendezvousFile(const std::string& path,
                             const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("rendezvous: cannot create " + tmp + " (" +
                                   ErrnoText("open") + ")");
  }
  Status st;
  size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      st = Status::Internal("rendezvous: " + ErrnoText("write"));
      break;
    }
    off += static_cast<size_t>(n);
  }
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::Internal("rendezvous: " + ErrnoText("fsync"));
  }
  ::close(fd);
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Internal("rendezvous: rename failed: " + tmp + " -> " + path);
  }
  if (!st.ok()) std::remove(tmp.c_str());
  return st;
}

namespace {
constexpr char kRendezvousMagic[] = "hetgmp-rendezvous v1";
}  // namespace

std::string RenderRendezvousFile(const std::string& session_token, int world,
                                 int rank, int port) {
  std::ostringstream os;
  os << kRendezvousMagic << "\n"
     << "token " << session_token << "\n"
     << "world " << world << "\n"
     << "rank " << rank << "\n"
     << "port " << port << "\n"
     << "pid " << ::getpid() << "\n";
  return os.str();
}

Status ParseRendezvousFile(const std::string& contents,
                           const std::string& expect_token, int expect_world,
                           int expect_rank, int* port_out) {
  // tmp+rename publication means a visible file is complete; anything that
  // fails to parse or match is a stale leftover, not a write in progress.
  auto stale = [](const std::string& why) {
    return Status::FailedPrecondition("stale rendezvous file: " + why);
  };
  std::istringstream is(contents);
  std::string line;
  if (!std::getline(is, line) || line != kRendezvousMagic) {
    return stale("bad or missing magic line");
  }
  std::string token;
  int world = -1, rank = -1, port = -1;
  long pid = -1;
  std::string key;
  while (is >> key) {
    if (key == "token") {
      is >> token;
    } else if (key == "world") {
      is >> world;
    } else if (key == "rank") {
      is >> rank;
    } else if (key == "port") {
      is >> port;
    } else if (key == "pid") {
      is >> pid;
    } else {
      return stale("unknown field '" + key + "'");
    }
    if (!is && !is.eof()) return stale("malformed field '" + key + "'");
  }
  if (token.empty() || world < 0 || rank < 0 || port <= 0 ||
      port > 65535) {
    return stale("incomplete file");
  }
  if (token != expect_token) {
    return stale("session token mismatch (found a leftover from another "
                 "session)");
  }
  if (world != expect_world) {
    return stale("world size " + std::to_string(world) + " != expected " +
                 std::to_string(expect_world));
  }
  if (rank != expect_rank) {
    return stale("rank " + std::to_string(rank) + " != expected " +
                 std::to_string(expect_rank));
  }
  *port_out = port;
  return Status::OK();
}

namespace {

std::string AddrPath(const std::string& dir, int rank) {
  return dir + "/hetgmp_rank" + std::to_string(rank) + ".addr";
}

Result<int> MakeListenSocket(int backlog, int* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::ResourceExhausted(ErrnoText("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::ResourceExhausted(ErrnoText("bind"));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Status::ResourceExhausted(ErrnoText("listen"));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::Internal(ErrnoText("getsockname"));
  }
  *port_out = ntohs(addr.sin_port);
  return fd;
}

Status ReadWholeFile(const std::string& path, std::string* out,
                     bool* exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *exists = false;
    return Status::OK();
  }
  *exists = true;
  std::ostringstream os;
  os << in.rdbuf();
  // An I/O error mid-read leaves a partial buffer that would otherwise be
  // handed to ParseRendezvousFile and misclassified as a stale file.
  // badbit is the stream-level read failure; failbit alone is the normal
  // empty-file case and must stay classified by the parser.
  if (in.bad()) {
    return Status::Internal("rendezvous: read error on " + path);
  }
  *out = os.str();
  return Status::OK();
}

Status ConnectLoopback(int port, int64_t deadline_ms, int* fd_out) {
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::ResourceExhausted(ErrnoText("socket"));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      *fd_out = fd;
      return Status::OK();
    }
    ::close(fd);
    if (NowMs() >= deadline_ms) {
      return Status::DeadlineExceeded("rendezvous: connect to port " +
                                      std::to_string(port) + " timed out");
    }
    // The peer published its file but may not be accepting yet (or its
    // listener died: the deadline bounds that case).
    ::usleep(10 * 1000);
  }
}

}  // namespace

Result<std::unique_ptr<SocketFabric>> SocketFabric::RendezvousTcp(
    const std::string& dir, int rank, int world,
    const RendezvousOptions& options) {
  if (world <= 0 || rank < 0 || rank >= world) {
    return Status::InvalidArgument("rendezvous: rank " +
                                   std::to_string(rank) + " world " +
                                   std::to_string(world));
  }
  if (options.session_token.empty()) {
    return Status::InvalidArgument("rendezvous: session_token is required "
                                   "(it is the stale-file check)");
  }
  const int64_t deadline_ms = NowMs() + options.connect_timeout_ms;

  int port = 0;
  Result<int> listen_fd = MakeListenSocket(world, &port);
  if (!listen_fd.ok()) return listen_fd.status();

  const std::string addr_path = AddrPath(dir, rank);
  std::vector<int> fds(world, -1);
  auto fail = [&](Status st) -> Result<std::unique_ptr<SocketFabric>> {
    ::close(listen_fd.value());
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
    // Do not leave our own published file behind on failure: the next
    // world in this directory should start from a clean slate.
    ::unlink(addr_path.c_str());
    return st;
  };

  Status pub = PublishRendezvousFile(
      addr_path,
      RenderRendezvousFile(options.session_token, world, rank, port));
  if (!pub.ok()) return fail(pub);

  // Connect to every lower rank (they accept), validating their address
  // files. A stale leftover from a dead world in the same directory is
  // NOT a fail-fast condition: the peer's fresh publish atomically
  // replaces the leftover (tmp+rename), so keep re-reading until the
  // token matches; only if the file is still stale at the deadline is
  // the stale status surfaced.
  for (int peer = 0; peer < rank; ++peer) {
    int peer_port = 0;
    for (;;) {
      std::string contents;
      bool exists = false;
      const Status rd =
          ReadWholeFile(AddrPath(dir, peer), &contents, &exists);
      if (!rd.ok()) return fail(rd);
      Status stale = Status::OK();
      if (exists) {
        stale = ParseRendezvousFile(contents, options.session_token, world,
                                    peer, &peer_port);
        if (stale.ok()) break;
      }
      if (NowMs() >= deadline_ms) {
        if (!stale.ok()) return fail(stale);
        return fail(Status::DeadlineExceeded(
            "rendezvous: rank " + std::to_string(peer) +
            " never published its address file"));
      }
      ::usleep(10 * 1000);
    }
    int fd = -1;
    const Status st = ConnectLoopback(peer_port, deadline_ms, &fd);
    if (!st.ok()) return fail(st);
    FrameHeader hello;
    hello.src = static_cast<uint16_t>(rank);
    hello.dst = static_cast<uint16_t>(peer);
    hello.type = FrameType::kHello;
    hello.tag = static_cast<uint32_t>(rank);
    hello.payload_len =
        static_cast<uint32_t>(options.session_token.size());
    hello.payload_crc = WireCrc32(options.session_token.data(),
                                  options.session_token.size());
    const Status hs = SendFrameRaw(fd, hello, options.session_token.data(),
                                   peer);
    if (!hs.ok()) {
      ::close(fd);
      return fail(hs);
    }
    fds[peer] = fd;
  }

  // Accept every higher rank; each identifies itself with a hello frame.
  int pending = world - 1 - rank;
  while (pending > 0) {
    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return fail(Status::DeadlineExceeded(
          "rendezvous: still waiting for " + std::to_string(pending) +
          " higher rank(s) to connect"));
    }
    struct pollfd pfd = {listen_fd.value(), POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0 && errno != EINTR) {
      return fail(Status::Internal(ErrnoText("poll")));
    }
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd.value(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return fail(Status::Internal(ErrnoText("accept")));
    }
    FrameHeader hdr;
    std::vector<uint8_t> payload;
    Status st = ReadFrameRaw(fd, deadline_ms, &hdr, &payload);
    if (!st.ok()) {
      ::close(fd);
      return fail(st);
    }
    const int peer = static_cast<int>(hdr.tag);
    const std::string token(payload.begin(), payload.end());
    if (hdr.type != FrameType::kHello || peer <= rank || peer >= world ||
        fds[peer] >= 0 || token != options.session_token) {
      ::close(fd);
      return fail(Status::FailedPrecondition(
          "rendezvous: invalid hello (rank " + std::to_string(peer) +
          ", token " + (token == options.session_token ? "ok" : "mismatch") +
          ") — likely a stale or foreign session"));
    }
    fds[peer] = fd;
    --pending;
  }

  ::close(listen_fd.value());
  TransportOptions topts;
  topts.recv_timeout_ms = options.recv_timeout_ms;
  std::unique_ptr<SocketFabric> fab =
      FromFds(rank, world, std::move(fds), topts);
  // Every peer is connected, so nobody will read our address file again.
  // Unlink it now so a subsequent world can rendezvous in this directory
  // without tripping over our leftover; the destructor repeats the unlink
  // as a backstop (idempotent — ENOENT is fine).
  fab->addr_file_ = addr_path;
  ::unlink(addr_path.c_str());
  return fab;
}

}  // namespace hetgmp
