#ifndef HETGMP_TENSOR_OPS_H_
#define HETGMP_TENSOR_OPS_H_

#include "common/lint_tags.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Dense linear-algebra kernels for the model towers. All functions check
// shape compatibility with HETGMP_CHECK (shape errors are programmer bugs).

// out = a @ b. a: [m, k], b: [k, n], out: [m, n] (resized as needed).
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

// out = a @ b^T. a: [m, k], b: [n, k], out: [m, n].
void MatMulTransB(const Tensor& a, const Tensor& b, Tensor* out);

// out = a^T @ b. a: [k, m], b: [k, n], out: [m, n].
void MatMulTransA(const Tensor& a, const Tensor& b, Tensor* out);

// x[r, :] += bias for every row r. bias: [n] or [1, n].
void AddBiasRows(Tensor* x, const Tensor& bias);

// bias_grad[c] = Σ_r grad[r, c].
void SumRows(const Tensor& grad, Tensor* bias_grad);

// Elementwise y = max(x, 0); dx = dy * (x > 0).
void ReluForward(const Tensor& x, Tensor* y);
void ReluBackward(const Tensor& x, const Tensor& dy, Tensor* dx);

// Elementwise logistic sigmoid.
void SigmoidForward(const Tensor& x, Tensor* y);

// y += alpha * x (shapes must match).
void Axpy(float alpha, const Tensor& x, Tensor* y);

// y = x (copy preserving y's identity; shapes must match or y is resized).
void Copy(const Tensor& x, Tensor* y);

// Scales all elements in place.
void Scale(Tensor* x, float alpha);

// Dot product of two same-shaped tensors.
double Dot(const Tensor& a, const Tensor& b);

// Squared L2 norm.
double SquaredNorm(const Tensor& x);

// --- Raw row kernels ---
//
// Contiguous float-row primitives shared by the engine's gather/assemble/
// scatter hot path, the replica stores, and the row optimizers. They take
// raw pointers because the hot path addresses rows inside larger arenas
// (embedding tables, batch blocks) where a Tensor wrapper per row would
// cost more than the copy itself. Defined inline: typical rows are an
// embedding_dim of 8-64 floats, where a cross-TU call would cost as much
// as the loop.

// dst[0..n) = src[0..n) (memmove-safe only for non-overlapping rows).
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void CopyRow(float* dst,
                                                      const float* src,
                                                      int64_t n) {
  __builtin_memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

// dst[0..n) += src[0..n).
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void AccumulateRow(
    float* __restrict dst, const float* __restrict src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

// dst[0..n) += alpha * src[0..n).
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void AxpyRow(
    float* __restrict dst, const float* __restrict src, float alpha,
    int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

}  // namespace hetgmp

#endif  // HETGMP_TENSOR_OPS_H_
