#ifndef HETGMP_TENSOR_OPS_H_
#define HETGMP_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace hetgmp {

// Dense linear-algebra kernels for the model towers. All functions check
// shape compatibility with HETGMP_CHECK (shape errors are programmer bugs).

// out = a @ b. a: [m, k], b: [k, n], out: [m, n] (resized as needed).
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

// out = a @ b^T. a: [m, k], b: [n, k], out: [m, n].
void MatMulTransB(const Tensor& a, const Tensor& b, Tensor* out);

// out = a^T @ b. a: [k, m], b: [k, n], out: [m, n].
void MatMulTransA(const Tensor& a, const Tensor& b, Tensor* out);

// x[r, :] += bias for every row r. bias: [n] or [1, n].
void AddBiasRows(Tensor* x, const Tensor& bias);

// bias_grad[c] = Σ_r grad[r, c].
void SumRows(const Tensor& grad, Tensor* bias_grad);

// Elementwise y = max(x, 0); dx = dy * (x > 0).
void ReluForward(const Tensor& x, Tensor* y);
void ReluBackward(const Tensor& x, const Tensor& dy, Tensor* dx);

// Elementwise logistic sigmoid.
void SigmoidForward(const Tensor& x, Tensor* y);

// y += alpha * x (shapes must match).
void Axpy(float alpha, const Tensor& x, Tensor* y);

// y = x (copy preserving y's identity; shapes must match or y is resized).
void Copy(const Tensor& x, Tensor* y);

// Scales all elements in place.
void Scale(Tensor* x, float alpha);

// Dot product of two same-shaped tensors.
double Dot(const Tensor& a, const Tensor& b);

// Squared L2 norm.
double SquaredNorm(const Tensor& x);

}  // namespace hetgmp

#endif  // HETGMP_TENSOR_OPS_H_
