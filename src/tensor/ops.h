#ifndef HETGMP_TENSOR_OPS_H_
#define HETGMP_TENSOR_OPS_H_

#include "common/lint_tags.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Dense linear-algebra kernels for the model towers. All functions check
// shape compatibility with HETGMP_CHECK (shape errors are programmer bugs).

// out = a @ b. a: [m, k], b: [k, n], out: [m, n] (resized as needed).
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

// out = a @ b^T. a: [m, k], b: [n, k], out: [m, n].
void MatMulTransB(const Tensor& a, const Tensor& b, Tensor* out);

// out = a^T @ b. a: [k, m], b: [k, n], out: [m, n].
void MatMulTransA(const Tensor& a, const Tensor& b, Tensor* out);

// x[r, :] += bias for every row r. bias: [n] or [1, n].
void AddBiasRows(Tensor* x, const Tensor& bias);

// bias_grad[c] = Σ_r grad[r, c].
void SumRows(const Tensor& grad, Tensor* bias_grad);

// Elementwise y = max(x, 0); dx = dy * (x > 0).
void ReluForward(const Tensor& x, Tensor* y);
void ReluBackward(const Tensor& x, const Tensor& dy, Tensor* dx);

// Elementwise logistic sigmoid.
void SigmoidForward(const Tensor& x, Tensor* y);

// y += alpha * x (shapes must match).
void Axpy(float alpha, const Tensor& x, Tensor* y);

// y = x (copy preserving y's identity; shapes must match or y is resized).
void Copy(const Tensor& x, Tensor* y);

// Scales all elements in place.
void Scale(Tensor* x, float alpha);

// Dot product of two same-shaped tensors.
double Dot(const Tensor& a, const Tensor& b);

// Squared L2 norm.
double SquaredNorm(const Tensor& x);

// --- Raw row kernels ---
//
// Contiguous float-row primitives shared by the engine's gather/assemble/
// scatter hot path, the replica stores, and the row optimizers. They take
// raw pointers because the hot path addresses rows inside larger arenas
// (embedding tables, batch blocks) where a Tensor wrapper per row would
// cost more than the copy itself. Defined inline: typical rows are an
// embedding_dim of 8-64 floats, where a cross-TU call would cost as much
// as the loop.

// dst[0..n) = src[0..n) (memmove-safe only for non-overlapping rows).
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void CopyRow(float* dst,
                                                      const float* src,
                                                      int64_t n) {
  __builtin_memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

// dst[0..n) += src[0..n).
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void AccumulateRow(
    float* __restrict dst, const float* __restrict src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

// dst[0..n) += alpha * src[0..n).
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void AxpyRow(
    float* __restrict dst, const float* __restrict src, float alpha,
    int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

// --- Quantized row kernels ---
//
// The serving snapshot path (serve/snapshot_store) stores embedding rows
// as int8 (per-row symmetric scale) or IEEE 754 binary16 and dequantizes
// on every read, so these run on the hottest serving path. Like the row
// kernels above they are inline, allocation-free, and bit-stable: each
// output element is produced by the same scalar expression regardless of
// vector width (no accumulation, so there is no reassociation to worry
// about — the Vec16 tile only batches *different* outputs).

namespace quant_detail {
#if defined(__GNUC__) || defined(__clang__)
// 16-lane tiles sized to match the matmul micro-kernel's Vec16. Loads and
// stores go through __builtin_memcpy (never across a call boundary) for
// the same -Wpsabi reason documented in ops.cc.
typedef float VecF16 __attribute__((vector_size(64)));
typedef int32_t VecI16 __attribute__((vector_size(64)));
typedef uint32_t VecU16 __attribute__((vector_size(64)));
typedef int8_t VecB16 __attribute__((vector_size(16)));
typedef uint16_t VecH16 __attribute__((vector_size(32)));
#endif
// 2^112 as a float: multiplying a reinterpreted half payload by this
// rescales the half exponent bias (15) to the float bias (127) exactly
// (a power-of-two multiply is exact, and subnormal halves land on normal
// floats), so the conversion below needs no per-lane branching.
inline constexpr float kFp16Rescale = 5.192296858534827628530496329220e33f;
}  // namespace quant_detail

// Converts a float to IEEE 754 binary16 bits with round-to-nearest-even
// (ties to even), the deterministic rounding every fp16 snapshot uses.
// Overflow saturates to infinity; NaN payloads keep a quiet bit.
HETGMP_BIT_STABLE inline uint16_t Fp16FromFloat(float v) {
  uint32_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  bits &= 0x7fffffffu;
  if (bits >= 0x7f800000u) {  // inf / NaN
    return static_cast<uint16_t>(
        sign | 0x7c00u | (bits > 0x7f800000u ? 0x0200u : 0u));
  }
  const uint32_t e = bits >> 23;  // biased float exponent
  if (e >= 143) return sign | 0x7c00u;  // >= 2^16: overflow to inf
  if (e >= 113) {
    // Normal half: drop 13 mantissa bits with round-to-nearest-even. The
    // round carry may overflow into the exponent (and into inf at the
    // top), which is exactly the right result.
    uint32_t base = ((e - 112u) << 10) | ((bits >> 13) & 0x3ffu);
    const uint32_t rem = bits & 0x1fffu;
    base += (rem > 0x1000u) || (rem == 0x1000u && (base & 1u));
    return static_cast<uint16_t>(sign | base);
  }
  if (e < 101) return sign;  // < 2^-26: underflows to signed zero
  // Subnormal half: shift the full 24-bit significand down to units of
  // 2^-24, rounding to nearest even; the carry into bit 10 (smallest
  // normal) is again correct by construction.
  const uint32_t m = (bits & 0x7fffffu) | 0x800000u;
  const uint32_t shift = 126u - e;  // 14..25
  uint32_t q = m >> shift;
  const uint32_t rem = m & ((1u << shift) - 1u);
  const uint32_t half_ulp = 1u << (shift - 1u);
  q += (rem > half_ulp) || (rem == half_ulp && (q & 1u));
  return static_cast<uint16_t>(sign | q);
}

// Converts IEEE 754 binary16 bits back to float, exactly (every half
// value, normal or subnormal, is representable as a float).
HETGMP_BIT_STABLE inline float Fp16ToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  uint32_t bits;
  if ((h & 0x7c00u) == 0x7c00u) {  // inf / NaN
    bits = sign | 0x7f800000u | (static_cast<uint32_t>(h & 0x3ffu) << 13);
  } else {
    float f;
    bits = static_cast<uint32_t>(h & 0x7fffu) << 13;
    __builtin_memcpy(&f, &bits, sizeof(f));
    f *= quant_detail::kFp16Rescale;  // exact power-of-two rebias
    __builtin_memcpy(&bits, &f, sizeof(bits));
    bits |= sign;
  }
  float out;
  __builtin_memcpy(&out, &bits, sizeof(out));
  return out;
}

// out[0..n) = q[0..n) * scale. Register-tiled: 16 int8 lanes widen to a
// Vec16 of floats entirely in registers, so the row decode is bound by
// the 1-byte-per-element loads instead of scalar convert latency.
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void DequantizeRowInt8(
    const int8_t* __restrict q, float scale, float* __restrict out,
    int64_t n) {
  int64_t i = 0;
#if defined(__GNUC__) || defined(__clang__)
  for (; i + 16 <= n; i += 16) {
    quant_detail::VecB16 b;
    __builtin_memcpy(&b, q + i, sizeof(b));
    const quant_detail::VecF16 f = __builtin_convertvector(
        __builtin_convertvector(b, quant_detail::VecI16),
        quant_detail::VecF16);
    const quant_detail::VecF16 scaled = f * scale;
    __builtin_memcpy(out + i, &scaled, sizeof(scaled));
  }
#endif
  for (; i < n; ++i) out[i] = static_cast<float>(q[i]) * scale;
}

// out[0..n) = float(h[0..n)) for binary16 payloads. The 16-lane tile does
// the exponent rebias with one exact power-of-two multiply per lane; the
// inf/NaN fixup is an integer blend, so the vector and scalar paths are
// bit-identical on every input.
HETGMP_HOT_PATH HETGMP_BIT_STABLE inline void DequantizeRowFp16(
    const uint16_t* __restrict h, float* __restrict out, int64_t n) {
  int64_t i = 0;
#if defined(__GNUC__) || defined(__clang__)
  for (; i + 16 <= n; i += 16) {
    quant_detail::VecH16 hv;
    __builtin_memcpy(&hv, h + i, sizeof(hv));
    const quant_detail::VecU16 w =
        __builtin_convertvector(hv, quant_detail::VecU16);
    const quant_detail::VecU16 sign = (w & 0x8000u) << 16;
    const quant_detail::VecU16 mag = (w & 0x7fffu) << 13;
    quant_detail::VecF16 f;
    __builtin_memcpy(&f, &mag, sizeof(f));
    f *= quant_detail::kFp16Rescale;
    quant_detail::VecU16 bits;
    __builtin_memcpy(&bits, &f, sizeof(bits));
    // Lanes holding inf/NaN need the real exponent, not the rebias.
    const quant_detail::VecU16 is_special =
        (w & 0x7c00u) == 0x7c00u;  // all-ones per matching lane
    const quant_detail::VecU16 special =
        0x7f800000u | ((w & 0x3ffu) << 13);
    bits = (bits & ~is_special) | (special & is_special);
    bits |= sign;
    __builtin_memcpy(out + i, &bits, sizeof(bits));
  }
#endif
  for (; i < n; ++i) out[i] = Fp16ToFloat(h[i]);
}

// Encodes src[0..n) as int8 with one symmetric per-row scale, returning
// the fp16 bits the scale is stored as. The scale is max|src|/127 rounded
// *up* to the next representable half (never zero for a non-zero row), so
// |src[i]| / scale <= 127 always holds and the clamp below never bites:
// the round-trip error is bounded by scale/2 <= (max|src|/254)(1 + 2^-10)
// per element. All-zero rows encode as scale bits 0 with every q zero.
// Publish-path cost (not hot); deterministic for a given input row.
HETGMP_BIT_STABLE inline uint16_t QuantizeRowInt8(const float* __restrict src,
                                                  int64_t n,
                                                  int8_t* __restrict q) {
  float max_abs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float a = src[i] < 0.0f ? -src[i] : src[i];
    if (a > max_abs) max_abs = a;
  }
  if (max_abs == 0.0f) {
    for (int64_t i = 0; i < n; ++i) q[i] = 0;
    return 0;
  }
  uint16_t scale_bits = Fp16FromFloat(max_abs / 127.0f);
  if (scale_bits == 0) scale_bits = 1;  // tiny rows: smallest subnormal
  // Round-to-nearest may have rounded down; bump ulps until the scale
  // covers the row (terminates immediately in practice — one ulp at most).
  while (Fp16ToFloat(scale_bits) * 127.0f < max_abs) ++scale_bits;
  const float scale = Fp16ToFloat(scale_bits);
  const float inv = 1.0f / scale;
  for (int64_t i = 0; i < n; ++i) {
    // lrintf under the default FP environment is round-to-nearest-even:
    // deterministic, and |src/scale| <= 127 so the clamp is defensive.
    int32_t v = static_cast<int32_t>(__builtin_lrintf(src[i] * inv));
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    q[i] = static_cast<int8_t>(v);
  }
  return scale_bits;
}

// Encodes src[0..n) as binary16 (round-to-nearest-even per element).
HETGMP_BIT_STABLE inline void QuantizeRowFp16(const float* __restrict src,
                                              int64_t n,
                                              uint16_t* __restrict out) {
  for (int64_t i = 0; i < n; ++i) out[i] = Fp16FromFloat(src[i]);
}

}  // namespace hetgmp

#endif  // HETGMP_TENSOR_OPS_H_
