#include "tensor/ops.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/lint_tags.h"
#include "common/logging.h"

namespace hetgmp {

namespace {

void CheckRank2(const Tensor& t, const char* name) {
  HETGMP_CHECK_EQ(t.rank(), 2) << " tensor " << name << " must be rank-2";
}

}  // namespace

// All three matmuls keep one invariant: every output element accumulates
// its k terms in ascending-k order, with a term skipped exactly when the
// naive form skipped it. The register tile only batches *different*
// outputs, so results are bit-identical to the naive loops at any block
// size or vector width (no fast-math anywhere).

namespace {

// Register-tiled micro-kernel shared by the three matmuls: each 4-row
// block of A and 16-column tile of the output accumulates over k
// entirely in registers (the naive form reloads and stores the output
// row on every k step, which is what made it memory-bound). A is [m,k]
// with row stride lda, B is [k,n] with row stride ldb, O is [m,n] with
// row stride ldo and must be zero on entry. SkipZeros preserves the
// naive form's `a == 0` skip per contribution (dropping a +0.0 term is
// not a no-op for a negative-zero accumulator, so the flag must match
// the semantics of the loop being replaced).
//
// The accumulators are GNU vector-extension values so they live in SIMD
// registers instead of spilling as stack arrays; element j of the tile
// only ever combines with element j, so per-output accumulation order is
// untouched.

// Loads/stores stay inline __builtin_memcpy (never a Vec16 function
// parameter or return): passing 64-byte vectors across call boundaries
// trips -Wpsabi on builds without 512-bit ISA flags.
#if defined(__GNUC__) || defined(__clang__)
typedef float Vec16 __attribute__((vector_size(64)));
#endif

template <bool SkipZeros>
void TiledMatMul(const float* __restrict A, int64_t lda,
                 const float* __restrict B, int64_t ldb, int64_t m,
                 int64_t n, int64_t k, float* __restrict O, int64_t ldo) {
  constexpr int64_t JT = 16;
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* __restrict a0 = A + (i + 0) * lda;
    const float* __restrict a1 = A + (i + 1) * lda;
    const float* __restrict a2 = A + (i + 2) * lda;
    const float* __restrict a3 = A + (i + 3) * lda;
    float* __restrict o0 = O + (i + 0) * ldo;
    float* __restrict o1 = O + (i + 1) * ldo;
    float* __restrict o2 = O + (i + 2) * ldo;
    float* __restrict o3 = O + (i + 3) * ldo;
    int64_t jt = 0;
#if defined(__GNUC__) || defined(__clang__)
    for (; jt + JT <= n; jt += JT) {
      Vec16 c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f}, c3 = {0.0f};
      const float* __restrict bp = B + jt;
      for (int64_t kk = 0; kk < k; ++kk) {
        Vec16 bv;
        __builtin_memcpy(&bv, bp + kk * ldb, sizeof(bv));
        const float v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
        if (!SkipZeros || v0 != 0.0f) c0 += v0 * bv;
        if (!SkipZeros || v1 != 0.0f) c1 += v1 * bv;
        if (!SkipZeros || v2 != 0.0f) c2 += v2 * bv;
        if (!SkipZeros || v3 != 0.0f) c3 += v3 * bv;
      }
      __builtin_memcpy(o0 + jt, &c0, sizeof(c0));
      __builtin_memcpy(o1 + jt, &c1, sizeof(c1));
      __builtin_memcpy(o2 + jt, &c2, sizeof(c2));
      __builtin_memcpy(o3 + jt, &c3, sizeof(c3));
    }
#endif
    for (; jt < n; jt += JT) {  // column tail (and non-GNU fallback)
      const int64_t jw = n - jt < JT ? n - jt : JT;
      float c0[JT] = {0.0f}, c1[JT] = {0.0f};
      float c2[JT] = {0.0f}, c3[JT] = {0.0f};
      const float* __restrict bp = B + jt;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* __restrict brow = bp + kk * ldb;
        const float v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
        if (!SkipZeros || v0 != 0.0f) {
          for (int64_t j = 0; j < jw; ++j) c0[j] += v0 * brow[j];
        }
        if (!SkipZeros || v1 != 0.0f) {
          for (int64_t j = 0; j < jw; ++j) c1[j] += v1 * brow[j];
        }
        if (!SkipZeros || v2 != 0.0f) {
          for (int64_t j = 0; j < jw; ++j) c2[j] += v2 * brow[j];
        }
        if (!SkipZeros || v3 != 0.0f) {
          for (int64_t j = 0; j < jw; ++j) c3[j] += v3 * brow[j];
        }
      }
      for (int64_t j = 0; j < jw; ++j) {
        o0[jt + j] = c0[j];
        o1[jt + j] = c1[j];
        o2[jt + j] = c2[j];
        o3[jt + j] = c3[j];
      }
    }
  }
  // Row tail: the in-place form over the zeroed output (same order).
  for (; i < m; ++i) {
    const float* __restrict arow = A + i * lda;
    float* __restrict orow = O + i * ldo;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (SkipZeros && av == 0.0f) continue;
      const float* __restrict brow = B + kk * ldb;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace

HETGMP_HOT_PATH HETGMP_BIT_STABLE void MatMul(const Tensor& a,
                                              const Tensor& b, Tensor* out) {
  CheckRank2(a, "a");
  CheckRank2(b, "b");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  HETGMP_CHECK_EQ(k, b.dim(0));
  out->Resize(m, n);
  if (n == 1) {
    // Degenerate tower head (wide/combine layers): contiguous dot per
    // row, same skip-and-accumulate order as the general form.
    const float* __restrict bp = b.data();
    float* __restrict op = out->data();
    for (int64_t i = 0; i < m; ++i) {
      const float* __restrict arow = a.row(i);
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        acc += av * bp[kk];
      }
      op[i] = acc;
    }
    return;
  }
  TiledMatMul<true>(a.data(), k, b.data(), n, m, n, k, out->data(), n);
}

HETGMP_HOT_PATH HETGMP_BIT_STABLE void MatMulTransB(
    const Tensor& a, const Tensor& b, Tensor* out) {
  CheckRank2(a, "a");
  CheckRank2(b, "b");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  HETGMP_CHECK_EQ(k, b.dim(1));
  out->Resize(m, n);
  // Repack b [n,k] as [k,n] once so the hot loop is the shared tiled
  // kernel. No skip on zero here: the naive dot-product form never
  // skipped.
  thread_local std::vector<float> bt;
  bt.resize(static_cast<size_t>(k) * static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    const float* brow = b.row(j);
    for (int64_t kk = 0; kk < k; ++kk) bt[kk * n + j] = brow[kk];
  }
  TiledMatMul<false>(a.data(), k, bt.data(), n, m, n, k, out->data(), n);
}

HETGMP_HOT_PATH HETGMP_BIT_STABLE void MatMulTransA(
    const Tensor& a, const Tensor& b, Tensor* out) {
  CheckRank2(a, "a");
  CheckRank2(b, "b");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  HETGMP_CHECK_EQ(k, b.dim(0));
  out->Resize(m, n);
  if (n == 1) {
    // Tower-head weight gradient: out[:,0] = A^T b. Walking k outermost
    // keeps A's rows contiguous (no repack) while every output element
    // still accumulates in ascending-k order with the naive zero skip.
    float* __restrict op = out->data();  // zeroed by Resize
    const float* __restrict bp = b.data();
    for (int64_t kk = 0; kk < k; ++kk) {
      const float bk = bp[kk];
      const float* __restrict arow = a.row(kk);
      for (int64_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av != 0.0f) op[i] += av * bk;
      }
    }
    return;
  }
  // Repack a [k,m] as [m,k] (reads stay L1-resident: for each output row
  // the source column walks a fixed 16KB-ish stripe) so the hot loop is
  // the shared tiled kernel. The zero skip keys off the same a values as
  // the naive form.
  thread_local std::vector<float> at;
  at.resize(static_cast<size_t>(m) * static_cast<size_t>(k));
  const float* __restrict ap = a.data();
  for (int64_t i = 0; i < m; ++i) {
    float* __restrict arow = at.data() + i * k;
    for (int64_t kk = 0; kk < k; ++kk) arow[kk] = ap[kk * m + i];
  }
  TiledMatMul<true>(at.data(), k, b.data(), n, m, n, k, out->data(), n);
}

void AddBiasRows(Tensor* x, const Tensor& bias) {
  CheckRank2(*x, "x");
  const int64_t n = x->dim(1);
  HETGMP_CHECK_EQ(bias.size(), n);
  const float* __restrict b = bias.data();
  for (int64_t r = 0; r < x->dim(0); ++r) {
    float* __restrict row = x->row(r);
    for (int64_t c = 0; c < n; ++c) row[c] += b[c];
  }
}

void SumRows(const Tensor& grad, Tensor* bias_grad) {
  CheckRank2(grad, "grad");
  const int64_t n = grad.dim(1);
  bias_grad->Resize(n);
  float* __restrict acc = bias_grad->data();
  for (int64_t r = 0; r < grad.dim(0); ++r) {
    const float* __restrict row = grad.row(r);
    for (int64_t c = 0; c < n; ++c) acc[c] += row[c];
  }
}

void ReluForward(const Tensor& x, Tensor* y) {
  y->ResizeUninit(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) {
    y->at(i) = x.at(i) > 0.0f ? x.at(i) : 0.0f;
  }
}

void ReluBackward(const Tensor& x, const Tensor& dy, Tensor* dx) {
  HETGMP_CHECK_EQ(x.size(), dy.size());
  dx->ResizeUninit(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) {
    dx->at(i) = x.at(i) > 0.0f ? dy.at(i) : 0.0f;
  }
}

void SigmoidForward(const Tensor& x, Tensor* y) {
  y->ResizeUninit(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) {
    y->at(i) = 1.0f / (1.0f + std::exp(-x.at(i)));
  }
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  HETGMP_CHECK_EQ(x.size(), y->size());
  for (int64_t i = 0; i < x.size(); ++i) y->at(i) += alpha * x.at(i);
}

void Copy(const Tensor& x, Tensor* y) {
  y->ResizeUninit(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) y->at(i) = x.at(i);
}

void Scale(Tensor* x, float alpha) {
  for (int64_t i = 0; i < x->size(); ++i) x->at(i) *= alpha;
}

double Dot(const Tensor& a, const Tensor& b) {
  HETGMP_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.at(i)) * static_cast<double>(b.at(i));
  }
  return acc;
}

double SquaredNorm(const Tensor& x) {
  double acc = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x.at(i)) * static_cast<double>(x.at(i));
  }
  return acc;
}

}  // namespace hetgmp
