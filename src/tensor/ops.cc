#include "tensor/ops.h"

#include <cmath>

#include "common/logging.h"

namespace hetgmp {

namespace {

void CheckRank2(const Tensor& t, const char* name) {
  HETGMP_CHECK_EQ(t.rank(), 2) << " tensor " << name << " must be rank-2";
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckRank2(a, "a");
  CheckRank2(b, "b");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  HETGMP_CHECK_EQ(k, b.dim(0));
  out->Resize({m, n});
  // i-k-j loop order keeps the inner loop streaming over contiguous rows,
  // which the compiler auto-vectorizes; good enough for the small towers.
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void MatMulTransB(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckRank2(a, "a");
  CheckRank2(b, "b");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  HETGMP_CHECK_EQ(k, b.dim(1));
  out->Resize({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

void MatMulTransA(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckRank2(a, "a");
  CheckRank2(b, "b");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  HETGMP_CHECK_EQ(k, b.dim(0));
  out->Resize({m, n});
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a.row(kk);
    const float* brow = b.row(kk);
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->row(i);
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void AddBiasRows(Tensor* x, const Tensor& bias) {
  CheckRank2(*x, "x");
  const int64_t n = x->dim(1);
  HETGMP_CHECK_EQ(bias.size(), n);
  for (int64_t r = 0; r < x->dim(0); ++r) {
    float* row = x->row(r);
    for (int64_t c = 0; c < n; ++c) row[c] += bias.at(c);
  }
}

void SumRows(const Tensor& grad, Tensor* bias_grad) {
  CheckRank2(grad, "grad");
  const int64_t n = grad.dim(1);
  bias_grad->Resize({n});
  for (int64_t r = 0; r < grad.dim(0); ++r) {
    const float* row = grad.row(r);
    for (int64_t c = 0; c < n; ++c) bias_grad->at(c) += row[c];
  }
}

void ReluForward(const Tensor& x, Tensor* y) {
  y->Resize(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) {
    y->at(i) = x.at(i) > 0.0f ? x.at(i) : 0.0f;
  }
}

void ReluBackward(const Tensor& x, const Tensor& dy, Tensor* dx) {
  HETGMP_CHECK_EQ(x.size(), dy.size());
  dx->Resize(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) {
    dx->at(i) = x.at(i) > 0.0f ? dy.at(i) : 0.0f;
  }
}

void SigmoidForward(const Tensor& x, Tensor* y) {
  y->Resize(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) {
    y->at(i) = 1.0f / (1.0f + std::exp(-x.at(i)));
  }
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  HETGMP_CHECK_EQ(x.size(), y->size());
  for (int64_t i = 0; i < x.size(); ++i) y->at(i) += alpha * x.at(i);
}

void Copy(const Tensor& x, Tensor* y) {
  y->Resize(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) y->at(i) = x.at(i);
}

void Scale(Tensor* x, float alpha) {
  for (int64_t i = 0; i < x->size(); ++i) x->at(i) *= alpha;
}

double Dot(const Tensor& a, const Tensor& b) {
  HETGMP_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.at(i)) * static_cast<double>(b.at(i));
  }
  return acc;
}

double SquaredNorm(const Tensor& x) {
  double acc = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x.at(i)) * static_cast<double>(x.at(i));
  }
  return acc;
}

}  // namespace hetgmp
