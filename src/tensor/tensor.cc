#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace hetgmp {

namespace {

int64_t NumElements(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    HETGMP_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(NumElements(shape_), 0.0f);
}

Tensor::Tensor(std::vector<int64_t> shape, float fill)
    : shape_(std::move(shape)) {
  data_.assign(NumElements(shape_), fill);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  Tensor t({fan_in, fan_out});
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = rng->NextFloat(-limit, limit);
  }
  return t;
}

Tensor Tensor::Gaussian(std::vector<int64_t> shape, float stddev, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return t;
}

void Tensor::Fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::Resize(std::vector<int64_t> shape) {
  shape_ = std::move(shape);
  data_.assign(NumElements(shape_), 0.0f);
}

void Tensor::ResizeDims(const int64_t* dims, size_t rank, bool zero) {
  shape_.assign(dims, dims + rank);
  const int64_t n = NumElements(shape_);
  if (zero) {
    data_.assign(static_cast<size_t>(n), 0.0f);
  } else {
    data_.resize(static_cast<size_t>(n));
  }
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace hetgmp
