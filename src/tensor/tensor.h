#ifndef HETGMP_TENSOR_TENSOR_H_
#define HETGMP_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace hetgmp {

// Dense row-major float32 tensor. This is the compute substrate for the
// dense towers of the CTR models (the paper runs these on cuDNN; we run
// them on CPU — see DESIGN.md §2). Rank is 1 or 2 in practice.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::vector<int64_t> shape, float fill);

  // Copyable (values) and movable.
  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
  static Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng);
  // N(0, stddev^2) init.
  static Tensor Gaussian(std::vector<int64_t> shape, float stddev, Rng* rng);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const { return shape_[i]; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t i) { return data_[i]; }
  float at(int64_t i) const { return data_[i]; }
  // 2-D access: row r, column c (row-major).
  float& at(int64_t r, int64_t c) { return data_[r * shape_[1] + c]; }
  float at(int64_t r, int64_t c) const { return data_[r * shape_[1] + c]; }

  // Pointer to the start of row r of a rank-2 tensor.
  float* row(int64_t r) { return data_.data() + r * shape_[1]; }
  const float* row(int64_t r) const { return data_.data() + r * shape_[1]; }

  void Fill(float value);
  void Resize(std::vector<int64_t> shape);

  // Allocation-free hot-path variants: the rank-1/rank-2 overloads write
  // the dims straight into the existing shape vector (no temporary
  // std::vector per call), and reuse the data buffer when the element
  // count is unchanged. Resize zero-fills like the vector overload; the
  // Uninit forms leave the payload unspecified and are only for buffers
  // every element of which is overwritten before being read.
  void Resize(int64_t d0) { ResizeDims(&d0, 1, /*zero=*/true); }
  void Resize(int64_t d0, int64_t d1) {
    const int64_t dims[2] = {d0, d1};
    ResizeDims(dims, 2, /*zero=*/true);
  }
  void ResizeUninit(int64_t d0) { ResizeDims(&d0, 1, /*zero=*/false); }
  void ResizeUninit(int64_t d0, int64_t d1) {
    const int64_t dims[2] = {d0, d1};
    ResizeDims(dims, 2, /*zero=*/false);
  }
  void ResizeUninit(const std::vector<int64_t>& shape) {
    ResizeDims(shape.data(), shape.size(), /*zero=*/false);
  }

  // Total bytes of payload (for communication accounting).
  uint64_t bytes() const { return data_.size() * sizeof(float); }

  std::string ShapeString() const;

 private:
  void ResizeDims(const int64_t* dims, size_t rank, bool zero);

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace hetgmp

#endif  // HETGMP_TENSOR_TENSOR_H_
