# Empty compiler generated dependencies file for hetgmp_tensor.
# This may be replaced when dependencies are built.
