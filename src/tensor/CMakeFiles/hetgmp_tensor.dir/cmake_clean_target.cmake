file(REMOVE_RECURSE
  "libhetgmp_tensor.a"
)
