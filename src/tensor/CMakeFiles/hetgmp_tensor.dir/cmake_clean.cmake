file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_tensor.dir/ops.cc.o"
  "CMakeFiles/hetgmp_tensor.dir/ops.cc.o.d"
  "CMakeFiles/hetgmp_tensor.dir/tensor.cc.o"
  "CMakeFiles/hetgmp_tensor.dir/tensor.cc.o.d"
  "libhetgmp_tensor.a"
  "libhetgmp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
