#ifndef HETGMP_SERVE_LOOKUP_SERVICE_H_
#define HETGMP_SERVE_LOOKUP_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/fabric.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "partition/partition.h"
#include "serve/snapshot_store.h"

namespace hetgmp {

// Version-tagged LRU over embedding rows, used as each serving shard's
// hot-row cache. Same recency-list technique as embed/lru_cache, minus the
// training machinery (pending gradients, clocks) and minus the
// single-owner contract: serving shards are hit by many client threads, so
// this cache is externally locked by its shard's mutex instead.
// (LruEmbeddingCache's SingleOwnerChecker enforces exactly the opposite
// contract, which is why it is not reused here.)
class HotRowCache {
 public:
  HotRowCache(int64_t capacity, int dim);

  // Copies the cached row for `x` into out[0..dim) and refreshes recency,
  // but only if it was cached at `version` (stale versions miss: serving
  // must never mix rows from different snapshots in one response).
  // [[nodiscard]]: on a miss, out is unwritten — ignoring the result
  // serves uninitialized memory.
  [[nodiscard]] bool Get(FeatureId x, uint64_t version, float* out);

  // Inserts/overwrites the row for `x` at `version`, evicting the LRU
  // entry when full. No-op at capacity 0.
  void Put(FeatureId x, uint64_t version, const float* row);

  int64_t capacity() const { return capacity_; }
  int64_t occupied() const { return static_cast<int64_t>(slot_of_.size()); }

 private:
  void MoveToFront(int64_t slot);

  const int dim_;
  const int64_t capacity_;
  std::unordered_map<FeatureId, int64_t> slot_of_;
  std::vector<FeatureId> id_of_;
  std::vector<uint64_t> version_of_;
  std::vector<int64_t> prev_, next_;  // recency list over slots
  int64_t head_ = -1;                 // most recent
  int64_t tail_ = -1;                 // least recent
  std::vector<float> values_;
};

struct LookupServiceOptions {
  // Hot-row cache capacity per shard, in rows (0 disables the cache).
  int64_t hot_rows_per_shard = 4096;
  // Serve from the training partition's secondary-replica membership: a
  // shard holding a vertex-cut secondary of x answers locally instead of
  // routing to the owner (§5.2's replication reused at inference time).
  bool use_secondary_replicas = true;
  // Request metadata charged per remote lookup (key + routing header).
  uint64_t request_bytes = 16;
};

// Aggregated serving counters (across all shards).
struct LookupStats {
  int64_t requests = 0;        // keys looked up
  int64_t local_primary = 0;   // owner shard == front-end shard
  int64_t secondary_hits = 0;  // served from vertex-cut secondary replica
  int64_t hot_hits = 0;        // served from the shard's hot-row cache
  int64_t remote = 0;          // routed to the owner shard via the fabric
  double sim_comm_time = 0.0;  // modeled seconds spent on remote lookups

  double LocalFraction() const {
    return requests > 0
               ? static_cast<double>(requests - remote) / requests
               : 0.0;
  }
  std::string ToString() const;
};

// The online lookup tier. Shard s mirrors training worker s: it is the
// serving home of every embedding the partitioner assigned to worker s,
// and it inherits worker s's secondary-replica membership. A lookup
// arriving at front-end shard s resolves, in order: primary ownership →
// secondary replica → hot-row cache → remote fetch from the owner shard
// (charged to the fabric as TrafficClass::kLookup, so serving traffic is
// visible in comm_report next to the training classes).
//
// All row data comes from the store's current immutable snapshot, so
// lookups are trivially consistent under concurrent publishes: a response
// is always served from exactly one version.
//
// Thread-safe: any thread may call Lookup/LookupBatch for any shard.
// Per-shard mutexes guard the hot cache and counters.
class LookupService {
 public:
  // `store`, `partition`, and `fabric` must outlive the service. `fabric`
  // may be null (no traffic accounting — e.g. single-shard unit tests).
  LookupService(const SnapshotStore* store, const Partition& partition,
                Fabric* fabric, LookupServiceOptions options = {});

  LookupService(const LookupService&) = delete;
  LookupService& operator=(const LookupService&) = delete;

  // Resolves `n` keys arriving at front-end shard `shard` into
  // out[0 .. n*dim). Fails without partial output on the first invalid
  // key; FailedPrecondition when no snapshot has been published yet.
  Status LookupBatch(int shard, const FeatureId* keys, int64_t n, float* out);

  Status Lookup(int shard, FeatureId key, float* out) {
    return LookupBatch(shard, &key, 1, out);
  }

  int num_shards() const { return num_shards_; }
  // Embedding dimension of the current snapshot (0 before first publish).
  int dim() const;

  LookupStats stats() const;
  void ResetStats();

 private:
  struct Shard {
    Mutex mu{lock_rank::kServeShard};
    std::unique_ptr<HotRowCache> hot HETGMP_GUARDED_BY(mu);
    LookupStats stats HETGMP_GUARDED_BY(mu);
  };

  const SnapshotStore* const store_;
  const Partition& partition_;
  const ReplicaIndex replicas_;
  Fabric* const fabric_;
  const LookupServiceOptions options_;
  const int num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hetgmp

#endif  // HETGMP_SERVE_LOOKUP_SERVICE_H_
