#include "serve/lookup_service.h"

#include <algorithm>
#include <sstream>

#include "common/lint_tags.h"
#include "common/logging.h"

namespace hetgmp {

HotRowCache::HotRowCache(int64_t capacity, int dim)
    : dim_(dim),
      capacity_(capacity),
      id_of_(capacity, -1),
      version_of_(capacity, 0),
      prev_(capacity, -1),
      next_(capacity, -1),
      values_(capacity * dim, 0.0f) {
  HETGMP_CHECK_GE(capacity, 0);
  HETGMP_CHECK_GT(dim, 0);
}

void HotRowCache::MoveToFront(int64_t slot) {
  if (head_ == slot) return;
  // Unlink.
  if (prev_[slot] >= 0) next_[prev_[slot]] = next_[slot];
  if (next_[slot] >= 0) prev_[next_[slot]] = prev_[slot];
  if (tail_ == slot) tail_ = prev_[slot];
  // Link at head.
  prev_[slot] = -1;
  next_[slot] = head_;
  if (head_ >= 0) prev_[head_] = slot;
  head_ = slot;
  if (tail_ < 0) tail_ = slot;
}

HETGMP_HOT_PATH bool HotRowCache::Get(FeatureId x, uint64_t version,
                                      float* out) {
  const auto it = slot_of_.find(x);
  if (it == slot_of_.end()) return false;
  const int64_t slot = it->second;
  if (version_of_[slot] != version) return false;  // superseded snapshot
  const float* row = values_.data() + slot * dim_;
  std::copy(row, row + dim_, out);
  MoveToFront(slot);
  return true;
}

void HotRowCache::Put(FeatureId x, uint64_t version, const float* row) {
  if (capacity_ == 0) return;
  int64_t slot;
  const auto it = slot_of_.find(x);
  if (it != slot_of_.end()) {
    slot = it->second;
  } else if (occupied() < capacity_) {
    slot = occupied();  // slots fill in order before any eviction
    slot_of_[x] = slot;
    id_of_[slot] = x;
  } else {
    slot = tail_;  // evict least recently used
    slot_of_.erase(id_of_[slot]);
    slot_of_[x] = slot;
    id_of_[slot] = x;
  }
  version_of_[slot] = version;
  std::copy(row, row + dim_, values_.data() + slot * dim_);
  MoveToFront(slot);
}

std::string LookupStats::ToString() const {
  std::ostringstream os;
  os << "lookups=" << requests << " local_primary=" << local_primary
     << " secondary=" << secondary_hits << " hot_cache=" << hot_hits
     << " remote=" << remote << " local_fraction=" << LocalFraction()
     << " sim_comm_time=" << sim_comm_time << "s";
  return os.str();
}

LookupService::LookupService(const SnapshotStore* store,
                             const Partition& partition, Fabric* fabric,
                             LookupServiceOptions options)
    : store_(store),
      partition_(partition),
      replicas_(partition),
      fabric_(fabric),
      options_(options),
      num_shards_(partition.num_parts) {
  HETGMP_CHECK_GT(num_shards_, 0);
  shards_.reserve(num_shards_);
  for (int s = 0; s < num_shards_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

int LookupService::dim() const {
  const auto snap = store_->Acquire();
  return snap == nullptr ? 0 : snap->dim();
}

HETGMP_HOT_PATH Status LookupService::LookupBatch(int shard,
                                                  const FeatureId* keys,
                                                  int64_t n, float* out) {
  if (shard < 0 || shard >= num_shards_) {
    return Status::InvalidArgument("bad shard: " + std::to_string(shard));
  }
  const std::shared_ptr<const EmbeddingSnapshot> snap = store_->Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no snapshot published yet");
  }
  // The snapshot the whole batch is served from; every row below reads
  // this object, so a concurrent publish cannot mix versions mid-batch.
  const uint64_t version = snap->meta().version;
  const int dim = snap->dim();

  // Validate up front so failures produce no partial output.
  for (int64_t i = 0; i < n; ++i) {
    if (keys[i] < 0 || keys[i] >= snap->rows() ||
        keys[i] >= partition_.num_embeddings()) {
      return Status::OutOfRange("key out of range: " +
                                std::to_string(keys[i]));
    }
  }

  Shard& sh = *shards_[shard];
  MutexLock lock(sh.mu);
  if (sh.hot == nullptr && options_.hot_rows_per_shard > 0) {
    // lint: allow_alloc(one-time lazy cache construction on first lookup;
    // the dim is only known once a snapshot exists)
    sh.hot = std::make_unique<HotRowCache>(options_.hot_rows_per_shard, dim);
  }
  sh.stats.requests += n;
  for (int64_t i = 0; i < n; ++i) {
    const FeatureId x = keys[i];
    float* dst = out + i * dim;
    const int owner = partition_.embedding_owner[x];
    if (owner == shard) {
      snap->ReadRow(x, dst);
      ++sh.stats.local_primary;
      continue;
    }
    if (options_.use_secondary_replicas && replicas_.HasSecondary(shard, x)) {
      snap->ReadRow(x, dst);
      ++sh.stats.secondary_hits;
      continue;
    }
    if (sh.hot != nullptr && sh.hot->Get(x, version, dst)) {
      ++sh.stats.hot_hits;
      continue;
    }
    // Miss: route to the owner shard — request out, row back — charged to
    // the serving traffic class. The reply moves the *encoded* row
    // (snap->RowBytes() shrinks with quantization), and the shard caches
    // the dequantized floats so a repeat hit pays neither the transfer
    // nor the decode.
    if (fabric_ != nullptr) {
      sh.stats.sim_comm_time += fabric_->Transfer(
          shard, owner, options_.request_bytes, TrafficClass::kLookup);
      sh.stats.sim_comm_time += fabric_->Transfer(owner, shard,
                                                  snap->RowBytes(),
                                                  TrafficClass::kLookup);
    }
    snap->ReadRow(x, dst);
    if (sh.hot != nullptr) sh.hot->Put(x, version, dst);
    ++sh.stats.remote;
  }
  return Status::OK();
}

LookupStats LookupService::stats() const {
  LookupStats total;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    total.requests += sh->stats.requests;
    total.local_primary += sh->stats.local_primary;
    total.secondary_hits += sh->stats.secondary_hits;
    total.hot_hits += sh->stats.hot_hits;
    total.remote += sh->stats.remote;
    total.sim_comm_time += sh->stats.sim_comm_time;
  }
  return total;
}

void LookupService::ResetStats() {
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    sh->stats = LookupStats();
  }
}

}  // namespace hetgmp
