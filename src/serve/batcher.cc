#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace hetgmp {

const char* ToString(TenantClass cls) {
  return cls == TenantClass::kGold ? "gold" : "bestEffort";
}

RequestBatcher::RequestBatcher(LookupService* service, BatcherOptions options)
    : RequestBatcher(
          LookupFn([service](int shard, const FeatureId* keys, int64_t n,
                             float* out) {
            return service->LookupBatch(shard, keys, n, out);
          }),
          options) {}

RequestBatcher::RequestBatcher(LookupFn service, BatcherOptions options)
    : service_(std::move(service)), options_(options) {
  HETGMP_CHECK_GT(options_.max_batch_keys, 0);
  HETGMP_CHECK_GT(options_.deadline.count(), 0);
  HETGMP_CHECK_GE(options_.max_pending_keys, 0);
  HETGMP_CHECK_GE(options_.best_effort_admit_fraction, 0.0);
  HETGMP_CHECK_LE(options_.best_effort_admit_fraction, 1.0);
  HETGMP_CHECK_GT(options_.gold_weight, 0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RequestBatcher::~RequestBatcher() { Shutdown(); }

void RequestBatcher::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

Status RequestBatcher::Lookup(int shard, const FeatureId* keys, int64_t n,
                              float* out, TenantClass cls) {
  if (n <= 0) return Status::InvalidArgument("empty lookup batch");
  Request req;
  req.shard = shard;
  req.keys = keys;
  req.n = n;
  req.out = out;
  req.cls = cls;
  req.enqueued = std::chrono::steady_clock::now();

  MutexLock lock(mu_);
  if (shutdown_) return Status::FailedPrecondition("batcher is shut down");
  if (options_.max_pending_keys > 0) {
    // Admission control: fail fast instead of joining an unbounded queue.
    // Best-effort admits against a lower water mark, so the band between
    // the two budgets is headroom only gold may fill — best-effort sheds
    // first, and gold keeps bounded queueing (hence bounded latency) even
    // when the offered load is far past capacity.
    const int64_t budget =
        cls == TenantClass::kGold
            ? options_.max_pending_keys
            : static_cast<int64_t>(options_.best_effort_admit_fraction *
                                   static_cast<double>(
                                       options_.max_pending_keys));
    if (pending_keys_ + n > budget) {
      if (cls == TenantClass::kGold) {
        ++stats_.shed_gold;
      } else {
        ++stats_.shed_best_effort;
      }
      return Status::ResourceExhausted("batcher queue full (" +
                                       std::string(ToString(cls)) + ")");
    }
  }
  (cls == TenantClass::kGold ? pending_gold_ : pending_best_effort_)
      .push_back(&req);
  pending_keys_ += n;
  ++stats_.requests;
  stats_.keys += n;
  work_cv_.NotifyOne();
  while (!req.done) done_cv_.Wait(mu_);
  return req.status;
}

std::chrono::steady_clock::time_point RequestBatcher::OldestEnqueued() const {
  if (pending_gold_.empty()) return pending_best_effort_.front()->enqueued;
  if (pending_best_effort_.empty()) return pending_gold_.front()->enqueued;
  return std::min(pending_gold_.front()->enqueued,
                  pending_best_effort_.front()->enqueued);
}

void RequestBatcher::DispatcherLoop() {
  for (;;) {
    std::deque<Request*> batch;
    FlushReason reason = FlushReason::kFull;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && pending_gold_.empty() &&
             pending_best_effort_.empty()) {
        work_cv_.Wait(mu_);
      }
      if (pending_gold_.empty() && pending_best_effort_.empty()) {
        break;  // shutdown with nothing left to drain
      }
      // Micro-batching window: hold for more work until either the batch
      // is full or the *oldest* request has waited the deadline. The wait
      // budget is recomputed every wakeup, so late arrivals cannot extend
      // an earlier request's deadline.
      while (!shutdown_ && pending_keys_ < options_.max_batch_keys) {
        const auto age = std::chrono::steady_clock::now() - OldestEnqueued();
        if (age >= options_.deadline) break;
        // The timeout verdict is unused on purpose: the loop re-derives
        // the remaining budget from the oldest request's age every wakeup.
        (void)work_cv_.WaitFor(mu_, options_.deadline - age);
      }
      if (pending_keys_ >= options_.max_batch_keys) {
        reason = FlushReason::kFull;
      } else if (std::chrono::steady_clock::now() - OldestEnqueued() >=
                 options_.deadline) {
        reason = FlushReason::kDeadline;
      } else {
        // Shutdown interrupted the window with a partial batch whose
        // requests had not yet aged out.
        reason = FlushReason::kShutdown;
      }
      // Weighted dequeue, capped at max_batch_keys per dispatch (a backlog
      // drains in successive bounded batches instead of one giant service
      // call): gold_weight gold requests per best-effort request while
      // both classes wait, falling through to whichever queue is
      // non-empty otherwise.
      int64_t batch_keys = 0;
      int gold_credit = options_.gold_weight;
      while ((!pending_gold_.empty() || !pending_best_effort_.empty()) &&
             batch_keys < options_.max_batch_keys) {
        std::deque<Request*>* q;
        if (pending_best_effort_.empty()) {
          q = &pending_gold_;
        } else if (pending_gold_.empty()) {
          q = &pending_best_effort_;
        } else if (gold_credit > 0) {
          q = &pending_gold_;
          --gold_credit;
        } else {
          q = &pending_best_effort_;
          gold_credit = options_.gold_weight;
        }
        Request* r = q->front();
        q->pop_front();
        batch.push_back(r);
        batch_keys += r->n;
        pending_keys_ -= r->n;
      }
    }
    Flush(&batch, reason);
  }
}

void RequestBatcher::Flush(std::deque<Request*>* batch, FlushReason reason) {
  const auto dispatch_start = std::chrono::steady_clock::now();
  // Service execution happens outside the batcher lock so new submissions
  // keep queueing while this batch is in flight. The status write is safe
  // unlocked: the client only reads it after observing done under mu_.
  for (Request* r : *batch) {
    r->status = service_(r->shard, r->keys, r->n, r->out);
  }
  MutexLock lock(mu_);
  ++stats_.dispatches;
  switch (reason) {
    case FlushReason::kFull:
      ++stats_.full_flushes;
      break;
    case FlushReason::kDeadline:
      ++stats_.deadline_flushes;
      break;
    case FlushReason::kShutdown:
      ++stats_.shutdown_flushes;
      break;
  }
  for (Request* r : *batch) {
    const double wait_us =
        std::chrono::duration<double, std::micro>(dispatch_start - r->enqueued)
            .count();
    stats_.max_queue_wait_us = std::max(stats_.max_queue_wait_us, wait_us);
    if (r->cls == TenantClass::kGold) {
      ++stats_.served_gold;
    } else {
      ++stats_.served_best_effort;
    }
    r->done = true;
  }
  done_cv_.NotifyAll();
}

BatcherStats RequestBatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace hetgmp
