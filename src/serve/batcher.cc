#include "serve/batcher.h"

#include <algorithm>

#include "common/logging.h"

namespace hetgmp {

RequestBatcher::RequestBatcher(LookupService* service, BatcherOptions options)
    : service_(service), options_(options) {
  HETGMP_CHECK_GT(options_.max_batch_keys, 0);
  HETGMP_CHECK_GT(options_.deadline.count(), 0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RequestBatcher::~RequestBatcher() { Shutdown(); }

void RequestBatcher::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

Status RequestBatcher::Lookup(int shard, const FeatureId* keys, int64_t n,
                              float* out) {
  if (n <= 0) return Status::InvalidArgument("empty lookup batch");
  Request req;
  req.shard = shard;
  req.keys = keys;
  req.n = n;
  req.out = out;
  req.enqueued = std::chrono::steady_clock::now();

  MutexLock lock(mu_);
  if (shutdown_) return Status::FailedPrecondition("batcher is shut down");
  pending_.push_back(&req);
  pending_keys_ += n;
  ++stats_.requests;
  stats_.keys += n;
  work_cv_.NotifyOne();
  while (!req.done) done_cv_.Wait(mu_);
  return req.status;
}

void RequestBatcher::DispatcherLoop() {
  for (;;) {
    std::deque<Request*> batch;
    FlushReason reason = FlushReason::kFull;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && pending_.empty()) work_cv_.Wait(mu_);
      if (pending_.empty()) break;  // shutdown with nothing left to drain
      // Micro-batching window: hold for more work until either the batch
      // is full or the *oldest* request has waited the deadline. The wait
      // budget is recomputed every wakeup, so late arrivals cannot extend
      // an earlier request's deadline.
      while (!shutdown_ && pending_keys_ < options_.max_batch_keys) {
        const auto age =
            std::chrono::steady_clock::now() - pending_.front()->enqueued;
        if (age >= options_.deadline) break;
        // The timeout verdict is unused on purpose: the loop re-derives
        // the remaining budget from the front request's age every wakeup.
        (void)work_cv_.WaitFor(mu_, options_.deadline - age);
      }
      if (pending_keys_ >= options_.max_batch_keys) {
        reason = FlushReason::kFull;
      } else if (std::chrono::steady_clock::now() -
                     pending_.front()->enqueued >=
                 options_.deadline) {
        reason = FlushReason::kDeadline;
      } else {
        // Shutdown interrupted the window with a partial batch whose
        // requests had not yet aged out.
        reason = FlushReason::kShutdown;
      }
      batch.swap(pending_);
      pending_keys_ = 0;
    }
    Flush(&batch, reason);
  }
}

void RequestBatcher::Flush(std::deque<Request*>* batch, FlushReason reason) {
  const auto dispatch_start = std::chrono::steady_clock::now();
  // Service execution happens outside the batcher lock so new submissions
  // keep queueing while this batch is in flight. The status write is safe
  // unlocked: the client only reads it after observing done under mu_.
  for (Request* r : *batch) {
    r->status = service_->LookupBatch(r->shard, r->keys, r->n, r->out);
  }
  MutexLock lock(mu_);
  ++stats_.dispatches;
  switch (reason) {
    case FlushReason::kFull:
      ++stats_.full_flushes;
      break;
    case FlushReason::kDeadline:
      ++stats_.deadline_flushes;
      break;
    case FlushReason::kShutdown:
      ++stats_.shutdown_flushes;
      break;
  }
  for (Request* r : *batch) {
    const double wait_us =
        std::chrono::duration<double, std::micro>(dispatch_start - r->enqueued)
            .count();
    stats_.max_queue_wait_us = std::max(stats_.max_queue_wait_us, wait_us);
    r->done = true;
  }
  done_cv_.NotifyAll();
}

BatcherStats RequestBatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace hetgmp
