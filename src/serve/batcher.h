#ifndef HETGMP_SERVE_BATCHER_H_
#define HETGMP_SERVE_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/lookup_service.h"

namespace hetgmp {

// Serving tenant class. Gold traffic keeps its latency under overload;
// best-effort traffic is the first to be shed and the last to be
// dispatched when both classes are queued.
enum class TenantClass { kGold, kBestEffort };

const char* ToString(TenantClass cls);

struct BatcherOptions {
  // Dispatch as soon as this many keys are pending (across requests).
  int64_t max_batch_keys = 256;
  // Micro-batching deadline: the longest any request may wait in the
  // queue for co-batching before the dispatcher flushes regardless of
  // batch size.
  std::chrono::microseconds deadline{200};
  // Admission budget: total keys allowed to sit in the pending queues.
  // A submit that would push past it fails fast with kResourceExhausted
  // instead of queueing (0 = unbounded, the pre-QoS behavior). Bounding
  // the queue is what keeps latency finite past saturation: shed work
  // costs one status check, queued work costs everyone behind it.
  int64_t max_pending_keys = 0;
  // Best-effort requests are admitted only while the pending backlog is
  // below this fraction of max_pending_keys, so gold always has reserved
  // headroom and best-effort sheds first as load climbs.
  double best_effort_admit_fraction = 0.5;
  // Weighted dequeue: up to this many gold requests enter a batch for
  // each best-effort request while both queues are non-empty.
  int gold_weight = 4;
};

struct BatcherStats {
  int64_t requests = 0;          // admitted requests
  int64_t keys = 0;              // admitted keys
  int64_t dispatches = 0;        // service calls issued
  int64_t full_flushes = 0;      // flushed because max_batch_keys reached
  int64_t deadline_flushes = 0;  // flushed because the deadline expired
  int64_t shutdown_flushes = 0;  // partial batches drained at shutdown
  double max_queue_wait_us = 0.0;  // longest submit→dispatch wait observed
  // Per-tenant-class accounting. served_* counts requests that completed
  // a dispatch; shed_* counts requests refused at admission.
  int64_t served_gold = 0;
  int64_t served_best_effort = 0;
  int64_t shed_gold = 0;
  int64_t shed_best_effort = 0;
};

// Micro-batching front door for the lookup service: clients submit key
// batches and block until resolved; a single dispatcher thread coalesces
// concurrently submitted requests and drains them through
// LookupService::LookupBatch. A flush happens when the pending key count
// reaches max_batch_keys or when the oldest pending request has waited
// `deadline` — so under light load a request pays at most the deadline in
// queueing latency, and under heavy load batches fill before it expires.
//
// Overload behavior (opt-in via max_pending_keys): admission control
// bounds the backlog, shedding with kResourceExhausted, and two tenant
// classes share the queue — gold requests get reserved admission headroom
// and a weighted dequeue advantage, so gold tail latency degrades only by
// the (bounded) queue depth while best-effort absorbs the shedding.
class RequestBatcher {
 public:
  // Resolves one batch of keys; same contract as LookupService::LookupBatch.
  using LookupFn =
      std::function<Status(int, const FeatureId*, int64_t, float*)>;

  RequestBatcher(LookupService* service, BatcherOptions options = {});
  // Same batcher over an arbitrary resolve function (tests inject latency
  // and faults this way without standing up a snapshot store).
  explicit RequestBatcher(LookupFn service, BatcherOptions options = {});
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  // Blocking lookup of `n` keys arriving at front-end shard `shard` into
  // out[0 .. n*dim). Returns the service's status for this request, or
  // kResourceExhausted immediately (no blocking) when admission control
  // sheds it.
  Status Lookup(int shard, const FeatureId* keys, int64_t n, float* out,
                TenantClass cls = TenantClass::kGold) HETGMP_EXCLUDES(mu_);

  // Stops the dispatcher after draining pending requests. Called by the
  // destructor; safe to call twice.
  void Shutdown() HETGMP_EXCLUDES(mu_);

  BatcherStats stats() const HETGMP_EXCLUDES(mu_);

 private:
  struct Request {
    int shard = 0;
    const FeatureId* keys = nullptr;
    int64_t n = 0;
    float* out = nullptr;
    TenantClass cls = TenantClass::kGold;
    std::chrono::steady_clock::time_point enqueued;
    Status status;
    bool done = false;
  };

  // Why a batch left the queue, attributed in the stats. A partial batch
  // drained because Shutdown interrupted the micro-batching window is
  // kShutdown, not kDeadline: its requests never waited out the deadline,
  // so counting it there would skew latency-tuning signals.
  enum class FlushReason { kFull, kDeadline, kShutdown };

  void DispatcherLoop() HETGMP_EXCLUDES(mu_);
  // Runs one batch through the service and completes its requests.
  void Flush(std::deque<Request*>* batch, FlushReason reason)
      HETGMP_EXCLUDES(mu_);
  // Enqueue time of the oldest pending request across both classes.
  // Requires at least one pending request.
  std::chrono::steady_clock::time_point OldestEnqueued() const
      HETGMP_REQUIRES(mu_);

  const LookupFn service_;
  const BatcherOptions options_;

  mutable Mutex mu_{lock_rank::kBatcher};
  CondVar work_cv_;   // dispatcher waits: work arrived / shutdown
  CondVar done_cv_;   // clients wait: their request completed
  std::deque<Request*> pending_gold_ HETGMP_GUARDED_BY(mu_);
  std::deque<Request*> pending_best_effort_ HETGMP_GUARDED_BY(mu_);
  int64_t pending_keys_ HETGMP_GUARDED_BY(mu_) = 0;
  bool shutdown_ HETGMP_GUARDED_BY(mu_) = false;
  BatcherStats stats_ HETGMP_GUARDED_BY(mu_);

  // lint: unguarded(started in the constructor, joined exactly once in
  // Shutdown after shutdown_ is set; never accessed concurrently)
  std::thread dispatcher_;
};

}  // namespace hetgmp

#endif  // HETGMP_SERVE_BATCHER_H_
