#ifndef HETGMP_SERVE_BATCHER_H_
#define HETGMP_SERVE_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/lookup_service.h"

namespace hetgmp {

struct BatcherOptions {
  // Dispatch as soon as this many keys are pending (across requests).
  int64_t max_batch_keys = 256;
  // Micro-batching deadline: the longest any request may wait in the
  // queue for co-batching before the dispatcher flushes regardless of
  // batch size.
  std::chrono::microseconds deadline{200};
};

struct BatcherStats {
  int64_t requests = 0;
  int64_t keys = 0;
  int64_t dispatches = 0;        // service calls issued
  int64_t full_flushes = 0;      // flushed because max_batch_keys reached
  int64_t deadline_flushes = 0;  // flushed because the deadline expired
  int64_t shutdown_flushes = 0;  // partial batches drained at shutdown
  double max_queue_wait_us = 0.0;  // longest submit→dispatch wait observed
};

// Micro-batching front door for the lookup service: clients submit key
// batches and block until resolved; a single dispatcher thread coalesces
// concurrently submitted requests and drains them through
// LookupService::LookupBatch. A flush happens when the pending key count
// reaches max_batch_keys or when the oldest pending request has waited
// `deadline` — so under light load a request pays at most the deadline in
// queueing latency, and under heavy load batches fill before it expires.
class RequestBatcher {
 public:
  RequestBatcher(LookupService* service, BatcherOptions options = {});
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  // Blocking lookup of `n` keys arriving at front-end shard `shard` into
  // out[0 .. n*dim). Returns the service's status for this request.
  Status Lookup(int shard, const FeatureId* keys, int64_t n, float* out)
      HETGMP_EXCLUDES(mu_);

  // Stops the dispatcher after draining pending requests. Called by the
  // destructor; safe to call twice.
  void Shutdown() HETGMP_EXCLUDES(mu_);

  BatcherStats stats() const HETGMP_EXCLUDES(mu_);

 private:
  struct Request {
    int shard = 0;
    const FeatureId* keys = nullptr;
    int64_t n = 0;
    float* out = nullptr;
    std::chrono::steady_clock::time_point enqueued;
    Status status;
    bool done = false;
  };

  // Why a batch left the queue, attributed in the stats. A partial batch
  // drained because Shutdown interrupted the micro-batching window is
  // kShutdown, not kDeadline: its requests never waited out the deadline,
  // so counting it there would skew latency-tuning signals.
  enum class FlushReason { kFull, kDeadline, kShutdown };

  void DispatcherLoop() HETGMP_EXCLUDES(mu_);
  // Drains every pending request through the service.
  void Flush(std::deque<Request*>* batch, FlushReason reason)
      HETGMP_EXCLUDES(mu_);

  LookupService* const service_;
  const BatcherOptions options_;

  mutable Mutex mu_{lock_rank::kBatcher};
  CondVar work_cv_;   // dispatcher waits: work arrived / shutdown
  CondVar done_cv_;   // clients wait: their request completed
  std::deque<Request*> pending_ HETGMP_GUARDED_BY(mu_);
  int64_t pending_keys_ HETGMP_GUARDED_BY(mu_) = 0;
  bool shutdown_ HETGMP_GUARDED_BY(mu_) = false;
  BatcherStats stats_ HETGMP_GUARDED_BY(mu_);

  // lint: unguarded(started in the constructor, joined exactly once in
  // Shutdown after shutdown_ is set; never accessed concurrently)
  std::thread dispatcher_;
};

}  // namespace hetgmp

#endif  // HETGMP_SERVE_BATCHER_H_
