#ifndef HETGMP_SERVE_SNAPSHOT_STORE_H_
#define HETGMP_SERVE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "embed/embedding_table.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hetgmp {

// Identity of one published embedding snapshot.
struct SnapshotMeta {
  uint64_t version = 0;      // 1-based, strictly increasing per store
  int64_t rows = 0;
  int dim = 0;
  int round = -1;            // training round it was published from (-1 if
                             // restored from disk)
  int64_t iterations = 0;    // global iteration count at publish time
};

// In-memory encoding of a snapshot's rows. Durable checkpoint files are
// always written from the exact fp32 values regardless of this setting
// (one on-disk format; quantization is a serving-memory decision), so a
// checkpoint can be re-served at any quantization later.
enum class SnapshotQuantization {
  kNone,  // fp32, byte-identical to the original table rows
  kInt8,  // per-row symmetric scale (stored as binary16) + int8 codes
  kFp16,  // IEEE 754 binary16 per element
};

const char* ToString(SnapshotQuantization q);
// Parses "none" / "int8" / "fp16"; returns false on anything else.
bool ParseSnapshotQuantization(const std::string& s, SnapshotQuantization* out);

// An immutable, fully materialized copy of the embedding table at one
// version. Readers hold it via shared_ptr, so a snapshot stays valid for
// as long as any in-flight lookup references it, regardless of how many
// newer versions have been published since.
//
// Rows are stored in the encoding chosen at construction and decoded on
// every read: ReadRow dequantizes into a caller buffer instead of handing
// out an internal pointer, which is what lets int8 snapshots hold dim+2
// bytes per row instead of 4*dim. Decoding is deterministic, so two reads
// of the same row are always bit-identical.
class EmbeddingSnapshot {
 public:
  // fp32 snapshot; `values` is adopted untouched (byte-identical path).
  EmbeddingSnapshot(SnapshotMeta meta, std::vector<float> values);
  // Encodes `values` with `quantization`. For kNone this is the adopting
  // constructor above; otherwise the fp32 copy is dropped after encoding
  // and the measured round-trip error is available via max_abs_error().
  EmbeddingSnapshot(SnapshotMeta meta, std::vector<float> values,
                    SnapshotQuantization quantization);

  const SnapshotMeta& meta() const { return meta_; }
  int64_t rows() const { return meta_.rows; }
  int dim() const { return meta_.dim; }
  SnapshotQuantization quantization() const { return quantization_; }

  // Largest |decoded - original| over every element, measured while
  // encoding (exactly 0 for kNone). For kInt8 this is bounded per row by
  // half the fp16-rounded scale: ~max|row|/253, plus one 2^-25 absolute
  // term when max|row|/127 falls into fp16's subnormal range.
  float max_abs_error() const { return max_abs_error_; }

  // Decodes row x into out[0..dim). Bounds are the caller's
  // responsibility (the lookup service validates keys first).
  // Allocation-free; safe from any number of threads concurrently.
  HETGMP_HOT_PATH void ReadRow(int64_t x, float* out) const {
    const int64_t d = meta_.dim;
    switch (quantization_) {
      case SnapshotQuantization::kNone:
        CopyRow(out, values_.data() + x * d, d);
        break;
      case SnapshotQuantization::kInt8:
        DequantizeRowInt8(q8_.data() + x * d, Fp16ToFloat(scales_[x]), out,
                          d);
        break;
      case SnapshotQuantization::kFp16:
        DequantizeRowFp16(h16_.data() + x * d, out, d);
        break;
    }
  }

  // Stored bytes per row (what a remote fetch moves over the fabric):
  // 4*dim fp32, dim + 2 int8 (codes plus the binary16 scale), 2*dim fp16.
  uint64_t RowBytes() const {
    switch (quantization_) {
      case SnapshotQuantization::kInt8:
        return static_cast<uint64_t>(meta_.dim) + sizeof(uint16_t);
      case SnapshotQuantization::kFp16:
        return static_cast<uint64_t>(meta_.dim) * sizeof(uint16_t);
      case SnapshotQuantization::kNone:
      default:
        return static_cast<uint64_t>(meta_.dim) * sizeof(float);
    }
  }

  // Total bytes resident for row payloads (rows * RowBytes()).
  uint64_t PayloadBytes() const {
    return static_cast<uint64_t>(meta_.rows) * RowBytes();
  }

  // The raw fp32 payload. Only meaningful (and only non-null) for kNone;
  // exists so byte-identity with the seed format stays testable.
  const float* Fp32Payload() const {
    return quantization_ == SnapshotQuantization::kNone ? values_.data()
                                                        : nullptr;
  }

 private:
  void Encode(const std::vector<float>& values);

  SnapshotMeta meta_;
  SnapshotQuantization quantization_ = SnapshotQuantization::kNone;
  float max_abs_error_ = 0.0f;
  std::vector<float> values_;      // kNone
  std::vector<int8_t> q8_;         // kInt8 codes, rows*dim
  std::vector<uint16_t> scales_;   // kInt8 per-row scale, binary16 bits
  std::vector<uint16_t> h16_;      // kFp16 payload, rows*dim
};

struct SnapshotStoreOptions {
  // When non-empty, every publish also writes a durable checkpoint
  // "snapshot-<version>.ckpt" into this directory (via the crash-safe
  // embed/checkpoint path), so a serving process can restore it later.
  std::string dir;
  // Keep superseded snapshot files on disk; default prunes to the latest.
  bool keep_history = false;
  // In-memory encoding for published snapshots. Checkpoint files are
  // written from the exact fp32 rows in every mode; PublishFromCheckpoint
  // re-applies this setting when restoring.
  SnapshotQuantization quantization = SnapshotQuantization::kNone;
};

// The versioned hand-off point between training and serving.
//
// Concurrency: publishes and reads may overlap freely. The store is
// double-buffered — the publisher materializes the new snapshot into the
// inactive slot and then flips the active-slot index with a single atomic
// store, so readers never observe a partially built snapshot and never
// contend with a publisher installing one. A reader that loaded the old
// index mid-flip still gets a complete (merely older) snapshot, and
// refcounting keeps it alive until the last reader drops it.
//
// Each slot's shared_ptr is guarded by a per-slot mutex held only for the
// pointer copy; the atomic publication point is the active-index flip.
// (std::atomic<std::shared_ptr> would make readers wait-free, but
// libstdc++'s implementation in GCC ≤ 12.2 unlocks its embedded spinlock
// with relaxed ordering — GCC PR106275 — which ThreadSanitizer rightly
// reports as a race, so the hand-off uses mutexes the analyzer can see.)
//
// Publishing is expected to be single-threaded (the engine's round-serial
// section); a mutex serializes publishers anyway so misuse cannot corrupt
// version ordering.
class SnapshotStore {
 public:
  explicit SnapshotStore(SnapshotStoreOptions options = {});

  // Publishes version N+1 copied from `table`. Requires quiesced writers
  // of `table` for the duration of the call (the engine publish hook
  // guarantees this). `dense_params` ride along into the durable
  // checkpoint so a restored serving process and a restored trainer read
  // the same file format.
  Status Publish(const EmbeddingTable& table,
                 const std::vector<Tensor*>& dense_params, int round = -1,
                 int64_t iterations = 0) HETGMP_EXCLUDES(publish_mu_);

  // Same contract, but each row is materialized by `read_row(x, out)`
  // (out receives dim floats). This is the tiered-training publish path:
  // rows demoted out of the hot tier are not valid in the arena, so the
  // publisher reads through TieredEmbeddingStore::PeekRow instead of the
  // table's unsafe accessors. The durable checkpoint is written from the
  // materialized fp32 copy (SaveCheckpointRows), byte-identical in format
  // whatever options.quantization says.
  using RowReader = std::function<void(int64_t, float*)>;
  Status PublishRows(int64_t rows, int dim, const RowReader& read_row,
                     const std::vector<Tensor*>& dense_params,
                     int round = -1, int64_t iterations = 0)
      HETGMP_EXCLUDES(publish_mu_);

  // Restores the embedding section of a checkpoint file as the next
  // version (serve-from-disk startup), encoded per options.quantization.
  Status PublishFromCheckpoint(const std::string& path)
      HETGMP_EXCLUDES(publish_mu_);

  // Latest published snapshot, or nullptr before the first publish.
  // Wait-free with respect to publishers.
  std::shared_ptr<const EmbeddingSnapshot> Acquire() const;

  // Version of the latest published snapshot (0 = none yet).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // Durable file path for a version (meaningful only with options.dir).
  std::string SnapshotPath(uint64_t version) const;

 private:
  struct Slot {
    mutable Mutex mu{lock_rank::kSnapshotSlot};
    std::shared_ptr<const EmbeddingSnapshot> snap HETGMP_GUARDED_BY(mu);
  };

  void Install(std::shared_ptr<const EmbeddingSnapshot> snap)
      HETGMP_REQUIRES(publish_mu_);

  const SnapshotStoreOptions options_;
  Mutex publish_mu_{lock_rank::kSnapshotPublish};
  std::atomic<uint64_t> version_{0};
  std::atomic<uint32_t> active_{0};
  // lint: unguarded(fixed-size array; each Slot self-guards via its mu,
  // and the active-slot index is the atomic above)
  Slot slots_[2];
};

}  // namespace hetgmp

#endif  // HETGMP_SERVE_SNAPSHOT_STORE_H_
