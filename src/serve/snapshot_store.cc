#include "serve/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "embed/checkpoint.h"

namespace hetgmp {

EmbeddingSnapshot::EmbeddingSnapshot(SnapshotMeta meta,
                                     std::vector<float> values)
    : meta_(meta), values_(std::move(values)) {
  HETGMP_CHECK_EQ(static_cast<int64_t>(values_.size()),
                  meta_.rows * meta_.dim);
}

SnapshotStore::SnapshotStore(SnapshotStoreOptions options)
    : options_(std::move(options)) {}

std::string SnapshotStore::SnapshotPath(uint64_t version) const {
  return options_.dir + "/snapshot-" + std::to_string(version) + ".ckpt";
}

void SnapshotStore::Install(std::shared_ptr<const EmbeddingSnapshot> snap) {
  const uint64_t v = snap->meta().version;
  // Double-buffer flip: install into the inactive slot (contending only
  // with stragglers still copying the *previous* snapshot out of it), then
  // make it active. The release store on active_ publishes the snapshot
  // contents; readers acquire through active_ / version_.
  const uint32_t inactive = 1u - active_.load(std::memory_order_relaxed);
  {
    MutexLock slot_lock(slots_[inactive].mu);
    slots_[inactive].snap = std::move(snap);
  }
  active_.store(inactive, std::memory_order_release);
  version_.store(v, std::memory_order_release);
}

Status SnapshotStore::Publish(const EmbeddingTable& table,
                              const std::vector<Tensor*>& dense_params,
                              int round, int64_t iterations) {
  const int dim = table.dim();
  return PublishRows(
      table.num_embeddings(), dim,
      [&table, dim](int64_t x, float* out) {
        const float* row = table.UnsafeRow(x);
        std::copy(row, row + dim, out);
      },
      dense_params, round, iterations);
}

Status SnapshotStore::PublishRows(int64_t rows, int dim,
                                  const RowReader& read_row,
                                  const std::vector<Tensor*>& dense_params,
                                  int round, int64_t iterations) {
  MutexLock lock(publish_mu_);
  SnapshotMeta meta;
  meta.version = version_.load(std::memory_order_relaxed) + 1;
  meta.rows = rows;
  meta.dim = dim;
  meta.round = round;
  meta.iterations = iterations;

  std::vector<float> values(static_cast<size_t>(rows) * dim);
  for (int64_t x = 0; x < rows; ++x) {
    read_row(x, values.data() + x * dim);
  }

  if (!options_.dir.empty()) {
    HETGMP_RETURN_IF_ERROR(SaveCheckpointRows(rows, dim, values.data(),
                                              dense_params,
                                              SnapshotPath(meta.version)));
    if (!options_.keep_history && meta.version > 1) {
      // Best-effort prune of the superseded file; the newest snapshot is
      // already durable, so a failure here only wastes disk.
      std::remove(SnapshotPath(meta.version - 1).c_str());
    }
  }

  Install(std::make_shared<const EmbeddingSnapshot>(meta, std::move(values)));
  return Status::OK();
}

Status SnapshotStore::PublishFromCheckpoint(const std::string& path) {
  MutexLock lock(publish_mu_);
  Result<CheckpointEmbeddings> loaded = LoadCheckpointEmbeddings(path);
  if (!loaded.ok()) return loaded.status();
  CheckpointEmbeddings ck = std::move(loaded).value();

  SnapshotMeta meta;
  meta.version = version_.load(std::memory_order_relaxed) + 1;
  meta.rows = ck.rows;
  meta.dim = ck.dim;
  Install(std::make_shared<const EmbeddingSnapshot>(meta,
                                                    std::move(ck.values)));
  return Status::OK();
}

std::shared_ptr<const EmbeddingSnapshot> SnapshotStore::Acquire() const {
  const uint32_t a = active_.load(std::memory_order_acquire);
  MutexLock slot_lock(slots_[a].mu);
  return slots_[a].snap;
}

}  // namespace hetgmp
