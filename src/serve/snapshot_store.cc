#include "serve/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "embed/checkpoint.h"

namespace hetgmp {

const char* ToString(SnapshotQuantization q) {
  switch (q) {
    case SnapshotQuantization::kInt8:
      return "int8";
    case SnapshotQuantization::kFp16:
      return "fp16";
    case SnapshotQuantization::kNone:
    default:
      return "none";
  }
}

bool ParseSnapshotQuantization(const std::string& s,
                               SnapshotQuantization* out) {
  if (s == "none" || s == "fp32") {
    *out = SnapshotQuantization::kNone;
  } else if (s == "int8") {
    *out = SnapshotQuantization::kInt8;
  } else if (s == "fp16") {
    *out = SnapshotQuantization::kFp16;
  } else {
    return false;
  }
  return true;
}

EmbeddingSnapshot::EmbeddingSnapshot(SnapshotMeta meta,
                                     std::vector<float> values)
    : meta_(meta),
      quantization_(SnapshotQuantization::kNone),
      values_(std::move(values)) {
  HETGMP_CHECK_EQ(static_cast<int64_t>(values_.size()),
                  meta_.rows * meta_.dim);
}

EmbeddingSnapshot::EmbeddingSnapshot(SnapshotMeta meta,
                                     std::vector<float> values,
                                     SnapshotQuantization quantization)
    : meta_(meta), quantization_(quantization) {
  HETGMP_CHECK_EQ(static_cast<int64_t>(values.size()), meta_.rows * meta_.dim);
  if (quantization_ == SnapshotQuantization::kNone) {
    values_ = std::move(values);
    return;
  }
  Encode(values);
}

void EmbeddingSnapshot::Encode(const std::vector<float>& values) {
  const int64_t rows = meta_.rows;
  const int64_t d = meta_.dim;
  const size_t n = values.size();
  // Round-trip error is measured here, at encode time, so the published
  // snapshot carries its own accuracy bound instead of an analytic one.
  float max_err = 0.0f;
  if (quantization_ == SnapshotQuantization::kInt8) {
    q8_.resize(n);
    scales_.resize(static_cast<size_t>(rows));
    for (int64_t x = 0; x < rows; ++x) {
      const float* src = values.data() + x * d;
      int8_t* q = q8_.data() + x * d;
      scales_[static_cast<size_t>(x)] = QuantizeRowInt8(src, d, q);
      const float scale = Fp16ToFloat(scales_[static_cast<size_t>(x)]);
      for (int64_t i = 0; i < d; ++i) {
        const float err = static_cast<float>(q[i]) * scale - src[i];
        const float a = err < 0.0f ? -err : err;
        if (a > max_err) max_err = a;
      }
    }
  } else {  // kFp16
    h16_.resize(n);
    for (int64_t x = 0; x < rows; ++x) {
      const float* src = values.data() + x * d;
      uint16_t* h = h16_.data() + x * d;
      QuantizeRowFp16(src, d, h);
      for (int64_t i = 0; i < d; ++i) {
        const float err = Fp16ToFloat(h[i]) - src[i];
        const float a = err < 0.0f ? -err : err;
        if (a > max_err) max_err = a;
      }
    }
  }
  max_abs_error_ = max_err;
}

SnapshotStore::SnapshotStore(SnapshotStoreOptions options)
    : options_(std::move(options)) {}

std::string SnapshotStore::SnapshotPath(uint64_t version) const {
  return options_.dir + "/snapshot-" + std::to_string(version) + ".ckpt";
}

void SnapshotStore::Install(std::shared_ptr<const EmbeddingSnapshot> snap) {
  const uint64_t v = snap->meta().version;
  // Double-buffer flip: install into the inactive slot (contending only
  // with stragglers still copying the *previous* snapshot out of it), then
  // make it active. The release store on active_ publishes the snapshot
  // contents; readers acquire through active_ / version_.
  const uint32_t inactive = 1u - active_.load(std::memory_order_relaxed);
  {
    MutexLock slot_lock(slots_[inactive].mu);
    slots_[inactive].snap = std::move(snap);
  }
  active_.store(inactive, std::memory_order_release);
  version_.store(v, std::memory_order_release);
}

Status SnapshotStore::Publish(const EmbeddingTable& table,
                              const std::vector<Tensor*>& dense_params,
                              int round, int64_t iterations) {
  const int dim = table.dim();
  return PublishRows(
      table.num_embeddings(), dim,
      [&table, dim](int64_t x, float* out) {
        const float* row = table.UnsafeRow(x);
        std::copy(row, row + dim, out);
      },
      dense_params, round, iterations);
}

Status SnapshotStore::PublishRows(int64_t rows, int dim,
                                  const RowReader& read_row,
                                  const std::vector<Tensor*>& dense_params,
                                  int round, int64_t iterations) {
  MutexLock lock(publish_mu_);
  SnapshotMeta meta;
  meta.version = version_.load(std::memory_order_relaxed) + 1;
  meta.rows = rows;
  meta.dim = dim;
  meta.round = round;
  meta.iterations = iterations;

  std::vector<float> values(static_cast<size_t>(rows) * dim);
  for (int64_t x = 0; x < rows; ++x) {
    read_row(x, values.data() + x * dim);
  }

  // The durable checkpoint is always the exact fp32 rows — quantization
  // is an in-memory serving decision, and keeping one on-disk format lets
  // a later restart re-serve the same file at any quantization.
  if (!options_.dir.empty()) {
    HETGMP_RETURN_IF_ERROR(SaveCheckpointRows(rows, dim, values.data(),
                                              dense_params,
                                              SnapshotPath(meta.version)));
    if (!options_.keep_history && meta.version > 1) {
      // Best-effort prune of the superseded file; the newest snapshot is
      // already durable, so a failure here only wastes disk.
      std::remove(SnapshotPath(meta.version - 1).c_str());
    }
  }

  Install(std::make_shared<const EmbeddingSnapshot>(meta, std::move(values),
                                                    options_.quantization));
  return Status::OK();
}

Status SnapshotStore::PublishFromCheckpoint(const std::string& path) {
  MutexLock lock(publish_mu_);
  Result<CheckpointEmbeddings> loaded = LoadCheckpointEmbeddings(path);
  if (!loaded.ok()) return loaded.status();
  CheckpointEmbeddings ck = std::move(loaded).value();

  SnapshotMeta meta;
  meta.version = version_.load(std::memory_order_relaxed) + 1;
  meta.rows = ck.rows;
  meta.dim = ck.dim;
  Install(std::make_shared<const EmbeddingSnapshot>(
      meta, std::move(ck.values), options_.quantization));
  return Status::OK();
}

std::shared_ptr<const EmbeddingSnapshot> SnapshotStore::Acquire() const {
  const uint32_t a = active_.load(std::memory_order_acquire);
  MutexLock slot_lock(slots_[a].mu);
  return slots_[a].snap;
}

}  // namespace hetgmp
