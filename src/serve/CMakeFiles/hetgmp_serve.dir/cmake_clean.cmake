file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_serve.dir/batcher.cc.o"
  "CMakeFiles/hetgmp_serve.dir/batcher.cc.o.d"
  "CMakeFiles/hetgmp_serve.dir/lookup_service.cc.o"
  "CMakeFiles/hetgmp_serve.dir/lookup_service.cc.o.d"
  "CMakeFiles/hetgmp_serve.dir/snapshot_store.cc.o"
  "CMakeFiles/hetgmp_serve.dir/snapshot_store.cc.o.d"
  "libhetgmp_serve.a"
  "libhetgmp_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
