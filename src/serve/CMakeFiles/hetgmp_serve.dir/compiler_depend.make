# Empty compiler generated dependencies file for hetgmp_serve.
# This may be replaced when dependencies are built.
