file(REMOVE_RECURSE
  "libhetgmp_serve.a"
)
