#include "metrics/auc.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace hetgmp {

double ComputeAuc(const std::vector<float>& scores,
                  const std::vector<float>& labels) {
  HETGMP_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  if (n == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Mid-ranks over tied score groups.
  double positive_rank_sum = 0.0;
  int64_t num_positive = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double mid_rank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        positive_rank_sum += mid_rank;
        ++num_positive;
      }
    }
    i = j;
  }

  const int64_t num_negative = static_cast<int64_t>(n) - num_positive;
  if (num_positive == 0 || num_negative == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(num_positive) *
                       (static_cast<double>(num_positive) + 1.0) / 2.0;
  return u / (static_cast<double>(num_positive) *
              static_cast<double>(num_negative));
}

}  // namespace hetgmp
