#include "metrics/comm_report.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/stringutil.h"

namespace hetgmp {

CommBreakdown SnapshotBreakdown(const Fabric& fabric, int64_t iterations) {
  HETGMP_CHECK_GT(iterations, 0);
  CommBreakdown b;
  const double inv = 1.0 / static_cast<double>(iterations);
  b.embedding_bytes_per_iter =
      static_cast<double>(fabric.TotalBytes(TrafficClass::kEmbedding)) * inv;
  b.index_clock_bytes_per_iter =
      static_cast<double>(fabric.TotalBytes(TrafficClass::kIndexClock)) * inv;
  b.allreduce_bytes_per_iter =
      static_cast<double>(fabric.TotalBytes(TrafficClass::kAllReduce)) * inv;
  b.lookup_bytes_per_iter =
      static_cast<double>(fabric.TotalBytes(TrafficClass::kLookup)) * inv;
  return b;
}

std::string CommBreakdown::ToString() const {
  std::ostringstream os;
  os << "embedding=" << HumanBytes(uint64_t(embedding_bytes_per_iter))
     << "/iter index+clock="
     << HumanBytes(uint64_t(index_clock_bytes_per_iter))
     << "/iter allreduce=" << HumanBytes(uint64_t(allreduce_bytes_per_iter))
     << "/iter";
  if (lookup_bytes_per_iter > 0.0) {
    os << " lookup=" << HumanBytes(uint64_t(lookup_bytes_per_iter)) << "/iter";
  }
  return os.str();
}

std::string RenderLatencyPercentiles(const std::string& label,
                                     const Histogram& latencies_us) {
  const std::vector<double> ps =
      latencies_us.PercentileMany({50.0, 95.0, 99.0, 99.9});
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << label << ": n=" << latencies_us.count() << " p50=" << ps[0]
     << "us p95=" << ps[1] << "us p99=" << ps[2] << "us p999=" << ps[3]
     << "us max=" << latencies_us.max() << "us";
  return os.str();
}

std::string RenderPairHeatmap(
    const std::vector<std::vector<uint64_t>>& matrix) {
  uint64_t max_cell = 0;
  for (const auto& row : matrix) {
    for (uint64_t v : row) max_cell = std::max(max_cell, v);
  }
  static const char* kShades[] = {" .", " -", " +", " *", " #", " @"};
  std::ostringstream os;
  for (size_t r = 0; r < matrix.size(); ++r) {
    os << "w" << PadLeft(std::to_string(r), 2) << " |";
    for (uint64_t v : matrix[r]) {
      int shade = 0;
      if (max_cell > 0 && v > 0) {
        shade = 1 + static_cast<int>(4.0 * static_cast<double>(v) /
                                     static_cast<double>(max_cell));
        shade = std::min(shade, 5);
      }
      os << kShades[shade];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hetgmp
