# Empty compiler generated dependencies file for hetgmp_metrics.
# This may be replaced when dependencies are built.
