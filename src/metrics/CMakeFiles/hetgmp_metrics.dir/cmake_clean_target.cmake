file(REMOVE_RECURSE
  "libhetgmp_metrics.a"
)
