file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_metrics.dir/auc.cc.o"
  "CMakeFiles/hetgmp_metrics.dir/auc.cc.o.d"
  "CMakeFiles/hetgmp_metrics.dir/comm_report.cc.o"
  "CMakeFiles/hetgmp_metrics.dir/comm_report.cc.o.d"
  "libhetgmp_metrics.a"
  "libhetgmp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
