
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/auc.cc" "src/metrics/CMakeFiles/hetgmp_metrics.dir/auc.cc.o" "gcc" "src/metrics/CMakeFiles/hetgmp_metrics.dir/auc.cc.o.d"
  "/root/repo/src/metrics/comm_report.cc" "src/metrics/CMakeFiles/hetgmp_metrics.dir/comm_report.cc.o" "gcc" "src/metrics/CMakeFiles/hetgmp_metrics.dir/comm_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/comm/CMakeFiles/hetgmp_comm.dir/DependInfo.cmake"
  "/root/repo/src/tensor/CMakeFiles/hetgmp_tensor.dir/DependInfo.cmake"
  "/root/repo/src/data/CMakeFiles/hetgmp_data.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/hetgmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
