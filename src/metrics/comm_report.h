#ifndef HETGMP_METRICS_COMM_REPORT_H_
#define HETGMP_METRICS_COMM_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "comm/fabric.h"
#include "common/histogram.h"

namespace hetgmp {

// Snapshot of fabric counters, normalized per iteration — the quantity
// Figure 8 plots (three stacked training categories per configuration).
// The lookup category is the online-serving traffic (TrafficClass::kLookup);
// it is zero for pure training runs and only rendered when present, so the
// Figure 8 output is unchanged.
struct CommBreakdown {
  double embedding_bytes_per_iter = 0.0;
  double index_clock_bytes_per_iter = 0.0;
  double allreduce_bytes_per_iter = 0.0;
  double lookup_bytes_per_iter = 0.0;

  double total_per_iter() const {
    return embedding_bytes_per_iter + index_clock_bytes_per_iter +
           allreduce_bytes_per_iter + lookup_bytes_per_iter;
  }
  std::string ToString() const;
};

CommBreakdown SnapshotBreakdown(const Fabric& fabric, int64_t iterations);

// Normalized pair matrix for the Figure 9(b) heatmap: row-major fractions
// of the total (0 if no traffic). Rendered as a text heatmap with
// shade characters.
std::string RenderPairHeatmap(
    const std::vector<std::vector<uint64_t>>& matrix);

// One-line p50/p95/p99/p999 summary of a latency histogram, e.g.
//   "lookup: n=1000 p50=12.3us p95=40.1us p99=88.0us p999=99.2us
//    max=102.5us"
// Values are interpreted as microseconds. Used by the serving latency
// bench and the serve smoke path; empty histograms render n=0 with zero
// percentiles rather than failing.
std::string RenderLatencyPercentiles(const std::string& label,
                                     const Histogram& latencies_us);

}  // namespace hetgmp

#endif  // HETGMP_METRICS_COMM_REPORT_H_
