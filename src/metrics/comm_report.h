#ifndef HETGMP_METRICS_COMM_REPORT_H_
#define HETGMP_METRICS_COMM_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "comm/fabric.h"

namespace hetgmp {

// Snapshot of fabric counters, normalized per iteration — the quantity
// Figure 8 plots (three stacked categories per configuration).
struct CommBreakdown {
  double embedding_bytes_per_iter = 0.0;
  double index_clock_bytes_per_iter = 0.0;
  double allreduce_bytes_per_iter = 0.0;

  double total_per_iter() const {
    return embedding_bytes_per_iter + index_clock_bytes_per_iter +
           allreduce_bytes_per_iter;
  }
  std::string ToString() const;
};

CommBreakdown SnapshotBreakdown(const Fabric& fabric, int64_t iterations);

// Normalized pair matrix for the Figure 9(b) heatmap: row-major fractions
// of the total (0 if no traffic). Rendered as a text heatmap with
// shade characters.
std::string RenderPairHeatmap(
    const std::vector<std::vector<uint64_t>>& matrix);

}  // namespace hetgmp

#endif  // HETGMP_METRICS_COMM_REPORT_H_
