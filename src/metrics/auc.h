#ifndef HETGMP_METRICS_AUC_H_
#define HETGMP_METRICS_AUC_H_

#include <vector>

namespace hetgmp {

// Exact ROC AUC via the rank-sum (Mann–Whitney U) formulation, with the
// standard mid-rank correction for tied scores. labels are {0,1}; returns
// 0.5 when either class is absent.
double ComputeAuc(const std::vector<float>& scores,
                  const std::vector<float>& labels);

}  // namespace hetgmp

#endif  // HETGMP_METRICS_AUC_H_
