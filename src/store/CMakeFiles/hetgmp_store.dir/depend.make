# Empty dependencies file for hetgmp_store.
# This may be replaced when dependencies are built.
