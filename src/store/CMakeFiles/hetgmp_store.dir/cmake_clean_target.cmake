file(REMOVE_RECURSE
  "libhetgmp_store.a"
)
