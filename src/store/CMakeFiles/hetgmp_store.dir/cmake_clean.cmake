file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_store.dir/cold_tier.cc.o"
  "CMakeFiles/hetgmp_store.dir/cold_tier.cc.o.d"
  "CMakeFiles/hetgmp_store.dir/prefetch.cc.o"
  "CMakeFiles/hetgmp_store.dir/prefetch.cc.o.d"
  "CMakeFiles/hetgmp_store.dir/tiered_store.cc.o"
  "CMakeFiles/hetgmp_store.dir/tiered_store.cc.o.d"
  "libhetgmp_store.a"
  "libhetgmp_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
