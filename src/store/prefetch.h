#ifndef HETGMP_STORE_PREFETCH_H_
#define HETGMP_STORE_PREFETCH_H_

#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "store/tiered_store.h"

namespace hetgmp {

// Plan-driven asynchronous promotion: while iteration t trains, each
// worker submits the feature list of its iteration-t+1 batch (snooped
// from the engine's cyclic batch cursor — the same ids BuildBatchPlan
// will dedup next iteration) and a single background thread promotes
// them cold→warm→hot through TieredEmbeddingStore::Prefetch. When the
// pipeline loses the race, the pin-time synchronous fault path is the
// correctness backstop; this thread only moves work off the trainers.
//
// Buffering is one slot per worker (double-buffered against the batch
// being trained): a worker that laps the pipeline overwrites its own
// stale request — prefetching a batch that already started is pure
// waste — and the overwrite is counted as `dropped`.
//
// Lock order: mu_ has rank kStorePrefetch (15); both Submit (trainer
// side, holding nothing) and the pipeline thread release it before
// touching the store's kStoreWarm (52) stripes.
class PrefetchPipeline {
 public:
  PrefetchPipeline(TieredEmbeddingStore* store, int num_workers);
  ~PrefetchPipeline();
  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  // Replaces worker `w`'s pending request with `feats` (duplicates fine;
  // the pipeline dedups before touching the store).
  void Submit(int worker, const FeatureId* feats, int64_t n);

  // Blocks until every submitted request has been fully processed.
  void Quiesce();

  struct Stats {
    int64_t batches = 0;  // requests processed
    int64_t dropped = 0;  // requests overwritten before processing
  };
  Stats stats();

 private:
  void ThreadMain();

  TieredEmbeddingStore* const store_;

  Mutex mu_{lock_rank::kStorePrefetch};
  CondVar work_cv_;  // signaled on submit and shutdown
  CondVar idle_cv_;  // signaled when in_flight_ drains to zero
  struct Slot {
    std::vector<FeatureId> feats;
    bool full = false;
  };
  std::vector<Slot> slots_ HETGMP_GUARDED_BY(mu_);
  bool stop_ HETGMP_GUARDED_BY(mu_) = false;
  int in_flight_ HETGMP_GUARDED_BY(mu_) = 0;  // full slots + batch in work
  int64_t batches_ HETGMP_GUARDED_BY(mu_) = 0;
  int64_t dropped_ HETGMP_GUARDED_BY(mu_) = 0;

  // lint: unguarded(started last in the constructor, joined in the
  // destructor; never reassigned in between)
  std::thread thread_;
};

}  // namespace hetgmp

#endif  // HETGMP_STORE_PREFETCH_H_
