#ifndef HETGMP_STORE_TIERED_STORE_H_
#define HETGMP_STORE_TIERED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "embed/embedding_table.h"
#include "store/cold_tier.h"
#include "store/tier_stats.h"

namespace hetgmp {

// Which tier currently holds a feature's authoritative row.
enum class TierState : uint8_t { kHot = 0, kWarm = 1, kCold = 2 };

struct TieredStoreOptions {
  int64_t hot_rows = 0;   // resident (EmbeddingTable arena) budget, rows
  int64_t warm_rows = 0;  // bounded shared host tier budget, rows
  int stripes = 64;
  // Cold-tier file path; empty = a generated temp file unlinked right
  // after creation (the spill must not outlive the process).
  std::string cold_path;
};

// Three-tier storage hierarchy over the flat EmbeddingTable arena (the
// MixCache/HET cache-enabled design from PAPERS.md): hot rows live in the
// arena exactly where the engine's math expects them, warm rows in a
// striped bounded host tier, cold rows in the mmap'd ColdTierFile. The
// arena stays allocated at full size (this models the *device* tier of
// the real system — the point is bounding how many rows are live there,
// and the budget discipline is what the bench measures); rows outside
// the hot set are demoted out and their arena bytes are dead (poisoned
// in debug builds so a stale read trips immediately).
//
// Access protocol: a row may only be touched in the arena while the
// feature is PINNED. Pin() faults the row hot synchronously (the
// miss-stall path, wall-clock accounted); Unpin() makes it demotable
// again. The engine pins a batch's unique features for the whole
// iteration, so all existing RowMutex-striped math is unchanged. The
// PrefetchPipeline calls Prefetch() off-thread to win the fault race.
//
// Migrations copy value AND optimizer-state bytes exactly, so a
// deterministic run with tiering on reproduces the fully-resident
// trajectory bit for bit (tests/store_test.cc asserts this).
//
// Thread-safety: per-feature metadata and tier membership are striped;
// stripe mutexes carry lock_rank::kStoreWarm (52), nesting legally into
// ColdTierFile::mu_ (54) and the arena's RowMutex stripes (60).
class TieredEmbeddingStore {
 public:
  // `access_freq[x]` ranks features for initial placement: the top
  // hot-budget features stay resident, the next warm-budget go warm,
  // the tail spills cold. Fails if the cold file cannot be created.
  static Result<std::unique_ptr<TieredEmbeddingStore>> Create(
      EmbeddingTable* table, const std::vector<double>& access_freq,
      const TieredStoreOptions& opts);

  TieredEmbeddingStore(const TieredEmbeddingStore&) = delete;
  TieredEmbeddingStore& operator=(const TieredEmbeddingStore&) = delete;

  // Faults x hot if needed and holds it resident until Unpin. Pins nest.
  void Pin(FeatureId x);
  void Unpin(FeatureId x);
  void PinBatch(const FeatureId* xs, int64_t n);
  void UnpinBatch(const FeatureId* xs, int64_t n);

  // Pinned read/update wrappers for rows not covered by a batch pin
  // (LRU victim flushes, out-of-batch refreshes): pin, do the arena op
  // under its RowMutex, unpin.
  void ReadRow(FeatureId x, float* out);
  void ApplyGradient(FeatureId x, const float* grad);

  // Read-through without changing residency — evaluation and snapshot
  // publishing. Safe concurrently with training (tier membership is read
  // under the stripe lock; a hot row is read through the RowMutex).
  void PeekRow(FeatureId x, float* out);

  // Off-thread promotion (the PrefetchPipeline): promotes x cold→warm→hot
  // without ever over-running the hot budget — if every victim is pinned
  // it settles for warm, and the synchronous fault finishes the job.
  void Prefetch(FeatureId x);

  TierState StateOf(FeatureId x);
  int64_t ResidentRows();  // current hot-tier occupancy across stripes
  int64_t WarmRows();

  TieredStoreStats Stats();

  int64_t hot_budget() const { return hot_budget_; }
  int64_t warm_budget() const { return warm_budget_; }
  EmbeddingTable* table() const { return table_; }
  const ColdTierFile* cold_file() const { return cold_.get(); }

 private:
  // Per-feature tier metadata. Guarded by the owning stripe's mutex (the
  // stripe of x), which a single GUARDED_BY cannot express — same
  // contract style as EmbeddingTable::values_.
  struct Entry {
    TierState state = TierState::kHot;
    uint8_t ref = 0;       // clock reference bit
    int32_t pins = 0;      // >0 ⇒ hot and not demotable
    int32_t warm_slot = -1;
    int32_t pos = -1;      // index in the stripe's hot/warm ring (by state)
    int64_t cold_row = -1; // permanent cold record, -1 until first spill
  };

  struct Stripe {
    Mutex mu{lock_rank::kStoreWarm};
    std::vector<FeatureId> hot HETGMP_GUARDED_BY(mu);   // clock ring
    std::vector<FeatureId> warm HETGMP_GUARDED_BY(mu);  // clock ring
    size_t hot_hand HETGMP_GUARDED_BY(mu) = 0;
    size_t warm_hand HETGMP_GUARDED_BY(mu) = 0;
    std::vector<int32_t> free_warm HETGMP_GUARDED_BY(mu);
    std::vector<float> warm_data HETGMP_GUARDED_BY(mu);  // slots * stride
    CacheCounters hot_c HETGMP_GUARDED_BY(mu);
    CacheCounters warm_c HETGMP_GUARDED_BY(mu);
    CacheCounters cold_c HETGMP_GUARDED_BY(mu);
    int64_t overflow HETGMP_GUARDED_BY(mu) = 0;
    int64_t prefetch_features HETGMP_GUARDED_BY(mu) = 0;
    int64_t prefetch_promoted HETGMP_GUARDED_BY(mu) = 0;
    int64_t prefetch_resident HETGMP_GUARDED_BY(mu) = 0;
  };

  TieredEmbeddingStore(EmbeddingTable* table,
                       std::unique_ptr<ColdTierFile> cold,
                       const TieredStoreOptions& opts);

  Stripe& StripeOf(FeatureId x) {
    return stripes_[static_cast<size_t>(x) % stripes_.size()];
  }
  float* WarmValue(Stripe& st, int32_t slot) HETGMP_REQUIRES(st.mu);
  float* WarmAccum(Stripe& st, int32_t slot) HETGMP_REQUIRES(st.mu);
  // Debug builds fill a demoted row's arena bytes with NaN.
  void PoisonArenaRow(FeatureId x);

  // True if x was already hot; otherwise faults it in (stall-accounted).
  bool PinLocked(Stripe& st, FeatureId x) HETGMP_REQUIRES(st.mu);
  // Evicts hot victims until the stripe is under budget; false when every
  // candidate is pinned (caller decides: overflow or settle for warm).
  bool MakeHotRoomLocked(Stripe& st) HETGMP_REQUIRES(st.mu);
  // warm/cold → arena; assumes hot room has been accounted for.
  void PromoteLocked(Stripe& st, FeatureId x, Entry& e)
      HETGMP_REQUIRES(st.mu);
  void DemoteHotLocked(Stripe& st, size_t ring_idx) HETGMP_REQUIRES(st.mu);
  // Frees (or steals) a warm slot, spilling a warm victim to cold.
  int32_t TakeWarmSlotLocked(Stripe& st) HETGMP_REQUIRES(st.mu);
  void PromoteColdToWarmLocked(Stripe& st, FeatureId x, Entry& e)
      HETGMP_REQUIRES(st.mu);

  EmbeddingTable* const table_;
  std::unique_ptr<ColdTierFile> cold_;
  const int dim_;
  const int row_stride_;  // dim, or 2*dim when the optimizer keeps state
  const int64_t hot_budget_;
  const int64_t warm_budget_;
  const int64_t hot_cap_;   // per-stripe
  const int64_t warm_cap_;  // per-stripe
  // lint: unguarded(striped by the stripe mutex of x: entries_[x] is only
  // touched under StripeOf(x).mu; the vector itself is sized once)
  std::vector<Entry> entries_;
  std::vector<Stripe> stripes_;

  std::atomic<int64_t> stall_ns_{0};
  std::atomic<int64_t> pin_requests_{0};
  std::atomic<int64_t> pin_resident_{0};
};

}  // namespace hetgmp

#endif  // HETGMP_STORE_TIERED_STORE_H_
