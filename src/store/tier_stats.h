#ifndef HETGMP_STORE_TIER_STATS_H_
#define HETGMP_STORE_TIER_STATS_H_

#include <cstdint>

#include "embed/cache_counters.h"

namespace hetgmp {

// Aggregated instrumentation for the hot/warm/cold hierarchy, reported
// through TrainResult and the tiering bench. Uses the same CacheCounters
// schema as LruEmbeddingCache so all row-movement numbers read alike:
//
//   hot.hits/misses    — pins that found the row resident vs faulted
//   warm.hits          — faults served from the warm host tier
//   warm.promotions    — rows moved into warm (hot demotions + cold hits)
//   warm.demotions     — rows pushed out of warm (to cold)
//   cold.hits          — faults/promotes that had to read disk
//   cold.writebacks    — rows spilled to the cold file
struct TieredStoreStats {
  CacheCounters hot;
  CacheCounters warm;
  CacheCounters cold;

  // Pins admitted over the hot budget because every victim was pinned
  // (the batch's working set exceeded the budget; the tier runs
  // temporarily oversized rather than deadlock).
  int64_t hot_overflow = 0;

  // Wall-clock seconds spent in synchronous faults on the training
  // threads (prefetch lost the race or is disabled). Never folded into
  // the simulated time model — trajectories stay bit-identical.
  double stall_secs = 0.0;

  // Prefetch pipeline: batches submitted/overwritten before processing,
  // features examined, and how they resolved off-thread.
  int64_t prefetch_batches = 0;
  int64_t prefetch_dropped = 0;
  int64_t prefetch_features = 0;
  int64_t prefetch_promoted = 0;
  int64_t prefetch_already_resident = 0;

  // Residency at pin time: of `pin_requests` pinned features,
  // `pin_resident` were already hot (prefetch coverage when the
  // pipeline is on).
  int64_t pin_requests = 0;
  int64_t pin_resident = 0;

  [[nodiscard]] double PinCoverage() const {
    return pin_requests > 0
               ? static_cast<double>(pin_resident) /
                     static_cast<double>(pin_requests)
               : 0.0;
  }
};

}  // namespace hetgmp

#endif  // HETGMP_STORE_TIER_STATS_H_
