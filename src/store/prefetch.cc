#include "store/prefetch.h"

#include <algorithm>

#include "common/logging.h"

namespace hetgmp {

PrefetchPipeline::PrefetchPipeline(TieredEmbeddingStore* store,
                                   int num_workers)
    : store_(store) {
  HETGMP_CHECK(store != nullptr);
  HETGMP_CHECK_GT(num_workers, 0);
  {
    MutexLock lock(mu_);
    slots_.resize(static_cast<size_t>(num_workers));
  }
  thread_ = std::thread([this] { ThreadMain(); });
}

PrefetchPipeline::~PrefetchPipeline() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  thread_.join();
}

void PrefetchPipeline::Submit(int worker, const FeatureId* feats, int64_t n) {
  {
    MutexLock lock(mu_);
    Slot& slot = slots_[static_cast<size_t>(worker)];
    if (slot.full) {
      // The worker lapped the pipeline: its previous request is for a
      // batch that is about to train anyway — replace, don't queue.
      ++dropped_;
    } else {
      ++in_flight_;
    }
    slot.feats.assign(feats, feats + n);
    slot.full = true;
  }
  work_cv_.NotifyOne();
}

void PrefetchPipeline::Quiesce() {
  MutexLock lock(mu_);
  while (in_flight_ > 0) idle_cv_.Wait(mu_);
}

PrefetchPipeline::Stats PrefetchPipeline::stats() {
  MutexLock lock(mu_);
  return Stats{batches_, dropped_};
}

void PrefetchPipeline::ThreadMain() {
  // Reused across batches: the request copy (so the slot frees up while
  // we work) and the sort-dedup happen outside mu_.
  std::vector<FeatureId> current;
  size_t next = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      size_t pick = slots_.size();
      for (;;) {
        for (size_t i = 0; i < slots_.size(); ++i) {
          const size_t w = (next + i) % slots_.size();
          if (slots_[w].full) {
            pick = w;
            break;
          }
        }
        if (pick != slots_.size() || stop_) break;
        work_cv_.Wait(mu_);
      }
      if (pick == slots_.size()) return;  // stop_ with nothing queued
      next = (pick + 1) % slots_.size();
      current.swap(slots_[pick].feats);
      slots_[pick].full = false;
      ++batches_;
      // in_flight_ stays elevated until the batch is fully promoted, so
      // Quiesce means "processed", not "dequeued".
    }
    std::sort(current.begin(), current.end());
    current.erase(std::unique(current.begin(), current.end()), current.end());
    for (const FeatureId x : current) store_->Prefetch(x);
    current.clear();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace hetgmp
