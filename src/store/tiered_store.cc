#include "store/tiered_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TieredEmbeddingStore::TieredEmbeddingStore(EmbeddingTable* table,
                                           std::unique_ptr<ColdTierFile> cold,
                                           const TieredStoreOptions& opts)
    : table_(table),
      cold_(std::move(cold)),
      dim_(table->dim()),
      row_stride_(table->has_accum() ? 2 * table->dim() : table->dim()),
      hot_budget_(opts.hot_rows),
      warm_budget_(opts.warm_rows),
      hot_cap_((opts.hot_rows + opts.stripes - 1) / opts.stripes),
      warm_cap_(std::max<int64_t>(
          1, (opts.warm_rows + opts.stripes - 1) / opts.stripes)),
      entries_(static_cast<size_t>(table->num_embeddings())),
      stripes_(static_cast<size_t>(opts.stripes)) {
  for (Stripe& st : stripes_) {
    MutexLock lock(st.mu);
    st.warm_data.assign(
        static_cast<size_t>(warm_cap_) * static_cast<size_t>(row_stride_),
        0.0f);
    st.free_warm.reserve(static_cast<size_t>(warm_cap_));
    for (int64_t s = warm_cap_ - 1; s >= 0; --s) {
      st.free_warm.push_back(static_cast<int32_t>(s));
    }
    st.hot.reserve(static_cast<size_t>(hot_cap_) + 1);
  }
}

Result<std::unique_ptr<TieredEmbeddingStore>> TieredEmbeddingStore::Create(
    EmbeddingTable* table, const std::vector<double>& access_freq,
    const TieredStoreOptions& opts) {
  HETGMP_CHECK(table != nullptr);
  HETGMP_CHECK_GT(opts.hot_rows, 0);
  HETGMP_CHECK_GT(opts.warm_rows, 0);
  HETGMP_CHECK_GT(opts.stripes, 0);

  std::string path = opts.cold_path;
  const bool anonymous = path.empty();
  if (anonymous) {
    // Process-private spill file: unlinked immediately after creation so
    // it cannot outlive (or collide with) anything.
    static std::atomic<int> seq{0};
    path = "/tmp/hetgmp_cold_" + std::to_string(::getpid()) + "_" +
           std::to_string(seq.fetch_add(1)) + ".bin";
  }
  auto cold =
      ColdTierFile::Create(path, table->num_embeddings(), table->dim());
  if (!cold.ok()) return cold.status();

  auto store = std::unique_ptr<TieredEmbeddingStore>(new TieredEmbeddingStore(
      table, std::move(cold.value()), opts));
  if (anonymous) store->cold_->Unlink();

  // Initial placement by access-frequency rank: hottest features stay in
  // the arena, the next band goes warm, the tail spills to disk. Initial
  // movements are not counted in the steady-state tier counters.
  const int64_t n = table->num_embeddings();
  std::vector<FeatureId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&access_freq](FeatureId a, FeatureId b) {
                     const double fa =
                         a < static_cast<FeatureId>(access_freq.size())
                             ? access_freq[static_cast<size_t>(a)]
                             : 0.0;
                     const double fb =
                         b < static_cast<FeatureId>(access_freq.size())
                             ? access_freq[static_cast<size_t>(b)]
                             : 0.0;
                     return fa > fb;
                   });
  for (const FeatureId x : order) {
    Stripe& st = store->StripeOf(x);
    MutexLock lock(st.mu);
    Entry& e = store->entries_[static_cast<size_t>(x)];
    if (static_cast<int64_t>(st.hot.size()) < store->hot_cap_) {
      e.state = TierState::kHot;
      e.pos = static_cast<int32_t>(st.hot.size());
      st.hot.push_back(x);
    } else if (!st.free_warm.empty()) {
      const int32_t slot = st.free_warm.back();
      st.free_warm.pop_back();
      CopyRow(store->WarmValue(st, slot), table->UnsafeRow(x),
              store->dim_);
      if (table->has_accum()) {
        CopyRow(store->WarmAccum(st, slot), table->UnsafeAccumRow(x),
                store->dim_);
      }
      store->PoisonArenaRow(x);
      e.state = TierState::kWarm;
      e.warm_slot = slot;
      e.pos = static_cast<int32_t>(st.warm.size());
      st.warm.push_back(x);
    } else {
      e.cold_row =
          store->cold_->Append(x, table->UnsafeRow(x), table->UnsafeAccumRow(x));
      store->PoisonArenaRow(x);
      e.state = TierState::kCold;
    }
  }
  return store;
}

float* TieredEmbeddingStore::WarmValue(Stripe& st, int32_t slot) {
  return st.warm_data.data() +
         static_cast<size_t>(slot) * static_cast<size_t>(row_stride_);
}

float* TieredEmbeddingStore::WarmAccum(Stripe& st, int32_t slot) {
  return WarmValue(st, slot) + dim_;
}

void TieredEmbeddingStore::PoisonArenaRow(FeatureId x) {
#ifndef NDEBUG
  // A stale read of a demoted row trips immediately instead of silently
  // training on dead bytes.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  float* v = table_->UnsafeMutableRow(x);
  for (int c = 0; c < dim_; ++c) v[c] = nan;
  if (float* a = table_->UnsafeMutableAccumRow(x)) {
    for (int c = 0; c < dim_; ++c) a[c] = nan;
  }
#else
  (void)x;
#endif
}

bool TieredEmbeddingStore::MakeHotRoomLocked(Stripe& st) {
  while (static_cast<int64_t>(st.hot.size()) >= hot_cap_) {
    const size_t n = st.hot.size();
    size_t victim = n;
    // Second-chance clock: 2n steps clear every reference bit at least
    // once, so ending empty-handed means every candidate is pinned.
    for (size_t step = 0; step < 2 * n; ++step) {
      const size_t i = st.hot_hand % n;
      Entry& cand = entries_[static_cast<size_t>(st.hot[i])];
      if (cand.pins > 0) {
        ++st.hot_hand;
        continue;
      }
      if (cand.ref != 0) {
        cand.ref = 0;
        ++st.hot_hand;
        continue;
      }
      victim = i;
      break;
    }
    if (victim == n) return false;
    DemoteHotLocked(st, victim);
  }
  return true;
}

void TieredEmbeddingStore::DemoteHotLocked(Stripe& st, size_t ring_idx) {
  const FeatureId victim = st.hot[ring_idx];
  Entry& e = entries_[static_cast<size_t>(victim)];
  HETGMP_DCHECK(e.pins == 0);
  st.hot[ring_idx] = st.hot.back();
  entries_[static_cast<size_t>(st.hot[ring_idx])].pos =
      static_cast<int32_t>(ring_idx);
  st.hot.pop_back();
  st.hot_hand = ring_idx;

  const int32_t slot = TakeWarmSlotLocked(st);
  CopyRow(WarmValue(st, slot), table_->UnsafeRow(victim), dim_);
  if (table_->has_accum()) {
    CopyRow(WarmAccum(st, slot), table_->UnsafeAccumRow(victim), dim_);
  }
  PoisonArenaRow(victim);
  e.state = TierState::kWarm;
  e.warm_slot = slot;
  e.pos = static_cast<int32_t>(st.warm.size());
  e.ref = 1;
  st.warm.push_back(victim);
  ++st.hot_c.demotions;
  ++st.warm_c.promotions;
}

int32_t TieredEmbeddingStore::TakeWarmSlotLocked(Stripe& st) {
  if (!st.free_warm.empty()) {
    const int32_t slot = st.free_warm.back();
    st.free_warm.pop_back();
    return slot;
  }
  // Warm is full: spill a warm victim to the cold file (warm rows are
  // never pinned — pinning faults a row hot first — so this always
  // finds a victim within the 2n clock sweep).
  const size_t n = st.warm.size();
  HETGMP_CHECK_GT(n, 0u);
  size_t victim = n;
  for (size_t step = 0; step < 2 * n + 1; ++step) {
    const size_t i = st.warm_hand % n;
    Entry& cand = entries_[static_cast<size_t>(st.warm[i])];
    if (cand.ref != 0) {
      cand.ref = 0;
      ++st.warm_hand;
      continue;
    }
    victim = i;
    break;
  }
  HETGMP_CHECK_LT(victim, n);
  const FeatureId w = st.warm[victim];
  Entry& we = entries_[static_cast<size_t>(w)];
  const float* val = WarmValue(st, we.warm_slot);
  const float* acc = table_->has_accum() ? WarmAccum(st, we.warm_slot) : nullptr;
  if (we.cold_row >= 0) {
    cold_->WriteRow(we.cold_row, val, acc);
  } else {
    we.cold_row = cold_->Append(w, val, acc);
  }
  const int32_t slot = we.warm_slot;
  we.state = TierState::kCold;
  we.warm_slot = -1;
  we.pos = -1;
  st.warm[victim] = st.warm.back();
  entries_[static_cast<size_t>(st.warm[victim])].pos =
      static_cast<int32_t>(victim);
  st.warm.pop_back();
  st.warm_hand = victim;
  ++st.warm_c.demotions;
  ++st.cold_c.writebacks;
  return slot;
}

void TieredEmbeddingStore::PromoteLocked(Stripe& st, FeatureId x, Entry& e) {
  if (e.state == TierState::kWarm) {
    ++st.warm_c.hits;
    CopyRow(table_->UnsafeMutableRow(x), WarmValue(st, e.warm_slot), dim_);
    if (table_->has_accum()) {
      CopyRow(table_->UnsafeMutableAccumRow(x), WarmAccum(st, e.warm_slot),
              dim_);
    }
    st.free_warm.push_back(e.warm_slot);
    const size_t i = static_cast<size_t>(e.pos);
    st.warm[i] = st.warm.back();
    entries_[static_cast<size_t>(st.warm[i])].pos = static_cast<int32_t>(i);
    st.warm.pop_back();
    if (st.warm_hand > i) st.warm_hand = i;
  } else {
    HETGMP_DCHECK(e.state == TierState::kCold);
    ++st.warm_c.misses;
    ++st.cold_c.hits;
    cold_->ReadRow(e.cold_row, table_->UnsafeMutableRow(x),
                   table_->UnsafeMutableAccumRow(x));
  }
  e.state = TierState::kHot;
  e.warm_slot = -1;
  e.ref = 1;
  e.pos = static_cast<int32_t>(st.hot.size());
  st.hot.push_back(x);
  ++st.hot_c.promotions;
}

void TieredEmbeddingStore::PromoteColdToWarmLocked(Stripe& st, FeatureId x,
                                                   Entry& e) {
  HETGMP_DCHECK(e.state == TierState::kCold);
  const int32_t slot = TakeWarmSlotLocked(st);
  cold_->ReadRow(e.cold_row, WarmValue(st, slot),
                 table_->has_accum() ? WarmAccum(st, slot) : nullptr);
  ++st.cold_c.hits;
  e.state = TierState::kWarm;
  e.warm_slot = slot;
  e.pos = static_cast<int32_t>(st.warm.size());
  e.ref = 1;
  st.warm.push_back(x);
  ++st.warm_c.promotions;
}

bool TieredEmbeddingStore::PinLocked(Stripe& st, FeatureId x) {
  Entry& e = entries_[static_cast<size_t>(x)];
  const bool resident = e.state == TierState::kHot;
  if (resident) {
    ++st.hot_c.hits;
  } else {
    // Synchronous fault: prefetch lost the race (or is off). Wall-clock
    // accounted as stall; never folded into simulated time.
    ++st.hot_c.misses;
    const int64_t t0 = NowNs();
    if (!MakeHotRoomLocked(st)) ++st.overflow;
    PromoteLocked(st, x, e);
    stall_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  }
  ++e.pins;
  e.ref = 1;
  return resident;
}

void TieredEmbeddingStore::Pin(FeatureId x) {
  Stripe& st = StripeOf(x);
  MutexLock lock(st.mu);
  PinLocked(st, x);
}

void TieredEmbeddingStore::Unpin(FeatureId x) {
  Stripe& st = StripeOf(x);
  MutexLock lock(st.mu);
  Entry& e = entries_[static_cast<size_t>(x)];
  HETGMP_DCHECK(e.pins > 0);
  --e.pins;
}

void TieredEmbeddingStore::PinBatch(const FeatureId* xs, int64_t n) {
  int64_t resident = 0;
  for (int64_t i = 0; i < n; ++i) {
    Stripe& st = StripeOf(xs[i]);
    MutexLock lock(st.mu);
    if (PinLocked(st, xs[i])) ++resident;
  }
  pin_requests_.fetch_add(n, std::memory_order_relaxed);
  pin_resident_.fetch_add(resident, std::memory_order_relaxed);
}

void TieredEmbeddingStore::UnpinBatch(const FeatureId* xs, int64_t n) {
  for (int64_t i = 0; i < n; ++i) Unpin(xs[i]);
}

void TieredEmbeddingStore::ReadRow(FeatureId x, float* out) {
  Pin(x);
  table_->ReadRow(x, out);
  Unpin(x);
}

void TieredEmbeddingStore::ApplyGradient(FeatureId x, const float* grad) {
  Pin(x);
  table_->ApplyGradient(x, grad);
  Unpin(x);
}

void TieredEmbeddingStore::PeekRow(FeatureId x, float* out) {
  Stripe& st = StripeOf(x);
  MutexLock lock(st.mu);
  const Entry& e = entries_[static_cast<size_t>(x)];
  switch (e.state) {
    case TierState::kHot:
      table_->ReadRow(x, out);  // RowMutex (60) nests inside stripe (52)
      break;
    case TierState::kWarm:
      CopyRow(out, WarmValue(st, e.warm_slot), dim_);
      break;
    case TierState::kCold:
      cold_->ReadRow(e.cold_row, out, nullptr);
      break;
  }
}

void TieredEmbeddingStore::Prefetch(FeatureId x) {
  Stripe& st = StripeOf(x);
  MutexLock lock(st.mu);
  Entry& e = entries_[static_cast<size_t>(x)];
  ++st.prefetch_features;
  if (e.state == TierState::kHot) {
    e.ref = 1;
    ++st.prefetch_resident;
    return;
  }
  if (MakeHotRoomLocked(st)) {
    PromoteLocked(st, x, e);
    ++st.prefetch_promoted;
  } else if (e.state == TierState::kCold) {
    // Every hot victim is pinned: settle for warm so the synchronous
    // fault at pin time is a memcpy, not a disk read.
    PromoteColdToWarmLocked(st, x, e);
    ++st.prefetch_promoted;
  }
}

TierState TieredEmbeddingStore::StateOf(FeatureId x) {
  Stripe& st = StripeOf(x);
  MutexLock lock(st.mu);
  return entries_[static_cast<size_t>(x)].state;
}

int64_t TieredEmbeddingStore::ResidentRows() {
  int64_t total = 0;
  for (Stripe& st : stripes_) {
    MutexLock lock(st.mu);
    total += static_cast<int64_t>(st.hot.size());
  }
  return total;
}

int64_t TieredEmbeddingStore::WarmRows() {
  int64_t total = 0;
  for (Stripe& st : stripes_) {
    MutexLock lock(st.mu);
    total += static_cast<int64_t>(st.warm.size());
  }
  return total;
}

TieredStoreStats TieredEmbeddingStore::Stats() {
  TieredStoreStats out;
  for (Stripe& st : stripes_) {
    MutexLock lock(st.mu);
    out.hot.Merge(st.hot_c);
    out.warm.Merge(st.warm_c);
    out.cold.Merge(st.cold_c);
    out.hot_overflow += st.overflow;
    out.prefetch_features += st.prefetch_features;
    out.prefetch_promoted += st.prefetch_promoted;
    out.prefetch_already_resident += st.prefetch_resident;
  }
  out.stall_secs =
      static_cast<double>(stall_ns_.load(std::memory_order_relaxed)) * 1e-9;
  out.pin_requests = pin_requests_.load(std::memory_order_relaxed);
  out.pin_resident = pin_resident_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace hetgmp
