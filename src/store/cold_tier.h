#ifndef HETGMP_STORE_COLD_TIER_H_
#define HETGMP_STORE_COLD_TIER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"

namespace hetgmp {

// The on-disk cold tier of the TieredEmbeddingStore: an mmap'd file of
// fixed-size records (value row + optimizer-state row) with a compact
// row-directory mapping each record to the FeatureId it holds. Rows are
// appended on first demotion and reused forever after — a feature's cold
// record is its permanent home slot, so re-demotion is an in-place
// overwrite and the directory only grows.
//
// File layout (little-endian, host float representation — the same
// single-machine assumption the HGMPCK02 checkpoints make):
//
//   [0..8)    magic "HGMPCT01"
//   [8..16)   int64 capacity (record count the file was sized for)
//   [16..24)  int64 dim
//   directory capacity * int64 — FeatureId+1 of each record, 0 = empty.
//             (Shifted by one so a sparse file's zero-fill reads as
//             "unallocated"; Create() can then ftruncate instead of
//             writing gigabytes of -1s.)
//   payload   capacity * 2*dim floats — value row then accum row.
//   footer    "HGMPEND2" (the checkpoint footer sentinel): present AND
//             last means the file was fully extended before any record
//             was trusted; Open() rejects torn/truncated files whose
//             size or tail disagrees with the header.
//
// Crash safety mirrors embed/checkpoint.cc: Create() builds the file
// under "<path>.tmp" and renames it into place, so `path` never names a
// half-initialized file.
//
// Thread-safety: `mu_` (rank kStoreCold, taken while the caller holds a
// warm-stripe lock — 52 < 54 keeps the rank order legal) serializes the
// directory and allocation state. Record payloads are NOT under mu_:
// each record belongs to exactly one feature and the caller's per-feature
// stripe lock already serializes all access to it, so concurrent IO on
// different records is lock-free on disjoint mmap bytes.
class ColdTierFile {
 public:
  // Creates a fresh file sized for `capacity` records and maps it.
  static Result<std::unique_ptr<ColdTierFile>> Create(const std::string& path,
                                                      int64_t capacity,
                                                      int dim);
  // Maps an existing file, validating magic, exact size, and footer.
  static Result<std::unique_ptr<ColdTierFile>> Open(const std::string& path);

  ~ColdTierFile();
  ColdTierFile(const ColdTierFile&) = delete;
  ColdTierFile& operator=(const ColdTierFile&) = delete;

  int64_t capacity() const { return capacity_; }
  int dim() const { return dim_; }
  const std::string& path() const { return path_; }
  int64_t rows_used() const;

  // Allocates the next record for feature x and writes it. Aborts if the
  // file is full (the store sizes capacity = num_features, so this is a
  // programming error, not an IO condition).
  int64_t Append(FeatureId x, const float* value, const float* accum);

  // Overwrites record `row` (a prior Append result for the same feature).
  // `accum` may be null when the optimizer keeps no state.
  void WriteRow(int64_t row, const float* value, const float* accum);

  // Copies record `row` out; either destination may be null to skip it.
  void ReadRow(int64_t row, float* value, float* accum) const;

  // FeatureId the record was appended for (directory lookup).
  FeatureId IdAt(int64_t row) const;

  // Unlinks the backing file while keeping the mapping alive — the
  // engine-internal "anonymous spill" mode, where the cold tier should
  // not outlive the process.
  void Unlink();

  // IO counters for the stats rollup (relaxed; reads take no lock).
  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  int64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  ColdTierFile(std::string path, int fd, char* map, uint64_t map_bytes,
               int64_t capacity, int dim);

  int64_t* Directory() const;
  float* Record(int64_t row) const;

  const std::string path_;
  const int fd_;
  const int64_t capacity_;
  const int dim_;
  const uint64_t map_bytes_;
  // lint: unguarded(set once at construction; record payload bytes are
  // striped by the caller's warm-stripe lock, directory words by mu_)
  char* const map_;

  // Serializes allocation (directory appends). Published row count is an
  // atomic so bounds checks on the read/write path stay lock-free.
  mutable Mutex mu_{lock_rank::kStoreCold};
  std::atomic<int64_t> rows_used_{0};
  mutable std::atomic<int64_t> reads_{0};
  std::atomic<int64_t> writes_{0};
};

}  // namespace hetgmp

#endif  // HETGMP_STORE_COLD_TIER_H_
