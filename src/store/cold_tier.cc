#include "store/cold_tier.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "tensor/ops.h"

namespace hetgmp {

namespace {

constexpr char kColdMagic[8] = {'H', 'G', 'M', 'P', 'C', 'T', '0', '1'};
// Shared footer sentinel with the HGMPCK02 checkpoints: same torn-file
// detection contract (present AND last byte of the file).
constexpr char kColdFooter[8] = {'H', 'G', 'M', 'P', 'E', 'N', 'D', '2'};

constexpr uint64_t kHeaderBytes = sizeof(kColdMagic) + 2 * sizeof(int64_t);

uint64_t DirectoryBytes(int64_t capacity) {
  return static_cast<uint64_t>(capacity) * sizeof(int64_t);
}

uint64_t PayloadBytes(int64_t capacity, int dim) {
  return static_cast<uint64_t>(capacity) * 2u * static_cast<uint64_t>(dim) *
         sizeof(float);
}

uint64_t FileBytes(int64_t capacity, int dim) {
  return kHeaderBytes + DirectoryBytes(capacity) + PayloadBytes(capacity, dim) +
         sizeof(kColdFooter);
}

Status PWriteAll(int fd, const void* data, size_t bytes, uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::pwrite(fd, p, bytes, static_cast<off_t>(offset));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal("cold tier: short write");
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    bytes -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

ColdTierFile::ColdTierFile(std::string path, int fd, char* map,
                           uint64_t map_bytes, int64_t capacity, int dim)
    : path_(std::move(path)),
      fd_(fd),
      capacity_(capacity),
      dim_(dim),
      map_bytes_(map_bytes),
      map_(map) {}

ColdTierFile::~ColdTierFile() {
  ::munmap(map_, map_bytes_);
  ::close(fd_);
}

int64_t* ColdTierFile::Directory() const {
  return reinterpret_cast<int64_t*>(map_ + kHeaderBytes);
}

float* ColdTierFile::Record(int64_t row) const {
  return reinterpret_cast<float*>(map_ + kHeaderBytes +
                                  DirectoryBytes(capacity_)) +
         static_cast<uint64_t>(row) * 2u * static_cast<uint64_t>(dim_);
}

Result<std::unique_ptr<ColdTierFile>> ColdTierFile::Create(
    const std::string& path, int64_t capacity, int dim) {
  HETGMP_CHECK_GT(capacity, 0);
  HETGMP_CHECK_GT(dim, 0);
  const uint64_t bytes = FileBytes(capacity, dim);
  // Build under a temp name, extend sparsely (the zero-filled directory
  // reads as all-empty thanks to the id+1 encoding), stamp header and
  // footer, then atomically rename into place.
  const std::string tmp = path + ".tmp";
  const int wfd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (wfd < 0) {
    return Status::InvalidArgument("cold tier: cannot create " + tmp);
  }
  Status st = Status::OK();
  if (::ftruncate(wfd, static_cast<off_t>(bytes)) != 0) {
    st = Status::Internal("cold tier: cannot size " + tmp);
  }
  if (st.ok()) st = PWriteAll(wfd, kColdMagic, sizeof(kColdMagic), 0);
  if (st.ok()) {
    st = PWriteAll(wfd, &capacity, sizeof(capacity), sizeof(kColdMagic));
  }
  if (st.ok()) {
    const int64_t dim64 = dim;
    st = PWriteAll(wfd, &dim64, sizeof(dim64),
                   sizeof(kColdMagic) + sizeof(capacity));
  }
  if (st.ok()) {
    st = PWriteAll(wfd, kColdFooter, sizeof(kColdFooter),
                   bytes - sizeof(kColdFooter));
  }
  if (st.ok() && ::fsync(wfd) != 0) {
    st = Status::Internal("cold tier: fsync failed for " + tmp);
  }
  ::close(wfd);
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Internal("cold tier: rename failed: " + tmp + " -> " + path);
  }
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  return Open(path);
}

Result<std::unique_ptr<ColdTierFile>> ColdTierFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::NotFound("cold tier: cannot open " + path);
  }
  struct stat sb;
  if (::fstat(fd, &sb) != 0) {
    ::close(fd);
    return Status::Internal("cold tier: stat failed for " + path);
  }
  const uint64_t size = static_cast<uint64_t>(sb.st_size);
  if (size < kHeaderBytes + sizeof(kColdFooter)) {
    ::close(fd);
    return Status::InvalidArgument("cold tier: truncated file " + path);
  }
  char header[kHeaderBytes];
  {
    size_t got = 0;
    while (got < sizeof(header)) {
      const ssize_t n = ::pread(fd, header + got, sizeof(header) - got,
                                static_cast<off_t>(got));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        ::close(fd);
        return Status::InvalidArgument("cold tier: unreadable header " + path);
      }
      got += static_cast<size_t>(n);
    }
  }
  if (std::memcmp(header, kColdMagic, sizeof(kColdMagic)) != 0) {
    ::close(fd);
    return Status::InvalidArgument("not a HET-GMP cold tier file: " + path);
  }
  int64_t capacity = 0, dim64 = 0;
  std::memcpy(&capacity, header + sizeof(kColdMagic), sizeof(capacity));
  std::memcpy(&dim64, header + sizeof(kColdMagic) + sizeof(capacity),
              sizeof(dim64));
  if (capacity <= 0 || dim64 <= 0 || dim64 > (1 << 20)) {
    ::close(fd);
    return Status::InvalidArgument("cold tier: corrupt header in " + path);
  }
  const int dim = static_cast<int>(dim64);
  // Exact-size check: a torn extension or a grown file both disagree with
  // the header-derived length.
  if (size != FileBytes(capacity, dim)) {
    ::close(fd);
    return Status::InvalidArgument(
        "cold tier: torn or truncated file (size mismatch): " + path);
  }
  char* map =
      static_cast<char*>(::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                                MAP_SHARED, fd, 0));
  if (map == MAP_FAILED) {
    ::close(fd);
    return Status::Internal("cold tier: mmap failed for " + path);
  }
  if (std::memcmp(map + size - sizeof(kColdFooter), kColdFooter,
                  sizeof(kColdFooter)) != 0) {
    ::munmap(map, size);
    ::close(fd);
    return Status::InvalidArgument(
        "cold tier: torn or truncated file (missing footer): " + path);
  }
  auto file = std::unique_ptr<ColdTierFile>(
      new ColdTierFile(path, fd, map, size, capacity, dim));
  // Recover the allocation watermark: records are appended densely, so
  // the used prefix is exactly the non-empty directory prefix.
  int64_t used = 0;
  const int64_t* dir = file->Directory();
  while (used < capacity && dir[used] != 0) ++used;
  file->rows_used_.store(used, std::memory_order_relaxed);
  return file;
}

int64_t ColdTierFile::rows_used() const {
  return rows_used_.load(std::memory_order_relaxed);
}

int64_t ColdTierFile::Append(FeatureId x, const float* value,
                             const float* accum) {
  int64_t row;
  {
    MutexLock lock(mu_);
    row = rows_used_.load(std::memory_order_relaxed);
    HETGMP_CHECK_LT(row, capacity_)
        << " cold tier full appending feature " << x;
    Directory()[row] = x + 1;  // 0 = empty, so ids are stored shifted
    rows_used_.store(row + 1, std::memory_order_release);
  }
  WriteRow(row, value, accum);
  return row;
}

void ColdTierFile::WriteRow(int64_t row, const float* value,
                            const float* accum) {
  HETGMP_CHECK_GE(row, 0);
  HETGMP_CHECK_LT(row, rows_used_.load(std::memory_order_acquire));
  float* rec = Record(row);
  std::memcpy(rec, value, static_cast<size_t>(dim_) * sizeof(float));
  if (accum != nullptr) {
    std::memcpy(rec + dim_, accum, static_cast<size_t>(dim_) * sizeof(float));
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
}

void ColdTierFile::ReadRow(int64_t row, float* value, float* accum) const {
  HETGMP_CHECK_GE(row, 0);
  HETGMP_CHECK_LT(row, rows_used_.load(std::memory_order_acquire));
  const float* rec = Record(row);
  if (value != nullptr) {
    std::memcpy(value, rec, static_cast<size_t>(dim_) * sizeof(float));
  }
  if (accum != nullptr) {
    std::memcpy(accum, rec + dim_, static_cast<size_t>(dim_) * sizeof(float));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
}

FeatureId ColdTierFile::IdAt(int64_t row) const {
  HETGMP_CHECK_GE(row, 0);
  HETGMP_CHECK_LT(row, rows_used_.load(std::memory_order_acquire));
  return Directory()[row] - 1;
}

void ColdTierFile::Unlink() { std::remove(path_.c_str()); }

}  // namespace hetgmp
