file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_theory.dir/theorem1.cc.o"
  "CMakeFiles/hetgmp_theory.dir/theorem1.cc.o.d"
  "libhetgmp_theory.a"
  "libhetgmp_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
