file(REMOVE_RECURSE
  "libhetgmp_theory.a"
)
