# Empty compiler generated dependencies file for hetgmp_theory.
# This may be replaced when dependencies are built.
