#ifndef HETGMP_THEORY_THEOREM1_H_
#define HETGMP_THEORY_THEOREM1_H_

#include <cstdint>
#include <vector>

namespace hetgmp {

// Numerical verification harness for Theorem 1 (§5.4): bounded-staleness
// training of an embedding-style objective converges, with
//
//   (7)  Σ_t ||x(t+1) − x(t)||  < ∞,
//   (9)  F( (1/t) Σ x(k) ) − F_inf  ≤  O(1/t),
//
// for step sizes η ∈ (0, 1/(L(1+2√(p·s)))), where p is the number of
// workers and s the staleness bound.
//
// The test objective mirrors the embedding-model structure of Eq. (1):
// a consistent sparse least-squares problem — each "sample" touches a few
// coordinates (its embeddings) and the labels come from a planted x*, so
// F_inf = 0 exactly and ∇F is L-Lipschitz with L = λ_max((1/n)AᵀA).
// Assumption (3)'s sufficient decrease and the KŁ property hold because F
// is a convex quadratic.
//
// The simulator runs p logical workers against one shared iterate with
// *bounded delay*: the gradient applied at global step t is evaluated at
// x(t − d), d ∈ [0, s] chosen per step (worst case d = s) — exactly the
// inconsistency window the proof's active-clock argument bounds.
struct Theorem1Config {
  int dim = 64;
  int num_samples = 256;
  int coords_per_sample = 6;  // embeddings accessed per sample
  int num_workers = 8;        // p
  uint64_t staleness = 4;     // s
  // 0 = use the theorem's maximal step size 0.9/(L(1+2√(p·s))).
  double step_size = 0.0;
  int64_t steps = 4000;
  uint64_t seed = 12345;
};

struct Theorem1Result {
  double lipschitz = 0.0;          // L
  double step_size = 0.0;          // η actually used
  std::vector<double> step_norms;  // ||x(t+1) − x(t)|| per step
  std::vector<double> avg_iterate_gap;  // F(mean iterate up to t) − F_inf,
                                        // sampled log-uniformly
  std::vector<int64_t> gap_steps;       // the t of each sampled gap
  double final_objective = 0.0;    // F(x(T))
  double sum_step_norms = 0.0;     // partial sum of (7)
  // Tail mass of Σ||Δx||: contribution of the last 10% of steps. Small
  // tail ⇒ the series behaves summably (7).
  double tail_mass_fraction = 0.0;
  // Least-squares fit of log(gap) vs log(t): slope ≈ −1 ⇒ O(1/t) (9).
  double rate_exponent = 0.0;
};

Theorem1Result RunTheorem1(const Theorem1Config& config);

}  // namespace hetgmp

#endif  // HETGMP_THEORY_THEOREM1_H_
