#include "theory/theorem1.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace hetgmp {

namespace {

// Sparse row: the coordinates ("embeddings") sample i touches and their
// feature values.
struct SparseRow {
  std::vector<int> coords;
  std::vector<double> values;
};

double RowDot(const SparseRow& row, const std::vector<double>& x) {
  double acc = 0.0;
  for (size_t k = 0; k < row.coords.size(); ++k) {
    acc += row.values[k] * x[row.coords[k]];
  }
  return acc;
}

double Objective(const std::vector<SparseRow>& rows,
                 const std::vector<double>& y,
                 const std::vector<double>& x) {
  double acc = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double r = RowDot(rows[i], x) - y[i];
    acc += r * r;
  }
  return acc / (2.0 * static_cast<double>(rows.size()));
}

// λ_max((1/n) AᵀA) via power iteration — the gradient Lipschitz constant.
double EstimateLipschitz(const std::vector<SparseRow>& rows, int dim,
                         Rng* rng) {
  std::vector<double> v(dim), av;
  for (auto& e : v) e = rng->NextGaussian();
  const double n = static_cast<double>(rows.size());
  double lambda = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    av.assign(dim, 0.0);
    for (const SparseRow& row : rows) {
      const double d = RowDot(row, v);
      for (size_t k = 0; k < row.coords.size(); ++k) {
        av[row.coords[k]] += row.values[k] * d;
      }
    }
    double norm = 0.0;
    for (int j = 0; j < dim; ++j) {
      av[j] /= n;
      norm += av[j] * av[j];
    }
    norm = std::sqrt(norm);
    if (norm < 1e-30) return 1.0;
    lambda = norm;
    for (int j = 0; j < dim; ++j) v[j] = av[j] / norm;
  }
  return lambda;
}

}  // namespace

Theorem1Result RunTheorem1(const Theorem1Config& cfg) {
  HETGMP_CHECK_GT(cfg.dim, 0);
  HETGMP_CHECK_GT(cfg.num_samples, 0);
  HETGMP_CHECK_GT(cfg.num_workers, 0);
  HETGMP_CHECK_GT(cfg.steps, 0);
  Rng rng(cfg.seed);

  // Planted consistent system: F_inf = F(x*) = 0 exactly.
  std::vector<double> x_star(cfg.dim);
  for (auto& v : x_star) v = rng.NextGaussian();
  std::vector<SparseRow> rows(cfg.num_samples);
  std::vector<double> y(cfg.num_samples);
  for (int i = 0; i < cfg.num_samples; ++i) {
    rows[i].coords.resize(cfg.coords_per_sample);
    rows[i].values.resize(cfg.coords_per_sample);
    for (int k = 0; k < cfg.coords_per_sample; ++k) {
      rows[i].coords[k] = static_cast<int>(rng.NextUint64(cfg.dim));
      rows[i].values[k] = rng.NextGaussian();
    }
    y[i] = RowDot(rows[i], x_star);
  }

  Theorem1Result result;
  result.lipschitz = EstimateLipschitz(rows, cfg.dim, &rng);
  const double p = static_cast<double>(cfg.num_workers);
  const double s = static_cast<double>(cfg.staleness);
  result.step_size =
      cfg.step_size > 0.0
          ? cfg.step_size
          : 0.9 / (result.lipschitz * (1.0 + 2.0 * std::sqrt(p * s)));
  const double eta = result.step_size;

  // Bounded-delay SGD: history ring of the last s+1 iterates; the gradient
  // at step t reads x(t − d), d ∈ [0, s].
  const int64_t hist = static_cast<int64_t>(cfg.staleness) + 1;
  std::vector<std::vector<double>> history(
      hist, std::vector<double>(cfg.dim, 0.0));  // x(0) = 0
  std::vector<double> x(cfg.dim, 0.0);
  std::vector<double> x_sum(cfg.dim, 0.0);

  result.step_norms.reserve(cfg.steps);
  std::vector<double> grad(cfg.dim);
  int64_t next_gap_step = 8;
  for (int64_t t = 0; t < cfg.steps; ++t) {
    const int64_t d = static_cast<int64_t>(
        rng.NextUint64(std::min<int64_t>(t, hist - 1) + 1));
    const std::vector<double>& stale_x = history[(t - d) % hist];

    // The theorem's update model: a worker applies a gradient evaluated
    // at a delayed iterate — the delayed proximal-gradient scheme of [54]
    // that the proof extends.
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < rows.size(); ++i) {
      const double residual = RowDot(rows[i], stale_x) - y[i];
      for (size_t k = 0; k < rows[i].coords.size(); ++k) {
        grad[rows[i].coords[k]] += residual * rows[i].values[k];
      }
    }
    double step_sq = 0.0;
    const double inv_n = 1.0 / static_cast<double>(rows.size());
    for (int j = 0; j < cfg.dim; ++j) {
      const double g = grad[j] * inv_n;
      x[j] -= eta * g;
      step_sq += eta * g * eta * g;
    }
    result.step_norms.push_back(std::sqrt(step_sq));

    history[(t + 1) % hist] = x;
    for (int j = 0; j < cfg.dim; ++j) x_sum[j] += x[j];

    if (t + 1 == next_gap_step || t + 1 == cfg.steps) {
      std::vector<double> mean(cfg.dim);
      for (int j = 0; j < cfg.dim; ++j) {
        mean[j] = x_sum[j] / static_cast<double>(t + 1);
      }
      result.avg_iterate_gap.push_back(Objective(rows, y, mean));
      result.gap_steps.push_back(t + 1);
      next_gap_step = next_gap_step * 3 / 2 + 1;
    }
  }

  result.final_objective = Objective(rows, y, x);
  for (double n : result.step_norms) result.sum_step_norms += n;
  const int64_t tail_start = cfg.steps * 9 / 10;
  double tail = 0.0;
  for (int64_t t = tail_start; t < cfg.steps; ++t) {
    tail += result.step_norms[t];
  }
  result.tail_mass_fraction =
      result.sum_step_norms > 0 ? tail / result.sum_step_norms : 0.0;

  // Rate fit over the second half of sampled gaps: slope of log(gap)
  // against log(t). ≤ −1 certifies the O(1/t) bound of Eq. (9).
  const size_t m = result.gap_steps.size();
  if (m >= 4) {
    const size_t start = m / 2;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int count = 0;
    for (size_t k = start; k < m; ++k) {
      if (result.avg_iterate_gap[k] <= 0) continue;
      const double lx = std::log(static_cast<double>(result.gap_steps[k]));
      const double ly = std::log(result.avg_iterate_gap[k]);
      sx += lx;
      sy += ly;
      sxx += lx * lx;
      sxy += lx * ly;
      ++count;
    }
    if (count >= 3) {
      result.rate_exponent =
          (count * sxy - sx * sy) / (count * sxx - sx * sx);
    }
  }
  return result;
}

}  // namespace hetgmp
