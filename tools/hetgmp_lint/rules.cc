#include "rules.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace hetgmp::lint {

namespace {

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

size_t MatchBracket(const std::vector<Token>& toks, size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

// Skips a balanced `<...>` starting at toks[i] == "<"; returns the index
// one past the closing `>`.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int angle = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "<") ++angle;
    if (toks[i].text == ">") {
      if (--angle == 0) return i + 1;
    }
  }
  return toks.size();
}

void Add(std::vector<Finding>* out, const char* rule, const FileModel& m,
         int line, std::string message) {
  out->push_back({rule, m.lex.path, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// R1: lock-rank order at MutexLock sites.

struct HeldLock {
  std::string rank_name;  // empty = unranked
  int rank = -1;          // -1 = unranked
  bool is_stripe = false;
  int line = 0;
  int depth = 0;  // brace depth at acquisition; released when scope closes
};

void CheckR1(const FileModel& m, const Registry& reg, const FunctionInfo& fn,
             std::vector<Finding>* out) {
  const std::vector<Token>& toks = m.lex.tokens;
  const auto& table = RankTable();

  // Local ranked mutexes: `Mutex name{lock_rank::kX};` declared in the
  // body (e.g. the engine's per-Train result_mu).
  std::map<std::string, std::string> local_ranks;
  for (size_t i = fn.body_begin; i + 5 < fn.body_end; ++i) {
    if (IsIdent(toks[i], "Mutex") && toks[i + 1].kind == TokKind::kIdent &&
        IsPunct(toks[i + 2], "{") && IsIdent(toks[i + 3], "lock_rank") &&
        IsPunct(toks[i + 4], "::") && toks[i + 5].kind == TokKind::kIdent) {
      local_ranks[toks[i + 1].text] = toks[i + 5].text;
    }
  }

  std::vector<HeldLock> held;
  int depth = 0;
  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        --depth;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [depth](const HeldLock& h) {
                                    return h.depth > depth;
                                  }),
                   held.end());
      }
      continue;
    }
    if (!IsIdent(t, "MutexLock")) continue;
    // `MutexLock guard(&mu);` or `MutexLock guard{&mu};`.
    size_t j = i + 1;
    if (j < fn.body_end && toks[j].kind == TokKind::kIdent) ++j;
    if (j >= fn.body_end ||
        !(IsPunct(toks[j], "(") || IsPunct(toks[j], "{"))) {
      continue;  // a declaration mention, not an acquisition
    }
    const size_t close = MatchBracket(toks, j);
    if (close >= fn.body_end) continue;

    HeldLock lk;
    lk.line = t.line;
    lk.depth = depth;
    for (size_t k = j + 1; k < close; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (toks[k].text == "RowMutex") {
        lk.is_stripe = true;
        lk.rank_name = "kEmbedStripe";
        break;
      }
      auto local = local_ranks.find(toks[k].text);
      std::string rank = local != local_ranks.end()
                             ? local->second
                             : reg.MutexRank(fn.enclosing, toks[k].text);
      if (!rank.empty()) {
        lk.rank_name = rank;
        break;
      }
    }
    if (!lk.rank_name.empty()) {
      auto it = table.find(lk.rank_name);
      lk.rank = it != table.end() ? it->second : -1;
      if (lk.rank == table.at("kEmbedStripe")) lk.is_stripe = true;
    }

    for (const HeldLock& h : held) {
      if (h.rank == table.at("kLeaf")) {
        Add(out, "R1", m, t.line,
            "MutexLock while a leaf-rank mutex (Barrier/ThreadPool) is "
            "held; leaf mutexes must be innermost (outer lock at line " +
                std::to_string(h.line) + ")");
        break;
      }
      if (lk.is_stripe && h.is_stripe) {
        Add(out, "R1", m, t.line,
            "second EmbeddingTable stripe lock in one scope (first at "
            "line " +
                std::to_string(h.line) +
                "); stripe locks are equal-rank and must never nest");
        break;
      }
      if (h.is_stripe && lk.rank >= 0 && lk.rank != table.at("kLeaf")) {
        Add(out, "R1", m, t.line,
            "non-leaf mutex (" + lk.rank_name +
                ") acquired while a stripe lock is held (stripe at line " +
                std::to_string(h.line) + ")");
        break;
      }
      if (h.is_stripe && lk.rank < 0) {
        Add(out, "R1", m, t.line,
            "mutex of unknown rank acquired while a stripe lock is held "
            "(stripe at line " +
                std::to_string(h.line) +
                "); only leaf mutexes may nest under a stripe");
        break;
      }
      if (lk.rank >= 0 && h.rank >= 0 && lk.rank <= h.rank) {
        Add(out, "R1", m, t.line,
            "lock-rank inversion: acquiring " + lk.rank_name + " (" +
                std::to_string(lk.rank) + ") while holding " + h.rank_name +
                " (" + std::to_string(h.rank) +
                ", line " + std::to_string(h.line) +
                "); ranks must strictly increase inward");
        break;
      }
    }
    held.push_back(lk);
    i = close;
  }
}

// ---------------------------------------------------------------------------
// R2: annotation coverage.

void CheckR2(const FileModel& m, std::vector<Finding>* out) {
  for (const ClassInfo& cls : m.classes) {
    if (!cls.HasMutexMember()) continue;
    for (const Field& f : cls.fields) {
      if (!f.is_mutable_state || f.guarded) continue;
      if (m.HasWaiver(f.line, "unguarded")) continue;
      Add(out, "R2", m, f.line,
          "mutable field '" + f.name + "' of mutex-owning class '" +
              cls.qualified +
              "' is neither HETGMP_GUARDED_BY nor waived with "
              "`// lint: unguarded(reason)`");
    }
  }
}

// ---------------------------------------------------------------------------
// R3: Fabric traffic accounting.

void CheckR3(const FileModel& m, std::vector<Finding>* out) {
  const std::vector<Token>& toks = m.lex.tokens;
  // Identifiers declared with type TrafficClass anywhere in the file
  // (locals, params) count as charging the call they appear in.
  std::unordered_set<std::string> tc_names;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "TrafficClass")) continue;
    size_t j = i + 1;
    while (j < toks.size() && toks[j].kind == TokKind::kPunct &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      tc_names.insert(toks[j].text);
    }
  }
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent ||
        (t.text != "Transfer" && t.text != "TransferToHost")) {
      continue;
    }
    if (!IsPunct(toks[i + 1], "(")) continue;
    const size_t close = MatchBracket(toks, i + 1);
    bool charged = false;
    for (size_t k = i + 2; k < close; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (toks[k].text == "TrafficClass" || tc_names.count(toks[k].text)) {
        charged = true;
        break;
      }
    }
    if (!charged) {
      Add(out, "R3", m, t.line,
          "comm::Fabric::" + t.text +
              " call moves bytes without charging a TrafficClass; every "
              "byte of traffic must be attributed to a class");
    }
    i = close;
  }
}

// ---------------------------------------------------------------------------
// R4: hot-path allocation ban.

const std::set<std::string>& AllocatingContainers() {
  static const std::set<std::string> kContainers = {
      "vector", "string",        "basic_string",  "deque",
      "list",   "map",           "set",           "multimap",
      "multiset", "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kContainers;
}

void CheckR4(const FileModel& m, const FunctionInfo& fn,
             std::vector<Finding>* out) {
  const std::vector<Token>& toks = m.lex.tokens;
  static const std::set<std::string> kBannedCalls = {
      "make_unique", "make_shared", "malloc",       "calloc",
      "realloc",     "strdup",      "aligned_alloc"};
  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "new") {
      if (!m.HasWaiver(t.line, "allow_alloc")) {
        Add(out, "R4", m, t.line,
            "new-expression in HETGMP_HOT_PATH function '" + fn.name +
                "'; hot paths must reuse preallocated scratch "
                "(waive with `// lint: allow_alloc(reason)`)");
      }
      continue;
    }
    if (kBannedCalls.count(t.text)) {
      if (!m.HasWaiver(t.line, "allow_alloc")) {
        Add(out, "R4", m, t.line,
            "allocating call '" + t.text + "' in HETGMP_HOT_PATH function '" +
                fn.name +
                "' (waive with `// lint: allow_alloc(reason)`)");
      }
      continue;
    }
    // `std::vector<T> v(n);` / `std::string s = ...;` locals and
    // temporaries. Default-constructed (empty) locals are fine — they
    // allocate nothing until used, and member scratch uses resize which
    // is amortized by design.
    if (t.text == "std" && i + 2 < fn.body_end &&
        IsPunct(toks[i + 1], "::") &&
        toks[i + 2].kind == TokKind::kIdent &&
        AllocatingContainers().count(toks[i + 2].text)) {
      size_t j = i + 3;
      if (j < fn.body_end && IsPunct(toks[j], "<")) {
        j = SkipAngles(toks, j);
      }
      if (j >= fn.body_end) continue;
      // Reference/pointer bindings and nested-type uses don't allocate.
      if (toks[j].kind == TokKind::kPunct &&
          (toks[j].text == "&" || toks[j].text == "*" ||
           toks[j].text == "::")) {
        continue;
      }
      bool allocates = false;
      if (toks[j].kind == TokKind::kIdent && j + 1 < fn.body_end) {
        const Token& after = toks[j + 1];
        if (IsPunct(after, "=")) allocates = true;
        if ((IsPunct(after, "(") || IsPunct(after, "{")) &&
            MatchBracket(toks, j + 1) > j + 2) {
          allocates = true;  // non-empty constructor args
        }
      } else if (IsPunct(toks[j], "(") || IsPunct(toks[j], "{")) {
        if (MatchBracket(toks, j) > j + 1) allocates = true;  // temporary
      }
      if (allocates && !m.HasWaiver(t.line, "allow_alloc")) {
        Add(out, "R4", m, t.line,
            "local std::" + toks[i + 2].text +
                " constructed with contents in HETGMP_HOT_PATH function '" +
                fn.name +
                "'; hoist to reused member scratch or waive with "
                "`// lint: allow_alloc(reason)`");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R5: bit-determinism.

void CheckR5(const FileModel& m, const Registry& reg, const FunctionInfo& fn,
             std::vector<Finding>* out) {
  const std::vector<Token>& toks = m.lex.tokens;
  // Identifiers with unordered container types: fields across all files
  // (the registry) plus declarations in this file.
  std::unordered_set<std::string> unordered_ids;
  for (const auto& [name, cls] : reg.classes) {
    for (const Field& f : cls.fields) {
      if (f.type_tokens.find("unordered_") != std::string::npos) {
        unordered_ids.insert(f.name);
      }
    }
  }
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        toks[i].text.rfind("unordered_", 0) != 0) {
      continue;
    }
    size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) j = SkipAngles(toks, j);
    while (j < toks.size() && toks[j].kind == TokKind::kPunct &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      unordered_ids.insert(toks[j].text);
    }
  }

  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPragma) {
      if (t.text.find("omp") != std::string::npos &&
          !m.HasWaiver(t.line, "allow_reassoc")) {
        Add(out, "R5", m, t.line,
            "OpenMP pragma in HETGMP_BIT_STABLE function '" + fn.name +
                "'; parallel reductions reassociate floating-point sums");
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "reduce" || t.text == "transform_reduce" ||
        t.text == "execution") {
      if (!m.HasWaiver(t.line, "allow_reassoc")) {
        Add(out, "R5", m, t.line,
            "'" + t.text + "' in HETGMP_BIT_STABLE function '" + fn.name +
                "'; unordered/parallel reductions are not bit-stable "
                "(waive with `// lint: allow_reassoc(reason)`)");
      }
      continue;
    }
    if (t.text == "for" && i + 1 < fn.body_end && IsPunct(toks[i + 1], "(")) {
      const size_t close = MatchBracket(toks, i + 1);
      if (close >= fn.body_end) continue;
      // Range-for: a single top-level `:`.
      size_t colon = close;
      for (size_t k = i + 2; k < close; ++k) {
        if (toks[k].kind == TokKind::kPunct && toks[k].text == "(") {
          k = MatchBracket(toks, k);
          continue;
        }
        if (IsPunct(toks[k], ":")) {
          colon = k;
          break;
        }
      }
      if (colon == close) continue;
      for (size_t k = colon + 1; k < close; ++k) {
        if (toks[k].kind == TokKind::kIdent &&
            unordered_ids.count(toks[k].text)) {
          if (!m.HasWaiver(t.line, "allow_unordered")) {
            Add(out, "R5", m, t.line,
                "range-for over unordered container '" + toks[k].text +
                    "' in HETGMP_BIT_STABLE function '" + fn.name +
                    "'; iteration order is hash-dependent and must not "
                    "feed FP accumulation "
                    "(waive with `// lint: allow_unordered(reason)`)");
          }
          break;
        }
      }
    }
  }
}

}  // namespace

const std::map<std::string, int>& RankTable() {
  // Mirror of lock_rank in src/common/thread_annotations.h. lint_test.cc
  // parses that header and asserts the two tables are identical.
  static const std::map<std::string, int> kRanks = {
      {"kNone", 0},          {"kBatcher", 10},    {"kStorePrefetch", 15},
      {"kSnapshotPublish", 20}, {"kSnapshotSlot", 30}, {"kServeShard", 40},
      {"kEngineMerge", 50},  {"kStoreWarm", 52},  {"kStoreCold", 54},
      {"kCommConn", 56},     {"kCommMailbox", 58}, {"kEmbedStripe", 60},
      {"kLeaf", 100},
  };
  return kRanks;
}

void Registry::Add(const FileModel& m) {
  for (const ClassInfo& cls : m.classes) {
    classes[cls.qualified] = cls;
  }
}

std::string Registry::MutexRank(const std::string& enclosing,
                                const std::string& field) const {
  auto rank_in = [&field](const ClassInfo& cls) -> std::string {
    for (const Field& f : cls.fields) {
      if (f.is_mutex && f.name == field) return f.rank;
    }
    return "";
  };
  if (!enclosing.empty()) {
    if (auto it = classes.find(enclosing); it != classes.end()) {
      std::string r = rank_in(it->second);
      if (!r.empty()) return r;
    }
    // Classes nested inside `enclosing` (e.g. LookupService::Shard).
    const std::string prefix = enclosing + "::";
    for (const auto& [name, cls] : classes) {
      if (name.rfind(prefix, 0) != 0 &&
          name.find("::" + prefix) == std::string::npos) {
        continue;
      }
      std::string r = rank_in(cls);
      if (!r.empty()) return r;
    }
  }
  // Unique global match as a fallback (free functions, helpers).
  std::string found;
  for (const auto& [name, cls] : classes) {
    std::string r = rank_in(cls);
    if (r.empty()) continue;
    if (!found.empty() && found != r) return "";  // ambiguous
    found = r;
  }
  return found;
}

void RunRules(const FileModel& m, const Registry& reg,
              std::vector<Finding>* findings) {
  CheckR2(m, findings);
  CheckR3(m, findings);
  for (const FunctionInfo& fn : m.functions) {
    CheckR1(m, reg, fn, findings);
    if (fn.hot_path) CheckR4(m, fn, findings);
    if (fn.bit_stable) CheckR5(m, reg, fn, findings);
  }
}

}  // namespace hetgmp::lint
