#ifndef HETGMP_TOOLS_LINT_DRIVER_H_
#define HETGMP_TOOLS_LINT_DRIVER_H_

#include <string>
#include <vector>

#include "rules.h"

namespace hetgmp::lint {

// Source files named by a compile_commands.json (the "file" entry of each
// command, resolved against its "directory" when relative). Minimal JSON
// handling: exactly the subset CMake emits.
std::vector<std::string> FilesFromCompileCommands(const std::string& path);

// All .h files under `dir`, recursively (compile databases list only
// translation units; the contracts live mostly in headers).
std::vector<std::string> CollectHeaders(const std::string& dir);

// All .h/.cc files under `dir`, recursively — the compiler-free
// equivalent of compdb + headers, used by lint_test's clean-tree check.
std::vector<std::string> CollectSources(const std::string& dir);

// Lints `paths` (deduplicated): builds every file's model, merges the
// cross-file registry, then runs R1–R5 per file. Files that cannot be
// read produce a pseudo-finding with rule "IO".
std::vector<Finding> LintFiles(std::vector<std::string> paths);

// Serializes findings as a JSON array (stable field order) for the CI
// artifact written by `scripts/check.sh lint`.
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace hetgmp::lint

#endif  // HETGMP_TOOLS_LINT_DRIVER_H_
