#include "model.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace hetgmp::lint {

namespace {

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Index of the token matching the open bracket at `open` (which must be
// one of ( [ { ), or tokens.size() when unbalanced.
size_t MatchBracket(const std::vector<Token>& toks, size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

const std::set<std::string>& TrailingQualifiers() {
  static const std::set<std::string> kQuals = {
      "const", "noexcept", "override", "final", "mutable", "volatile"};
  return kQuals;
}

bool IsAnnotationMacro(const std::string& name) {
  return name.rfind("HETGMP_", 0) == 0;
}

// Statement head classification for an opening `{`.
enum class BraceKind { kNamespace, kClass, kFunction, kOther };

struct HeadInfo {
  BraceKind kind = BraceKind::kOther;
  std::string name;       // class/function name
  std::string qualifier;  // Foo in Foo::Bar( for functions
  bool hot_path = false;
  bool bit_stable = false;
  int name_line = 0;
};

HeadInfo ClassifyHead(const std::vector<Token>& toks, size_t begin,
                      size_t end /*index of the { */) {
  HeadInfo info;
  if (begin >= end) return info;

  // Skip leading access specifiers ("public :" etc.) left over from the
  // statement accumulator.
  while (begin + 1 < end &&
         (IsIdent(toks[begin], "public") || IsIdent(toks[begin], "private") ||
          IsIdent(toks[begin], "protected")) &&
         IsPunct(toks[begin + 1], ":")) {
    begin += 2;
  }
  if (begin >= end) return info;

  if (IsIdent(toks[begin], "namespace")) {
    info.kind = BraceKind::kNamespace;
    if (begin + 1 < end && toks[begin + 1].kind == TokKind::kIdent) {
      info.name = toks[begin + 1].text;
    }
    return info;
  }

  // `class X ... {` / `struct X ... {`. `enum class` is not a scope we
  // care about; `class` must be the head's first keyword (a field of
  // class type never starts its own brace statement at class scope —
  // brace-init braces are preceded by the member name, handled below).
  if (IsIdent(toks[begin], "class") || IsIdent(toks[begin], "struct")) {
    // Cut at a base-clause `:` (single colon; `::` is one token).
    size_t cut = end;
    int angle = 0;
    for (size_t i = begin + 1; i < end; ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      if (toks[i].text == "<") ++angle;
      if (toks[i].text == ">") --angle;
      if (toks[i].text == ":" && angle == 0) {
        cut = i;
        break;
      }
    }
    // Name = last identifier before the cut, skipping `final` and
    // attribute-macro arguments.
    for (size_t i = cut; i-- > begin + 1;) {
      if (toks[i].kind == TokKind::kIdent && toks[i].text != "final" &&
          !IsAnnotationMacro(toks[i].text)) {
        // Skip idents inside macro parens: HETGMP_CAPABILITY("mutex").
        bool in_parens = false;
        for (size_t j = begin + 1; j < i; ++j) {
          if (IsPunct(toks[j], "(")) {
            size_t close = MatchBracket(toks, j);
            if (i < close) {
              in_parens = true;
              break;
            }
            j = close;
          }
        }
        if (in_parens) continue;
        info.kind = BraceKind::kClass;
        info.name = toks[i].text;
        info.name_line = toks[i].line;
        return info;
      }
    }
    return info;
  }

  if (IsIdent(toks[begin], "enum") || IsIdent(toks[begin], "extern")) {
    return info;  // kOther
  }

  // Function definition: the head, after stripping trailing qualifiers,
  // annotation-macro calls, member-initializer lists, and `-> type`
  // returns, ends with the `)` of a parameter list whose preceding
  // identifier is the function name.
  size_t last = end;  // one past the last head token considered
  while (last > begin) {
    const Token& t = toks[last - 1];
    if (t.kind == TokKind::kIdent && TrailingQualifiers().count(t.text)) {
      --last;
      continue;
    }
    break;
  }
  if (last == begin || !IsPunct(toks[last - 1], ")")) {
    // Constructor member-init lists (`Foo() : a_(x), b_{y} {`) end with
    // `)` or `}` of the last initializer; detect via a top-level `:`
    // after a `)` and re-anchor on the parameter list before it.
    size_t colon = end;
    int nest = 0;
    for (size_t i = begin; i < end; ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      const std::string& p = toks[i].text;
      if (p == "(" || p == "[") {
        i = MatchBracket(toks, i);
        continue;
      }
      if (p == ":" && nest == 0 && i > begin && IsPunct(toks[i - 1], ")")) {
        colon = i;
        break;
      }
    }
    if (colon == end) return info;  // kOther (brace init, array, ...)
    // This `{` is the ctor body only if the initializers after the colon
    // are complete — they end with `)` or `}`. Otherwise it is the brace
    // init of one member (`: mu_{kLeaf}`), which the caller skips.
    if (colon + 1 >= end ||
        !(IsPunct(toks[end - 1], ")") || IsPunct(toks[end - 1], "}"))) {
      return info;
    }
    last = colon;  // now ends with the param-list `)`
  }

  // Walk back over annotation-macro calls: `) HETGMP_EXCLUDES ( mu_ )`.
  while (true) {
    if (last == begin || !IsPunct(toks[last - 1], ")")) break;
    // Find the `(` matching this `)` by scanning backwards.
    int depth = 0;
    size_t open = begin;
    bool found = false;
    for (size_t i = last; i-- > begin;) {
      if (toks[i].kind != TokKind::kPunct) continue;
      if (toks[i].text == ")") ++depth;
      if (toks[i].text == "(") {
        if (--depth == 0) {
          open = i;
          found = true;
          break;
        }
      }
    }
    if (!found || open == begin) return info;
    const Token& before = toks[open - 1];
    if (before.kind == TokKind::kIdent && IsAnnotationMacro(before.text)) {
      last = open - 1;  // strip and keep walking back
      // Strip qualifiers between the macro and the param list too.
      while (last > begin && toks[last - 1].kind == TokKind::kIdent &&
             TrailingQualifiers().count(toks[last - 1].text)) {
        --last;
      }
      continue;
    }
    // `before` is the function name candidate.
    if (before.kind != TokKind::kIdent) return info;
    static const std::set<std::string> kControl = {
        "if", "for", "while", "switch", "catch", "return", "sizeof",
        "alignof", "decltype", "else", "do", "new", "delete"};
    if (kControl.count(before.text)) return info;
    info.kind = BraceKind::kFunction;
    info.name = before.text;
    info.name_line = before.line;
    if (open >= begin + 3 && IsPunct(toks[open - 2], "::") &&
        toks[open - 3].kind == TokKind::kIdent) {
      info.qualifier = toks[open - 3].text;
    }
    for (size_t i = begin; i < open; ++i) {
      if (IsIdent(toks[i], "HETGMP_HOT_PATH")) info.hot_path = true;
      if (IsIdent(toks[i], "HETGMP_BIT_STABLE")) info.bit_stable = true;
    }
    return info;
  }
  return info;
}

class ModelBuilder {
 public:
  explicit ModelBuilder(FileModel* model) : m_(model) {}

  void Run() { ScanRange(0, m_->lex.tokens.size(), /*in_class=*/nullptr); }

 private:
  // Scans [begin, end); `in_class` is the ClassInfo being populated when
  // this range is a class body, null otherwise.
  void ScanRange(size_t begin, size_t end, ClassInfo* in_class) {
    const std::vector<Token>& toks = m_->lex.tokens;
    size_t stmt = begin;
    for (size_t i = begin; i < end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == ";") {
        if (in_class != nullptr && i > stmt) {
          ParseFieldStatement(stmt, i, in_class);
        }
        stmt = i + 1;
        continue;
      }
      if (t.text == "(" || t.text == "[") {
        // Keep bracketed runs opaque so a `{` inside a lambda argument or
        // attribute never triggers scope classification.
        size_t close = MatchBracket(toks, i);
        if (close >= end) return;  // unbalanced; bail on this range
        i = close;
        continue;
      }
      if (t.text != "{") continue;

      size_t close = MatchBracket(toks, i);
      if (close >= end) return;

      HeadInfo head = ClassifyHead(toks, stmt, i);
      switch (head.kind) {
        case BraceKind::kNamespace:
          ScanRange(i + 1, close, nullptr);
          i = close;
          stmt = close + 1;
          break;
        case BraceKind::kClass: {
          ClassInfo cls;
          cls.name = head.name;
          cls.qualified = in_class == nullptr
                              ? head.name
                              : in_class->qualified + "::" + head.name;
          cls.line = head.name_line;
          ScanRange(i + 1, close, &cls);
          m_->classes.push_back(std::move(cls));
          // The statement restarts after the class body; a field
          // statement must not see the body's tokens.
          i = close;
          stmt = close + 1;
          break;
        }
        case BraceKind::kFunction: {
          FunctionInfo fn;
          fn.name = head.name;
          fn.enclosing = !head.qualifier.empty()
                             ? head.qualifier
                             : (in_class != nullptr ? in_class->name : "");
          fn.line = head.name_line;
          fn.body_begin = i;
          fn.body_end = close + 1;
          fn.hot_path = head.hot_path;
          fn.bit_stable = head.bit_stable;
          m_->functions.push_back(std::move(fn));
          i = close;
          stmt = close + 1;
          break;
        }
        case BraceKind::kOther:
          // Brace init / enum body / array literal: opaque, but the
          // enclosing statement continues so a field's initializer tokens
          // stay inside its statement range.
          i = close;
          break;
      }
    }
  }

  void ParseFieldStatement(size_t begin, size_t end, ClassInfo* cls) {
    const std::vector<Token>& toks = m_->lex.tokens;
    // Strip leading access specifiers.
    while (begin + 1 < end &&
           (IsIdent(toks[begin], "public") ||
            IsIdent(toks[begin], "private") ||
            IsIdent(toks[begin], "protected")) &&
           IsPunct(toks[begin + 1], ":")) {
      begin += 2;
    }
    if (begin >= end) return;
    static const std::set<std::string> kSkipLead = {
        "using", "typedef", "friend", "static_assert", "template", "enum",
        "class", "struct", "operator"};
    if (toks[begin].kind == TokKind::kIdent &&
        kSkipLead.count(toks[begin].text)) {
      return;
    }
    // `= default` / `= delete` special members slip through as
    // `)`-terminated statements; anything containing `operator` too.
    for (size_t i = begin; i < end; ++i) {
      if (IsIdent(toks[i], "operator")) return;
    }

    // Find the declarator end: the first top-level `=` or `{` (the `{`
    // of a brace init was consumed opaquely, so it is still in range).
    size_t decl_end = end;
    for (size_t i = begin; i < end; ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      const std::string& p = toks[i].text;
      if (p == "(" || p == "[") {
        i = MatchBracket(toks, i);
        continue;
      }
      if (p == "<") {
        // Balance template args so `=` inside them (defaulted template
        // params don't occur in fields, but cheap to guard) is skipped.
        int angle = 1;
        size_t j = i + 1;
        for (; j < end && angle > 0; ++j) {
          if (toks[j].kind == TokKind::kPunct) {
            if (toks[j].text == "<") ++angle;
            if (toks[j].text == ">") --angle;
          }
        }
        i = j - 1;
        continue;
      }
      if (p == "=" || p == "{") {
        decl_end = i;
        break;
      }
    }

    // Strip trailing annotation macro calls and array extents from the
    // declarator; detect guardedness along the way.
    Field f;
    size_t last = decl_end;
    while (last > begin) {
      const Token& t = toks[last - 1];
      if (t.kind == TokKind::kPunct && (t.text == ")" || t.text == "]")) {
        // Scan back to the matching open bracket.
        const char* open_c = t.text == ")" ? "(" : "[";
        int depth = 0;
        size_t open = begin;
        bool found = false;
        for (size_t i = last; i-- > begin;) {
          if (toks[i].kind != TokKind::kPunct) continue;
          if (toks[i].text == t.text) ++depth;
          if (toks[i].text == open_c && --depth == 0) {
            open = i;
            found = true;
            break;
          }
        }
        if (!found) return;
        if (t.text == "]") {
          last = open;  // array extent
          continue;
        }
        if (open > begin && toks[open - 1].kind == TokKind::kIdent &&
            IsAnnotationMacro(toks[open - 1].text)) {
          if (toks[open - 1].text == "HETGMP_GUARDED_BY" ||
              toks[open - 1].text == "HETGMP_PT_GUARDED_BY") {
            f.guarded = true;
          }
          last = open - 1;
          continue;
        }
        return;  // `Type Name(args)` at class scope = method declaration
      }
      break;
    }
    if (last == begin || toks[last - 1].kind != TokKind::kIdent) return;
    static const std::set<std::string> kNotAName = {
        "const", "noexcept", "override", "final", "public", "private",
        "protected", "default", "delete", "void"};
    if (kNotAName.count(toks[last - 1].text)) return;

    f.name = toks[last - 1].text;
    f.line = toks[last - 1].line;

    bool is_static = false, is_const = false, is_ref = false;
    int angle = 0;
    for (size_t i = begin; i + 1 < last; ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") ++angle;
        if (t.text == ">") --angle;
        if (t.text == "&" && angle == 0) is_ref = true;
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      if (angle == 0) {
        if (t.text == "static") is_static = true;
        if (t.text == "constexpr") is_static = is_const = true;
        if (t.text == "const") is_const = true;
      }
      if (!f.type_tokens.empty()) f.type_tokens += ' ';
      f.type_tokens += t.text;
      if (t.text == "Mutex") f.is_mutex = true;
      if (t.text == "atomic") f.is_atomic = true;
    }
    if (f.type_tokens.empty()) return;  // e.g. a stray label
    // Self-synchronizing / immutable kinds that R2 does not require a
    // guard for: mutexes themselves, condition variables, atomics.
    const bool is_condvar =
        f.type_tokens.find("CondVar") != std::string::npos ||
        f.type_tokens.find("condition_variable") != std::string::npos;
    f.is_mutable_state =
        !is_static && !is_const && !is_ref && !f.is_mutex && !f.is_atomic &&
        !is_condvar;

    if (f.is_mutex) {
      // Rank from the initializer: `lock_rank :: kX` anywhere in the
      // statement (the brace-init tokens are inside [begin, end)).
      for (size_t i = begin; i + 2 < end; ++i) {
        if (IsIdent(toks[i], "lock_rank") && IsPunct(toks[i + 1], "::") &&
            toks[i + 2].kind == TokKind::kIdent) {
          f.rank = toks[i + 2].text;
          break;
        }
      }
    }
    cls->fields.push_back(std::move(f));
  }

  FileModel* m_;
};

}  // namespace

std::string FileModel::CommentsAt(int line) const {
  // Token-bearing lines, for deciding whether a comment line is
  // comment-only (safe to walk up through).
  std::unordered_set<int> code_lines;
  for (const Token& t : lex.tokens) code_lines.insert(t.line);
  std::unordered_map<int, std::string> by_line;
  for (const CommentLine& c : lex.comments) {
    std::string& s = by_line[c.line];
    if (!s.empty()) s += ' ';
    s += c.text;
  }
  std::string out;
  int first = line;
  while (first - 1 >= 1 && by_line.count(first - 1) &&
         !code_lines.count(first - 1)) {
    --first;
  }
  for (int l = first; l <= line; ++l) {
    auto it = by_line.find(l);
    if (it == by_line.end()) continue;
    if (!out.empty()) out += ' ';
    out += it->second;
  }
  return out;
}

bool FileModel::HasWaiver(int line, const std::string& directive) const {
  const std::string block = CommentsAt(line);
  const std::string needle = "lint:";
  size_t pos = 0;
  while ((pos = block.find(needle, pos)) != std::string::npos) {
    size_t p = pos + needle.size();
    while (p < block.size() && block[p] == ' ') ++p;
    if (block.compare(p, directive.size(), directive) == 0) {
      p += directive.size();
      if (p < block.size() && block[p] == '(') {
        // Require a non-empty reason.
        size_t q = p + 1;
        while (q < block.size() && block[q] == ' ') ++q;
        if (q < block.size() && block[q] != ')') return true;
      }
    }
    pos += needle.size();
  }
  return false;
}

const ClassInfo* FileModel::FindClass(const std::string& name) const {
  for (const ClassInfo& c : classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

FileModel BuildModel(LexedFile lexed) {
  FileModel m;
  m.lex = std::move(lexed);
  ModelBuilder(&m).Run();
  // Resolve `// lint: rank(kX)` comment ranks for mutex members that have
  // no initializer rank (e.g. std::vector<Mutex> ranked via SetRank).
  for (ClassInfo& cls : m.classes) {
    for (Field& f : cls.fields) {
      if (!f.is_mutex || !f.rank.empty()) continue;
      const std::string block = m.CommentsAt(f.line);
      const size_t pos = block.find("lint: rank(");
      if (pos == std::string::npos) continue;
      const size_t open = block.find('(', pos);
      const size_t close = block.find(')', open);
      if (open != std::string::npos && close != std::string::npos) {
        f.rank = block.substr(open + 1, close - open - 1);
      }
    }
  }
  return m;
}

}  // namespace hetgmp::lint
