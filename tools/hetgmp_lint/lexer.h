#ifndef HETGMP_TOOLS_LINT_LEXER_H_
#define HETGMP_TOOLS_LINT_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hetgmp::lint {

// A deliberately small C++ lexer: enough token structure for the
// pattern-level rules in rules.cc, nothing more. No preprocessing happens
// (macros are matched by name, which is exactly what the contract tags
// HETGMP_HOT_PATH / HETGMP_GUARDED_BY / MutexLock need); string literals
// and comments are fully consumed so their contents can never fake a
// token match.
enum class TokKind : uint8_t {
  kIdent,    // identifiers and keywords
  kNumber,   // integer/float literals (loosely lexed)
  kString,   // "..." or '...' (content dropped; raw strings supported)
  kPunct,    // single punctuation character, or :: as one token
  kPragma,   // a whole `#pragma ...` line (text = full line)
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

// Line-anchored comment, kept out of the token stream. Both // and /* */
// comments are recorded; a block comment is attributed to each line it
// spans so waiver lookups by line work across wrapped comments.
struct CommentLine {
  int line;
  std::string text;  // comment text without the // or /* */ framing
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<CommentLine> comments;  // sorted by line
};

// Lexes `source`. Never fails: unrecognized bytes become kPunct tokens.
LexedFile Lex(const std::string& path, const std::string& source);

}  // namespace hetgmp::lint

#endif  // HETGMP_TOOLS_LINT_LEXER_H_
