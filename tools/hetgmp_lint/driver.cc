#include "driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lexer.h"
#include "model.h"

namespace hetgmp::lint {

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Reads one JSON string starting at src[i] == '"'; returns the unescaped
// value and leaves i one past the closing quote.
std::string ReadJsonString(const std::string& src, size_t* i) {
  std::string out;
  size_t p = *i + 1;
  while (p < src.size() && src[p] != '"') {
    if (src[p] == '\\' && p + 1 < src.size()) {
      const char c = src[p + 1];
      if (c == 'n') {
        out += '\n';
      } else if (c == 't') {
        out += '\t';
      } else {
        out += c;  // \" \\ \/ — keep the escaped char
      }
      p += 2;
      continue;
    }
    out += src[p++];
  }
  *i = p < src.size() ? p + 1 : p;
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool IsSourceExt(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

std::vector<std::string> FilesFromCompileCommands(const std::string& path) {
  std::string src;
  std::vector<std::string> files;
  if (!ReadFile(path, &src)) return files;
  // The database is an array of objects with flat string fields; walking
  // key/value pairs is enough — no nesting beyond one object level.
  std::string directory, file;
  auto flush = [&]() {
    if (file.empty()) return;
    std::filesystem::path p(file);
    if (p.is_relative() && !directory.empty()) {
      p = std::filesystem::path(directory) / p;
    }
    files.push_back(p.lexically_normal().string());
    file.clear();
  };
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '}') {
      flush();
      continue;
    }
    if (src[i] != '"') continue;
    std::string key = ReadJsonString(src, &i);
    // Expect `: "value"` next for the keys we care about.
    while (i < src.size() && (src[i] == ' ' || src[i] == ':' ||
                              src[i] == '\n' || src[i] == '\t')) {
      ++i;
    }
    if (i >= src.size() || src[i] != '"') continue;
    std::string value = ReadJsonString(src, &i);
    --i;  // loop increment
    if (key == "directory") directory = value;
    if (key == "file") file = value;
  }
  flush();
  return files;
}

namespace {

std::vector<std::string> Walk(const std::string& dir, bool headers_only) {
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::filesystem::path& p = it->path();
    if (!IsSourceExt(p)) continue;
    if (headers_only && p.extension().string()[1] != 'h') continue;
    out.push_back(p.lexically_normal().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::string> CollectHeaders(const std::string& dir) {
  return Walk(dir, /*headers_only=*/true);
}

std::vector<std::string> CollectSources(const std::string& dir) {
  return Walk(dir, /*headers_only=*/false);
}

std::vector<Finding> LintFiles(std::vector<std::string> paths) {
  // Canonicalize so the same file reached via the compile database
  // (absolute) and --src (relative) dedupes; report relative to the
  // working directory when possible (shorter, stable across machines).
  const std::string cwd =
      std::filesystem::current_path().lexically_normal().string() + "/";
  for (std::string& p : paths) {
    std::error_code ec;
    std::filesystem::path canon = std::filesystem::weakly_canonical(p, ec);
    if (ec) continue;
    std::string s = canon.string();
    if (s.rfind(cwd, 0) == 0) s = s.substr(cwd.size());
    p = std::move(s);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<Finding> findings;
  std::vector<FileModel> models;
  models.reserve(paths.size());
  Registry reg;
  for (const std::string& path : paths) {
    std::string src;
    if (!ReadFile(path, &src)) {
      findings.push_back({"IO", path, 0, "cannot read file"});
      continue;
    }
    models.push_back(BuildModel(Lex(path, src)));
    reg.Add(models.back());
  }
  for (const FileModel& m : models) {
    RunRules(m, reg, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"rule\": \"" + JsonEscape(f.rule) + "\", \"file\": \"" +
           JsonEscape(f.path) + "\", \"line\": " + std::to_string(f.line) +
           ", \"message\": \"" + JsonEscape(f.message) + "\"}";
    if (i + 1 < findings.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

}  // namespace hetgmp::lint
