#include "lexer.h"

#include <cctype>

namespace hetgmp::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexedFile Lex(const std::string& path, const std::string& src) {
  LexedFile out;
  out.path = path;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;

  auto push_comment = [&out](int at_line, const std::string& text) {
    out.comments.push_back({at_line, text});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor line: keep #pragma (R5 looks for omp), swallow the
    // rest. Handles line continuations.
    if (c == '#') {
      const int start_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          ++line;
          text += ' ';
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i];
        ++i;
      }
      if (text.rfind("#pragma", 0) == 0) {
        out.tokens.push_back({TokKind::kPragma, text, start_line});
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      i += 2;
      std::string text;
      while (i < n && src[i] != '\n') text += src[i++];
      push_comment(line, text);
      continue;
    }
    // Block comment: attribute content to every line it spans.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      std::string text;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          push_comment(line, text);
          text.clear();
          ++line;
        } else {
          text += src[i];
        }
        ++i;
      }
      push_comment(line, text);
      if (i < n) i += 2;  // closing */
      continue;
    }
    // String/char literals (contents dropped). Raw strings: R"delim(...)delim".
    if (c == '"' || c == '\'') {
      const int start_line = line;
      // Raw string?
      const bool raw = c == '"' && !out.tokens.empty() &&
                       out.tokens.back().kind == TokKind::kIdent &&
                       (out.tokens.back().text == "R" ||
                        (out.tokens.back().text.size() >= 2 &&
                         out.tokens.back().text.back() == 'R'));
      if (raw) {
        out.tokens.pop_back();  // the R prefix is part of the literal
        ++i;                    // past "
        std::string delim;
        while (i < n && src[i] != '(') delim += src[i++];
        const std::string close = ")" + delim + "\"";
        size_t end = src.find(close, i);
        if (end == std::string::npos) end = n;
        for (size_t j = i; j < end && j < n; ++j) {
          if (src[j] == '\n') ++line;
        }
        i = (end == n) ? n : end + close.size();
        out.tokens.push_back({TokKind::kString, "", start_line});
        continue;
      }
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep line count sane
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back({TokKind::kString, "", start_line});
      continue;
    }
    if (IsIdentStart(c)) {
      std::string text;
      while (i < n && IsIdentChar(src[i])) text += src[i++];
      out.tokens.push_back({TokKind::kIdent, text, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      // Loose: consume [0-9a-zA-Z_.']* plus exponent signs — fine for
      // pattern matching, which never inspects number values.
      while (i < n &&
             (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
              ((src[i] == '+' || src[i] == '-') && i > 0 &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        text += src[i++];
      }
      out.tokens.push_back({TokKind::kNumber, text, line});
      continue;
    }
    // :: as a single token simplifies qualified-name matching.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace hetgmp::lint
