# Empty compiler generated dependencies file for hetgmp_lint_lib.
# This may be replaced when dependencies are built.
