
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/hetgmp_lint/driver.cc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/driver.cc.o" "gcc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/driver.cc.o.d"
  "/root/repo/tools/hetgmp_lint/lexer.cc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/lexer.cc.o" "gcc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/lexer.cc.o.d"
  "/root/repo/tools/hetgmp_lint/model.cc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/model.cc.o" "gcc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/model.cc.o.d"
  "/root/repo/tools/hetgmp_lint/rules.cc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/rules.cc.o" "gcc" "tools/hetgmp_lint/CMakeFiles/hetgmp_lint_lib.dir/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
