file(REMOVE_RECURSE
  "libhetgmp_lint_lib.a"
)
