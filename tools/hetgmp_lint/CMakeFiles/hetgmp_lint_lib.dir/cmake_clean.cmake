file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_lint_lib.dir/driver.cc.o"
  "CMakeFiles/hetgmp_lint_lib.dir/driver.cc.o.d"
  "CMakeFiles/hetgmp_lint_lib.dir/lexer.cc.o"
  "CMakeFiles/hetgmp_lint_lib.dir/lexer.cc.o.d"
  "CMakeFiles/hetgmp_lint_lib.dir/model.cc.o"
  "CMakeFiles/hetgmp_lint_lib.dir/model.cc.o.d"
  "CMakeFiles/hetgmp_lint_lib.dir/rules.cc.o"
  "CMakeFiles/hetgmp_lint_lib.dir/rules.cc.o.d"
  "libhetgmp_lint_lib.a"
  "libhetgmp_lint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_lint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
