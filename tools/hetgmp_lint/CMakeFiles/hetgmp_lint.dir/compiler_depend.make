# Empty compiler generated dependencies file for hetgmp_lint.
# This may be replaced when dependencies are built.
