file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_lint.dir/main.cc.o"
  "CMakeFiles/hetgmp_lint.dir/main.cc.o.d"
  "hetgmp_lint"
  "hetgmp_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
