#ifndef HETGMP_TOOLS_LINT_RULES_H_
#define HETGMP_TOOLS_LINT_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "model.h"

namespace hetgmp::lint {

struct Finding {
  std::string rule;  // "R1".."R5"
  std::string path;
  int line = 0;
  std::string message;
};

// The numeric lock-rank table. Mirrors lock_rank in
// src/common/thread_annotations.h; tests/lint_test.cc cross-checks the two
// so they cannot drift silently.
const std::map<std::string, int>& RankTable();

// Global view across all linted files: class registry (for resolving a
// mutex mentioned in one translation unit but declared in a header) plus
// identifiers with unordered container types (for R5).
struct Registry {
  // qualified class name -> info (last definition wins; identical for
  // headers included from several TUs).
  std::map<std::string, ClassInfo> classes;

  void Add(const FileModel& m);

  // Rank name (e.g. "kServeShard") of the mutex field `field` looked up
  // from the perspective of `enclosing` (the class whose method is being
  // scanned): tries `enclosing` itself, then classes nested inside it.
  // Empty string when the field is unknown or unranked.
  std::string MutexRank(const std::string& enclosing,
                        const std::string& field) const;
};

// Runs R1–R5 over one file model, appending findings.
//   R1  lock-rank order at MutexLock sites
//   R2  annotation coverage of mutable fields in mutex-owning classes
//   R3  comm::Fabric byte-moving calls must charge a TrafficClass
//   R4  no allocation in HETGMP_HOT_PATH functions
//   R5  no reassociating reductions / unordered iteration in
//       HETGMP_BIT_STABLE functions
void RunRules(const FileModel& m, const Registry& reg,
              std::vector<Finding>* findings);

}  // namespace hetgmp::lint

#endif  // HETGMP_TOOLS_LINT_RULES_H_
