// hetgmp_lint: project-contract static analyzer.
//
// Enforces the concurrency and performance contracts DESIGN.md §5b
// documents, over the whole tree, with no compiler dependency:
//
//   R1  lock-rank order at MutexLock sites
//   R2  HETGMP_GUARDED_BY coverage of mutable fields in mutex-owning
//       classes (waiver: `// lint: unguarded(reason)`)
//   R3  comm::Fabric byte-moving calls must charge a TrafficClass
//   R4  no allocation in HETGMP_HOT_PATH functions
//       (waiver: `// lint: allow_alloc(reason)`)
//   R5  no reassociating reductions or unordered-container iteration in
//       HETGMP_BIT_STABLE functions (waivers: allow_reassoc /
//       allow_unordered)
//
// Usage:
//   hetgmp_lint [--compdb compile_commands.json] [--src DIR]...
//               [--json OUT.json] [FILE]...
//
// Findings go to stdout as `path:line: [Rn] message`; exit status is 1
// when any finding exists. --json (or the HETGMP_LINT_JSON environment
// variable) additionally writes a machine-readable artifact for CI.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "driver.h"

int main(int argc, char** argv) {
  using namespace hetgmp::lint;
  std::vector<std::string> paths;
  std::string json_out;
  if (const char* env = std::getenv("HETGMP_LINT_JSON")) json_out = env;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hetgmp_lint: %s requires a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--compdb") {
      std::vector<std::string> files = FilesFromCompileCommands(next());
      if (files.empty()) {
        std::fprintf(stderr,
                     "hetgmp_lint: no entries read from compile database\n");
        return 2;
      }
      paths.insert(paths.end(), files.begin(), files.end());
    } else if (arg == "--src") {
      std::vector<std::string> hdrs = CollectHeaders(next());
      paths.insert(paths.end(), hdrs.begin(), hdrs.end());
    } else if (arg == "--json") {
      json_out = next();
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: hetgmp_lint [--compdb compile_commands.json] "
                   "[--src DIR]... [--json OUT.json] [FILE]...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hetgmp_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "hetgmp_lint: no input files (see --help)\n");
    return 2;
  }

  const size_t num_inputs = paths.size();
  std::vector<Finding> findings = LintFiles(std::move(paths));

  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "hetgmp_lint: cannot write %s\n",
                   json_out.c_str());
      return 2;
    }
    out << FindingsToJson(findings);
  }
  std::fprintf(stderr, "hetgmp_lint: %zu files, %zu finding%s\n", num_inputs,
               findings.size(), findings.size() == 1 ? "" : "s");
  return findings.empty() ? 0 : 1;
}
