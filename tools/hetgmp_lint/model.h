#ifndef HETGMP_TOOLS_LINT_MODEL_H_
#define HETGMP_TOOLS_LINT_MODEL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lexer.h"

namespace hetgmp::lint {

// Lightweight declaration model built from the token stream: which classes
// exist, which fields they declare (and whether those fields are guarded),
// which Mutex members carry which lock rank, and where function bodies
// start and end. This is not a parser — it tracks brace depth and a few
// keyword patterns, which is enough for project files written in the
// repo's (clang-format enforced) style.

// A data member of a class/struct.
struct Field {
  std::string name;
  std::string type_tokens;  // space-joined declaration tokens before name
  int line = 0;
  bool is_mutable_state = false;  // non-const, non-static, non-reference
  bool guarded = false;           // HETGMP_GUARDED_BY / HETGMP_PT_GUARDED_BY
  bool is_mutex = false;          // type mentions Mutex (hetgmp::Mutex)
  bool is_atomic = false;         // std::atomic<...> — self-synchronizing
  // For is_mutex fields: rank from the initializer (lock_rank::kX) or a
  // `// lint: rank(kX)` comment; empty when unranked.
  std::string rank;
};

struct ClassInfo {
  std::string name;        // unqualified
  std::string qualified;   // Outer::Inner for nested classes
  int line = 0;
  std::vector<Field> fields;
  bool HasMutexMember() const {
    for (const Field& f : fields) {
      if (f.is_mutex) return true;
    }
    return false;
  }
};

// A function definition (has a body in this file).
struct FunctionInfo {
  std::string name;            // unqualified
  std::string enclosing;       // class name from Foo::Bar( or nesting; "" free
  int line = 0;                // line of the name token
  size_t body_begin = 0;       // token index of the opening {
  size_t body_end = 0;         // token index one past the closing }
  bool hot_path = false;       // HETGMP_HOT_PATH appears in the declaration
  bool bit_stable = false;     // HETGMP_BIT_STABLE appears in the declaration
};

struct FileModel {
  LexedFile lex;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;

  // Comment text for `line`, or the contiguous run of comment-only lines
  // ending directly above it, concatenated. Empty when none.
  std::string CommentsAt(int line) const;

  // True when a `// lint: directive(...)` waiver applies at `line` (the
  // decl's own line or the contiguous comment block above it). The
  // directive must have a non-empty reason.
  bool HasWaiver(int line, const std::string& directive) const;

  const ClassInfo* FindClass(const std::string& name) const;
};

// Builds the model. Tolerant: anything it cannot classify is skipped.
FileModel BuildModel(LexedFile lexed);

}  // namespace hetgmp::lint

#endif  // HETGMP_TOOLS_LINT_MODEL_H_
