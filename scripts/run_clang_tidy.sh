#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over src/ using the compile
# database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS is ON by
# default in the top-level CMakeLists).
#
#   scripts/run_clang_tidy.sh [build_dir] [-- extra clang-tidy args]
#
# build_dir defaults to ./build; it is configured first if no
# compile_commands.json exists there yet.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
extra_args=()
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
  extra_args=("$@")
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "error: ${tidy} not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 1
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "==== configuring ${build_dir} to export compile_commands.json"
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "==== clang-tidy over ${#sources[@]} files (db: ${build_dir})"

# run-clang-tidy parallelizes when available; otherwise iterate.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${tidy}" -p "${build_dir}" \
    -quiet "${extra_args[@]}" "${sources[@]}"
else
  status=0
  for f in "${sources[@]}"; do
    "${tidy}" -p "${build_dir}" --quiet "${extra_args[@]}" "${f}" || status=1
  done
  exit "${status}"
fi
