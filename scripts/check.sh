#!/usr/bin/env bash
# Concurrency-correctness driver: builds and runs the test suite under the
# configurations that enforce the repo's locking contract.
#
#   scripts/check.sh            # all modes: release, tsan, asan-ubsan
#   scripts/check.sh release    # plain optimized build, -Werror
#   scripts/check.sh tsan       # ThreadSanitizer
#   scripts/check.sh asan-ubsan # AddressSanitizer + UBSanitizer
#
# Environment:
#   CXX       compiler to use (default: system default; use clang++ to also
#             get -Wthread-safety enforcement)
#   JOBS      parallelism (default: nproc)
#   BUILD_DIR base directory for build trees (default: <repo>/build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
base="${BUILD_DIR:-${repo_root}/build-check}"

# Sanitized suites only need the tests; skipping benches/examples roughly
# halves the build. Release keeps everything on so -Werror covers the
# whole tree.
run_mode() {
  local mode="$1"
  local dir="${base}/${mode}"
  local -a cmake_args=(-DHETGMP_WERROR=ON)
  case "${mode}" in
    release)
      cmake_args+=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
      ;;
    tsan)
      cmake_args+=(-DHETGMP_SANITIZE=thread
                   -DHETGMP_BUILD_BENCHMARKS=OFF
                   -DHETGMP_BUILD_EXAMPLES=OFF)
      ;;
    asan-ubsan)
      cmake_args+=("-DHETGMP_SANITIZE=address;undefined"
                   -DHETGMP_BUILD_BENCHMARKS=OFF
                   -DHETGMP_BUILD_EXAMPLES=OFF)
      ;;
    *)
      echo "unknown mode: ${mode} (expected release, tsan, or asan-ubsan)" >&2
      return 2
      ;;
  esac

  echo "==== [${mode}] configure"
  cmake -B "${dir}" -S "${repo_root}" "${cmake_args[@]}"
  echo "==== [${mode}] build"
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${mode}] ctest"
  # halt_on_error makes any sanitizer report fail the test that produced
  # it; second_deadlock_stack improves TSan lock-order reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_stack_use_after_return=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
  echo "==== [${mode}] OK"
}

modes=("$@")
if [[ ${#modes[@]} -eq 0 ]]; then
  modes=(release tsan asan-ubsan)
fi
for mode in "${modes[@]}"; do
  run_mode "${mode}"
done
echo "All requested modes passed: ${modes[*]}"
