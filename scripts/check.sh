#!/usr/bin/env bash
# Concurrency-correctness driver: builds and runs the test suite under the
# configurations that enforce the repo's locking contract.
#
#   scripts/check.sh            # all modes: release, tsan, asan-ubsan
#   scripts/check.sh release    # plain optimized build, -Werror
#   scripts/check.sh tsan       # ThreadSanitizer
#   scripts/check.sh asan-ubsan # AddressSanitizer + UBSanitizer
#   scripts/check.sh partitioner-smoke
#                               # parallel-partitioner gate: the partition
#                               # and bookkeeping tests under TSan, then
#                               # the scaling bench on a tiny graph with
#                               # JSON output (quality parity + race
#                               # freedom in one mode)
#   scripts/check.sh hotpath-smoke
#                               # training hot-path gate: the engine and
#                               # golden-trajectory tests under TSan
#                               # (planned path race-free and bit-equal
#                               # to the reference), then the wall-clock
#                               # bench on scaled-down workloads with
#                               # JSON output
#   scripts/check.sh storage-smoke
#                               # tiered-store gate: the store tests
#                               # (cold-tier format, migration hammer,
#                               # tiered-vs-resident bit-equality) under
#                               # TSan, then the tiering bench on a tiny
#                               # table with JSON output
#   scripts/check.sh comm-smoke
#                               # transport gate: the backend-parameterized
#                               # conformance suite, the fault-injection
#                               # property suite, and the Fabric
#                               # accounting tests under TSan, then a
#                               # release build running the real
#                               # multi-process socket tests (fork driver
#                               # + TCP rendezvous + injected fault, which
#                               # TSan skips) and the transport bench with
#                               # JSON output
#   scripts/check.sh multiproc-smoke
#                               # engine-over-transport gate: the golden
#                               # parity suite (transport-driven engine
#                               # bit-equal to the seed trajectories,
#                               # tallies equal the ledger) under TSan,
#                               # then a release build driving a real
#                               # 2-process TCP training run through
#                               # hetgmp_cli plus the 1/2/4-process
#                               # scale-out bench with JSON output
#   scripts/check.sh serve-smoke
#                               # serving gate: the snapshot/lookup/batcher
#                               # suites plus the quantization + QoS suite
#                               # (round-trip bounds, concurrent quantized
#                               # swap hammer, admission/weighted-dequeue)
#                               # under TSan, then a release build of the
#                               # open-loop load bench at tiny scale with
#                               # JSON output
#   scripts/check.sh lint       # hetgmp_lint (R1-R5 project contracts)
#                               # over the compile database + all of
#                               # src/; findings JSON artifact at
#                               # $HETGMP_LINT_JSON (default:
#                               # <build>/LINT_findings.json)
#   scripts/check.sh lockrank   # optimized build with runtime lock-rank
#                               # enforcement forced on
#                               # (-DHETGMP_LOCK_RANK=ON): any mutex
#                               # acquired out of rank order aborts the
#                               # test that did it
#
# Environment:
#   CXX       compiler to use (default: system default; use clang++ to also
#             get -Wthread-safety enforcement)
#   JOBS      parallelism (default: nproc)
#   BUILD_DIR base directory for build trees (default: <repo>/build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
base="${BUILD_DIR:-${repo_root}/build-check}"

# Sanitized suites only need the tests; skipping benches/examples roughly
# halves the build. Release keeps everything on so -Werror covers the
# whole tree.
run_mode() {
  local mode="$1"
  local dir="${base}/${mode}"
  local -a cmake_args=(-DHETGMP_WERROR=ON)
  case "${mode}" in
    release)
      cmake_args+=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
      ;;
    tsan)
      cmake_args+=(-DHETGMP_SANITIZE=thread
                   -DHETGMP_BUILD_BENCHMARKS=OFF
                   -DHETGMP_BUILD_EXAMPLES=OFF)
      ;;
    asan-ubsan)
      cmake_args+=("-DHETGMP_SANITIZE=address;undefined"
                   -DHETGMP_BUILD_BENCHMARKS=OFF
                   -DHETGMP_BUILD_EXAMPLES=OFF)
      ;;
    lockrank)
      cmake_args+=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
                   -DHETGMP_LOCK_RANK=ON
                   -DHETGMP_BUILD_BENCHMARKS=OFF
                   -DHETGMP_BUILD_EXAMPLES=OFF)
      ;;
    *)
      echo "unknown mode: ${mode} (expected release, tsan, asan-ubsan," \
           "lint, lockrank, partitioner-smoke, hotpath-smoke," \
           "storage-smoke, comm-smoke, multiproc-smoke, or serve-smoke)" >&2
      return 2
      ;;
  esac

  echo "==== [${mode}] configure"
  cmake -B "${dir}" -S "${repo_root}" "${cmake_args[@]}"
  echo "==== [${mode}] build"
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${mode}] ctest"
  # halt_on_error makes any sanitizer report fail the test that produced
  # it; second_deadlock_stack improves TSan lock-order reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_stack_use_after_return=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
  echo "==== [${mode}] OK"
}

# Focused gate for the block-parallel hybrid partitioner: its tests (the
# parity harness, the determinism/validity fixtures, and the bookkeeping
# property sweep) under TSan — certifying the propose/commit phases
# race-free — plus a release build of the scaling bench on a tiny graph,
# harvesting the one-line JSON summaries for CI artifacts.
run_partitioner_smoke() {
  local tsan_dir="${base}/tsan"
  local rel_dir="${base}/release-bench"
  local filter='ParallelHybridTest|ParallelFixture|HybridSeedSweep|StateBookkeepingSweep|PartitionTest'

  echo "==== [partitioner-smoke] configure + build (tsan)"
  cmake -B "${tsan_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DHETGMP_SANITIZE=thread -DHETGMP_BUILD_BENCHMARKS=OFF \
    -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${jobs}" --target \
    partition_parallel_test partition_test property_test
  echo "==== [partitioner-smoke] partition tests under TSan"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
      -R "${filter}"

  echo "==== [partitioner-smoke] configure + build (release bench)"
  cmake -B "${rel_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${rel_dir}" -j "${jobs}" --target bench_partitioner_scale
  echo "==== [partitioner-smoke] scaling bench (tiny graph)"
  HETGMP_BENCH_SCALE="${HETGMP_BENCH_SCALE:-0.05}" \
  HETGMP_BENCH_JSON="${rel_dir}/BENCH_partitioner.json" \
    "${rel_dir}/bench/bench_partitioner_scale"
  echo "==== [partitioner-smoke] JSON summary at" \
       "${rel_dir}/BENCH_partitioner.json"
  echo "==== [partitioner-smoke] OK"
}

# Focused gate for the batch-plan training hot path: the engine suite and
# the golden-trajectory tests under TSan — certifying the planned
# iteration (plan build, screened inter-embedding pass, parallel
# round-serial section) race-free and bit-equal to the reference — plus a
# release build of the wall-clock bench on scaled-down workloads,
# harvesting the one-line JSON summaries for CI artifacts. (The 1.5x
# acceptance verdict only prints on full-scale runs; the smoke bench
# reports n/a by design.)
run_hotpath_smoke() {
  local tsan_dir="${base}/tsan"
  local rel_dir="${base}/release-bench"
  local filter='HotpathGoldenTest|EngineTest|EngineConfigTest'

  echo "==== [hotpath-smoke] configure + build (tsan)"
  cmake -B "${tsan_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DHETGMP_SANITIZE=thread -DHETGMP_BUILD_BENCHMARKS=OFF \
    -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${jobs}" --target \
    engine_test hotpath_golden_test
  echo "==== [hotpath-smoke] engine + golden tests under TSan"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
      -R "${filter}"

  echo "==== [hotpath-smoke] configure + build (release bench)"
  cmake -B "${rel_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${rel_dir}" -j "${jobs}" --target bench_train_hotpath
  echo "==== [hotpath-smoke] wall-clock bench (scaled-down workloads)"
  HETGMP_BENCH_SCALE="${HETGMP_BENCH_SCALE:-0.1}" \
  HETGMP_BENCH_JSON="${rel_dir}/BENCH_train_hotpath.json" \
    "${rel_dir}/bench/bench_train_hotpath"
  echo "==== [hotpath-smoke] JSON summary at" \
       "${rel_dir}/BENCH_train_hotpath.json"
  echo "==== [hotpath-smoke] OK"
}

# Focused gate for the tiered embedding store: the store suite (cold-tier
# file format, promote/demote hammer, prefetch pipeline, and the
# tiered-vs-resident bit-equality trajectory test) under TSan —
# certifying the stripe/cold/prefetch locking race-free — plus a release
# build of the tiering bench on a tiny table, harvesting the one-line
# JSON summaries for CI artifacts. (The <=2x acceptance verdict only
# prints on full-scale runs; the smoke bench reports n/a by design.)
run_storage_smoke() {
  local tsan_dir="${base}/tsan"
  local rel_dir="${base}/release-bench"
  local filter='ColdTierTest|TieredStoreTest|PrefetchPipelineTest|TieredEngineTest'

  echo "==== [storage-smoke] configure + build (tsan)"
  cmake -B "${tsan_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DHETGMP_SANITIZE=thread -DHETGMP_BUILD_BENCHMARKS=OFF \
    -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${jobs}" --target store_test
  echo "==== [storage-smoke] store tests under TSan"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
      -R "${filter}"

  echo "==== [storage-smoke] configure + build (release bench)"
  cmake -B "${rel_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${rel_dir}" -j "${jobs}" --target bench_store_tiering
  echo "==== [storage-smoke] tiering bench (tiny table)"
  HETGMP_BENCH_SCALE="${HETGMP_BENCH_SCALE:-0.1}" \
  HETGMP_BENCH_JSON="${rel_dir}/BENCH_store_tiering.json" \
    "${rel_dir}/bench/bench_store_tiering"
  echo "==== [storage-smoke] JSON summary at" \
       "${rel_dir}/BENCH_store_tiering.json"
  echo "==== [storage-smoke] OK"
}

# Focused gate for the multi-process transport (DESIGN.md §5g): the
# backend-parameterized conformance suite, the fault-injection property
# suite, and the existing Fabric accounting tests under TSan — the
# thread-visible surface (in-proc mailboxes, socket mesh driven from
# threads) must be race-free — then a release build running the same two
# suites *with* the pieces TSan skips (fork-based multi-process worlds,
# TCP rendezvous with an injected-fault schedule, death tests) and the
# transport bench, harvesting the one-line JSON summaries for CI
# artifacts.
run_comm_smoke() {
  local tsan_dir="${base}/tsan"
  local rel_dir="${base}/release-bench"
  local filter='TransportConformance|TransportAccountingParity|SocketTransportTest|MultiProcSocketTest|RendezvousTest|WireTest|WireDeathTest|SocketFaultTest|ProtocolFaultTest|FaultScheduleTest|FabricTest'

  echo "==== [comm-smoke] configure + build (tsan)"
  cmake -B "${tsan_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DHETGMP_SANITIZE=thread -DHETGMP_BUILD_BENCHMARKS=OFF \
    -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${jobs}" --target \
    comm_transport_test comm_fault_test comm_test
  echo "==== [comm-smoke] transport + fault + fabric tests under TSan"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
      --no-tests=error -R "${filter}"

  echo "==== [comm-smoke] configure + build (release: multi-process + bench)"
  cmake -B "${rel_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${rel_dir}" -j "${jobs}" --target \
    comm_transport_test comm_fault_test bench_comm_transport
  echo "==== [comm-smoke] multi-process socket tests (fork driver," \
       "rendezvous, injected fault)"
  # Same suites as above (ctest registers gtest suite names, not binary
  # names); this run includes the fork/rendezvous/death pieces TSan skips.
  ctest --test-dir "${rel_dir}" --output-on-failure -j "${jobs}" \
    --no-tests=error -R "${filter}"
  echo "==== [comm-smoke] transport bench"
  HETGMP_BENCH_SCALE="${HETGMP_BENCH_SCALE:-0.2}" \
  HETGMP_BENCH_JSON="${rel_dir}/BENCH_comm_transport.json" \
    "${rel_dir}/bench/bench_comm_transport"
  echo "==== [comm-smoke] JSON summary at" \
       "${rel_dir}/BENCH_comm_transport.json"
  echo "==== [comm-smoke] OK"
}

# Focused gate for the engine-over-transport layer (DESIGN.md §5h): the
# golden parity suite under TSan — transport-on training must be
# bit-identical to transport-off AND race-free (the wire exchange drives
# one thread per in-proc endpoint) — then a release build running (a) a
# real 2-process TCP training world through hetgmp_cli in one rendezvous
# directory TWICE (exercising the stale-file unlink fix end to end) and
# (b) the 1/2/4-process scale-out bench, which exits non-zero unless the
# wire tallies equal the simulator accounting byte-for-byte.
run_multiproc_smoke() {
  local tsan_dir="${base}/tsan"
  local rel_dir="${base}/release-bench"
  local filter='EngineTransportTest|EngineTransportParityTest|RendezvousTest'

  echo "==== [multiproc-smoke] configure + build (tsan)"
  cmake -B "${tsan_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DHETGMP_SANITIZE=thread -DHETGMP_BUILD_BENCHMARKS=OFF \
    -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${jobs}" --target \
    engine_transport_test comm_transport_test
  echo "==== [multiproc-smoke] engine transport parity under TSan"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
      --no-tests=error -R "${filter}"

  echo "==== [multiproc-smoke] configure + build (release: cli + bench)"
  # Examples ON explicitly: the shared release-bench tree may be cached
  # with them off by the other smoke gates, and the CLI drive needs one.
  cmake -B "${rel_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETGMP_BUILD_EXAMPLES=ON
  cmake --build "${rel_dir}" -j "${jobs}" --target \
    engine_transport_test hetgmp_cli bench_train_multiproc
  echo "==== [multiproc-smoke] parity + fork suites (release)"
  ctest --test-dir "${rel_dir}" --output-on-failure -j "${jobs}" \
    --no-tests=error -R "${filter}"

  echo "==== [multiproc-smoke] 2-process TCP training via hetgmp_cli" \
       "(twice in one rendezvous directory)"
  local rdzv
  rdzv="$(mktemp -d "${rel_dir}/rdzv.XXXXXX")"
  local cli="${rel_dir}/examples/hetgmp_cli"
  local run
  for run in first second; do
    "${cli}" train --dataset criteo --scale 0.02 --workers 2 --epochs 1 \
      --transport tcp --rank 0 --rendezvous-dir "${rdzv}" \
      --session-token "smoke-${run}" &
    local pid0=$!
    "${cli}" train --dataset criteo --scale 0.02 --workers 2 --epochs 1 \
      --transport tcp --rank 1 --rendezvous-dir "${rdzv}" \
      --session-token "smoke-${run}" > "${rel_dir}/cli_rank1_${run}.log" 2>&1 &
    local pid1=$!
    # Waited separately: `wait p0 p1` reports only the last pid's status.
    wait "${pid0}"
    wait "${pid1}"
  done

  echo "==== [multiproc-smoke] scale-out bench (1/2/4 processes)"
  HETGMP_BENCH_SCALE="${HETGMP_BENCH_SCALE:-0.5}" \
  HETGMP_BENCH_JSON="${rel_dir}/BENCH_train_multiproc.json" \
    "${rel_dir}/bench/bench_train_multiproc"
  echo "==== [multiproc-smoke] JSON summary at" \
       "${rel_dir}/BENCH_train_multiproc.json"
  echo "==== [multiproc-smoke] OK"
}

# Focused gate for the quantized serving read path (DESIGN.md §5i): the
# serving suites — snapshot store, lookup service, batcher — plus the
# quantization/QoS suite (int8/fp16 round-trip error bounds, fp32
# byte-identity, checkpoint interop, the concurrent quantized-publish
# hammer, and the admission-control/weighted-dequeue tests) under TSan,
# then a release build of the open-loop load generator at tiny scale,
# harvesting the one-line JSON summaries for CI artifacts. (The QoS
# acceptance verdict only prints on full-scale multi-core runs; the
# smoke bench reports n/a by design.)
run_serve_smoke() {
  local tsan_dir="${base}/tsan"
  local rel_dir="${base}/release-bench"
  local filter='SnapshotStoreTest|SnapshotSwapHammerTest|LookupServiceTest|BatcherTest|EnginePublishHookTest|QuantizedSnapshotTest|QuantizedSwapHammerTest|BatcherQosTest|Fp16Test|QuantizeRowTest'

  echo "==== [serve-smoke] configure + build (tsan)"
  cmake -B "${tsan_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DHETGMP_SANITIZE=thread -DHETGMP_BUILD_BENCHMARKS=OFF \
    -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${jobs}" --target \
    serve_test serve_quant_test tensor_test
  echo "==== [serve-smoke] serving + quantization + QoS tests under TSan"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
      --no-tests=error -R "${filter}"

  echo "==== [serve-smoke] configure + build (release bench)"
  cmake -B "${rel_dir}" -S "${repo_root}" -DHETGMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${rel_dir}" -j "${jobs}" --target bench_serve_openloop
  echo "==== [serve-smoke] open-loop load bench (tiny sweep)"
  HETGMP_BENCH_SCALE="${HETGMP_BENCH_SCALE:-0.02}" \
  HETGMP_BENCH_JSON="${rel_dir}/BENCH_serve_openloop.json" \
    "${rel_dir}/bench/bench_serve_openloop"
  echo "==== [serve-smoke] JSON summary at" \
       "${rel_dir}/BENCH_serve_openloop.json"
  echo "==== [serve-smoke] OK"
}

# Project-contract lint gate: builds tools/hetgmp_lint and runs it over
# the compile database plus every header under src/. Fails on any
# finding; always writes the machine-readable findings artifact (empty
# array when clean) for CI upload.
run_lint() {
  local dir="${base}/lint"
  local json="${HETGMP_LINT_JSON:-${dir}/LINT_findings.json}"

  echo "==== [lint] configure + build hetgmp_lint"
  cmake -B "${dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHETGMP_WERROR=ON -DHETGMP_BUILD_TESTS=OFF \
    -DHETGMP_BUILD_BENCHMARKS=OFF -DHETGMP_BUILD_EXAMPLES=OFF
  cmake --build "${dir}" -j "${jobs}" --target hetgmp_lint
  echo "==== [lint] hetgmp_lint over compile database + src/ headers"
  "${dir}/tools/hetgmp_lint/hetgmp_lint" \
    --compdb "${dir}/compile_commands.json" \
    --src "${repo_root}/src" --json "${json}"
  echo "==== [lint] findings artifact at ${json}"
  echo "==== [lint] OK"
}

modes=("$@")
if [[ ${#modes[@]} -eq 0 ]]; then
  modes=(release tsan asan-ubsan)
fi
for mode in "${modes[@]}"; do
  if [[ "${mode}" == "partitioner-smoke" ]]; then
    run_partitioner_smoke
  elif [[ "${mode}" == "hotpath-smoke" ]]; then
    run_hotpath_smoke
  elif [[ "${mode}" == "storage-smoke" ]]; then
    run_storage_smoke
  elif [[ "${mode}" == "comm-smoke" ]]; then
    run_comm_smoke
  elif [[ "${mode}" == "multiproc-smoke" ]]; then
    run_multiproc_smoke
  elif [[ "${mode}" == "serve-smoke" ]]; then
    run_serve_smoke
  elif [[ "${mode}" == "lint" ]]; then
    run_lint
  else
    run_mode "${mode}"
  fi
done
echo "All requested modes passed: ${modes[*]}"
