# Empty compiler generated dependencies file for bench_train_multiproc.
# This may be replaced when dependencies are built.
