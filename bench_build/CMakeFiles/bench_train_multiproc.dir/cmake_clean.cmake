file(REMOVE_RECURSE
  "../bench/bench_train_multiproc"
  "../bench/bench_train_multiproc.pdb"
  "CMakeFiles/bench_train_multiproc.dir/bench_train_multiproc.cc.o"
  "CMakeFiles/bench_train_multiproc.dir/bench_train_multiproc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_train_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
