# Empty compiler generated dependencies file for bench_serve_latency.
# This may be replaced when dependencies are built.
