file(REMOVE_RECURSE
  "../bench/bench_serve_latency"
  "../bench/bench_serve_latency.pdb"
  "CMakeFiles/bench_serve_latency.dir/bench_serve_latency.cc.o"
  "CMakeFiles/bench_serve_latency.dir/bench_serve_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
