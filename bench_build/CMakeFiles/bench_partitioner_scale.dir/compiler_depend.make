# Empty compiler generated dependencies file for bench_partitioner_scale.
# This may be replaced when dependencies are built.
