file(REMOVE_RECURSE
  "../bench/bench_partitioner_scale"
  "../bench/bench_partitioner_scale.pdb"
  "CMakeFiles/bench_partitioner_scale.dir/bench_partitioner_scale.cc.o"
  "CMakeFiles/bench_partitioner_scale.dir/bench_partitioner_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioner_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
