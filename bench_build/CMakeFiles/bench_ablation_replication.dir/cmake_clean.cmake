file(REMOVE_RECURSE
  "../bench/bench_ablation_replication"
  "../bench/bench_ablation_replication.pdb"
  "CMakeFiles/bench_ablation_replication.dir/bench_ablation_replication.cc.o"
  "CMakeFiles/bench_ablation_replication.dir/bench_ablation_replication.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
