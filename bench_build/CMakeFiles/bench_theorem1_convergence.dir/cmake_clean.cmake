file(REMOVE_RECURSE
  "../bench/bench_theorem1_convergence"
  "../bench/bench_theorem1_convergence.pdb"
  "CMakeFiles/bench_theorem1_convergence.dir/bench_theorem1_convergence.cc.o"
  "CMakeFiles/bench_theorem1_convergence.dir/bench_theorem1_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
