# Empty dependencies file for bench_comm_transport.
# This may be replaced when dependencies are built.
