file(REMOVE_RECURSE
  "../bench/bench_comm_transport"
  "../bench/bench_comm_transport.pdb"
  "CMakeFiles/bench_comm_transport.dir/bench_comm_transport.cc.o"
  "CMakeFiles/bench_comm_transport.dir/bench_comm_transport.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
