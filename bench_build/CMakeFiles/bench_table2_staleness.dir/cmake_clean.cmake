file(REMOVE_RECURSE
  "../bench/bench_table2_staleness"
  "../bench/bench_table2_staleness.pdb"
  "CMakeFiles/bench_table2_staleness.dir/bench_table2_staleness.cc.o"
  "CMakeFiles/bench_table2_staleness.dir/bench_table2_staleness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
