file(REMOVE_RECURSE
  "../bench/bench_fig3_cooccurrence"
  "../bench/bench_fig3_cooccurrence.pdb"
  "CMakeFiles/bench_fig3_cooccurrence.dir/bench_fig3_cooccurrence.cc.o"
  "CMakeFiles/bench_fig3_cooccurrence.dir/bench_fig3_cooccurrence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cooccurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
