file(REMOVE_RECURSE
  "../bench/bench_fig1_comm_overhead"
  "../bench/bench_fig1_comm_overhead.pdb"
  "CMakeFiles/bench_fig1_comm_overhead.dir/bench_fig1_comm_overhead.cc.o"
  "CMakeFiles/bench_fig1_comm_overhead.dir/bench_fig1_comm_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
