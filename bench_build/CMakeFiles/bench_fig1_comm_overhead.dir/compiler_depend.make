# Empty compiler generated dependencies file for bench_fig1_comm_overhead.
# This may be replaced when dependencies are built.
