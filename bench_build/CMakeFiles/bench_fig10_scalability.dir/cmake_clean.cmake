file(REMOVE_RECURSE
  "../bench/bench_fig10_scalability"
  "../bench/bench_fig10_scalability.pdb"
  "CMakeFiles/bench_fig10_scalability.dir/bench_fig10_scalability.cc.o"
  "CMakeFiles/bench_fig10_scalability.dir/bench_fig10_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
