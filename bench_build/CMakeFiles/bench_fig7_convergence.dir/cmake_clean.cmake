file(REMOVE_RECURSE
  "../bench/bench_fig7_convergence"
  "../bench/bench_fig7_convergence.pdb"
  "CMakeFiles/bench_fig7_convergence.dir/bench_fig7_convergence.cc.o"
  "CMakeFiles/bench_fig7_convergence.dir/bench_fig7_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
