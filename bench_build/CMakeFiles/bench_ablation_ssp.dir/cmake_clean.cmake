file(REMOVE_RECURSE
  "../bench/bench_ablation_ssp"
  "../bench/bench_ablation_ssp.pdb"
  "CMakeFiles/bench_ablation_ssp.dir/bench_ablation_ssp.cc.o"
  "CMakeFiles/bench_ablation_ssp.dir/bench_ablation_ssp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
