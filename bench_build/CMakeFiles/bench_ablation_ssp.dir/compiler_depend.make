# Empty compiler generated dependencies file for bench_ablation_ssp.
# This may be replaced when dependencies are built.
