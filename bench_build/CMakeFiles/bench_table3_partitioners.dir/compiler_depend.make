# Empty compiler generated dependencies file for bench_table3_partitioners.
# This may be replaced when dependencies are built.
