file(REMOVE_RECURSE
  "../bench/bench_table3_partitioners"
  "../bench/bench_table3_partitioners.pdb"
  "CMakeFiles/bench_table3_partitioners.dir/bench_table3_partitioners.cc.o"
  "CMakeFiles/bench_table3_partitioners.dir/bench_table3_partitioners.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
