# Empty dependencies file for bench_store_tiering.
# This may be replaced when dependencies are built.
