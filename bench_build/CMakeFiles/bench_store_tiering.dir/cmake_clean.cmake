file(REMOVE_RECURSE
  "../bench/bench_store_tiering"
  "../bench/bench_store_tiering.pdb"
  "CMakeFiles/bench_store_tiering.dir/bench_store_tiering.cc.o"
  "CMakeFiles/bench_store_tiering.dir/bench_store_tiering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_store_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
