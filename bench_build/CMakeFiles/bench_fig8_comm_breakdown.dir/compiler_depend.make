# Empty compiler generated dependencies file for bench_fig8_comm_breakdown.
# This may be replaced when dependencies are built.
