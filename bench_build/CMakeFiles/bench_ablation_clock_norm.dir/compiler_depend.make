# Empty compiler generated dependencies file for bench_ablation_clock_norm.
# This may be replaced when dependencies are built.
