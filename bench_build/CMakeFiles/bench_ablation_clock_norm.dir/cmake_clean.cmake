file(REMOVE_RECURSE
  "../bench/bench_ablation_clock_norm"
  "../bench/bench_ablation_clock_norm.pdb"
  "CMakeFiles/bench_ablation_clock_norm.dir/bench_ablation_clock_norm.cc.o"
  "CMakeFiles/bench_ablation_clock_norm.dir/bench_ablation_clock_norm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clock_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
