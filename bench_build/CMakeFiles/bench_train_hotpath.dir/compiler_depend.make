# Empty compiler generated dependencies file for bench_train_hotpath.
# This may be replaced when dependencies are built.
