file(REMOVE_RECURSE
  "../bench/bench_train_hotpath"
  "../bench/bench_train_hotpath.pdb"
  "CMakeFiles/bench_train_hotpath.dir/bench_train_hotpath.cc.o"
  "CMakeFiles/bench_train_hotpath.dir/bench_train_hotpath.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_train_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
