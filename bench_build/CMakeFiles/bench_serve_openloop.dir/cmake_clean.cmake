file(REMOVE_RECURSE
  "../bench/bench_serve_openloop"
  "../bench/bench_serve_openloop.pdb"
  "CMakeFiles/bench_serve_openloop.dir/bench_serve_openloop.cc.o"
  "CMakeFiles/bench_serve_openloop.dir/bench_serve_openloop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_openloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
