# Empty dependencies file for bench_serve_openloop.
# This may be replaced when dependencies are built.
