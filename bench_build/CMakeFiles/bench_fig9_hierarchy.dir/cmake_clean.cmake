file(REMOVE_RECURSE
  "../bench/bench_fig9_hierarchy"
  "../bench/bench_fig9_hierarchy.pdb"
  "CMakeFiles/bench_fig9_hierarchy.dir/bench_fig9_hierarchy.cc.o"
  "CMakeFiles/bench_fig9_hierarchy.dir/bench_fig9_hierarchy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
