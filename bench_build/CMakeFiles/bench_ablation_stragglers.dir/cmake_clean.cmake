file(REMOVE_RECURSE
  "../bench/bench_ablation_stragglers"
  "../bench/bench_ablation_stragglers.pdb"
  "CMakeFiles/bench_ablation_stragglers.dir/bench_ablation_stragglers.cc.o"
  "CMakeFiles/bench_ablation_stragglers.dir/bench_ablation_stragglers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
