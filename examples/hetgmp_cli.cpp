// hetgmp_cli: run a training experiment — or a train-then-serve loop —
// from the command line.
//
//   hetgmp_cli [train] [--dataset avazu|criteo|company] [--scale 0.5]
//              [--strategy tfps|parallax|hugectr|hetmp|hetgmp]
//              [--model wdl|dcn|deepfm] [--workers 8] [--cluster a|b]
//              [--staleness 100|inf] [--epochs 5] [--batch 256]
//              [--dim 16] [--target-auc 0.78] [--save-dataset path]
//              [--load-dataset path]
//
//   hetgmp_cli serve [--dataset ...] [--scale F] [--workers N]
//              [--epochs N] [--dim N] [--batch N]
//              [--lookups N] [--clients K] [--keys-per-request N]
//              [--zipf-theta F] [--publish-every N] [--snapshot-dir PATH]
//              [--hot-rows N] [--batch-max-keys N] [--deadline-us N]
//
// `serve` trains a model, publishes versioned snapshots through the
// engine's publish hook, then drives closed-loop Zipf-skewed lookups
// through the request batcher and reports p50/p95/p99 latency plus
// per-TrafficClass byte counts. Exits non-zero if any lookup returns a
// non-OK Status (the CI serve-smoke gate).
//
// Prints the convergence curve and a one-line JSON summary (easy to
// scrape from driver scripts).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/socket_transport.h"
#include "comm/topology.h"
#include "common/histogram.h"
#include "common/zipf.h"
#include "core/runner.h"
#include "data/io.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "metrics/comm_report.h"
#include "serve/batcher.h"
#include "serve/lookup_service.h"
#include "serve/snapshot_store.h"
#include "store/tiered_store.h"

using namespace hetgmp;  // NOLINT — example brevity

namespace {

struct CliOptions {
  std::string dataset = "criteo";
  double scale = 0.5;
  std::string strategy = "hetgmp";
  std::string model = "wdl";
  int workers = 8;
  std::string cluster = "a";
  std::string staleness = "100";
  int epochs = 5;
  int batch = 256;
  int dim = 16;
  double target_auc = -1.0;
  std::string save_dataset;
  std::string load_dataset;

  // Engine-over-Transport (DESIGN.md §5h). "inproc" drives the round
  // traffic through the mailbox backend inside this process; "tcp" makes
  // this process rank R of a --workers-sized SPMD world connected over
  // loopback TCP (launch one process per rank against one
  // --rendezvous-dir).
  std::string transport = "off";  // off|inproc|tcp
  int rank = 0;
  std::string rendezvous_dir = "/tmp/hetgmp_rendezvous";
  std::string session_token = "hetgmp-cli";
  int connect_timeout_ms = 30000;

  // Tiered embedding storage (hot/warm/cold hierarchy, DESIGN.md §5f).
  bool tiered = false;
  int64_t tiered_hot = 0;   // 0 = num_features/10
  int64_t tiered_warm = 0;  // 0 = num_features/5
  bool tiered_prefetch = true;

  // serve-only knobs
  int64_t lookups = 10000;
  int clients = 4;
  int keys_per_request = 16;
  double zipf_theta = 1.0;
  int publish_every = 1;
  std::string snapshot_dir;
  int64_t hot_rows = 4096;
  int64_t batch_max_keys = 256;
  int64_t deadline_us = 200;
  // Quantized read path + QoS (DESIGN.md §5i).
  std::string quantize = "none";      // none|int8|fp16
  std::string tenant_class = "gold";  // gold|besteffort
  int64_t max_pending_keys = 0;       // 0 = unbounded (no admission control)
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [train] [--dataset avazu|criteo|company] [--scale F]\n"
      "          [--strategy tfps|parallax|hugectr|hetmp|hetgmp]\n"
      "          [--model wdl|dcn|deepfm] [--workers N] [--cluster a|b]\n"
      "          [--staleness N|inf] [--epochs N] [--batch N]\n"
      "          [--dim N] [--target-auc F]\n"
      "          [--save-dataset PATH] [--load-dataset PATH]\n"
      "          [--tiered] [--tiered-hot N] [--tiered-warm N]\n"
      "          [--no-prefetch]\n"
      "          [--transport off|inproc|tcp] [--rank R]\n"
      "          [--rendezvous-dir PATH] [--session-token T]\n"
      "          [--connect-timeout-ms N]\n"
      "       %s serve [--dataset ...] [--scale F] [--workers N]\n"
      "          [--epochs N] [--dim N] [--batch N] [--lookups N]\n"
      "          [--clients K] [--keys-per-request N] [--zipf-theta F]\n"
      "          [--publish-every N] [--snapshot-dir PATH] [--hot-rows N]\n"
      "          [--batch-max-keys N] [--deadline-us N]\n"
      "          [--quantize none|int8|fp16] [--tenant-class gold|besteffort]\n"
      "          [--max-pending-keys N]\n"
      "flags also accept --flag=value\n",
      argv0, argv0);
  std::exit(2);
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    // Accept both "--flag value" and "--flag=value".
    std::string flag = argv[i];
    std::string joined;
    bool has_joined = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        joined = flag.substr(eq + 1);
        flag.resize(eq);
        has_joined = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_joined) return joined.c_str();
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--dataset") {
      opt->dataset = next();
    } else if (flag == "--scale") {
      opt->scale = std::atof(next());
    } else if (flag == "--strategy") {
      opt->strategy = next();
    } else if (flag == "--model") {
      opt->model = next();
    } else if (flag == "--workers") {
      opt->workers = std::atoi(next());
    } else if (flag == "--cluster") {
      opt->cluster = next();
    } else if (flag == "--staleness") {
      opt->staleness = next();
    } else if (flag == "--epochs") {
      opt->epochs = std::atoi(next());
    } else if (flag == "--batch") {
      opt->batch = std::atoi(next());
    } else if (flag == "--dim") {
      opt->dim = std::atoi(next());
    } else if (flag == "--target-auc") {
      opt->target_auc = std::atof(next());
    } else if (flag == "--save-dataset") {
      opt->save_dataset = next();
    } else if (flag == "--load-dataset") {
      opt->load_dataset = next();
    } else if (flag == "--tiered") {
      opt->tiered = true;
    } else if (flag == "--tiered-hot") {
      opt->tiered_hot = std::atoll(next());
    } else if (flag == "--tiered-warm") {
      opt->tiered_warm = std::atoll(next());
    } else if (flag == "--no-prefetch") {
      opt->tiered_prefetch = false;
    } else if (flag == "--transport") {
      opt->transport = next();
    } else if (flag == "--rank") {
      opt->rank = std::atoi(next());
    } else if (flag == "--rendezvous-dir") {
      opt->rendezvous_dir = next();
    } else if (flag == "--session-token") {
      opt->session_token = next();
    } else if (flag == "--connect-timeout-ms") {
      opt->connect_timeout_ms = std::atoi(next());
    } else if (flag == "--lookups") {
      opt->lookups = std::atoll(next());
    } else if (flag == "--clients") {
      opt->clients = std::atoi(next());
    } else if (flag == "--keys-per-request") {
      opt->keys_per_request = std::atoi(next());
    } else if (flag == "--zipf-theta") {
      opt->zipf_theta = std::atof(next());
    } else if (flag == "--publish-every") {
      opt->publish_every = std::atoi(next());
    } else if (flag == "--snapshot-dir") {
      opt->snapshot_dir = next();
    } else if (flag == "--hot-rows") {
      opt->hot_rows = std::atoll(next());
    } else if (flag == "--batch-max-keys") {
      opt->batch_max_keys = std::atoll(next());
    } else if (flag == "--deadline-us") {
      opt->deadline_us = std::atoll(next());
    } else if (flag == "--quantize") {
      opt->quantize = next();
    } else if (flag == "--tenant-class") {
      opt->tenant_class = next();
    } else if (flag == "--max-pending-keys") {
      opt->max_pending_keys = std::atoll(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

// Builds (or loads) the training dataset the flags describe; exits with a
// message on failure.
CtrDataset BuildDataset(const CliOptions& opt) {
  if (!opt.load_dataset.empty()) {
    Result<CtrDataset> loaded = LoadDataset(opt.load_dataset);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(loaded).value();
  }
  SyntheticCtrConfig data_cfg;
  if (opt.dataset == "avazu") {
    data_cfg = AvazuLikeConfig(opt.scale);
  } else if (opt.dataset == "criteo") {
    data_cfg = CriteoLikeConfig(opt.scale);
  } else if (opt.dataset == "company") {
    data_cfg = CompanyLikeConfig(opt.scale);
  } else {
    std::fprintf(stderr, "unknown dataset: %s\n", opt.dataset.c_str());
    std::exit(1);
  }
  return GenerateSyntheticCtr(data_cfg);
}

bool FillEngineConfig(const CliOptions& opt, EngineConfig* cfg) {
  if (opt.strategy == "tfps") {
    cfg->strategy = Strategy::kTfPs;
  } else if (opt.strategy == "parallax") {
    cfg->strategy = Strategy::kParallax;
  } else if (opt.strategy == "hugectr") {
    cfg->strategy = Strategy::kHugeCtr;
  } else if (opt.strategy == "hetmp") {
    cfg->strategy = Strategy::kHetMp;
  } else if (opt.strategy == "hetgmp") {
    cfg->strategy = Strategy::kHetGmp;
  } else {
    std::fprintf(stderr, "unknown strategy: %s\n", opt.strategy.c_str());
    return false;
  }
  cfg->model = opt.model == "dcn"
                   ? ModelType::kDcn
                   : (opt.model == "deepfm" ? ModelType::kDeepFm
                                            : ModelType::kWdl);
  ApplyStrategyDefaults(cfg);
  cfg->bound.s = opt.staleness == "inf"
                     ? StalenessBound::kUnbounded
                     : static_cast<uint64_t>(
                           std::atoll(opt.staleness.c_str()));
  cfg->batch_size = opt.batch;
  cfg->embedding_dim = opt.dim;
  cfg->tiered_store.enabled = opt.tiered;
  cfg->tiered_store.hot_rows = opt.tiered_hot;
  cfg->tiered_store.warm_rows = opt.tiered_warm;
  cfg->tiered_store.prefetch = opt.tiered_prefetch;
  return true;
}

// One-line replica-cache / tier-hierarchy summaries after training (only
// for configurations that produce them).
void PrintStorageSummary(const TrainResult& r) {
  if (r.replica_cache.lookups() > 0) {
    std::printf(
        "lru_cache: hits=%lld misses=%lld hit_rate=%.3f writebacks=%lld "
        "evictions=%lld\n",
        static_cast<long long>(r.replica_cache.hits),
        static_cast<long long>(r.replica_cache.misses),
        r.replica_cache.HitRate(),
        static_cast<long long>(r.replica_cache.writebacks),
        static_cast<long long>(r.replica_cache.demotions));
  }
  if (r.tiered) {
    const TieredStoreStats& t = r.tiers;
    std::printf(
        "tiers: hot_hit_rate=%.3f warm_hits=%lld cold_reads=%lld "
        "spills=%lld overflow=%lld stall=%.3fs pin_coverage=%.3f\n",
        t.hot.HitRate(), static_cast<long long>(t.warm.hits),
        static_cast<long long>(t.cold.hits),
        static_cast<long long>(t.cold.writebacks),
        static_cast<long long>(t.hot_overflow), t.stall_secs,
        t.PinCoverage());
    std::printf(
        "prefetch: batches=%lld dropped=%lld features=%lld promoted=%lld "
        "already_resident=%lld\n",
        static_cast<long long>(t.prefetch_batches),
        static_cast<long long>(t.prefetch_dropped),
        static_cast<long long>(t.prefetch_features),
        static_cast<long long>(t.prefetch_promoted),
        static_cast<long long>(t.prefetch_already_resident));
  }
}

// One line of wire accounting after a transport-enabled run; non-zero
// verify_failures (a received payload that did not match the locally
// reproduced expectation) is a hard failure.
int ReportWire(const TrainResult& r) {
  if (!r.wire.enabled) return 0;
  std::printf(
      "wire: rounds=%d index_msgs=%lld embedding_msgs=%lld "
      "entries=%lld+%lld rows=%lld+%lld "
      "bytes{index_clock=%llu,embedding=%llu,allreduce=%llu} "
      "verify_failures=%lld\n",
      r.wire.rounds_exchanged, static_cast<long long>(r.wire.index_messages),
      static_cast<long long>(r.wire.embedding_messages),
      static_cast<long long>(r.wire.index_entries),
      static_cast<long long>(r.wire.clock_entries),
      static_cast<long long>(r.wire.pushed_rows),
      static_cast<long long>(r.wire.fetched_rows),
      static_cast<unsigned long long>(r.wire.expected_index_clock_bytes),
      static_cast<unsigned long long>(r.wire.expected_embedding_bytes),
      static_cast<unsigned long long>(r.wire.expected_allreduce_bytes),
      static_cast<long long>(r.wire.verify_failures));
  if (r.wire.verify_failures > 0) {
    std::fprintf(stderr, "wire payload verification failed\n");
    return 1;
  }
  return 0;
}

int RunTrain(const CliOptions& opt) {
  CtrDataset train = BuildDataset(opt);
  if (!opt.save_dataset.empty()) {
    const Status st = SaveDataset(train, opt.save_dataset);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved dataset to %s\n", opt.save_dataset.c_str());
  }
  CtrDataset test = train.SplitTail(0.15);
  std::printf("%s\n", ComputeDatasetStats(train).ToString().c_str());

  EngineConfig cfg;
  if (!FillEngineConfig(opt, &cfg)) return 1;

  const Topology topology = opt.cluster == "b"
                                ? Topology::ClusterB(opt.workers)
                                : Topology::ClusterA(opt.workers);

  // Engine-over-Transport: the mailbox backend is in-process; "tcp" makes
  // this process one rank of an SPMD world (every rank simulates all
  // --workers workers; the wire exchange drives this rank's endpoint).
  std::unique_ptr<SocketFabric> socket_fab;
  if (opt.transport == "inproc") {
    cfg.transport.enabled = true;
  } else if (opt.transport == "tcp") {
    if (opt.rank < 0 || opt.rank >= opt.workers) {
      std::fprintf(stderr, "--rank %d out of range for --workers %d\n",
                   opt.rank, opt.workers);
      return 1;
    }
    RendezvousOptions ropts;
    ropts.session_token = opt.session_token;
    ropts.connect_timeout_ms = opt.connect_timeout_ms;
    Result<std::unique_ptr<SocketFabric>> fab = SocketFabric::RendezvousTcp(
        opt.rendezvous_dir, opt.rank, opt.workers, ropts);
    if (!fab.ok()) {
      std::fprintf(stderr, "rendezvous failed: %s\n",
                   fab.status().ToString().c_str());
      return 1;
    }
    socket_fab = std::move(fab).value();
    cfg.transport.enabled = true;
    cfg.transport.backend = EngineConfig::TransportConfig::Backend::kSocket;
    cfg.transport.socket = socket_fab.get();
    cfg.deterministic = true;  // SPMD verification needs the fixed schedule
    std::printf("tcp transport up: rank %d of %d (dir %s)\n", opt.rank,
                opt.workers, opt.rendezvous_dir.c_str());
  } else if (opt.transport != "off") {
    std::fprintf(stderr, "unknown --transport: %s\n", opt.transport.c_str());
    return 1;
  }

  ExperimentResult r = RunExperiment(cfg, train, test, topology,
                                     opt.epochs, opt.target_auc);
  std::printf("\n== %s ==\n%s", r.description.c_str(),
              FormatConvergenceCurve(r.train).c_str());
  PrintStorageSummary(r.train);
  if (ReportWire(r.train) != 0) return 1;
  std::printf(
      "\n{\"strategy\":\"%s\",\"model\":\"%s\",\"dataset\":\"%s\","
      "\"workers\":%d,\"final_auc\":%.4f,\"sim_time\":%.6f,"
      "\"throughput\":%.0f,\"reached_target\":%s}\n",
      opt.strategy.c_str(), opt.model.c_str(), train.name().c_str(),
      opt.workers, r.train.final_auc, r.train.total_sim_time,
      r.train.Throughput(), r.train.reached_target ? "true" : "false");
  return 0;
}

// Train, publish versioned snapshots, then serve Zipf lookups closed-loop
// through the batcher. Any non-OK lookup makes the exit code non-zero.
int RunServe(const CliOptions& opt) {
  CtrDataset train = BuildDataset(opt);
  CtrDataset test = train.SplitTail(0.15);
  std::printf("%s\n", ComputeDatasetStats(train).ToString().c_str());

  EngineConfig cfg;
  if (!FillEngineConfig(opt, &cfg)) return 1;

  const Topology topology = opt.cluster == "b"
                                ? Topology::ClusterB(opt.workers)
                                : Topology::ClusterA(opt.workers);
  Bigraph graph(train);
  Partition partition = BuildPartition(cfg, graph, topology);
  Engine engine(cfg, train, test, topology, std::move(partition));

  SnapshotStoreOptions store_opts;
  store_opts.dir = opt.snapshot_dir;
  if (!ParseSnapshotQuantization(opt.quantize, &store_opts.quantization)) {
    std::fprintf(stderr, "unknown --quantize: %s (want none|int8|fp16)\n",
                 opt.quantize.c_str());
    return 1;
  }
  TenantClass tenant = TenantClass::kGold;
  if (opt.tenant_class == "besteffort" || opt.tenant_class == "best-effort") {
    tenant = TenantClass::kBestEffort;
  } else if (opt.tenant_class != "gold") {
    std::fprintf(stderr, "unknown --tenant-class: %s (want gold|besteffort)\n",
                 opt.tenant_class.c_str());
    return 1;
  }
  SnapshotStore store(store_opts);
  engine.SetPublishHook(
      [&store](const Engine::PublishContext& ctx) {
        if (ctx.tiers != nullptr) {
          // Demoted rows are dead in the arena; read through the tiers.
          TieredEmbeddingStore* tiers = ctx.tiers;
          return store.PublishRows(
              ctx.table.num_embeddings(), ctx.table.dim(),
              [tiers](int64_t x, float* out) { tiers->PeekRow(x, out); },
              ctx.dense_params, ctx.round, ctx.iterations_done);
        }
        return store.Publish(ctx.table, ctx.dense_params, ctx.round,
                             ctx.iterations_done);
      },
      opt.publish_every);

  std::printf("== train ==\n");
  TrainResult tr = engine.Train(opt.epochs, opt.target_auc);
  std::printf("final_auc=%.4f snapshots_published=%lld failures=%lld\n",
              tr.final_auc, static_cast<long long>(tr.snapshots_published),
              static_cast<long long>(tr.publish_failures));
  PrintStorageSummary(tr);
  if (store.version() == 0 || tr.publish_failures > 0) {
    std::fprintf(stderr, "snapshot publication failed\n");
    return 1;
  }

  std::printf("== serve ==\n");
  LookupServiceOptions svc_opts;
  svc_opts.hot_rows_per_shard = opt.hot_rows;
  LookupService service(&store, engine.partition(), engine.mutable_fabric(),
                        svc_opts);
  BatcherOptions batch_opts;
  batch_opts.max_batch_keys = opt.batch_max_keys;
  batch_opts.deadline = std::chrono::microseconds(opt.deadline_us);
  batch_opts.max_pending_keys = opt.max_pending_keys;
  RequestBatcher batcher(&service, batch_opts);

  const int clients = std::max(1, opt.clients);
  const int keys_per_request = std::max(1, opt.keys_per_request);
  const int64_t requests_total =
      std::max<int64_t>(1, opt.lookups / keys_per_request);
  const ZipfSampler zipf(
      static_cast<uint64_t>(train.num_features()), opt.zipf_theta);

  std::vector<Histogram> latencies(clients);
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> sheds{0};
  std::string first_error;
  Mutex error_mu;

  auto client_main = [&](int c) {
    Rng rng(0x5eedULL + 1315423911ULL * static_cast<uint64_t>(c));
    std::vector<FeatureId> keys(keys_per_request);
    std::vector<float> out(static_cast<size_t>(keys_per_request) * opt.dim);
    const int64_t my_requests =
        requests_total / clients + (c < requests_total % clients ? 1 : 0);
    const int shard = c % engine.num_workers();
    for (int64_t r = 0; r < my_requests; ++r) {
      for (int k = 0; k < keys_per_request; ++k) {
        keys[k] = static_cast<FeatureId>(zipf.Sample(&rng));
      }
      const auto t0 = std::chrono::steady_clock::now();
      const Status st = batcher.Lookup(shard, keys.data(), keys_per_request,
                                       out.data(), tenant);
      const auto t1 = std::chrono::steady_clock::now();
      if (!st.ok()) {
        // Admission-control sheds are expected behavior under a bounded
        // --max-pending-keys budget, not serving errors.
        if (st.code() == StatusCode::kResourceExhausted) {
          sheds.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        failures.fetch_add(1, std::memory_order_relaxed);
        MutexLock lock(error_mu);
        if (first_error.empty()) first_error = st.ToString();
        continue;
      }
      latencies[c].Add(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto serve_start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) threads.emplace_back(client_main, c);
  for (auto& t : threads) t.join();
  const double serve_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();

  Histogram all;
  for (const Histogram& h : latencies) all.Merge(h);
  std::printf("%s\n",
              RenderLatencyPercentiles("lookup_latency", all).c_str());
  std::printf("%s\n", service.stats().ToString().c_str());
  std::printf("%s\n", engine.fabric().ReportString().c_str());
  const BatcherStats bs = batcher.stats();
  std::printf(
      "batcher: dispatches=%lld full=%lld deadline=%lld shutdown=%lld "
      "max_queue_wait=%.1fus\n",
      static_cast<long long>(bs.dispatches),
      static_cast<long long>(bs.full_flushes),
      static_cast<long long>(bs.deadline_flushes),
      static_cast<long long>(bs.shutdown_flushes), bs.max_queue_wait_us);
  std::printf(
      "qos: served_gold=%lld served_be=%lld shed_gold=%lld shed_be=%lld\n",
      static_cast<long long>(bs.served_gold),
      static_cast<long long>(bs.served_best_effort),
      static_cast<long long>(bs.shed_gold),
      static_cast<long long>(bs.shed_best_effort));
  const auto snap = store.Acquire();
  if (snap != nullptr) {
    std::printf("snapshot: quantize=%s payload_bytes=%llu max_abs_err=%.3e\n",
                ToString(snap->quantization()),
                static_cast<unsigned long long>(snap->PayloadBytes()),
                snap->max_abs_error());
  }

  const std::vector<double> ps = all.PercentileMany({50.0, 95.0, 99.0});
  std::printf(
      "\n{\"mode\":\"serve\",\"dataset\":\"%s\",\"workers\":%d,"
      "\"final_auc\":%.4f,\"snapshot_version\":%llu,"
      "\"quantize\":\"%s\",\"tenant_class\":\"%s\","
      "\"lookups\":%lld,\"qps\":%.0f,"
      "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,"
      "\"lookup_bytes\":%llu,\"sheds\":%lld,\"failures\":%lld}\n",
      train.name().c_str(), opt.workers, tr.final_auc,
      static_cast<unsigned long long>(store.version()),
      ToString(store_opts.quantization), ToString(tenant),
      static_cast<long long>(service.stats().requests),
      serve_secs > 0 ? static_cast<double>(all.count()) / serve_secs : 0.0,
      ps[0], ps[1], ps[2],
      static_cast<unsigned long long>(
          engine.fabric().TotalBytes(TrafficClass::kLookup)),
      static_cast<long long>(sheds.load()),
      static_cast<long long>(failures.load()));
  if (failures.load() > 0) {
    std::fprintf(stderr, "lookup failures: %lld (first: %s)\n",
                 static_cast<long long>(failures.load()),
                 first_error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve_mode = false;
  if (argc > 1 && argv[1][0] != '-') {
    const std::string cmd = argv[1];
    if (cmd == "serve") {
      serve_mode = true;
    } else if (cmd != "train") {
      std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
      Usage(argv[0]);
    }
    --argc;
    ++argv;
  }
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) Usage(argv[0]);
  return serve_mode ? RunServe(opt) : RunTrain(opt);
}
