// hetgmp_cli: run a training experiment from the command line.
//
//   hetgmp_cli [--dataset avazu|criteo|company] [--scale 0.5]
//              [--strategy tfps|parallax|hugectr|hetmp|hetgmp]
//              [--model wdl|dcn|deepfm] [--workers 8] [--cluster a|b]
//              [--staleness 100|inf] [--epochs 5] [--batch 256]
//              [--dim 16] [--target-auc 0.78] [--save-dataset path]
//              [--load-dataset path]
//
// Prints the convergence curve and a one-line JSON summary (easy to
// scrape from driver scripts).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "comm/topology.h"
#include "core/runner.h"
#include "data/io.h"
#include "data/stats.h"
#include "data/synthetic.h"

using namespace hetgmp;  // NOLINT — example brevity

namespace {

struct CliOptions {
  std::string dataset = "criteo";
  double scale = 0.5;
  std::string strategy = "hetgmp";
  std::string model = "wdl";
  int workers = 8;
  std::string cluster = "a";
  std::string staleness = "100";
  int epochs = 5;
  int batch = 256;
  int dim = 16;
  double target_auc = -1.0;
  std::string save_dataset;
  std::string load_dataset;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset avazu|criteo|company] [--scale F]\n"
               "          [--strategy tfps|parallax|hugectr|hetmp|hetgmp]\n"
               "          [--model wdl|dcn|deepfm] [--workers N] [--cluster a|b]\n"
               "          [--staleness N|inf] [--epochs N] [--batch N]\n"
               "          [--dim N] [--target-auc F]\n"
               "          [--save-dataset PATH] [--load-dataset PATH]\n",
               argv0);
  std::exit(2);
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--dataset") {
      opt->dataset = next();
    } else if (flag == "--scale") {
      opt->scale = std::atof(next());
    } else if (flag == "--strategy") {
      opt->strategy = next();
    } else if (flag == "--model") {
      opt->model = next();
    } else if (flag == "--workers") {
      opt->workers = std::atoi(next());
    } else if (flag == "--cluster") {
      opt->cluster = next();
    } else if (flag == "--staleness") {
      opt->staleness = next();
    } else if (flag == "--epochs") {
      opt->epochs = std::atoi(next());
    } else if (flag == "--batch") {
      opt->batch = std::atoi(next());
    } else if (flag == "--dim") {
      opt->dim = std::atoi(next());
    } else if (flag == "--target-auc") {
      opt->target_auc = std::atof(next());
    } else if (flag == "--save-dataset") {
      opt->save_dataset = next();
    } else if (flag == "--load-dataset") {
      opt->load_dataset = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) Usage(argv[0]);

  // Dataset.
  CtrDataset train;
  if (!opt.load_dataset.empty()) {
    Result<CtrDataset> loaded = LoadDataset(opt.load_dataset);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    train = std::move(loaded).value();
  } else {
    SyntheticCtrConfig data_cfg;
    if (opt.dataset == "avazu") {
      data_cfg = AvazuLikeConfig(opt.scale);
    } else if (opt.dataset == "criteo") {
      data_cfg = CriteoLikeConfig(opt.scale);
    } else if (opt.dataset == "company") {
      data_cfg = CompanyLikeConfig(opt.scale);
    } else {
      std::fprintf(stderr, "unknown dataset: %s\n", opt.dataset.c_str());
      return 1;
    }
    train = GenerateSyntheticCtr(data_cfg);
  }
  if (!opt.save_dataset.empty()) {
    const Status st = SaveDataset(train, opt.save_dataset);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved dataset to %s\n", opt.save_dataset.c_str());
  }
  CtrDataset test = train.SplitTail(0.15);
  std::printf("%s\n", ComputeDatasetStats(train).ToString().c_str());

  // Engine config.
  EngineConfig cfg;
  if (opt.strategy == "tfps") {
    cfg.strategy = Strategy::kTfPs;
  } else if (opt.strategy == "parallax") {
    cfg.strategy = Strategy::kParallax;
  } else if (opt.strategy == "hugectr") {
    cfg.strategy = Strategy::kHugeCtr;
  } else if (opt.strategy == "hetmp") {
    cfg.strategy = Strategy::kHetMp;
  } else if (opt.strategy == "hetgmp") {
    cfg.strategy = Strategy::kHetGmp;
  } else {
    std::fprintf(stderr, "unknown strategy: %s\n", opt.strategy.c_str());
    return 1;
  }
  cfg.model = opt.model == "dcn"
                  ? ModelType::kDcn
                  : (opt.model == "deepfm" ? ModelType::kDeepFm
                                           : ModelType::kWdl);
  ApplyStrategyDefaults(&cfg);
  cfg.bound.s = opt.staleness == "inf"
                    ? StalenessBound::kUnbounded
                    : static_cast<uint64_t>(std::atoll(
                          opt.staleness.c_str()));
  cfg.batch_size = opt.batch;
  cfg.embedding_dim = opt.dim;

  const Topology topology = opt.cluster == "b"
                                ? Topology::ClusterB(opt.workers)
                                : Topology::ClusterA(opt.workers);

  ExperimentResult r = RunExperiment(cfg, train, test, topology,
                                     opt.epochs, opt.target_auc);
  std::printf("\n== %s ==\n%s", r.description.c_str(),
              FormatConvergenceCurve(r.train).c_str());
  std::printf(
      "\n{\"strategy\":\"%s\",\"model\":\"%s\",\"dataset\":\"%s\","
      "\"workers\":%d,\"final_auc\":%.4f,\"sim_time\":%.6f,"
      "\"throughput\":%.0f,\"reached_target\":%s}\n",
      opt.strategy.c_str(), opt.model.c_str(), train.name().c_str(),
      opt.workers, r.train.final_auc, r.train.total_sim_time,
      r.train.Throughput(), r.train.reached_target ? "true" : "false");
  return 0;
}
