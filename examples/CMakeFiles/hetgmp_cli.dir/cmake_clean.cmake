file(REMOVE_RECURSE
  "CMakeFiles/hetgmp_cli.dir/hetgmp_cli.cpp.o"
  "CMakeFiles/hetgmp_cli.dir/hetgmp_cli.cpp.o.d"
  "hetgmp_cli"
  "hetgmp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgmp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
