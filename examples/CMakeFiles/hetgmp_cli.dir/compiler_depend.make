# Empty compiler generated dependencies file for hetgmp_cli.
# This may be replaced when dependencies are built.
