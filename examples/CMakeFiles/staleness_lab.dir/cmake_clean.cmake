file(REMOVE_RECURSE
  "CMakeFiles/staleness_lab.dir/staleness_lab.cpp.o"
  "CMakeFiles/staleness_lab.dir/staleness_lab.cpp.o.d"
  "staleness_lab"
  "staleness_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleness_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
