# Empty compiler generated dependencies file for staleness_lab.
# This may be replaced when dependencies are built.
