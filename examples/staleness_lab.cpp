// Staleness lab: sweeps the bound s of the graph-based bounded asynchrony
// and reports the accuracy/efficiency trade-off (Table 2's knob, with
// throughput context from Figure 7).

#include <cstdio>

#include "comm/topology.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "sync/staleness.h"

using namespace hetgmp;  // NOLINT — example brevity

int main() {
  CtrDataset train = GenerateSyntheticCtr(AvazuLikeConfig(/*scale=*/0.25));
  CtrDataset test = train.SplitTail(0.15);
  Topology topology = Topology::EightGpuQpi();

  std::printf("%10s %10s %14s %16s %16s\n", "s", "AUC", "throughput",
              "intra-refresh", "inter-refresh");
  const uint64_t sweeps[] = {0, 10, 100, 10000, StalenessBound::kUnbounded};
  for (uint64_t s : sweeps) {
    EngineConfig cfg;
    cfg.strategy = Strategy::kHetGmp;
    ApplyStrategyDefaults(&cfg);
    cfg.bound.s = s;
    ExperimentResult run =
        RunExperiment(cfg, train, test, topology, /*max_epochs=*/3);
    const RoundStats& last = run.train.rounds.back();
    char s_label[24];  // fits a full 20-digit uint64 rendering
    if (s == StalenessBound::kUnbounded) {
      std::snprintf(s_label, sizeof(s_label), "inf");
    } else {
      std::snprintf(s_label, sizeof(s_label), "%llu",
                    static_cast<unsigned long long>(s));
    }
    std::printf("%10s %10.4f %14.0f %16lld %16lld\n", s_label,
                run.train.final_auc, run.train.Throughput(),
                static_cast<long long>(last.intra_refreshes),
                static_cast<long long>(last.inter_refreshes));
  }
  return 0;
}
