// Quickstart: train a Wide & Deep CTR model with HET-GMP on a synthetic
// Criteo-like dataset over 8 simulated GPUs, and compare against the
// HET-MP baseline (random partition, BSP, no replication).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "comm/topology.h"
#include "core/runner.h"
#include "data/stats.h"
#include "data/synthetic.h"

using namespace hetgmp;  // NOLINT — example brevity

int main() {
  // 1. Generate a scaled-down Criteo-like dataset (see DESIGN.md §2 for
  //    how the generator mirrors the paper's skew and locality).
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(/*scale=*/0.5));
  CtrDataset test = train.SplitTail(0.15);
  std::printf("dataset: %s\n", ComputeDatasetStats(train).ToString().c_str());

  // 2. Pick a cluster: 8 GPUs, PCIe within switch groups, QPI across.
  Topology topology = Topology::EightGpuQpi();

  // 3. Train with HET-GMP (hybrid graph partition + replication + bounded
  //    asynchrony with s=100).
  EngineConfig gmp;
  gmp.strategy = Strategy::kHetGmp;
  gmp.model = ModelType::kWdl;
  ApplyStrategyDefaults(&gmp);
  gmp.bound.s = 100;
  gmp.batch_size = 512;
  ExperimentResult gmp_run =
      RunExperiment(gmp, train, test, topology, /*max_epochs=*/3);
  std::printf("\n== %s ==\n%s", gmp_run.description.c_str(),
              FormatConvergenceCurve(gmp_run.train).c_str());
  std::printf("throughput: %.0f samples/sim-sec, final AUC %.4f\n",
              gmp_run.train.Throughput(), gmp_run.train.final_auc);
  std::printf("avg worker time: compute %.4fs, communication %.4fs (%.0f%%)\n",
              gmp_run.train.compute_time, gmp_run.train.comm_time,
              100.0 * gmp_run.train.comm_time /
                  (gmp_run.train.comm_time + gmp_run.train.compute_time));

  // 4. Same model with the HET-MP baseline for comparison.
  EngineConfig mp;
  mp.strategy = Strategy::kHetMp;
  mp.model = ModelType::kWdl;
  ApplyStrategyDefaults(&mp);
  mp.batch_size = 512;
  ExperimentResult mp_run =
      RunExperiment(mp, train, test, topology, /*max_epochs=*/3);
  std::printf("\n== %s ==\n%s", mp_run.description.c_str(),
              FormatConvergenceCurve(mp_run.train).c_str());
  std::printf("throughput: %.0f samples/sim-sec, final AUC %.4f\n",
              mp_run.train.Throughput(), mp_run.train.final_auc);
  std::printf("avg worker time: compute %.4fs, communication %.4fs (%.0f%%)\n",
              mp_run.train.compute_time, mp_run.train.comm_time,
              100.0 * mp_run.train.comm_time /
                  (mp_run.train.comm_time + mp_run.train.compute_time));

  std::printf("\nHET-GMP speedup over HET-MP: %.2fx\n",
              gmp_run.train.Throughput() / mp_run.train.Throughput());
  return 0;
}
