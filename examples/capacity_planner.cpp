// Capacity planner: reproduces the paper's 10^11-parameter capacity claim
// analytically (§7.4: "with 24 GPUs (32 GB), we support around 10^11 float
// parameters in the embedding table").
//
// The arithmetic is the real system's memory budget: per worker, the
// embedding shard gets GPU memory minus the dense replica, activations and
// the vertex-cut secondary space (secondaries need value + stale-gradient
// rows, §6). Capacity = Σ shard_rows × dim.

#include <cstdio>

#include "comm/topology.h"
#include "common/stringutil.h"

using namespace hetgmp;  // NOLINT — example brevity

namespace {

struct PlannerConfig {
  double gpu_memory_gb = 32.0;      // V100 on cluster B
  double reserved_gb = 4.0;         // dense model, activations, workspace
  int embedding_dim = 128;          // production-scale embedding width
  double secondary_fraction = 0.01; // top-1% replication (§7)
  double optimizer_rows = 1.0;      // AdaGrad keeps one accumulator row
};

double CapacityParams(const PlannerConfig& cfg, int num_gpus) {
  const double usable_bytes = (cfg.gpu_memory_gb - cfg.reserved_gb) * 1e9;
  const double row_bytes =
      cfg.embedding_dim * sizeof(float) * (1.0 + cfg.optimizer_rows);
  // Primary shard rows per GPU, leaving room for the secondary replicas
  // (which also carry a pending-gradient row: value + accum + pending).
  const double primary_rows = usable_bytes / row_bytes;
  // Secondary budget: secondary_fraction of the *global* table per GPU,
  // each secondary costing one extra pending-gradient row.
  const double sec_overhead =
      cfg.secondary_fraction * num_gpus *
      (cfg.embedding_dim * sizeof(float) * (1.0 + cfg.optimizer_rows + 1.0)) /
      row_bytes;
  const double effective_rows = primary_rows / (1.0 + sec_overhead);
  return effective_rows * num_gpus * cfg.embedding_dim;
}

}  // namespace

int main() {
  PlannerConfig cfg;
  std::printf(
      "capacity planning (GPU %.0f GB, %.0f GB reserved, dim %d, "
      "top-%.0f%%%% secondaries, AdaGrad):\n\n",
      cfg.gpu_memory_gb, cfg.reserved_gb, cfg.embedding_dim,
      cfg.secondary_fraction * 100);
  std::printf("%8s %22s %22s\n", "#GPUs", "embedding params",
              "vs paper's 10^11");
  for (int gpus : {1, 2, 4, 8, 16, 24}) {
    const double params = CapacityParams(cfg, gpus);
    std::printf("%8d %22s %21.1f%%\n", gpus,
                HumanCount(params).c_str(), 100.0 * params / 1e11);
  }
  std::printf(
      "\nAt 24 GPUs the planner lands at ~10^11 float parameters, matching "
      "§7.4.\n");
  return 0;
}
