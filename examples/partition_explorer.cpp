// Partition explorer: runs the paper's Algorithm 1 round by round on a
// synthetic dataset and reports how the edge-cut communication and the
// balance evolve, next to the Random and BiCut baselines.
//
// Usage: partition_explorer [num_parts] [scale]

#include <cstdio>
#include <cstdlib>

#include "data/stats.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "partition/bicut_partitioner.h"
#include "partition/hybrid_partitioner.h"
#include "partition/quality.h"
#include "partition/random_partitioner.h"

using namespace hetgmp;  // NOLINT — example brevity

namespace {

void Report(const char* label, const Bigraph& graph, const Partition& p) {
  const PartitionQuality q = EvaluatePartition(graph, p);
  std::printf("  %-18s %s\n", label, q.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int num_parts = argc > 1 ? std::atoi(argv[1]) : 8;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  CtrDataset data = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  std::printf("dataset: %s\n", ComputeDatasetStats(data).ToString().c_str());
  Bigraph graph(data);

  std::printf("\npartitioning into %d parts:\n", num_parts);
  Report("random", graph, RandomPartitioner().Run(graph, num_parts));
  Report("bicut", graph, BiCutPartitioner().Run(graph, num_parts));

  for (int rounds : {1, 3, 5}) {
    HybridPartitionerOptions opt;
    opt.rounds = rounds;
    char label[64];
    std::snprintf(label, sizeof(label), "hybrid (T=%d)", rounds);
    Report(label, graph, HybridPartitioner(opt).Run(graph, num_parts));
  }

  // Replication ablation: vary the vertex-cut budget.
  std::printf("\nvertex-cut budget sweep (T=3):\n");
  for (double frac : {0.0, 0.005, 0.01, 0.05}) {
    HybridPartitionerOptions opt;
    opt.rounds = 3;
    opt.secondary_fraction = frac;
    char label[64];
    std::snprintf(label, sizeof(label), "secondaries %.1f%%", frac * 100);
    Report(label, graph, HybridPartitioner(opt).Run(graph, num_parts));
  }
  return 0;
}
