// Custom data end to end: parse a LibSVM-style CTR log, persist it in the
// binary format, reload it, and train HET-GMP on it — the path a
// downstream user takes to run the system on their own data.

#include <cstdio>
#include <cmath>
#include <sstream>
#include <string>

#include "comm/topology.h"
#include "common/random.h"
#include "core/runner.h"
#include "data/io.h"
#include "data/stats.h"

using namespace hetgmp;  // NOLINT — example brevity

namespace {

// Builds a small LibSVM-style text log (stand-in for a real exported
// click log): 4 fields with 40/30/20/10 features, labels from a noisy
// linear teacher over the field-0 feature.
std::string MakeDemoLog(int64_t samples) {
  std::vector<int64_t> offsets = {0, 40, 70, 90, 100};
  Rng rng(2024);
  std::ostringstream os;
  os << "# demo click log: label f0 f1 f2 f3\n";
  for (int64_t i = 0; i < samples; ++i) {
    int64_t f0 = static_cast<int64_t>(rng.NextUint64(40));
    const double logit = (static_cast<double>(f0) / 40.0 - 0.5) * 4.0 +
                         rng.NextGaussian() * 0.7;
    const int label = rng.NextBool(1.0 / (1.0 + std::exp(-logit))) ? 1 : 0;
    os << label << " " << f0 << " " << 40 + rng.NextUint64(30) << " "
       << 70 + rng.NextUint64(20) << " " << 90 + rng.NextUint64(10)
       << "\n";
  }
  return os.str();
}

}  // namespace

int main() {
  // 1. Parse the text log.
  const std::string log = MakeDemoLog(6000);
  Result<CtrDataset> parsed =
      ParseLibSvmCtr(log, "demo-log", /*num_fields=*/4, {0, 40, 70, 90, 100});
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }

  // 2. Persist + reload through the binary format.
  const std::string path = "/tmp/hetgmp_demo_dataset.bin";
  if (Status st = SaveDataset(parsed.value(), path); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<CtrDataset> loaded = LoadDataset(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  CtrDataset train = std::move(loaded).value();
  CtrDataset test = train.SplitTail(0.2);
  std::printf("dataset: %s\n", ComputeDatasetStats(train).ToString().c_str());

  // 3. Train HET-GMP on it.
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 128;
  cfg.embedding_dim = 8;
  ExperimentResult r = RunExperiment(cfg, train, test,
                                     Topology::FourGpuPcie(),
                                     /*max_epochs=*/6);
  std::printf("\n== %s ==\n%s", r.description.c_str(),
              FormatConvergenceCurve(r.train).c_str());
  std::printf("final AUC %.4f\n", r.train.final_auc);
  std::remove(path.c_str());
  return 0;
}
