// Training hot-path wall-clock: reference (pre-batch-plan) engine vs the
// planned engine (batch index plan + deduped inter-embedding sync +
// parallel round-serial section), on 8 simulated workers over Zipf
// synthetic CTR workloads.
//
// Unlike the table/figure benches this measures *real* wall-clock
// iterations/sec of the threaded engine, with the per-stage breakdown
// (gather / inter-sync / dense / scatter / flush) from
// TrainResult::stage_secs. Every configuration emits a one-line
// machine-readable summary on stdout prefixed with "BENCH_JSON ":
//
//   {"bench":"train_hotpath","dataset":"...","workers":N,"batch":N,
//    "fields":N,"hotpath":"reference|planned","epochs":N,"wall_s":F,
//    "iters":N,"iters_per_sec":F,"gather_s":F,"inter_s":F,"dense_s":F,
//    "scatter_s":F,"flush_s":F,"speedup_vs_ref":F}
//
// HETGMP_BENCH_SCALE scales the datasets; HETGMP_BENCH_JSON=<path>
// appends the same lines to a file for CI harvesting.
//
// Acceptance (ISSUE 5): planned >= 1.5x reference iterations/sec on the
// 8-worker company-like workload, with the golden-trajectory tests
// proving the two paths bit-identical.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

constexpr int kEpochs = 2;
// Eight engine threads time-slice the host, so single runs jitter by
// 10-20%; each configuration reports its best of kReps runs (the run
// with the least scheduler interference is the closest measure of the
// actual CPU work).
constexpr int kReps = 3;

struct RunStats {
  double wall_s = 0.0;
  int64_t iters = 0;
  double iters_per_sec = 0.0;
  HotpathStageSeconds stages;
};

RunStats RunOnce(const EngineConfig& cfg, const CtrDataset& train,
                 const CtrDataset& test, const Topology& topology,
                 const Bigraph& graph) {
  Partition part = BuildPartition(cfg, graph, topology);
  Engine engine(cfg, train, test, topology, part);
  const auto start = std::chrono::steady_clock::now();
  const TrainResult r = engine.Train(kEpochs);
  RunStats stats;
  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  stats.iters = r.total_iterations;
  stats.iters_per_sec =
      stats.wall_s > 0 ? static_cast<double>(stats.iters) / stats.wall_s
                       : 0.0;
  stats.stages = r.stage_secs;
  return stats;
}

RunStats RunBest(const EngineConfig& cfg, const CtrDataset& train,
                 const CtrDataset& test, const Topology& topology,
                 const Bigraph& graph) {
  RunStats best;
  for (int rep = 0; rep < kReps; ++rep) {
    RunStats s = RunOnce(cfg, train, test, topology, graph);
    if (rep == 0 || s.iters_per_sec > best.iters_per_sec) best = s;
  }
  return best;
}

void EmitJson(BenchJsonSink* sink, const std::string& dataset, int workers,
              const EngineConfig& cfg, int fields, const char* hotpath,
              const RunStats& s, const RunStats& ref) {
  sink->Emit(JsonLine()
                 .Str("bench", "train_hotpath")
                 .Str("dataset", dataset)
                 .Int("workers", workers)
                 .Int("batch", cfg.batch_size)
                 .Int("fields", fields)
                 .Str("hotpath", hotpath)
                 .Int("epochs", kEpochs)
                 .Num("wall_s", s.wall_s)
                 .Int("iters", s.iters)
                 .Num("iters_per_sec", s.iters_per_sec, 1)
                 .Num("gather_s", s.stages.gather)
                 .Num("inter_s", s.stages.inter_sync)
                 .Num("dense_s", s.stages.dense)
                 .Num("scatter_s", s.stages.scatter)
                 .Num("flush_s", s.stages.flush)
                 .Num("speedup_vs_ref",
                      ref.iters_per_sec > 0
                          ? s.iters_per_sec / ref.iters_per_sec
                          : 0.0,
                      2));
}

void PrintRow(const char* hotpath, const RunStats& s, const RunStats& ref) {
  std::printf("%-10s %8.3f %8lld %10.1f %9.2fx | %7.3f %7.3f %7.3f %7.3f %7.3f\n",
              hotpath, s.wall_s, static_cast<long long>(s.iters),
              s.iters_per_sec,
              ref.iters_per_sec > 0 ? s.iters_per_sec / ref.iters_per_sec
                                    : 0.0,
              s.stages.gather, s.stages.inter_sync, s.stages.dense,
              s.stages.scatter, s.stages.flush);
}

}  // namespace

int main() {
  PrintHeader("Training hot-path wall-clock: reference vs batch-plan engine",
              "ISSUE 5 acceptance: planned >= 1.5x reference iters/sec "
              "(8 workers, company-like)");
  const double scale = EnvScale(1.0);
  BenchJsonSink sink;

  const Topology topology = Topology::EightGpuQpi();
  const int workers = topology.num_workers();

  // Two Zipf workloads: the company-like graph (43 fields, the widest of
  // the paper's Table 1 datasets and the heaviest O(F^2) inter-embedding
  // pass) is the acceptance config; the avazu-like graph (22 fields)
  // shows the narrow-field end.
  const std::vector<SyntheticCtrConfig> datasets = {
      CompanyLikeConfig(scale), AvazuLikeConfig(scale)};

  bool speedup_ok = true;
  for (const SyntheticCtrConfig& dc : datasets) {
    const CtrDataset full = GenerateSyntheticCtr(dc);
    CtrDataset train = full;
    const CtrDataset test = train.SplitTail(0.1);
    const Bigraph graph(train);

    EngineConfig cfg;
    cfg.strategy = Strategy::kHetGmp;
    ApplyStrategyDefaults(&cfg);
    cfg.batch_size = 256;
    cfg.embedding_dim = 16;
    cfg.rounds_per_epoch = 2;
    // Tight bound keeps the inter-embedding pass busy (flags and
    // refreshes on the Zipf head, whose features are secondaries nearly
    // everywhere); frequency normalization as in §5.3. Placement stays
    // at the strategy default so the workload is the out-of-the-box
    // HET-GMP configuration.
    cfg.bound.s = 1;

    std::printf("\n--- %s (%lld samples, %d fields, %lld features, %d "
                "workers, batch %d) ---\n",
                dc.name.c_str(), static_cast<long long>(train.num_samples()),
                train.num_fields(),
                static_cast<long long>(train.num_features()), workers,
                cfg.batch_size);
    std::printf("%-10s %8s %8s %10s %10s | %7s %7s %7s %7s %7s\n", "hotpath",
                "wall(s)", "iters", "iters/s", "speedup", "gather",
                "inter", "dense", "scatter", "flush");

    EngineConfig ref_cfg = cfg;
    ref_cfg.reference_hotpath = true;
    const RunStats ref = RunBest(ref_cfg, train, test, topology, graph);
    PrintRow("reference", ref, ref);
    EmitJson(&sink, dc.name, workers, cfg, train.num_fields(),
             "reference", ref, ref);

    EngineConfig opt_cfg = cfg;
    opt_cfg.reference_hotpath = false;
    const RunStats opt = RunBest(opt_cfg, train, test, topology, graph);
    PrintRow("planned", opt, ref);
    EmitJson(&sink, dc.name, workers, cfg, train.num_fields(),
             "planned", opt, ref);

    if (dc.name == datasets.front().name &&
        opt.iters_per_sec < 1.5 * ref.iters_per_sec) {
      speedup_ok = false;
    }
  }

  // The speedup comes from CPU-work reduction (plan reuse + pair dedup),
  // so it does not need many cores — but a scaled-down dataset changes
  // the unique-feature and co-access profile the criterion is defined
  // on, so such runs report n/a rather than a misleading verdict.
  const char* msg = scale >= 1.0 ? (speedup_ok ? "PASS" : "FAIL")
                                 : "n/a (scaled-down run)";
  std::printf("\nacceptance: planned >= 1.5x reference iters/sec "
              "(8 workers, company-like): %s\n",
              msg);
  return 0;
}
