// Figure 8: "Communication details for HET-GMP" — per-iteration traffic
// split into (1) embeddings+gradients, (2) index+clock metadata,
// (3) dense AllReduce, for four configurations: random partitioning,
// 1-D only, 2-D with s=10, 2-D with s=100. Paper shape: embeddings
// dominate; 1-D slashes them; 2-D + staleness slashes them further (up to
// 87.5% reduction on Company); DCN carries more AllReduce than WDL.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "comm/topology.h"
#include "common/stringutil.h"
#include "core/runner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

struct Variant {
  std::string label;
  PlacementPolicy placement;
  double secondary_fraction;
  uint64_t s;
};

}  // namespace

int main() {
  PrintHeader("Per-iteration communication breakdown of HET-GMP variants",
              "Figure 8");
  const double scale = EnvScale(0.35);
  const Topology topology = Topology::EightGpuQpi();

  // The 2-D replica budget is 5% of our scaled-down table — the same
  // per-GPU memory overhead the paper's "top 1%" is relative to its
  // 33M-row tables (see DESIGN.md §5).
  const Variant variants[] = {
      {"random", PlacementPolicy::kRandom, 0.0, 0},
      {"1-D", PlacementPolicy::kHybrid, 0.0, 0},
      {"2-D(s=10)", PlacementPolicy::kHybrid, 0.05, 10},
      {"2-D(s=100)", PlacementPolicy::kHybrid, 0.05, 100},
  };

  for (ModelType model : {ModelType::kWdl, ModelType::kDcn}) {
    for (const auto& data_cfg : PaperDatasets(scale)) {
      CtrDataset train = GenerateSyntheticCtr(data_cfg);
      CtrDataset test = train.SplitTail(0.1);
      std::printf("\n--- %s on %s (bytes per iteration per worker) ---\n",
                  ModelTypeName(model), data_cfg.name.c_str());
      std::printf("%-12s %14s %14s %14s %12s\n", "variant", "embedding",
                  "index+clock", "allreduce", "emb vs rand");
      double random_emb = 0.0;
      for (const Variant& v : variants) {
        EngineConfig cfg;
        cfg.strategy = Strategy::kHetGmp;
        cfg.model = model;
        ApplyStrategyDefaults(&cfg);
        cfg.placement = v.placement;
        cfg.hybrid_options.secondary_fraction = v.secondary_fraction;
        cfg.bound.s = v.s;
        cfg.batch_size = 512;
        cfg.embedding_dim = 16;
        cfg.rounds_per_epoch = 1;
        ExperimentResult r =
            RunExperiment(cfg, train, test, topology, /*max_epochs=*/2);
        const RoundStats& last = r.train.rounds.back();
        const double iters =
            static_cast<double>(r.train.total_iterations);
        const double emb = last.embedding_bytes / iters;
        const double idx = last.index_clock_bytes / iters;
        const double ar = last.allreduce_bytes / iters;
        if (v.placement == PlacementPolicy::kRandom) random_emb = emb;
        std::printf("%-12s %14s %14s %14s %11.1f%%\n", v.label.c_str(),
                    HumanBytes(uint64_t(emb)).c_str(),
                    HumanBytes(uint64_t(idx)).c_str(),
                    HumanBytes(uint64_t(ar)).c_str(),
                    random_emb > 0 ? 100.0 * (1.0 - emb / random_emb)
                                   : 0.0);
      }
    }
  }
  std::printf(
      "\npaper shape: embedding traffic dominates under random "
      "partitioning; 1-D cuts it sharply and 2-D with bounded staleness "
      "cuts it further (paper: up to 87.5%% on Company at s=100); "
      "index+clock stays small; DCN ships more AllReduce than WDL.\n");
  return 0;
}
