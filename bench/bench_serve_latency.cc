// Closed-loop serving latency bench: trains a small model, publishes a
// snapshot through the engine's publish hook, then drives Zipf-skewed
// lookups from K closed-loop client threads through the request batcher
// and reports p50/p95/p99 lookup latency plus the per-TrafficClass fabric
// byte counts (serving traffic appears as the `lookup` class).
//
// Sweeps the front-door configuration: direct service calls vs. batched,
// and hot-cache on vs. off — the serving-side analogue of the paper's
// replication ablation (the same skew that makes training caches work is
// what makes the serving tier fast).
//
// LIMITATION — closed loop: each client waits for its previous response
// before sending the next request, so the arrival rate automatically
// backs off exactly when the server slows down. That hides queueing
// collapse and under-reports tail latency (coordinated omission). Use
// this bench to compare front-door configurations at equal concurrency;
// use bench_serve_openloop for latency-vs-offered-load curves, the knee
// point, and the admission-control/QoS behavior past saturation.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "comm/topology.h"
#include "common/histogram.h"
#include "common/zipf.h"
#include "core/runner.h"
#include "graph/bigraph.h"
#include "metrics/comm_report.h"
#include "serve/batcher.h"
#include "serve/lookup_service.h"
#include "serve/snapshot_store.h"

using namespace hetgmp;  // NOLINT — bench brevity

namespace {

constexpr int kClients = 8;
constexpr int kKeysPerRequest = 16;
constexpr double kZipfTheta = 1.05;

struct LoadResult {
  Histogram latency_us;
  double wall_secs = 0.0;
  int64_t failures = 0;
};

// Runs the closed-loop load: each client issues `requests_per_client`
// lookups back-to-back against its round-robin front-end shard.
template <typename LookupFn>
LoadResult DriveLoad(int num_shards, int64_t num_features, int dim,
                     int64_t requests_per_client, LookupFn&& lookup) {
  const ZipfSampler zipf(static_cast<uint64_t>(num_features), kZipfTheta);
  std::vector<Histogram> latencies(kClients);
  std::atomic<int64_t> failures{0};
  auto client_main = [&](int c) {
    Rng rng(0xbe7cafeULL + 77ULL * static_cast<uint64_t>(c));
    std::vector<FeatureId> keys(kKeysPerRequest);
    std::vector<float> out(static_cast<size_t>(kKeysPerRequest) * dim);
    const int shard = c % num_shards;
    for (int64_t r = 0; r < requests_per_client; ++r) {
      for (int k = 0; k < kKeysPerRequest; ++k) {
        keys[k] = static_cast<FeatureId>(zipf.Sample(&rng));
      }
      const auto t0 = std::chrono::steady_clock::now();
      const Status st = lookup(shard, keys.data(), kKeysPerRequest,
                               out.data());
      const auto t1 = std::chrono::steady_clock::now();
      if (!st.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      latencies[c].Add(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  };
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) threads.emplace_back(client_main, c);
  for (auto& t : threads) t.join();
  LoadResult result;
  result.wall_secs = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  for (const Histogram& h : latencies) result.latency_us.Merge(h);
  result.failures = failures.load();
  return result;
}

void PrintRow(const char* config, const LoadResult& r,
              const LookupStats& stats, bench::BenchJsonSink* sink) {
  const std::vector<double> ps =
      r.latency_us.PercentileMany({50.0, 95.0, 99.0, 99.9});
  const double qps =
      r.wall_secs > 0
          ? static_cast<double>(r.latency_us.count()) / r.wall_secs
          : 0.0;
  std::printf("%-28s %9.0f %9.1f %9.1f %9.1f %8.3f %8lld\n", config, qps,
              ps[0], ps[1], ps[2], stats.LocalFraction(),
              static_cast<long long>(r.failures));
  sink->Emit(bench::JsonLine()
                 .Str("bench", "serve_latency")
                 .Str("config", config)
                 .Str("loop", "closed")
                 .Num("qps", qps, 1)
                 .Num("p50_us", ps[0], 1)
                 .Num("p95_us", ps[1], 1)
                 .Num("p99_us", ps[2], 1)
                 .Num("p999_us", ps[3], 1)
                 .Num("local_fraction", stats.LocalFraction())
                 .Int("failures", r.failures));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Online serving latency (closed-loop, Zipf-skewed lookups)",
      "north-star extension: train-to-serve path over §5.1/§5.2 "
      "partition+replicas");
  bench::BenchJsonSink sink;

  const double scale = bench::EnvScale(0.05);
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.15);

  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.embedding_dim = 16;
  const int workers = 8;
  const Topology topology = Topology::ClusterA(workers);
  Bigraph graph(train);
  Partition partition = BuildPartition(cfg, graph, topology);
  Engine engine(cfg, train, test, topology, std::move(partition));

  SnapshotStore store;
  engine.SetPublishHook(
      [&store](const Engine::PublishContext& ctx) {
        return store.Publish(ctx.table, ctx.dense_params, ctx.round,
                             ctx.iterations_done);
      },
      /*every_rounds=*/2);
  std::printf("training (%lld samples, %lld features)...\n",
              static_cast<long long>(train.num_samples()),
              static_cast<long long>(train.num_features()));
  TrainResult tr = engine.Train(/*max_epochs=*/1);
  std::printf("trained: auc=%.4f snapshots=%lld (latest v%llu)\n\n",
              tr.final_auc, static_cast<long long>(tr.snapshots_published),
              static_cast<unsigned long long>(store.version()));

  const int64_t requests_per_client =
      std::max<int64_t>(200, static_cast<int64_t>(4000 * scale * 20));
  std::printf("%-28s %9s %9s %9s %9s %8s %8s\n", "config", "qps", "p50us",
              "p95us", "p99us", "local", "fail");

  // Sweep: hot cache off/on, direct vs. batched front door.
  struct Sweep {
    const char* name;
    int64_t hot_rows;
    bool batched;
  };
  const Sweep sweeps[] = {
      {"direct, no hot cache", 0, false},
      {"direct, hot cache 4k", 4096, false},
      {"batched, no hot cache", 0, true},
      {"batched, hot cache 4k", 4096, true},
  };
  for (const Sweep& s : sweeps) {
    LookupServiceOptions svc_opts;
    svc_opts.hot_rows_per_shard = s.hot_rows;
    LookupService service(&store, engine.partition(),
                          engine.mutable_fabric(), svc_opts);
    LoadResult r;
    if (s.batched) {
      BatcherOptions b_opts;
      b_opts.max_batch_keys = 256;
      b_opts.deadline = std::chrono::microseconds(100);
      RequestBatcher batcher(&service, b_opts);
      r = DriveLoad(workers, train.num_features(), cfg.embedding_dim,
                    requests_per_client,
                    [&](int shard, const FeatureId* keys, int64_t n,
                        float* out) {
                      return batcher.Lookup(shard, keys, n, out);
                    });
    } else {
      r = DriveLoad(workers, train.num_features(), cfg.embedding_dim,
                    requests_per_client,
                    [&](int shard, const FeatureId* keys, int64_t n,
                        float* out) {
                      return service.LookupBatch(shard, keys, n, out);
                    });
    }
    PrintRow(s.name, r, service.stats(), &sink);
  }

  std::printf("\n%s\n", engine.fabric().ReportString().c_str());
  const CommBreakdown breakdown = SnapshotBreakdown(
      engine.fabric(), std::max<int64_t>(1, tr.total_iterations));
  std::printf("%s\n", breakdown.ToString().c_str());
  return 0;
}
