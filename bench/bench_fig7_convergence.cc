// Figure 7: "Convergence performance comparison" — test-AUC-vs-time for
// TF-PS, Parallax, HugeCTR, HET-MP and HET-GMP (s = 0 / 10 / 100) on
// WDL & DCN × three datasets (8 workers). Paper shape:
//  * TF-PS and Parallax never reach the AUC threshold in budget;
//  * HugeCTR ≈ HET-MP;
//  * HET-GMP reaches the threshold fastest (1.64-2.66x over HugeCTR,
//    1.2-3.56x over HET-MP at s=100).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

struct Contender {
  std::string label;
  Strategy strategy;
  uint64_t s = 100;
};

EngineConfig MakeConfig(const Contender& c, ModelType model) {
  EngineConfig cfg;
  cfg.strategy = c.strategy;
  cfg.model = model;
  ApplyStrategyDefaults(&cfg);
  cfg.bound.s = c.s;
  cfg.batch_size = 256;
  cfg.embedding_dim = 16;
  cfg.rounds_per_epoch = 8;  // fine-grained time-to-AUC resolution
  return cfg;
}

// Simulated seconds until the run's AUC first reaches `target`; negative
// if never.
double TimeToTarget(const TrainResult& r, double target) {
  for (const RoundStats& rs : r.rounds) {
    if (rs.auc >= target) return rs.sim_time;
  }
  return -1.0;
}

}  // namespace

int main() {
  PrintHeader("End-to-end convergence comparison (8 workers, cluster A "
              "node)",
              "Figure 7 (a)-(f)");
  const double scale = EnvScale(0.5);
  const Topology topology = Topology::EightGpuQpi();

  const std::vector<Contender> contenders = {
      {"TF-PS", Strategy::kTfPs},
      {"Parallax", Strategy::kParallax},
      {"HugeCTR", Strategy::kHugeCtr},
      {"HET-MP", Strategy::kHetMp},
      {"HET-GMP(s=0)", Strategy::kHetGmp, 0},
      {"HET-GMP(s=10)", Strategy::kHetGmp, 10},
      {"HET-GMP(s=100)", Strategy::kHetGmp, 100},
  };

  for (ModelType model : {ModelType::kWdl, ModelType::kDcn}) {
    for (const auto& data_cfg : PaperDatasets(scale)) {
      CtrDataset train = GenerateSyntheticCtr(data_cfg);
      CtrDataset test = train.SplitTail(0.15);

      // Calibrate the AUC threshold from a reference HET-GMP run (the
      // paper uses dataset-specific thresholds from the literature). The
      // margin absorbs run-to-run variance of asynchronous training; the
      // budget is the paper-style "given time threshold" that the CPU-PS
      // systems miss.
      EngineConfig ref_cfg = MakeConfig(contenders.back(), model);
      ExperimentResult ref =
          RunExperiment(ref_cfg, train, test, topology, /*max_epochs=*/5);
      double best_ref = 0.0;
      double ref_time_to_best = ref.train.total_sim_time;
      for (const RoundStats& rs : ref.train.rounds) {
        if (rs.auc > best_ref) {
          best_ref = rs.auc;
          ref_time_to_best = rs.sim_time;
        }
      }
      const double target = best_ref - 0.012;
      const double budget = ref_time_to_best * 2.5;

      std::printf("\n--- %s on %s (AUC threshold %.4f) ---\n",
                  ModelTypeName(model), data_cfg.name.c_str(), target);
      std::printf("%-16s %14s %10s %12s\n", "system", "time-to-AUC(s)",
                  "final AUC", "vs HugeCTR");
      double hugectr_time = -1.0;
      for (const auto& c : contenders) {
        EngineConfig cfg = MakeConfig(c, model);
        ExperimentResult r = RunExperiment(cfg, train, test, topology,
                                           /*max_epochs=*/30, target,
                                           budget);
        const double t = TimeToTarget(r.train, target);
        if (c.strategy == Strategy::kHugeCtr) hugectr_time = t;
        char speedup[32] = "-";
        if (t > 0 && hugectr_time > 0) {
          std::snprintf(speedup, sizeof(speedup), "%.2fx",
                        hugectr_time / t);
        }
        char time_label[32];
        if (t > 0) {
          std::snprintf(time_label, sizeof(time_label), "%.4f", t);
        } else {
          std::snprintf(time_label, sizeof(time_label), "DNF(%.4f)",
                        r.train.final_auc);
        }
        std::printf("%-16s %14s %10.4f %12s\n", c.label.c_str(), time_label,
                    r.train.final_auc, speedup);
      }
    }
  }
  std::printf(
      "\npaper shape: CPU-PS systems (TF-PS, Parallax) miss the threshold "
      "within budget; HugeCTR tracks HET-MP; HET-GMP converges fastest, "
      "with s=0 already ahead and s=100 fastest overall.\n");
  return 0;
}
