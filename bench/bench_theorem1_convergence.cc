// Theorem 1 (§5.4): numerical verification of the convergence guarantees
// of graph-based bounded asynchrony — Σ||x(t+1)−x(t)|| < ∞ (Eq. 7) and
// F(mean iterate) − F_inf ≤ O(1/t) (Eq. 9) — for step sizes
// η ∈ (0, 1/(L(1+2√(p·s)))), across a (workers, staleness) grid.

#include <cstdio>

#include "bench_util.h"
#include "theory/theorem1.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

int main() {
  PrintHeader("Bounded-staleness convergence guarantees", "Theorem 1 (§5.4)");
  std::printf("%4s %4s %12s %14s %14s %12s %10s\n", "p", "s", "eta",
              "final F", "sum||dx||", "tail-mass", "rate-exp");
  for (int p : {1, 4, 8, 16}) {
    for (uint64_t s : {uint64_t{0}, uint64_t{2}, uint64_t{8},
                       uint64_t{32}}) {
      Theorem1Config cfg;
      cfg.num_workers = p;
      cfg.staleness = s;
      cfg.steps = 8000;
      Theorem1Result r = RunTheorem1(cfg);
      std::printf("%4d %4llu %12.3e %14.3e %14.4f %11.4f%% %10.2f\n", p,
                  static_cast<unsigned long long>(s), r.step_size,
                  r.final_objective, r.sum_step_norms,
                  100.0 * r.tail_mass_fraction, r.rate_exponent);
    }
  }
  std::printf(
      "\nexpected: every (p, s) cell converges (final F ≈ 0); the step-norm "
      "series is summable (tail mass → 0, Eq. 7); the mean-iterate gap "
      "decays at least as fast as 1/t (rate exponent ≤ −1, Eq. 9). Larger "
      "p·s forces a smaller theorem step size.\n");
  return 0;
}
