// Table 1: "Overview of the three datasets" — our scaled-down synthetic
// analogues (paper: Avazu 40.4M×9.4M×22, Criteo 45.8M×33.8M×26,
// Company 35.7M×66.1M×43). Shapes preserved: sample ordering, field
// counts, features-per-sample ratio ordering, and access skew.

#include <cstdio>

#include "bench_util.h"
#include "data/stats.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

int main() {
  PrintHeader("Dataset overview (synthetic analogues)", "Table 1");
  const double scale = EnvScale(1.0);
  std::printf("%-14s %10s %10s %8s %10s %10s %8s\n", "Dataset", "#Samples",
              "#Features", "#Fields", "top1%share", "hottest", "gini");
  for (const auto& cfg : PaperDatasets(scale)) {
    DatasetStats s = ComputeDatasetStats(GenerateSyntheticCtr(cfg));
    std::printf("%-14s %10lld %10lld %8d %9.1f%% %9.2f%% %8.3f\n",
                s.name.c_str(), static_cast<long long>(s.num_samples),
                static_cast<long long>(s.num_features), s.num_fields,
                100.0 * s.top1pct_share, 100.0 * s.max_frequency, s.gini);
  }
  std::printf(
      "\npaper shape: fields 22/26/43; feature count ordering "
      "avazu < criteo < company; heavy access skew on all three.\n");
  return 0;
}
