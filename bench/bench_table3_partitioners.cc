// Table 3: "Graph partitioning algorithms performance comparison" —
// remote embedding communications per epoch and partitioning wall time
// for Random, BiCut and our hybrid algorithm at 1/3/5 rounds, 8
// partitions, on the three datasets. Paper shape: BiCut reduces 13.5-18.7%
// over random; ours reduces 37-68% with most of the win by round 3, and
// partitioning time stays negligible next to training.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "graph/bigraph.h"
#include "partition/bicut_partitioner.h"
#include "partition/hybrid_partitioner.h"
#include "partition/quality.h"
#include "partition/random_partitioner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

constexpr int kParts = 8;

struct Row {
  const char* label;
  std::unique_ptr<Partitioner> partitioner;
};

std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  rows.push_back({"Random", std::make_unique<RandomPartitioner>()});
  rows.push_back({"BiCut", std::make_unique<BiCutPartitioner>()});
  for (int rounds : {1, 3, 5}) {
    HybridPartitionerOptions opt;
    opt.rounds = rounds;
    static const char* kLabels[] = {"Ours (1 round)", "Ours (3 rounds)",
                                    "Ours (5 rounds)"};
    rows.push_back({kLabels[rounds == 1 ? 0 : (rounds == 3 ? 1 : 2)],
                    std::make_unique<HybridPartitioner>(opt)});
  }
  return rows;
}

}  // namespace

int main() {
  PrintHeader("Partitioning algorithm comparison (8 partitions)",
              "Table 3");
  const double scale = EnvScale(1.0);
  for (const auto& data_cfg : PaperDatasets(scale)) {
    CtrDataset data = GenerateSyntheticCtr(data_cfg);
    Bigraph graph(data);
    std::printf("\n--- %s ---\n", data_cfg.name.c_str());
    std::printf("%-16s %16s %12s %10s\n", "Algorithm", "Communication",
                "Reduction", "Time(ms)");
    int64_t random_remote = 0;
    for (auto& row : MakeRows()) {
      const auto start = std::chrono::steady_clock::now();
      Partition p = row.partitioner->Run(graph, kParts);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      const PartitionQuality q = EvaluatePartition(graph, p);
      if (random_remote == 0) random_remote = q.remote_accesses;
      std::printf("%-16s %16lld %11.1f%% %10.0f\n", row.label,
                  static_cast<long long>(q.remote_accesses),
                  100.0 * (1.0 - static_cast<double>(q.remote_accesses) /
                                     random_remote),
                  ms);
    }
  }
  std::printf(
      "\npaper shape: BiCut 13.5-18.7%% reduction; ours 37-68%%, with "
      "rounds 3→5 adding little; partition time negligible vs training "
      "(<2%%).\n");
  return 0;
}
