// Ablation: static graph-derived replication (HET-GMP's 2D vertex-cut)
// vs dynamic LRU caching (the cache-enabled architecture of HET [34], the
// paper's predecessor) at equal replica capacity. The paper's thesis is
// that placing replicas from the *global co-access structure* beats
// reacting to the local access stream.

#include <cstdio>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

int main() {
  PrintHeader("Static vertex-cut replication vs dynamic LRU caching",
              "design comparison vs HET [34] (§3 'Related Work')");
  const double scale = EnvScale(0.5);
  const Topology topology = Topology::EightGpuQpi();
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.1);

  std::printf("%10s %-10s %10s %14s %12s\n", "capacity", "policy", "AUC",
              "emb KB/iter", "throughput");
  for (double frac : {0.01, 0.05, 0.10}) {
    for (bool lru : {false, true}) {
      EngineConfig cfg;
      cfg.strategy = Strategy::kHetGmp;
      ApplyStrategyDefaults(&cfg);
      cfg.batch_size = 512;
      cfg.embedding_dim = 16;
      cfg.bound.s = 100;
      if (lru) {
        cfg.replica_policy = ReplicaPolicy::kLruDynamic;
        cfg.lru_capacity_fraction = frac;
        cfg.hybrid_options.secondary_fraction = 0.0;
      } else {
        cfg.hybrid_options.secondary_fraction = frac;
      }
      ExperimentResult r =
          RunExperiment(cfg, train, test, topology, /*max_epochs=*/2);
      const RoundStats& last = r.train.rounds.back();
      std::printf("%9.0f%% %-10s %10.4f %14.1f %10.1fM\n", 100 * frac,
                  lru ? "LRU" : "static", r.train.final_auc,
                  last.embedding_bytes /
                      static_cast<double>(r.train.total_iterations) /
                      1024.0,
                  r.train.Throughput() / 1e6);
    }
  }
  std::printf(
      "\nexpected: at equal capacity, static vertex-cut replicas move "
      "less embedding traffic than LRU (no cold-miss churn, globally "
      "informed placement); the gap narrows as capacity grows.\n");
  return 0;
}
