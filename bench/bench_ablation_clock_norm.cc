// Ablation (DESIGN.md §4): access-frequency clock normalization (§5.3).
// The inter-embedding check compares clocks of embeddings whose update
// rates differ by orders of magnitude; without the p_j/p_i scaling, hot
// and cold embeddings look mutually stale and the check triggers refresh
// traffic that buys no model quality.

#include <cstdio>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

int main() {
  PrintHeader("Ablation: frequency-normalized clocks in the inter-"
              "embedding staleness check",
              "design choice of §5.3 (clock normalization)");
  const double scale = EnvScale(0.35);
  const Topology topology = Topology::EightGpuQpi();
  CtrDataset train = GenerateSyntheticCtr(AvazuLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.15);

  std::printf("%-14s %10s %14s %16s %14s\n", "normalize", "AUC",
              "stale flags", "inter-refreshes", "throughput");
  for (bool normalize : {true, false}) {
    EngineConfig cfg;
    cfg.strategy = Strategy::kHetGmp;
    ApplyStrategyDefaults(&cfg);
    cfg.bound.s = 20;
    cfg.bound.normalize_by_frequency = normalize;
    cfg.batch_size = 256;
    cfg.embedding_dim = 16;
    cfg.hybrid_options.secondary_fraction = 0.05;
    ExperimentResult r =
        RunExperiment(cfg, train, test, topology, /*max_epochs=*/4);
    const RoundStats& last = r.train.rounds.back();
    std::printf("%-14s %10.4f %14lld %16lld %12.1fM\n",
                normalize ? "on (paper)" : "off",
                r.train.final_auc,
                static_cast<long long>(last.inter_flags),
                static_cast<long long>(last.inter_refreshes),
                r.train.Throughput() / 1e6);
  }
  std::printf(
      "\nexpected: without normalization, hot/cold clock pairs are flagged "
      "stale pervasively (false positives the engine's refresh guard then "
      "has to absorb); with it, flags track genuine staleness. AUC is "
      "unaffected either way.\n");
  return 0;
}
