// Ablation: graph-based bounded asynchrony vs SSP (§3, §5.3). SSP bounds
// staleness by *worker iteration age* with no view of per-embedding update
// activity: a cached hot embedding (updated by everyone each iteration)
// and a cold one (updated once an epoch) expire on the same schedule. The
// graph-based bound instead reacts to actual update clocks per embedding.
//
// Comparison at matched refresh traffic: sweep SSP slack and graph bound
// s; report refresh counts, embedding traffic, and final AUC.

#include <cstdio>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

EngineConfig Base() {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 256;
  cfg.embedding_dim = 16;
  cfg.hybrid_options.secondary_fraction = 0.05;
  return cfg;
}

void Report(const char* label, const ExperimentResult& r) {
  const RoundStats& last = r.train.rounds.back();
  std::printf("%-24s %10.4f %14lld %14.1f %12.1fM\n", label,
              r.train.final_auc,
              static_cast<long long>(last.intra_refreshes),
              last.embedding_bytes /
                  static_cast<double>(r.train.total_iterations) / 1024.0,
              r.train.Throughput() / 1e6);
}

}  // namespace

int main() {
  PrintHeader("Graph-based bounded asynchrony vs SSP",
              "§3/§5.3 design comparison (no figure; motivates the "
              "graph view)");
  const double scale = EnvScale(0.35);
  const Topology topology = Topology::EightGpuQpi();
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.15);

  std::printf("%-24s %10s %14s %14s %12s\n", "protocol", "AUC",
              "refreshes", "emb KB/iter", "throughput");
  for (int slack : {1, 4, 16}) {
    EngineConfig cfg = Base();
    cfg.consistency = ConsistencyMode::kSsp;
    cfg.ssp_slack = slack;
    char label[64];
    std::snprintf(label, sizeof(label), "SSP(slack=%d)", slack);
    Report(label,
           RunExperiment(cfg, train, test, topology, /*max_epochs=*/4));
  }
  for (uint64_t s : {uint64_t{10}, uint64_t{50}, uint64_t{200}}) {
    EngineConfig cfg = Base();
    cfg.bound.s = s;
    char label[64];
    std::snprintf(label, sizeof(label), "graph-bounded(s=%llu)",
                  static_cast<unsigned long long>(s));
    Report(label,
           RunExperiment(cfg, train, test, topology, /*max_epochs=*/4));
  }
  std::printf(
      "\nexpected: SSP expires hot and cold replicas alike, so at any "
      "slack it either refreshes far more (tight) or tolerates unbounded "
      "per-embedding drift (loose). The graph-based bound tracks actual "
      "update clocks and reaches the same AUC with less refresh "
      "traffic.\n");
  return 0;
}
