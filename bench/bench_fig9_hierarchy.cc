// Figure 9: hierarchical (topology-aware) partitioning.
//  (a) throughput of random / non-hierarchical / hierarchical policies
//      on 16 workers across 2 machines (10 GbE), no replication;
//  (b) worker-to-worker embedding traffic heatmaps: random = uniform,
//      non-hierarchical = diagonal, hierarchical = block-diagonal.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"
#include "metrics/comm_report.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

enum class Policy { kRandom, kNonHierarchical, kHierarchical };

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kRandom:
      return "random";
    case Policy::kNonHierarchical:
      return "non-hierarchical";
    case Policy::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

EngineConfig MakeConfig(Policy p, const Topology& topology) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  cfg.model = ModelType::kWdl;
  ApplyStrategyDefaults(&cfg);
  // "For a fair comparison, we do not introduce replication" (§7.2); run
  // synchronously so throughput differences are purely placement.
  cfg.hybrid_options.secondary_fraction = 0.0;
  cfg.bound.s = 0;
  cfg.batch_size = 512;
  cfg.embedding_dim = 16;
  cfg.rounds_per_epoch = 1;
  switch (p) {
    case Policy::kRandom:
      cfg.placement = PlacementPolicy::kRandom;
      break;
    case Policy::kNonHierarchical:
      // "we treat all pair-to-pair communication costs as a fixed value"
      cfg.hybrid_options.comm_weight = topology.UniformWeightMatrix();
      break;
    case Policy::kHierarchical:
      // BuildPartition fills the bandwidth-derived weights (the paper sets
      // inter-machine 10x intra-machine).
      break;
  }
  return cfg;
}

}  // namespace

int main() {
  PrintHeader("Topology-aware partitioning: throughput and traffic "
              "placement (16 workers, 2 machines)",
              "Figure 9 (a) + (b)");
  const double scale = EnvScale(0.35);
  const Topology topology = Topology::ClusterB(16);

  // (a) throughput per dataset.
  std::printf("(a) throughput, million samples per simulated second\n");
  std::printf("%-14s %12s %18s %14s\n", "Dataset", "random",
              "non-hierarchical", "hierarchical");
  for (const auto& data_cfg : PaperDatasets(scale)) {
    CtrDataset train = GenerateSyntheticCtr(data_cfg);
    CtrDataset test = train.SplitTail(0.1);
    std::printf("%-14s", data_cfg.name.c_str());
    for (Policy p : {Policy::kRandom, Policy::kNonHierarchical,
                     Policy::kHierarchical}) {
      ExperimentResult r = RunExperiment(MakeConfig(p, topology), train,
                                         test, topology, /*max_epochs=*/1);
      std::printf("%*.2f", p == Policy::kNonHierarchical ? 18 : 13,
                  r.train.Throughput() / 1e6);
    }
    std::printf("\n");
  }

  // (b) pairwise embedding-traffic heatmaps on the Criteo analogue.
  std::printf("\n(b) worker-to-worker embedding traffic (criteo-like); "
              "rows = fetching worker\n");
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.1);
  for (Policy p : {Policy::kRandom, Policy::kNonHierarchical,
                   Policy::kHierarchical}) {
    EngineConfig cfg = MakeConfig(p, topology);
    Bigraph graph(train);
    Partition part = BuildPartition(cfg, graph, topology);
    Engine engine(cfg, train, test, topology, part);
    engine.Train(1);
    std::printf("\n%s:\n%s", PolicyName(p),
                RenderPairHeatmap(
                    engine.fabric().PairMatrix(TrafficClass::kEmbedding))
                    .c_str());
  }
  std::printf(
      "\npaper shape: hierarchical > non-hierarchical > random throughput; "
      "heatmaps go uniform → diagonal-ish → machine-block structure "
      "(workers 0-7 = machine 0, 8-15 = machine 1).\n");
  return 0;
}
