// Scale-out bench for Engine-over-Transport (DESIGN.md §5h): full
// training runs at 1 / 2 / 4 real processes over loopback TCP, against
// the single-process in-proc mailbox run of the identical workload.
//
// For every world size this measures wall clock and ASSERTS — exit code,
// not just a printed delta — that the bytes which physically crossed the
// sockets equal the simulator's accounting byte-for-byte:
//
//   * each TCP rank's sent-payload tally report is identical to the
//     corresponding in-proc endpoint's (same cells, same byte counts);
//   * the summed per-class wire bytes equal the engine's expected wire
//     bytes, which relate to the simulated Fabric ledger by the closed
//     forms of comm/protocol.h (ledger + typed message framing);
//   * no rank saw a payload-verification failure.
//
// One "BENCH_JSON " line per (world, backend) configuration:
//
//   {"bench":"train_multiproc","world":N,"backend":"inproc|tcp",
//    "wall_s":F,"index_clock_bytes":N,"embedding_bytes":N,
//    "allreduce_bytes":N,"ledger_index_clock_bytes":N,
//    "ledger_embedding_bytes":N,"verify_failures":0,"tally_match":true}
//
// Not TSan-compatible (fork-based driver); under TSan only the in-proc
// configurations run.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "comm/socket_transport.h"
#include "comm/topology.h"
#include "comm/transport.h"
#include "common/logging.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "multiproc_driver.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT
using testing_multiproc::MultiProcResult;
using testing_multiproc::RunForkedRanks;

namespace {

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kEpochs = 2;

EngineConfig BenchConfig() {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  cfg.rounds_per_epoch = 2;
  cfg.bound.s = 1;
  // The SPMD socket mode requires the deterministic schedule; the
  // in-proc reference uses it too so the two runs are comparable.
  cfg.deterministic = true;
  return cfg;
}

SyntheticCtrConfig BenchData(double scale) {
  SyntheticCtrConfig d;
  d.num_samples = static_cast<int64_t>(4000 * scale);
  d.num_fields = 8;
  d.num_features = static_cast<int64_t>(800 * scale);
  d.num_clusters = 4;
  d.seed = 91;
  return d;
}

struct RunOutput {
  TrainResult result;
  std::vector<std::string> tallies;  // per rank, SentTallyReport format
  double wall_s = 0.0;
  // The simulated ledger's per-class totals — the cost-model prediction
  // the wire bytes must equal once the typed message framing is added
  // (relation locked in by tests/engine_transport_test.cc).
  uint64_t ledger_index_clock = 0;
  uint64_t ledger_embedding = 0;
};

// Single-process reference: the in-proc mailbox backend with Fabric
// charging on. Its per-endpoint tallies are the "simulator's accounting"
// every TCP rank must reproduce.
RunOutput RunInProc(const CtrDataset& train, const CtrDataset& test,
                    const Topology& topo) {
  EngineConfig cfg = BenchConfig();
  cfg.transport.enabled = true;
  Bigraph graph(train);
  Partition part = BuildPartition(cfg, graph, topo);
  Engine engine(cfg, train, test, topo, part);
  RunOutput out;
  const double t0 = NowS();
  out.result = engine.Train(kEpochs);
  out.wall_s = NowS() - t0;
  for (int r = 0; r < topo.num_workers(); ++r) {
    out.tallies.push_back(engine.wire_endpoint(r)->SentTallyReport());
  }
  out.ledger_index_clock =
      engine.fabric().TotalBytes(TrafficClass::kIndexClock);
  out.ledger_embedding = engine.fabric().TotalBytes(TrafficClass::kEmbedding);
  return out;
}

std::string MakeRendezvousDir() {
  std::string tmpl = "/tmp/hetgmp_bench_rdzv_XXXXXX";
  HETGMP_CHECK(::mkdtemp(tmpl.data()) != nullptr);
  return tmpl;
}

int RunWorld(BenchJsonSink& sink, int world, double scale) {
  const Topology topo = Topology::ClusterA(world);
  CtrDataset train = GenerateSyntheticCtr(BenchData(scale));
  const CtrDataset test = train.SplitTail(0.2);

  const RunOutput ref = RunInProc(train, test, topo);
  const TrainResult::WireStats& w = ref.result.wire;
  if (w.verify_failures != 0) {
    std::fprintf(stderr, "world %d: in-proc verify failures %lld\n", world,
                 static_cast<long long>(w.verify_failures));
    return 1;
  }
  JsonLine inproc;
  inproc.Str("bench", "train_multiproc")
      .Int("world", world)
      .Str("backend", "inproc")
      .Num("wall_s", ref.wall_s, 4)
      .Int("index_clock_bytes",
           static_cast<long long>(w.expected_index_clock_bytes))
      .Int("embedding_bytes",
           static_cast<long long>(w.expected_embedding_bytes))
      .Int("allreduce_bytes",
           static_cast<long long>(w.expected_allreduce_bytes))
      .Int("ledger_index_clock_bytes",
           static_cast<long long>(ref.ledger_index_clock))
      .Int("ledger_embedding_bytes",
           static_cast<long long>(ref.ledger_embedding))
      .Int("verify_failures", w.verify_failures)
      .Bool("tally_match", true);
  sink.Emit(inproc);

#ifdef HETGMP_TSAN_ENABLED
  std::printf("world %d: skipping TCP processes under TSan\n", world);
  return 0;
#else
  const std::string dir = MakeRendezvousDir();
  const double t0 = NowS();
  const MultiProcResult mp = RunForkedRanks(
      world,
      [&dir, &train, &test, &topo, world](int rank, std::string* out) -> int {
        RendezvousOptions ropts;
        ropts.session_token = "bench-train-multiproc";
        ropts.connect_timeout_ms = 60000;
        ropts.recv_timeout_ms = 60000;
        Result<std::unique_ptr<SocketFabric>> fab =
            SocketFabric::RendezvousTcp(dir, rank, world, ropts);
        if (!fab.ok()) {
          *out = fab.status().ToString();
          return 10;
        }
        EngineConfig cfg = BenchConfig();
        cfg.transport.enabled = true;
        cfg.transport.backend =
            EngineConfig::TransportConfig::Backend::kSocket;
        cfg.transport.socket = fab.value().get();
        Bigraph graph(train);
        Partition part = BuildPartition(cfg, graph, topo);
        Engine engine(cfg, train, test, topo, part);
        const TrainResult r = engine.Train(kEpochs);
        if (r.wire.verify_failures != 0) return 11;
        *out = fab.value()->SentTallyReport();
        return 0;
      },
      300000);
  const double tcp_wall = NowS() - t0;
  if (!mp.all_exited_cleanly) {
    std::fprintf(stderr, "world %d TCP run failed: %s\n", world,
                 mp.failure.c_str());
    return 1;
  }

  // Byte-for-byte: each rank's wire tally equals the in-proc endpoint's.
  bool tally_match = true;
  for (int r = 0; r < world; ++r) {
    if (mp.outputs[r] != ref.tallies[r]) {
      tally_match = false;
      std::fprintf(stderr,
                   "world %d rank %d tally mismatch\n--- tcp ---\n%s"
                   "--- inproc ---\n%s",
                   world, r, mp.outputs[r].c_str(), ref.tallies[r].c_str());
    }
  }

  JsonLine tcp;
  tcp.Str("bench", "train_multiproc")
      .Int("world", world)
      .Str("backend", "tcp")
      .Num("wall_s", tcp_wall, 4)
      .Int("index_clock_bytes",
           static_cast<long long>(w.expected_index_clock_bytes))
      .Int("embedding_bytes",
           static_cast<long long>(w.expected_embedding_bytes))
      .Int("allreduce_bytes",
           static_cast<long long>(w.expected_allreduce_bytes))
      .Int("ledger_index_clock_bytes",
           static_cast<long long>(ref.ledger_index_clock))
      .Int("ledger_embedding_bytes",
           static_cast<long long>(ref.ledger_embedding))
      .Int("verify_failures", 0)
      .Bool("tally_match", tally_match);
  sink.Emit(tcp);
  return tally_match ? 0 : 1;
#endif
}

}  // namespace

int main() {
  PrintHeader("bench_train_multiproc: training across real processes",
              "HET-GMP §6 (system architecture), DESIGN.md §5h");
  const double scale = EnvScale(1.0);
  BenchJsonSink sink;
  int rc = 0;
  for (const int world : {1, 2, 4}) {
    rc |= RunWorld(sink, world, scale);
  }
  if (rc == 0) {
    std::printf("all worlds: wire tallies match the simulator accounting "
                "byte-for-byte\n");
  }
  return rc;
}
