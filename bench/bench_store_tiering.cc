// Tiered embedding storage: fully-resident arena vs the hot/warm/cold
// hierarchy (ISSUE 7), training a synthetic table ~10x the hot-tier
// budget on the 8-worker threaded engine.
//
// Three configurations per dataset:
//   resident          — tiered store off (the seed arena path)
//   tiered+prefetch   — hierarchy on, plan-driven async promotion
//   tiered (sync)     — hierarchy on, every fault taken synchronously
//
// Besides the human-readable table, each run emits one "BENCH_JSON "
// line (mirrored to $HETGMP_BENCH_JSON):
//
//   {"bench":"store_tiering","dataset":"...","workers":N,"mode":"...",
//    "features":N,"hot_rows":N,"warm_rows":N,"epochs":N,"wall_s":F,
//    "iters":N,"iters_per_sec":F,"hot_hit_rate":F,"warm_hits":N,
//    "cold_reads":N,"spills":N,"hot_overflow":N,"stall_s":F,
//    "pin_coverage":F,"prefetch_batches":N,"prefetch_dropped":N,
//    "promoted":N,"slowdown_vs_resident":F}
//
// Acceptance (ISSUE 7): tiered+prefetch trains the >=10x-budget table to
// completion within 2x the fully-resident wall clock.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

constexpr int kEpochs = 2;
// Threaded wall-clock jitters run to run; report the best of kReps.
constexpr int kReps = 2;

struct RunStats {
  double wall_s = 0.0;
  int64_t iters = 0;
  TrainResult result;
};

RunStats RunOnce(const EngineConfig& cfg, const CtrDataset& train,
                 const CtrDataset& test, const Topology& topology,
                 const Bigraph& graph) {
  Partition part = BuildPartition(cfg, graph, topology);
  Engine engine(cfg, train, test, topology, part);
  const auto start = std::chrono::steady_clock::now();
  RunStats stats;
  stats.result = engine.Train(kEpochs);
  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  stats.iters = stats.result.total_iterations;
  return stats;
}

RunStats RunBest(const EngineConfig& cfg, const CtrDataset& train,
                 const CtrDataset& test, const Topology& topology,
                 const Bigraph& graph) {
  RunStats best;
  for (int rep = 0; rep < kReps; ++rep) {
    RunStats s = RunOnce(cfg, train, test, topology, graph);
    if (rep == 0 || s.wall_s < best.wall_s) best = s;
  }
  return best;
}

void EmitJson(BenchJsonSink* sink, const std::string& dataset, int workers,
              const char* mode, int64_t features, int64_t hot_rows,
              int64_t warm_rows, const RunStats& s, const RunStats& resident) {
  const TieredStoreStats& t = s.result.tiers;
  sink->Emit(
      JsonLine()
          .Str("bench", "store_tiering")
          .Str("dataset", dataset)
          .Int("workers", workers)
          .Str("mode", mode)
          .Int("features", features)
          .Int("hot_rows", hot_rows)
          .Int("warm_rows", warm_rows)
          .Int("epochs", kEpochs)
          .Num("wall_s", s.wall_s)
          .Int("iters", s.iters)
          .Num("iters_per_sec",
               s.wall_s > 0 ? static_cast<double>(s.iters) / s.wall_s : 0.0,
               1)
          .Num("hot_hit_rate", t.hot.HitRate(), 4)
          .Int("warm_hits", t.warm.hits)
          .Int("cold_reads", t.cold.hits)
          .Int("spills", t.cold.writebacks)
          .Int("hot_overflow", t.hot_overflow)
          .Num("stall_s", t.stall_secs)
          .Num("pin_coverage", t.PinCoverage(), 4)
          .Int("prefetch_batches", t.prefetch_batches)
          .Int("prefetch_dropped", t.prefetch_dropped)
          .Int("promoted", t.prefetch_promoted)
          .Num("slowdown_vs_resident",
               resident.wall_s > 0 ? s.wall_s / resident.wall_s : 0.0, 2));
}

void PrintRow(const char* mode, const RunStats& s, const RunStats& resident) {
  const TieredStoreStats& t = s.result.tiers;
  std::printf("%-16s %8.3f %9.2fx %10.4f %10.4f %9lld %8lld %8.3f\n", mode,
              s.wall_s,
              resident.wall_s > 0 ? s.wall_s / resident.wall_s : 0.0,
              t.hot.HitRate(), t.PinCoverage(),
              static_cast<long long>(t.cold.hits),
              static_cast<long long>(t.cold.writebacks), t.stall_secs);
}

}  // namespace

int main() {
  PrintHeader("Tiered embedding storage: resident arena vs hot/warm/cold",
              "ISSUE 7 acceptance: tiered+prefetch <= 2x resident wall "
              "clock on a >=10x-budget table");
  const double scale = EnvScale(1.0);
  BenchJsonSink sink;

  const Topology topology = Topology::EightGpuQpi();
  const int workers = topology.num_workers();

  // Criteo-like Zipf workload: the widest feature table of the Table 1
  // analogues, so the default budgets (hot = features/10, warm =
  // features/5) leave 70% of rows cold-only and the prefetch pipeline
  // has real work on every batch.
  const std::vector<SyntheticCtrConfig> datasets = {CriteoLikeConfig(scale)};

  bool slowdown_ok = true;
  for (const SyntheticCtrConfig& dc : datasets) {
    const CtrDataset full = GenerateSyntheticCtr(dc);
    CtrDataset train = full;
    const CtrDataset test = train.SplitTail(0.1);
    const Bigraph graph(train);
    const int64_t features = train.num_features();
    const int64_t hot_rows = std::max<int64_t>(1, features / 10);
    const int64_t warm_rows = std::max<int64_t>(1, features / 5);

    EngineConfig cfg;
    cfg.strategy = Strategy::kHetGmp;
    ApplyStrategyDefaults(&cfg);
    cfg.batch_size = 256;
    cfg.embedding_dim = 16;
    cfg.rounds_per_epoch = 2;
    cfg.bound.s = 1;

    std::printf("\n--- %s (%lld samples, %lld features; hot %lld, warm %lld "
                "-> %.1fx over budget; %d workers) ---\n",
                dc.name.c_str(), static_cast<long long>(train.num_samples()),
                static_cast<long long>(features),
                static_cast<long long>(hot_rows),
                static_cast<long long>(warm_rows),
                static_cast<double>(features) / static_cast<double>(hot_rows),
                workers);
    std::printf("%-16s %8s %10s %10s %10s %9s %8s %8s\n", "mode", "wall(s)",
                "vs res", "hot_hit", "coverage", "cold_rd", "spills",
                "stall(s)");

    const RunStats resident = RunBest(cfg, train, test, topology, graph);
    PrintRow("resident", resident, resident);
    EmitJson(&sink, dc.name, workers, "resident", features, hot_rows,
             warm_rows, resident, resident);

    EngineConfig tiered_cfg = cfg;
    tiered_cfg.tiered_store.enabled = true;
    tiered_cfg.tiered_store.prefetch = true;
    const RunStats tiered = RunBest(tiered_cfg, train, test, topology, graph);
    PrintRow("tiered+prefetch", tiered, resident);
    EmitJson(&sink, dc.name, workers, "tiered_prefetch", features, hot_rows,
             warm_rows, tiered, resident);

    EngineConfig sync_cfg = cfg;
    sync_cfg.tiered_store.enabled = true;
    sync_cfg.tiered_store.prefetch = false;
    const RunStats sync = RunBest(sync_cfg, train, test, topology, graph);
    PrintRow("tiered (sync)", sync, resident);
    EmitJson(&sink, dc.name, workers, "tiered_sync", features, hot_rows,
             warm_rows, sync, resident);

    if (resident.wall_s > 0 && tiered.wall_s > 2.0 * resident.wall_s) {
      slowdown_ok = false;
    }
    if (tiered.iters != resident.iters) slowdown_ok = false;
  }

  // Wall-clock ratios on a scaled-down table measure a different
  // hot/cold mix than the criterion is defined on, so such runs report
  // n/a rather than a misleading verdict.
  const char* msg = scale >= 1.0 ? (slowdown_ok ? "PASS" : "FAIL")
                                 : "n/a (scaled-down run)";
  std::printf("\nacceptance: tiered+prefetch trains the >=10x-budget table "
              "to completion within 2x resident wall clock: %s\n",
              msg);
  return 0;
}
