// Transport backend microbench (ISSUE 8): framed ping-pong cost and ring
// AllReduce throughput for the in-proc mailbox backend vs the socket
// backend (socketpair, in-process threads — the serialization and
// framing cost without scheduler noise from real process worlds).
//
// Each configuration emits one "BENCH_JSON " line (mirrored to
// $HETGMP_BENCH_JSON):
//
//   {"bench":"comm_transport","mode":"pingpong","backend":"...",
//    "payload_bytes":N,"iters":N,"us_per_roundtrip":F}
//   {"bench":"comm_transport","mode":"allreduce","backend":"...",
//    "world":N,"floats":N,"reps":N,"wall_s":F,"mb_per_s":F}

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "comm/protocol.h"
#include "comm/socket_transport.h"
#include "comm/transport.h"
#include "common/logging.h"
#include "tensor/tensor.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

struct World {
  std::unique_ptr<InProcTransportGroup> group;
  std::vector<std::unique_ptr<SocketFabric>> socks;
  std::vector<Transport*> ep;
};

World MakeWorld(const std::string& backend, int n) {
  World w;
  TransportOptions opts;
  opts.recv_timeout_ms = 60000;
  if (backend == "inproc") {
    w.group = std::make_unique<InProcTransportGroup>(n, nullptr, opts);
    for (int r = 0; r < n; ++r) w.ep.push_back(w.group->endpoint(r));
  } else {
    Result<std::vector<std::vector<int>>> mesh =
        SocketFabric::CreateLocalMesh(n);
    HETGMP_CHECK(mesh.ok());
    for (int r = 0; r < n; ++r) {
      w.socks.push_back(SocketFabric::FromFds(r, n, mesh.value()[r], opts));
      w.ep.push_back(w.socks.back().get());
    }
  }
  return w;
}

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BenchPingPong(BenchJsonSink& sink, const std::string& backend,
                   size_t payload_bytes, int iters) {
  World w = MakeWorld(backend, 2);
  std::vector<uint8_t> payload(payload_bytes, 0x5A);
  std::vector<uint8_t> recv_buf;
  const double t0 = NowS();
  for (int i = 0; i < iters; ++i) {
    const uint32_t tag = static_cast<uint32_t>(i);
    HETGMP_CHECK_OK(w.ep[0]->Send(1, TrafficClass::kEmbedding, tag,
                                  payload.data(), payload.size()));
    HETGMP_CHECK_OK(
        w.ep[1]->Recv(0, TrafficClass::kEmbedding, tag, &recv_buf));
    HETGMP_CHECK_OK(w.ep[1]->Send(0, TrafficClass::kEmbedding, tag,
                                  recv_buf.data(), recv_buf.size()));
    HETGMP_CHECK_OK(
        w.ep[0]->Recv(1, TrafficClass::kEmbedding, tag, &recv_buf));
  }
  const double wall = NowS() - t0;
  std::printf("  %-8s payload %8zu B: %8.2f us/roundtrip\n",
              backend.c_str(), payload_bytes, wall / iters * 1e6);
  sink.Emit(JsonLine()
                .Str("bench", "comm_transport")
                .Str("mode", "pingpong")
                .Str("backend", backend)
                .Int("payload_bytes", static_cast<long long>(payload_bytes))
                .Int("iters", iters)
                .Num("us_per_roundtrip", wall / iters * 1e6));
}

void BenchAllReduce(BenchJsonSink& sink, const std::string& backend,
                    int world, int64_t floats, int reps) {
  World w = MakeWorld(backend, world);
  std::vector<Tensor> tensors;
  tensors.reserve(world);
  for (int r = 0; r < world; ++r) {
    tensors.emplace_back(std::vector<int64_t>{floats}, 1.0f * (r + 1));
  }
  const double t0 = NowS();
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::thread> threads;
    for (int r = 1; r < world; ++r) {
      threads.emplace_back([&, r] {
        std::vector<Tensor*> mine = {&tensors[r]};
        HETGMP_CHECK_OK(TransportAllReduceAverage(w.ep[r], mine));
      });
    }
    std::vector<Tensor*> mine = {&tensors[0]};
    HETGMP_CHECK_OK(TransportAllReduceAverage(w.ep[0], mine));
    for (auto& t : threads) t.join();
  }
  const double wall = NowS() - t0;
  // Bytes each rank moves per AllReduce: 2(N-1)/N of its payload.
  const double mb = static_cast<double>(reps) * 2.0 * (world - 1) / world *
                    static_cast<double>(floats) * 4.0 / 1e6;
  std::printf("  %-8s world %d, %8lld floats: %8.1f MB/s per rank\n",
              backend.c_str(), world, static_cast<long long>(floats),
              mb / wall);
  sink.Emit(JsonLine()
                .Str("bench", "comm_transport")
                .Str("mode", "allreduce")
                .Str("backend", backend)
                .Int("world", world)
                .Int("floats", static_cast<long long>(floats))
                .Int("reps", reps)
                .Num("wall_s", wall, 4)
                .Num("mb_per_s", mb / wall, 1));
}

}  // namespace

int main() {
  PrintHeader("Transport backend microbench: framing + AllReduce",
              "ISSUE 8 (multi-process Fabric backend), DESIGN.md 5g");
  const double scale = EnvScale(1.0);
  BenchJsonSink sink;

  std::printf("ping-pong (one round trip = 2 Send + 2 Recv):\n");
  const int pp_iters = std::max(1, static_cast<int>(2000 * scale));
  for (const auto& backend : {std::string("inproc"), std::string("socket")}) {
    BenchPingPong(sink, backend, 64, pp_iters);
    BenchPingPong(sink, backend, 64 * 1024, pp_iters / 4 + 1);
  }

  std::printf("ring AllReduce-average (4 ranks, threads):\n");
  const int64_t floats = static_cast<int64_t>(1 << 20) *
                         std::max(1, static_cast<int>(scale));
  for (const auto& backend : {std::string("inproc"), std::string("socket")}) {
    BenchAllReduce(sink, backend, 4, floats, 3);
  }
  return 0;
}
