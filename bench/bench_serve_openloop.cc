// Open-loop serving bench: quantized read path under offered load.
//
// Three phases over one trained criteo-like model:
//
//  1. Quantization: publishes the final table at none/int8/fp16, reports
//     payload bytes, compression ratio, measured max-abs round-trip
//     error, and the served model's AUC delta (table rows replaced by
//     their dequantized images, AUC re-evaluated, rows restored).
//
//  2. Load sweep: an open-loop generator offers requests at a configured
//     rate — Poisson or bursty on/off arrivals, Zipf-skewed keys — and
//     measures every latency from the request's *intended* arrival time,
//     so a stalled server keeps accumulating lateness instead of quietly
//     slowing the generator down (no coordinated omission, unlike the
//     closed-loop bench_serve_latency). Sweeping offered load yields
//     p50/p99/p999-vs-QPS curves and the knee point where the tail
//     departs from its light-load plateau.
//
//  3. QoS: with admission control bounded and two tenant classes, offers
//     2x the calibrated capacity (gold at 0.5x + best-effort at 1.5x)
//     and checks that gold p99 stays within 2x of its unloaded value
//     while best-effort absorbs the shedding.
//
// Acceptance (full-scale runs; scaled-down smoke prints n/a):
//   int8 >= 3.5x smaller than fp32, AUC delta <= 0.001, gold p99 under
//   2x overload <= 2x unloaded gold p99, best-effort sheds > 0.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "comm/topology.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/runner.h"
#include "graph/bigraph.h"
#include "metrics/comm_report.h"
#include "serve/batcher.h"
#include "serve/lookup_service.h"
#include "serve/snapshot_store.h"

using namespace hetgmp;  // NOLINT — bench brevity

namespace {

constexpr int kKeysPerRequest = 16;
constexpr double kZipfTheta = 1.05;

using Clock = std::chrono::steady_clock;
using Usec = std::chrono::duration<double, std::micro>;

int ClientThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(2u * hw, 4u, 32u));
}

// ------------------------------------------------------------ arrivals

enum class Arrivals { kPoisson, kBursty };

// Intended arrival offsets (seconds from epoch start) for `n` requests at
// `rate` req/s. Poisson draws i.i.d. exponential gaps. Bursty compresses
// the same mean rate into on/off cycles (50 ms on, 50 ms off): the on
// phase offers 2x the nominal rate, the off phase nothing — the worst
// case for a batcher tuned to the average.
std::vector<double> BuildSchedule(Arrivals kind, double rate, int64_t n,
                                  uint64_t seed) {
  std::vector<double> at;
  at.reserve(static_cast<size_t>(n));
  Rng rng(seed);
  constexpr double kPeriod = 0.100, kDuty = 0.5;
  double t = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double burst_rate =
        kind == Arrivals::kPoisson ? rate : rate / kDuty;
    // Exponential gap; clamp u away from 0 so log() stays finite.
    const double u = std::max(1e-12, 1.0 - rng.NextDouble());
    t += -std::log(u) / burst_rate;
    if (kind == Arrivals::kBursty) {
      // Skip the off half of each cycle.
      const double phase = std::fmod(t, kPeriod);
      if (phase > kPeriod * kDuty) t += kPeriod - phase;
    }
    at.push_back(t);
  }
  return at;
}

struct OpenLoopResult {
  Histogram latency_us;  // completion minus intended arrival
  double wall_secs = 0.0;
  int64_t served = 0;
  int64_t shed = 0;
  int64_t failures = 0;
  double achieved_qps = 0.0;
};

// Drives one open-loop run: a bounded worker pool consumes the arrival
// schedule; each worker sleeps until its request's intended time, issues
// it, and records completion-minus-intended latency. When the pool falls
// behind schedule the sleep is a no-op and the lag lands in the latency —
// exactly the queueing collapse a closed loop would hide.
template <typename LookupFn>
OpenLoopResult DriveOpenLoop(const std::vector<double>& schedule,
                             int num_shards, int64_t num_features, int dim,
                             LookupFn&& lookup) {
  const ZipfSampler zipf(static_cast<uint64_t>(num_features), kZipfTheta);
  const int workers = ClientThreads();
  std::vector<Histogram> latencies(workers);
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> served{0}, shed{0}, failures{0};
  const auto epoch = Clock::now();

  auto worker_main = [&](int w) {
    Rng rng(0x0be7a11ULL + 131ULL * static_cast<uint64_t>(w));
    std::vector<FeatureId> keys(kKeysPerRequest);
    std::vector<float> out(static_cast<size_t>(kKeysPerRequest) * dim);
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= static_cast<int64_t>(schedule.size())) break;
      const auto intended =
          epoch + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(schedule[i]));
      std::this_thread::sleep_until(intended);  // no-op when behind
      for (int k = 0; k < kKeysPerRequest; ++k) {
        keys[k] = static_cast<FeatureId>(zipf.Sample(&rng));
      }
      const int shard = static_cast<int>(i) % num_shards;
      const Status st = lookup(shard, keys.data(), kKeysPerRequest,
                               out.data());
      const auto done = Clock::now();
      if (st.ok()) {
        served.fetch_add(1, std::memory_order_relaxed);
        latencies[w].Add(Usec(done - intended).count());
      } else if (st.code() == StatusCode::kResourceExhausted) {
        shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main, w);
  for (auto& t : threads) t.join();

  OpenLoopResult r;
  r.wall_secs = std::chrono::duration<double>(Clock::now() - epoch).count();
  for (const Histogram& h : latencies) r.latency_us.Merge(h);
  r.served = served.load();
  r.shed = shed.load();
  r.failures = failures.load();
  r.achieved_qps =
      r.wall_secs > 0 ? static_cast<double>(r.served) / r.wall_secs : 0.0;
  return r;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Open-loop serving: quantized snapshots under offered load",
      "north-star extension: ROADMAP item 3 — production traffic over the "
      "int8/fp16 read path with admission control + per-tenant QoS");
  bench::BenchJsonSink sink;

  const double scale = bench::EnvScale(0.05);
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.15);

  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.embedding_dim = 16;
  const int workers = 4;
  const Topology topology = Topology::ClusterA(workers);
  Bigraph graph(train);
  Partition partition = BuildPartition(cfg, graph, topology);
  Engine engine(cfg, train, test, topology, std::move(partition));

  std::printf("training (%lld samples, %lld features)...\n",
              static_cast<long long>(train.num_samples()),
              static_cast<long long>(train.num_features()));
  TrainResult tr = engine.Train(/*max_epochs=*/1);
  const double auc_fp32 = engine.EvaluateAuc();
  std::printf("trained: auc=%.4f\n\n", auc_fp32);

  // ---------------------------------------------- phase 1: quantization
  std::printf("--- quantization (rows=%lld dim=%d) ---\n",
              static_cast<long long>(engine.table().num_embeddings()),
              cfg.embedding_dim);
  std::printf("%-6s %12s %7s %12s %10s %9s\n", "dtype", "bytes", "ratio",
              "max_abs_err", "auc", "auc_delta");

  const int64_t rows = engine.table().num_embeddings();
  const int dim = cfg.embedding_dim;
  SnapshotStore store_int8([] {
    SnapshotStoreOptions o;
    o.quantization = SnapshotQuantization::kInt8;
    return o;
  }());
  double ratio_int8 = 0.0, auc_delta_int8 = 0.0;

  for (SnapshotQuantization q :
       {SnapshotQuantization::kNone, SnapshotQuantization::kInt8,
        SnapshotQuantization::kFp16}) {
    SnapshotStoreOptions opts;
    opts.quantization = q;
    SnapshotStore* store =
        q == SnapshotQuantization::kInt8 ? &store_int8 : nullptr;
    SnapshotStore local(opts);
    if (store == nullptr) store = &local;
    if (!store->Publish(engine.table(), {}).ok()) return 1;
    auto snap = store->Acquire();

    // AUC of the model a client actually sees: replace every table row
    // with its dequantized image, re-evaluate, restore. (Workers are
    // quiesced — training finished above.)
    EmbeddingTable* table = engine.mutable_table();
    std::vector<float> saved(static_cast<size_t>(rows) * dim);
    for (int64_t x = 0; x < rows; ++x) {
      std::copy(table->UnsafeRow(x), table->UnsafeRow(x) + dim,
                saved.data() + x * dim);
      snap->ReadRow(x, table->UnsafeMutableRow(x));
    }
    const double auc_q = engine.EvaluateAuc();
    for (int64_t x = 0; x < rows; ++x) {
      std::copy(saved.data() + x * dim, saved.data() + (x + 1) * dim,
                table->UnsafeMutableRow(x));
    }

    const uint64_t fp32_bytes =
        static_cast<uint64_t>(rows) * dim * sizeof(float);
    const double ratio = static_cast<double>(fp32_bytes) /
                         static_cast<double>(snap->PayloadBytes());
    const double delta = std::fabs(auc_q - auc_fp32);
    if (q == SnapshotQuantization::kInt8) {
      ratio_int8 = ratio;
      auc_delta_int8 = delta;
    }
    std::printf("%-6s %12llu %6.2fx %12.3e %10.4f %9.5f\n", ToString(q),
                static_cast<unsigned long long>(snap->PayloadBytes()), ratio,
                snap->max_abs_error(), auc_q, delta);
    sink.Emit(bench::JsonLine()
                  .Str("bench", "serve_openloop")
                  .Str("phase", "quantization")
                  .Str("dtype", ToString(q))
                  .Int("payload_bytes",
                       static_cast<long long>(snap->PayloadBytes()))
                  .Num("compression_ratio", ratio, 2)
                  .Num("max_abs_error", snap->max_abs_error(), 9)
                  .Num("auc", auc_q, 5)
                  .Num("auc_delta", delta, 6));
  }

  // ------------------------------------------- phase 2: open-loop sweep
  // All load runs read through the int8 snapshot (the production config
  // this PR argues for). Calibrate capacity closed-loop first: the
  // achieved rate of a saturating burst approximates peak QPS.
  LookupServiceOptions svc_opts;
  svc_opts.hot_rows_per_shard = 4096;
  LookupService service(&store_int8, engine.partition(),
                        engine.mutable_fabric(), svc_opts);

  BatcherOptions cal_opts;
  cal_opts.max_batch_keys = 256;
  cal_opts.deadline = std::chrono::microseconds(100);
  double peak_qps;
  {
    RequestBatcher batcher(&service, cal_opts);
    const int64_t cal_requests =
        std::max<int64_t>(400, static_cast<int64_t>(20000 * scale));
    std::vector<double> asap(static_cast<size_t>(cal_requests), 0.0);
    const OpenLoopResult cal = DriveOpenLoop(
        asap, workers, train.num_features(), dim,
        [&](int shard, const FeatureId* keys, int64_t n, float* out) {
          return batcher.Lookup(shard, keys, n, out);
        });
    peak_qps = cal.achieved_qps;
  }
  std::printf("\n--- open-loop sweep (calibrated peak ~%.0f req/s, %d "
              "client threads) ---\n",
              peak_qps, ClientThreads());
  std::printf("%-8s %10s %10s %9s %9s %9s %7s\n", "arrivals", "offered",
              "achieved", "p50us", "p99us", "p999us", "shed");

  const double kLoadFractions[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  double plateau_p99 = 0.0, knee_offered = 0.0;
  for (Arrivals kind : {Arrivals::kPoisson, Arrivals::kBursty}) {
    for (double frac : kLoadFractions) {
      const double rate = std::max(50.0, peak_qps * frac);
      const int64_t n = std::clamp<int64_t>(
          static_cast<int64_t>(rate * 0.5), 200, 5000);
      const std::vector<double> schedule = BuildSchedule(
          kind, rate, n, 0x5eedULL + static_cast<uint64_t>(frac * 100));
      RequestBatcher batcher(&service, cal_opts);
      const OpenLoopResult r = DriveOpenLoop(
          schedule, workers, train.num_features(), dim,
          [&](int shard, const FeatureId* keys, int64_t n_keys, float* out) {
            return batcher.Lookup(shard, keys, n_keys, out);
          });
      const std::vector<double> ps =
          r.latency_us.PercentileMany({50.0, 99.0, 99.9});
      const char* kind_name = kind == Arrivals::kPoisson ? "poisson" : "bursty";
      std::printf("%-8s %10.0f %10.0f %9.1f %9.1f %9.1f %7lld\n", kind_name,
                  rate, r.achieved_qps, ps[0], ps[1], ps[2],
                  static_cast<long long>(r.shed));
      sink.Emit(bench::JsonLine()
                    .Str("bench", "serve_openloop")
                    .Str("phase", "sweep")
                    .Str("arrivals", kind_name)
                    .Num("offered_qps", rate, 1)
                    .Num("achieved_qps", r.achieved_qps, 1)
                    .Num("p50_us", ps[0], 1)
                    .Num("p99_us", ps[1], 1)
                    .Num("p999_us", ps[2], 1)
                    .Int("served", r.served)
                    .Int("shed", r.shed)
                    .Int("failures", r.failures));
      if (kind == Arrivals::kPoisson) {
        // Knee: the first offered rate whose p99 leaves the light-load
        // plateau (5x the 0.25x-load p99) or that the server cannot
        // absorb (achieved < 90% of offered).
        if (frac == 0.25) plateau_p99 = ps[1];
        const bool tail_blown = plateau_p99 > 0.0 && ps[1] > 5.0 * plateau_p99;
        const bool saturated = r.achieved_qps < 0.9 * rate;
        if (knee_offered == 0.0 && (tail_blown || saturated)) {
          knee_offered = rate;
        }
      }
    }
  }
  if (knee_offered > 0.0) {
    std::printf("knee: p99 departs light-load plateau at ~%.0f req/s "
                "offered\n", knee_offered);
  } else {
    std::printf("knee: not reached within 2x calibrated peak\n");
  }
  sink.Emit(bench::JsonLine()
                .Str("bench", "serve_openloop")
                .Str("phase", "knee")
                .Num("knee_offered_qps", knee_offered, 1)
                .Num("plateau_p99_us", plateau_p99, 1));

  // ------------------------------------------------------ phase 3: QoS
  // Unloaded gold baseline, then 2x overload split gold:bestEffort =
  // 0.5x : 1.5x with a bounded queue. Admission keeps the gold backlog
  // finite; the weighted dequeue keeps gold ahead of the best-effort
  // traffic that *is* admitted.
  BatcherOptions qos_opts = cal_opts;
  // Two generator pools (gold + best-effort) can present up to
  // 2*ClientThreads() requests at once; a budget of one pool's worth
  // means the overload has to shed, and the admit fraction reserves the
  // top half of that budget for gold.
  qos_opts.max_pending_keys =
      static_cast<int64_t>(ClientThreads()) * kKeysPerRequest;
  qos_opts.best_effort_admit_fraction = 0.5;
  qos_opts.gold_weight = 4;

  double gold_p99_unloaded, gold_p99_overload, be_shed_fraction;
  int64_t be_shed;
  {
    RequestBatcher batcher(&service, qos_opts);
    const double rate = std::max(50.0, peak_qps * 0.25);
    const int64_t n =
        std::clamp<int64_t>(static_cast<int64_t>(rate * 0.5), 200, 4000);
    const OpenLoopResult r = DriveOpenLoop(
        BuildSchedule(Arrivals::kPoisson, rate, n, 0x601d), workers,
        train.num_features(), dim,
        [&](int shard, const FeatureId* keys, int64_t n_keys, float* out) {
          return batcher.Lookup(shard, keys, n_keys, out,
                                TenantClass::kGold);
        });
    gold_p99_unloaded = r.latency_us.P99();
  }
  {
    RequestBatcher batcher(&service, qos_opts);
    // Two generators share the batcher: gold at 0.5x peak, best-effort
    // at 1.5x peak — 2x total overload.
    const double gold_rate = std::max(50.0, peak_qps * 0.5);
    const double be_rate = std::max(150.0, peak_qps * 1.5);
    const int64_t gold_n = std::clamp<int64_t>(
        static_cast<int64_t>(gold_rate * 0.5), 200, 4000);
    const int64_t be_n = std::clamp<int64_t>(
        static_cast<int64_t>(be_rate * 0.5), 200, 8000);
    OpenLoopResult gold_r, be_r;
    std::thread be_thread([&] {
      be_r = DriveOpenLoop(
          BuildSchedule(Arrivals::kPoisson, be_rate, be_n, 77), workers,
          train.num_features(), dim,
          [&](int shard, const FeatureId* keys, int64_t n_keys, float* out) {
            return batcher.Lookup(shard, keys, n_keys, out,
                                  TenantClass::kBestEffort);
          });
    });
    gold_r = DriveOpenLoop(
        BuildSchedule(Arrivals::kPoisson, gold_rate, gold_n, 78), workers,
        train.num_features(), dim,
        [&](int shard, const FeatureId* keys, int64_t n_keys, float* out) {
          return batcher.Lookup(shard, keys, n_keys, out, TenantClass::kGold);
        });
    be_thread.join();
    gold_p99_overload = gold_r.latency_us.P99();
    be_shed = be_r.shed;
    be_shed_fraction =
        be_r.served + be_r.shed > 0
            ? static_cast<double>(be_r.shed) /
                  static_cast<double>(be_r.served + be_r.shed)
            : 0.0;
    const BatcherStats bs = batcher.stats();
    std::printf("\n--- QoS at 2x overload (gold 0.5x + bestEffort 1.5x) "
                "---\n");
    std::printf("gold:       p99=%.1fus (unloaded %.1fus) served=%lld "
                "shed=%lld\n",
                gold_p99_overload, gold_p99_unloaded,
                static_cast<long long>(bs.served_gold),
                static_cast<long long>(bs.shed_gold));
    std::printf("bestEffort: p99=%.1fus served=%lld shed=%lld (%.0f%%)\n",
                be_r.latency_us.P99(),
                static_cast<long long>(bs.served_best_effort),
                static_cast<long long>(bs.shed_best_effort),
                100.0 * be_shed_fraction);
    sink.Emit(bench::JsonLine()
                  .Str("bench", "serve_openloop")
                  .Str("phase", "qos")
                  .Num("gold_p99_unloaded_us", gold_p99_unloaded, 1)
                  .Num("gold_p99_overload_us", gold_p99_overload, 1)
                  .Num("be_p99_us", be_r.latency_us.P99(), 1)
                  .Int("gold_served", bs.served_gold)
                  .Int("gold_shed", bs.shed_gold)
                  .Int("be_served", bs.served_best_effort)
                  .Int("be_shed", bs.shed_best_effort));
  }

  std::printf("\n%s\n", engine.fabric().ReportString().c_str());

  // ------------------------------------------------- acceptance footer
  // Timing-sensitive verdicts need a real machine and the full-scale
  // workload; scaled-down smoke runs report n/a instead of a misleading
  // PASS/FAIL. The size/accuracy checks are deterministic and always
  // meaningful.
  const bool full_scale =
      scale >= 0.05 && std::thread::hardware_concurrency() >= 4;
  const bool size_ok = ratio_int8 >= 3.5;
  const bool auc_ok = auc_delta_int8 <= 0.001;
  const bool gold_ok = gold_p99_overload <= 2.0 * gold_p99_unloaded;
  const bool shed_ok = be_shed > 0;
  const char* quant_verdict = size_ok && auc_ok ? "PASS" : "FAIL";
  const char* qos_verdict = !full_scale ? "n/a (scaled-down run)"
                            : (gold_ok && shed_ok ? "PASS" : "FAIL");
  std::printf("\nacceptance: int8 >=3.5x smaller (%.2fx) with auc delta "
              "<=0.001 (%.5f): %s; gold p99 <=2x unloaded at 2x overload "
              "(%.1fus vs %.1fus) with bestEffort shedding (%lld): %s\n",
              ratio_int8, auc_delta_int8, quant_verdict, gold_p99_overload,
              gold_p99_unloaded, static_cast<long long>(be_shed),
              qos_verdict);
  sink.Emit(bench::JsonLine()
                .Str("bench", "serve_openloop")
                .Str("phase", "acceptance")
                .Bool("full_scale", full_scale)
                .Num("int8_ratio", ratio_int8, 2)
                .Num("int8_auc_delta", auc_delta_int8, 6)
                .Str("quant_verdict", quant_verdict)
                .Str("qos_verdict", qos_verdict));
  return quant_verdict[0] == 'F' ? 1 : 0;
}
