#ifndef HETGMP_BENCH_BENCH_UTIL_H_
#define HETGMP_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench honours HETGMP_BENCH_SCALE (a float multiplier on dataset
// sizes, default 1.0 of the bench's own choice) so the suite can be run
// quickly on small machines: HETGMP_BENCH_SCALE=0.25 ./bench_fig7_...
//
// Machine-readable output: benches emit one JSON object per measured
// configuration via BenchJsonSink — printed to stdout prefixed with
// "BENCH_JSON " (grep-able from driver scripts) and mirrored to the file
// named by HETGMP_BENCH_JSON when set (the CI artifact path).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/stats.h"
#include "data/synthetic.h"

namespace hetgmp::bench {

// Builds one flat JSON object incrementally; keys are emitted in call
// order. No escaping: bench keys/values are identifier-like literals.
class JsonLine {
 public:
  JsonLine& Str(const char* key, const std::string& v) {
    return Raw(key, "\"" + v + "\"");
  }
  JsonLine& Int(const char* key, long long v) {
    return Raw(key, std::to_string(v));
  }
  JsonLine& Num(const char* key, double v, int decimals = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return Raw(key, buf);
  }
  JsonLine& Bool(const char* key, bool v) {
    return Raw(key, v ? "true" : "false");
  }
  std::string Done() const { return out_ + "}"; }

 private:
  JsonLine& Raw(const char* key, const std::string& value) {
    out_ += out_.size() == 1 ? "\"" : ",\"";
    out_ += key;
    out_ += "\":";
    out_ += value;
    return *this;
  }
  std::string out_ = "{";
};

// Stdout + optional $HETGMP_BENCH_JSON file sink for the one-line
// summaries. Construct once per bench main().
class BenchJsonSink {
 public:
  BenchJsonSink() {
    if (const char* path = std::getenv("HETGMP_BENCH_JSON")) {
      file_ = std::fopen(path, "w");
    }
  }
  ~BenchJsonSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  BenchJsonSink(const BenchJsonSink&) = delete;
  BenchJsonSink& operator=(const BenchJsonSink&) = delete;

  void Emit(const std::string& line) {
    std::printf("BENCH_JSON %s\n", line.c_str());
    if (file_ != nullptr) {
      std::fprintf(file_, "%s\n", line.c_str());
      std::fflush(file_);
    }
  }
  void Emit(const JsonLine& json) { Emit(json.Done()); }

 private:
  std::FILE* file_ = nullptr;
};

inline double EnvScale(double default_scale) {
  const char* s = std::getenv("HETGMP_BENCH_SCALE");
  if (s == nullptr) return default_scale;
  const double v = std::atof(s);
  return v > 0 ? v * default_scale : default_scale;
}

// The three evaluation datasets (Table 1 analogues), at a bench-chosen
// scale.
inline std::vector<SyntheticCtrConfig> PaperDatasets(double scale) {
  return {AvazuLikeConfig(scale), CriteoLikeConfig(scale),
          CompanyLikeConfig(scale)};
}

inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace hetgmp::bench

#endif  // HETGMP_BENCH_BENCH_UTIL_H_
