#ifndef HETGMP_BENCH_BENCH_UTIL_H_
#define HETGMP_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench honours HETGMP_BENCH_SCALE (a float multiplier on dataset
// sizes, default 1.0 of the bench's own choice) so the suite can be run
// quickly on small machines: HETGMP_BENCH_SCALE=0.25 ./bench_fig7_...

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/stats.h"
#include "data/synthetic.h"

namespace hetgmp::bench {

inline double EnvScale(double default_scale) {
  const char* s = std::getenv("HETGMP_BENCH_SCALE");
  if (s == nullptr) return default_scale;
  const double v = std::atof(s);
  return v > 0 ? v * default_scale : default_scale;
}

// The three evaluation datasets (Table 1 analogues), at a bench-chosen
// scale.
inline std::vector<SyntheticCtrConfig> PaperDatasets(double scale) {
  return {AvazuLikeConfig(scale), CriteoLikeConfig(scale),
          CompanyLikeConfig(scale)};
}

inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace hetgmp::bench

#endif  // HETGMP_BENCH_BENCH_UTIL_H_
