// Partitioner scaling: sequential vs block-parallel hybrid passes.
//
// Sweeps dataset size × partition count × thread count on synthetic CTR
// graphs (the 1M-edge point is the ISSUE 4 acceptance config: ≥4×
// speedup at 8 threads with edge-cut quality within 5% of sequential).
// Besides the human-readable table, every cell emits a one-line
// machine-readable summary on stdout prefixed with "BENCH_JSON ", using
// the BENCH_partitioner.json schema:
//
//   {"bench":"partitioner_scale","dataset":"...","samples":N,"edges":N,
//    "parts":N,"threads":N,"rounds":N,"wall_ms":F,"remote":N,
//    "remote_vs_seq":F,"speedup_vs_seq":F}
//
// HETGMP_BENCH_SCALE scales the graph; HETGMP_BENCH_JSON=<path> appends
// the same lines to a file for CI harvesting.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/bigraph.h"
#include "partition/hybrid_partitioner.h"
#include "partition/quality.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

constexpr int kRounds = 2;

struct Cell {
  int threads = 1;
  double wall_ms = 0.0;
  int64_t remote = 0;
};

Cell RunCell(const Bigraph& graph, int parts, int threads) {
  HybridPartitionerOptions opt;
  opt.rounds = kRounds;
  opt.num_threads = threads;
  Cell cell;
  cell.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  Partition p = HybridPartitioner(opt).Run(graph, parts);
  cell.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  cell.remote = EvaluatePartition(graph, p).remote_accesses;
  return cell;
}

void EmitJson(BenchJsonSink* sink, const std::string& dataset,
              const Bigraph& graph, int parts, const Cell& cell,
              const Cell& seq) {
  sink->Emit(
      JsonLine()
          .Str("bench", "partitioner_scale")
          .Str("dataset", dataset)
          .Int("samples", graph.num_samples())
          .Int("edges", graph.num_edges())
          .Int("parts", parts)
          .Int("threads", cell.threads)
          .Int("rounds", kRounds)
          .Num("wall_ms", cell.wall_ms, 1)
          .Int("remote", cell.remote)
          .Num("remote_vs_seq",
               static_cast<double>(cell.remote) /
                   static_cast<double>(seq.remote),
               4)
          .Num("speedup_vs_seq", seq.wall_ms / cell.wall_ms, 2));
}

}  // namespace

int main() {
  PrintHeader("Hybrid partitioner scaling (sequential vs parallel)",
              "ISSUE 4 acceptance: >=4x at 8 threads, quality within 5%");
  const double scale = EnvScale(1.0);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", cores);
  BenchJsonSink sink;

  // 250k- and 1M-edge graphs (arity 10): partitioning cost scales with
  // edges × partitions, so both the memory story (sparse counts) and the
  // thread story show up here.
  struct GraphCfg {
    const char* name;
    int64_t samples;
    int64_t features;
  };
  const std::vector<GraphCfg> graphs = {
      {"250k-edge", static_cast<int64_t>(25000 * scale),
       static_cast<int64_t>(6000 * scale)},
      {"1M-edge", static_cast<int64_t>(100000 * scale),
       static_cast<int64_t>(20000 * scale)},
  };

  bool speedup_ok = true, quality_ok = true;
  for (const GraphCfg& gc : graphs) {
    SyntheticCtrConfig cfg;
    cfg.name = gc.name;
    cfg.num_samples = gc.samples;
    cfg.num_fields = 10;
    cfg.num_features = gc.features;
    cfg.num_clusters = 16;
    cfg.seed = 77;
    CtrDataset data = GenerateSyntheticCtr(cfg);
    Bigraph graph(data);
    std::printf("\n--- %s (%lld samples, %lld edges) ---\n", gc.name,
                static_cast<long long>(graph.num_samples()),
                static_cast<long long>(graph.num_edges()));
    std::printf("%6s %8s %12s %12s %10s %12s\n", "parts", "threads",
                "wall(ms)", "speedup", "remote", "vs seq");
    for (int parts : {8, 32}) {
      Cell seq;
      for (int threads : {1, 2, 4, 8}) {
        const Cell cell = RunCell(graph, parts, threads);
        if (threads == 1) seq = cell;
        const double ratio = static_cast<double>(cell.remote) /
                             static_cast<double>(seq.remote);
        std::printf("%6d %8d %12.1f %11.2fx %10lld %11.4f\n", parts,
                    cell.threads, cell.wall_ms, seq.wall_ms / cell.wall_ms,
                    static_cast<long long>(cell.remote), ratio);
        EmitJson(&sink, gc.name, graph, parts, cell, seq);
        if (std::string(gc.name) == "1M-edge" && threads == 8) {
          if (seq.wall_ms / cell.wall_ms < 4.0) speedup_ok = false;
          if (ratio > 1.05) quality_ok = false;
        }
      }
    }
  }
  // The speedup criterion needs >= 8 physical cores to be measurable;
  // on smaller machines report n/a rather than a misleading FAIL. The
  // quality criterion is hardware-independent but defined on the actual
  // 1M-edge graph: HETGMP_BENCH_SCALE < 1 shrinks it to a different
  // (noisier) workload, so a scaled-down run reports n/a as well.
  const char* speedup_msg =
      cores >= 8 ? (speedup_ok ? "PASS" : "FAIL") : "n/a (needs >=8 cores)";
  const char* quality_msg = scale >= 1.0
                                ? (quality_ok ? "PASS" : "FAIL")
                                : "n/a (scaled-down run)";
  std::printf(
      "\nacceptance: 1M-edge @ 8 threads speedup >= 4x: %s; quality within "
      "5%% of sequential: %s\n",
      speedup_msg, quality_msg);
  return 0;
}
