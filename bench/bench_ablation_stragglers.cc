// Ablation: straggler resilience. BSP model parallelism serializes every
// iteration on the slowest worker; bounded asynchrony only rendezvouses
// at round boundaries. The paper motivates relaxed consistency partly
// through heterogeneity (§3 cites partial-reduce work [33]); this bench
// quantifies it by slowing one worker down.

#include <cstdio>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

int main() {
  PrintHeader("Straggler resilience: BSP vs graph-bounded asynchrony",
              "§3 motivation (heterogeneity-aware training)");
  const double scale = EnvScale(0.35);
  const Topology topology = Topology::EightGpuQpi();
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.1);

  std::printf("%14s %20s %24s\n", "slowdown x", "HugeCTR (uniform)",
              "HET-GMP (capacity-aware)");
  double base_bsp = 0.0, base_gmp = 0.0;
  for (double slow : {1.0, 2.0, 4.0, 8.0}) {
    double thpt[2];
    int idx = 0;
    for (Strategy s : {Strategy::kHugeCtr, Strategy::kHetGmp}) {
      EngineConfig cfg;
      cfg.strategy = s;
      ApplyStrategyDefaults(&cfg);
      cfg.batch_size = 512;
      cfg.embedding_dim = 16;
      // Make compute a meaningful share of iteration time so the
      // straggler is visible.
      cfg.device_flops = 4e11;
      cfg.worker_slowdown.assign(topology.num_workers(), 1.0);
      cfg.worker_slowdown[0] = slow;
      // HET-GMP's heterogeneity-aware load balancer (§3): the straggler
      // owns proportionally less data and smaller batches. HugeCTR's
      // uniform model parallelism has no such knob.
      cfg.balance_batch_to_capacity = s == Strategy::kHetGmp;
      ExperimentResult r =
          RunExperiment(cfg, train, test, topology, /*max_epochs=*/1);
      thpt[idx++] = r.train.Throughput();
    }
    if (slow == 1.0) {
      base_bsp = thpt[0];
      base_gmp = thpt[1];
    }
    std::printf("%14.1f %13.1fM (%3.0f%%) %17.1fM (%3.0f%%)\n", slow,
                thpt[0] / 1e6, 100.0 * thpt[0] / base_bsp, thpt[1] / 1e6,
                100.0 * thpt[1] / base_gmp);
  }
  std::printf(
      "\nexpected: uniform BSP decays like 1/slowdown (every iteration "
      "waits for the straggler); the capacity-aware configuration sheds "
      "load from the slow device and degrades only by the lost compute "
      "share.\n");
  return 0;
}
