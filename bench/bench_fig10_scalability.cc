// Figure 10: "Total throughput comparison for WDL under different number
// of GPUs" (cluster B: NVLink islands of 4, QPI within a node, 10 GbE
// between 8-GPU nodes). Paper shape: HugeCTR's total throughput *drops*
// as workers spill across NVLink islands and machines; HET-GMP keeps
// scaling and is up to 27.5x / 24.8x faster at high worker counts on
// Criteo / Company.
//
// Throughput runs use a larger feature space than the convergence runs so
// per-batch deduplication does not mask traffic (see DESIGN.md §5); AUC
// is irrelevant here.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

double Throughput(Strategy strategy, const CtrDataset& train,
                  const CtrDataset& test, int workers) {
  const Topology topology = Topology::ClusterB(workers);
  EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.model = ModelType::kWdl;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 1024;
  cfg.embedding_dim = 32;
  cfg.rounds_per_epoch = 1;
  // Scaled GPU memory budget: 5% of this (small) table per worker, the
  // same relative overhead the paper's 1% is to its 33M-row tables; batch
  // the hot-replica write-backs (allowed under the staleness bound) so
  // they do not serialize on the inter-machine links.
  cfg.hybrid_options.secondary_fraction = 0.08;
  cfg.write_back_every = 4;
  cfg.bound.s = 400;
  ExperimentResult r =
      RunExperiment(cfg, train, test, topology, /*max_epochs=*/1);
  return r.train.Throughput();
}

}  // namespace

int main() {
  PrintHeader("Total throughput vs number of workers (cluster B)",
              "Figure 10");
  const double scale = EnvScale(0.6);
  const int worker_counts[] = {1, 2, 4, 8, 16, 24};

  for (auto data_cfg : {CriteoLikeConfig(scale), CompanyLikeConfig(scale)}) {
    // Widen the feature space for traffic realism (dedup-resistant) and
    // use the upper end of the generator's locality range (production
    // co-access locality at the paper's scale is far stronger than our
    // scaled synthetic default; see EXPERIMENTS.md).
    data_cfg.num_features *= 6;
    data_cfg.cluster_affinity = 0.92;
    CtrDataset train = GenerateSyntheticCtr(data_cfg);
    CtrDataset test = train.SplitTail(0.05);
    std::printf("\n--- %s (million samples / simulated second) ---\n",
                data_cfg.name.c_str());
    std::printf("%8s %12s %12s %10s\n", "#workers", "HugeCTR", "HET-GMP",
                "speedup");
    for (int n : worker_counts) {
      const double hugectr = Throughput(Strategy::kHugeCtr, train, test, n);
      const double gmp = Throughput(Strategy::kHetGmp, train, test, n);
      std::printf("%8d %12.2f %12.2f %9.1fx\n", n, hugectr / 1e6,
                  gmp / 1e6, gmp / hugectr);
    }
  }
  std::printf(
      "\npaper shape: HugeCTR throughput collapses once traffic crosses "
      "QPI (>4) and Ethernet (>8); HET-GMP stays robust and the gap "
      "widens with scale (paper: up to 27.5x at 16 workers).\n");
  return 0;
}
