// Table 2: "Final test AUC (%) with different s on WDL" — the model
// quality is robust through moderate staleness and degrades only when the
// bound is removed entirely. Paper: s=0 and s=100 identical, s=10k still
// competitive, s=∞ visibly worse (e.g. Company 76.09 → 73.27).

#include <cstdio>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"
#include "sync/staleness.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

int main() {
  PrintHeader("Final test AUC vs staleness bound s (WDL, 8 workers)",
              "Table 2");
  const double scale = EnvScale(0.35);
  const Topology topology = Topology::EightGpuQpi();
  const uint64_t bounds[] = {0, 100, 10000, StalenessBound::kUnbounded};

  std::printf("%-14s %10s %10s %10s %10s\n", "Dataset", "s=0", "s=100",
              "s=10k", "s=inf");
  for (const auto& data_cfg : PaperDatasets(scale)) {
    CtrDataset train = GenerateSyntheticCtr(data_cfg);
    CtrDataset test = train.SplitTail(0.15);
    std::printf("%-14s", data_cfg.name.c_str());
    for (uint64_t s : bounds) {
      EngineConfig cfg;
      cfg.strategy = Strategy::kHetGmp;
      cfg.model = ModelType::kWdl;
      ApplyStrategyDefaults(&cfg);
      cfg.bound.s = s;
      cfg.batch_size = 256;
      cfg.embedding_dim = 16;
      ExperimentResult r =
          RunExperiment(cfg, train, test, topology, /*max_epochs=*/6);
      std::printf("%9.2f%%", 100.0 * r.train.final_auc);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: AUC flat from s=0 through s=10k, drops at s=inf "
      "(\"continuing to increase s might hurt the model quality\").\n");
  return 0;
}
