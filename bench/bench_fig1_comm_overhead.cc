// Figure 1: "Communication overheads in WDL model training on HugeCTR".
// Paper numbers (comm time / epoch time): 4-GPU NVLink 50/39/30%,
// 4-GPU PCIe 89/84/79%, 8-GPU QPI 91/87/83% on Avazu/Criteo/Company.
// The reproduced shape: communication dominates and grows as the
// interconnect slows (NVLink < PCIe < QPI).

#include <cstdio>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"
#include "data/synthetic.h"

using namespace hetgmp;        // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

double CommFraction(const SyntheticCtrConfig& data_cfg,
                    const Topology& topology) {
  CtrDataset train = GenerateSyntheticCtr(data_cfg);
  CtrDataset test = train.SplitTail(0.1);
  EngineConfig cfg;
  cfg.strategy = Strategy::kHugeCtr;
  cfg.model = ModelType::kWdl;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 512;
  cfg.embedding_dim = 16;
  cfg.rounds_per_epoch = 1;
  ExperimentResult r =
      RunExperiment(cfg, train, test, topology, /*max_epochs=*/1);
  return r.train.comm_time / (r.train.comm_time + r.train.compute_time);
}

}  // namespace

int main() {
  PrintHeader("Communication overhead of HugeCTR-style WDL training",
              "Figure 1");
  const double scale = EnvScale(0.35);
  const auto datasets = PaperDatasets(scale);

  const Topology topologies[] = {Topology::FourGpuNvlink(),
                                 Topology::FourGpuPcie(),
                                 Topology::EightGpuQpi()};
  std::printf("%-16s", "");
  for (const auto& d : datasets) std::printf("%14s", d.name.c_str());
  std::printf("\n");
  for (const auto& topo : topologies) {
    std::printf("%-16s", topo.name().c_str());
    for (const auto& d : datasets) {
      std::printf("%13.1f%%", 100.0 * CommFraction(d, topo));
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: comm fraction is large everywhere and ordered\n"
      "NVLink < PCIe < QPI per dataset (paper: 50/89/91%% on Avazu, "
      "39/84/87%% on Criteo, 30/79/83%% on Company).\n");
  return 0;
}
