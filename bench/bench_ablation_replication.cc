// Ablation (DESIGN.md §4): vertex-cut replication budget. The paper fixes
// "top 1% embeddings as secondaries" (§7); this sweep shows the
// locality/memory trade-off behind that choice: the first fraction of a
// percent of replicas buys most of the remote-access reduction (the
// power-law insight of §5.2), with diminishing returns after.

#include <cstdio>

#include "bench_util.h"
#include "comm/topology.h"
#include "core/runner.h"
#include "partition/quality.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

int main() {
  PrintHeader("Ablation: vertex-cut replication budget (Eq. 6 greedy)",
              "design choice behind §5.2 / §7 'top 1%'");
  const double scale = EnvScale(0.5);
  const Topology topology = Topology::EightGpuQpi();
  CtrDataset train = GenerateSyntheticCtr(CriteoLikeConfig(scale));
  CtrDataset test = train.SplitTail(0.1);
  Bigraph graph(train);

  std::printf("%12s %14s %14s %14s %12s\n", "secondaries", "remote-frac",
              "replication", "emb KB/iter", "throughput");
  for (double frac : {0.0, 0.0025, 0.005, 0.01, 0.02, 0.05, 0.10}) {
    EngineConfig cfg;
    cfg.strategy = Strategy::kHetGmp;
    ApplyStrategyDefaults(&cfg);
    cfg.hybrid_options.secondary_fraction = frac;
    cfg.bound.s = 100;
    cfg.batch_size = 512;
    cfg.embedding_dim = 16;
    cfg.rounds_per_epoch = 1;
    Partition part = BuildPartition(cfg, graph, topology);
    const PartitionQuality q = EvaluatePartition(graph, part);
    Engine engine(cfg, train, test, topology, part);
    TrainResult r = engine.Train(1);
    const RoundStats& last = r.rounds.back();
    std::printf("%11.2f%% %13.1f%% %14.3f %14.1f %10.1fM\n", 100 * frac,
                100 * q.RemoteFraction(), q.replication_factor,
                last.embedding_bytes /
                    static_cast<double>(r.total_iterations) / 1024.0,
                r.Throughput() / 1e6);
  }
  std::printf(
      "\nexpected: steep remote-access drop in the first ~1%% of replicas "
      "(skewed degrees), then diminishing returns per GPU byte.\n");
  return 0;
}
