// Microbenchmarks (google-benchmark) for the library's hot kernels:
// partitioning passes, Zipf sampling, AUC, the dense GEMM, and a full
// engine training iteration. These guard the constants behind Table 3's
// "partitioning time ≪ training time" claim.

#include <benchmark/benchmark.h>

#include "comm/topology.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "metrics/auc.h"
#include "partition/bicut_partitioner.h"
#include "partition/hybrid_partitioner.h"
#include "partition/multilevel_partitioner.h"
#include "partition/random_partitioner.h"
#include "tensor/ops.h"

namespace hetgmp {
namespace {

const CtrDataset& BenchDataset() {
  static const CtrDataset* dataset = [] {
    SyntheticCtrConfig cfg = CriteoLikeConfig(0.25);
    return new CtrDataset(GenerateSyntheticCtr(cfg));
  }();
  return *dataset;
}

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler sampler(1 << 20, 1.05);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::Gaussian({n, n}, 1.0f, &rng);
  Tensor b = Tensor::Gaussian({n, n}, 1.0f, &rng);
  Tensor out;
  for (auto _ : state) {
    MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

void BM_Auc(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<float> scores(n), labels(n);
  for (int64_t i = 0; i < n; ++i) {
    scores[i] = rng.NextFloat(0, 1);
    labels[i] = rng.NextBool(0.3) ? 1.0f : 0.0f;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAuc(scores, labels));
  }
}
BENCHMARK(BM_Auc)->Arg(10000)->Arg(100000);

void BM_RandomPartition(benchmark::State& state) {
  Bigraph graph(BenchDataset());
  for (auto _ : state) {
    RandomPartitioner p;
    benchmark::DoNotOptimize(p.Run(graph, 8).sample_owner.data());
  }
}
BENCHMARK(BM_RandomPartition);

void BM_BiCutPartition(benchmark::State& state) {
  Bigraph graph(BenchDataset());
  for (auto _ : state) {
    BiCutPartitioner p;
    benchmark::DoNotOptimize(p.Run(graph, 8).sample_owner.data());
  }
}
BENCHMARK(BM_BiCutPartition);

void BM_HybridPartition(benchmark::State& state) {
  Bigraph graph(BenchDataset());
  HybridPartitionerOptions opt;
  opt.rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    HybridPartitioner p(opt);
    benchmark::DoNotOptimize(p.Run(graph, 8).sample_owner.data());
  }
}
BENCHMARK(BM_HybridPartition)->Arg(1)->Arg(3);

void BM_MultilevelCluster(benchmark::State& state) {
  WeightedGraph graph = BuildCooccurrenceGraph(BenchDataset());
  MultilevelPartitioner ml;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml.Cluster(graph, 8).data());
  }
}
BENCHMARK(BM_MultilevelCluster);

void BM_EngineEpoch(benchmark::State& state) {
  CtrDataset train = BenchDataset();
  CtrDataset test = train.SplitTail(0.1);
  const Topology topology = Topology::EightGpuQpi();
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 256;
  cfg.embedding_dim = 16;
  cfg.rounds_per_epoch = 1;
  Bigraph graph(train);
  Partition part = BuildPartition(cfg, graph, topology);
  for (auto _ : state) {
    Engine engine(cfg, train, test, topology, part);
    benchmark::DoNotOptimize(engine.Train(1).samples_processed);
  }
}
BENCHMARK(BM_EngineEpoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hetgmp

BENCHMARK_MAIN();
