// Figure 3: "Embedding co-occurrence graph partition results" — METIS
// clusters the co-occurrence graph into 8 clusters and the co-occurrence
// mass concentrates in dense diagonal regions. We reproduce with the
// multilevel partitioner and report (a) the within-cluster weight
// fraction (diagonal mass) against the 1/k random baseline and (b) a
// cluster-cluster weight heatmap (the diagonal blocks themselves).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "graph/cooccurrence.h"
#include "metrics/comm_report.h"
#include "partition/multilevel_partitioner.h"

using namespace hetgmp;         // NOLINT
using namespace hetgmp::bench;  // NOLINT

namespace {

constexpr int kClusters = 8;  // "8 is only for illustrative purposes"

std::vector<std::vector<uint64_t>> ClusterWeightMatrix(
    const WeightedGraph& g, const std::vector<int>& cluster_of) {
  std::vector<std::vector<uint64_t>> m(kClusters,
                                       std::vector<uint64_t>(kClusters, 0));
  for (int64_t u = 0; u < g.num_vertices(); ++u) {
    for (int64_t e = 0; e < g.Degree(u); ++e) {
      const auto& edge = g.Neighbors(u)[e];
      m[cluster_of[u]][cluster_of[edge.to]] +=
          static_cast<uint64_t>(edge.weight);
    }
  }
  return m;
}

}  // namespace

int main() {
  PrintHeader("Co-occurrence graph clustering (dense diagonal blocks)",
              "Figure 3");
  const double scale = EnvScale(0.5);
  for (const auto& cfg : PaperDatasets(scale)) {
    CtrDataset data = GenerateSyntheticCtr(cfg);
    WeightedGraph graph = BuildCooccurrenceGraph(data);
    MultilevelPartitioner ml;
    std::vector<int> clusters = ml.Cluster(graph, kClusters);

    Rng rng(5);
    std::vector<int> random(graph.num_vertices());
    for (auto& c : random) c = static_cast<int>(rng.NextUint64(kClusters));

    const double within = WithinClusterWeightFraction(graph, clusters);
    const double baseline = WithinClusterWeightFraction(graph, random);
    std::printf("\n%s: %lld embeddings, %lld co-occurrence edges\n",
                cfg.name.c_str(),
                static_cast<long long>(graph.num_vertices()),
                static_cast<long long>(graph.num_edges()));
    std::printf("  within-cluster weight: clustered %.1f%% vs random %.1f%% "
                "(%.1fx)\n",
                100 * within, 100 * baseline, within / baseline);
    std::printf("  cluster-cluster co-occurrence heatmap "
                "(diagonal = within-cluster):\n%s",
                RenderPairHeatmap(ClusterWeightMatrix(graph, clusters))
                    .c_str());
  }
  std::printf(
      "\npaper shape: co-occurrence relations cluster into dense diagonal "
      "regions on all three datasets.\n");
  return 0;
}
