#include <gtest/gtest.h>

#include <vector>

#include "embed/lru_cache.h"

namespace hetgmp {
namespace {

TEST(LruCacheTest, StartsEmpty) {
  LruEmbeddingCache cache(4, 2);
  EXPECT_EQ(cache.size(), 4);
  EXPECT_EQ(cache.occupied(), 0);
  EXPECT_EQ(cache.Slot(7), -1);
  EXPECT_EQ(cache.EvictionCandidate(), -1);  // free space left
}

TEST(LruCacheTest, InsertAndLookup) {
  LruEmbeddingCache cache(2, 3);
  const int64_t s1 = cache.Insert(10);
  const float v[3] = {1, 2, 3};
  cache.SetValue(s1, v);
  EXPECT_EQ(cache.Slot(10), s1);
  EXPECT_EQ(cache.IdAt(s1), 10);
  EXPECT_FLOAT_EQ(cache.Value(s1)[1], 2.0f);
  EXPECT_EQ(cache.occupied(), 1);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruEmbeddingCache cache(2, 1);
  cache.Insert(1);
  cache.Insert(2);
  // Touch 1 so 2 becomes LRU.
  EXPECT_GE(cache.Slot(1), 0);
  const int64_t victim = cache.EvictionCandidate();
  EXPECT_EQ(cache.IdAt(victim), 2);
  cache.Insert(3);  // evicts 2
  EXPECT_EQ(cache.Slot(2), -1);
  EXPECT_GE(cache.Slot(1), 0);
  EXPECT_GE(cache.Slot(3), 0);
  EXPECT_EQ(cache.occupied(), 2);
}

TEST(LruCacheTest, InsertResetsSlotState) {
  LruEmbeddingCache cache(1, 2);
  const int64_t s = cache.Insert(5);
  const float v[2] = {9, 9};
  cache.SetValue(s, v);
  const float g[2] = {1, 1};
  cache.AccumulatePending(s, g);
  cache.set_synced_clock(s, 42);
  cache.ClearPending(s);  // must flush before eviction
  const int64_t s2 = cache.Insert(6);
  EXPECT_EQ(s2, s);  // recycled slot
  EXPECT_EQ(cache.Slot(5), -1);
  EXPECT_FLOAT_EQ(cache.Value(s2)[0], 0.0f);
  EXPECT_EQ(cache.pending_count(s2), 0);
  EXPECT_EQ(cache.synced_clock(s2), 0u);
}

TEST(LruCacheTest, PendingAccumulates) {
  LruEmbeddingCache cache(2, 2);
  const int64_t s = cache.Insert(3);
  const float g1[2] = {1, -1};
  const float g2[2] = {0.5, 0.5};
  cache.AccumulatePending(s, g1);
  cache.AccumulatePending(s, g2);
  EXPECT_FLOAT_EQ(cache.Pending(s)[0], 1.5f);
  EXPECT_FLOAT_EQ(cache.Pending(s)[1], -0.5f);
  EXPECT_EQ(cache.pending_count(s), 2);
}

TEST(LruCacheTest, HitMissCounters) {
  LruEmbeddingCache cache(2, 1);
  cache.Slot(1);  // miss
  cache.Insert(1);
  cache.Slot(1);  // hit
  cache.Slot(2);  // miss
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(LruCacheTest, FullChurnKeepsConsistency) {
  // Heavy insert/evict/touch traffic with invariant checks.
  LruEmbeddingCache cache(8, 2);
  for (int round = 0; round < 200; ++round) {
    const FeatureId x = round % 23;
    int64_t slot = cache.Slot(x);
    if (slot < 0) {
      const int64_t victim = cache.EvictionCandidate();
      if (victim >= 0) cache.ClearPending(victim);
      slot = cache.Insert(x);
    }
    EXPECT_EQ(cache.IdAt(slot), x);
    EXPECT_EQ(cache.Slot(x), slot);
    EXPECT_LE(cache.occupied(), 8);
  }
  // All slots consistent: id → slot → id round trips.
  int64_t occupied = 0;
  for (int64_t s = 0; s < cache.size(); ++s) {
    const FeatureId id = cache.IdAt(s);
    if (id >= 0) {
      ++occupied;
      EXPECT_EQ(cache.Slot(id), s);
    }
  }
  EXPECT_EQ(occupied, cache.occupied());
}

TEST(LruCacheDeathTest, DoubleInsertRejected) {
  LruEmbeddingCache cache(2, 1);
  cache.Insert(1);
  EXPECT_DEATH(cache.Insert(1), "already-cached");
}

TEST(LruCacheDeathTest, EvictingUnflushedPendingRejected) {
  LruEmbeddingCache cache(1, 1);
  const int64_t s = cache.Insert(1);
  const float g[1] = {1};
  cache.AccumulatePending(s, g);
  EXPECT_DEATH(cache.Insert(2), "unflushed");
}

TEST(LruCacheTest, DirtyTailSkippedOnInsert) {
  // A dirty entry at the LRU tail must not crash (or be evicted by)
  // Insert: the walk skips it and evicts the next-least-recent clean
  // entry instead, preserving the unflushed gradient.
  LruEmbeddingCache cache(2, 1);
  const int64_t s1 = cache.Insert(1);
  cache.Insert(2);  // recency: 2 (head), 1 (tail)
  const float g[1] = {3};
  // Dirty the tail directly — Slot(1) would refresh its recency.
  cache.AccumulatePending(s1, g);
  const int64_t s3 = cache.Insert(3);  // must evict 2, not the dirty 1
  EXPECT_EQ(cache.Slot(2), -1);
  EXPECT_EQ(cache.Slot(1), s1);
  EXPECT_EQ(cache.pending_count(s1), 1);
  EXPECT_FLOAT_EQ(cache.Pending(s1)[0], 3.0f);
  EXPECT_GE(s3, 0);
  EXPECT_NE(s3, s1);
}

TEST(LruCacheDeathTest, AllDirtyInsertRejected) {
  // Only when *every* slot holds an unflushed gradient does Insert fail.
  LruEmbeddingCache cache(2, 1);
  const int64_t s1 = cache.Insert(1);
  const int64_t s2 = cache.Insert(2);
  const float g[1] = {1};
  cache.AccumulatePending(s1, g);
  cache.AccumulatePending(s2, g);
  EXPECT_DEATH(cache.Insert(3), "unflushed");
}

TEST(LruCacheTest, ZeroCapacity) {
  LruEmbeddingCache cache(0, 4);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.Slot(1), -1);
}

}  // namespace
}  // namespace hetgmp
