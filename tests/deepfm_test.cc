#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "models/deepfm.h"
#include "models/model.h"

namespace hetgmp {
namespace {

Tensor RandomInput(int64_t batch, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  Tensor t({batch, dim});
  for (int64_t i = 0; i < t.size(); ++i) t.at(i) = rng.NextFloat(-1, 1);
  return t;
}

double ProbeLoss(const Tensor& out, const Tensor& probe) {
  double acc = 0;
  for (int64_t i = 0; i < out.size(); ++i) {
    acc += static_cast<double>(out.at(i)) * probe.at(i);
  }
  return acc;
}

TEST(DeepFmTest, FmTermMatchesManualComputation) {
  // 2 fields × dim 2: fm = Σ_d v_{0,d} v_{1,d} (pairwise dot product).
  Rng rng(1);
  DeepFmModel model(2, 2, {4}, &rng);
  // Zero out linear + deep so only the FM term remains.
  for (Tensor* p : model.DenseParams()) p->Fill(0.0f);
  Tensor in({1, 4});
  in.at(0) = 1;  // v0 = (1, 2)
  in.at(1) = 2;
  in.at(2) = 3;  // v1 = (3, -1)
  in.at(3) = -1;
  Tensor out;
  model.Forward(in, &out);
  // fm = 0.5 * [ (1+3)^2 + (2-1)^2 − (1+9) − (4+1) ] = 0.5*(16+1−10−5)=1
  // which equals v0 · v1 = 3 − 2 = 1.
  EXPECT_NEAR(out.at(0), 1.0f, 1e-5);
}

TEST(DeepFmTest, SingleFieldFmTermVanishes) {
  // With one field there are no pairwise interactions.
  Rng rng(2);
  DeepFmModel model(1, 4, {4}, &rng);
  for (Tensor* p : model.DenseParams()) p->Fill(0.0f);
  Tensor in = RandomInput(3, 4, 3);
  Tensor out;
  model.Forward(in, &out);
  for (int64_t i = 0; i < out.size(); ++i) EXPECT_NEAR(out.at(i), 0, 1e-5);
}

TEST(DeepFmTest, GradCheckInputs) {
  Rng rng(4);
  DeepFmModel model(3, 4, {6}, &rng);
  Tensor in = RandomInput(3, 12, 5);
  Tensor out;
  model.Forward(in, &out);
  const Tensor probe = RandomInput(out.dim(0), out.dim(1), 6);
  model.ZeroGrads();
  model.Forward(in, &out);
  Tensor grad_in;
  model.Backward(probe, &grad_in);

  // Small eps: the FM term is quadratic (central differences exact), so
  // the only finite-difference error source is ReLU kink crossings in the
  // deep tower, whose probability shrinks with eps.
  const float eps = 2e-3f;
  Rng pick(7);
  for (int c = 0; c < 24; ++c) {
    const int64_t i = static_cast<int64_t>(pick.NextUint64(in.size()));
    Tensor plus = in, minus = in;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    Tensor op, om;
    model.Forward(plus, &op);
    const double lp = ProbeLoss(op, probe);
    model.Forward(minus, &om);
    const double lm = ProbeLoss(om, probe);
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_in.at(i), numeric,
                4e-2 * std::max(1.0, std::abs(numeric)))
        << "input " << i;
  }
}

TEST(DeepFmTest, FactoryIntegration) {
  Rng rng(8);
  auto model = CreateFieldModel(ModelType::kDeepFm, 5, 4, &rng);
  EXPECT_STREQ(model->name(), "DeepFM");
  Tensor in = RandomInput(2, 20, 9);
  Tensor out;
  model->Forward(in, &out);
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_EQ(out.dim(1), 1);
  EXPECT_GT(model->FlopsPerSample(), 0);
}

TEST(DeepFmTest, FieldAgnosticFactoryFallsBack) {
  Rng rng1(10), rng2(10);
  auto wdl_a = CreateFieldModel(ModelType::kWdl, 4, 5, &rng1);
  auto wdl_b = CreateModel(ModelType::kWdl, 20, &rng2);
  EXPECT_EQ(wdl_a->NumDenseParams(), wdl_b->NumDenseParams());
}

}  // namespace
}  // namespace hetgmp
