#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "comm/topology.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "embed/checkpoint.h"
#include "embed/embedding_table.h"
#include "graph/bigraph.h"
#include "serve/batcher.h"
#include "serve/lookup_service.h"
#include "serve/snapshot_store.h"

namespace hetgmp {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/hetgmp_serve_" + tag + "_" +
         std::to_string(::getpid());
}

// Fills every row of `table` with the scalar `v` (distinct per publish, so
// readers can detect torn snapshots: a consistent snapshot has one value
// everywhere).
void FillTable(EmbeddingTable* table, float v) {
  for (int64_t x = 0; x < table->num_embeddings(); ++x) {
    float* row = table->UnsafeMutableRow(x);
    for (int d = 0; d < table->dim(); ++d) row[d] = v;
  }
}

// Fills row x of `table` with x * scale + d (unique per cell).
void FillTableUnique(EmbeddingTable* table, float scale) {
  for (int64_t x = 0; x < table->num_embeddings(); ++x) {
    float* row = table->UnsafeMutableRow(x);
    for (int d = 0; d < table->dim(); ++d) {
      row[d] = static_cast<float>(x) * scale + static_cast<float>(d);
    }
  }
}

// Two-shard toy layout: embeddings 0-2 owned by shard 0, 3-5 by shard 1;
// shard 0 additionally holds a vertex-cut secondary of embedding 3.
Partition TinyPartition() {
  Partition p;
  p.num_parts = 2;
  p.embedding_owner = {0, 0, 0, 1, 1, 1};
  p.secondaries = {{3}, {}};
  return p;
}

// ------------------------------------------------------ SnapshotStore

TEST(SnapshotStoreTest, EmptyBeforeFirstPublish) {
  SnapshotStore store;
  EXPECT_EQ(store.Acquire(), nullptr);
  EXPECT_EQ(store.version(), 0u);
}

TEST(SnapshotStoreTest, PublishAndAcquire) {
  EmbeddingTable table(10, 4, 0.0f, 1);
  FillTableUnique(&table, 100.0f);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}, /*round=*/3, /*iterations=*/77).ok());
  EXPECT_EQ(store.version(), 1u);

  auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->meta().version, 1u);
  EXPECT_EQ(snap->meta().round, 3);
  EXPECT_EQ(snap->meta().iterations, 77);
  EXPECT_EQ(snap->rows(), 10);
  EXPECT_EQ(snap->dim(), 4);
  float row[4];
  for (int64_t x = 0; x < 10; ++x) {
    snap->ReadRow(x, row);
    for (int d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(row[d], table.UnsafeRow(x)[d]);
    }
  }
}

TEST(SnapshotStoreTest, OldSnapshotSurvivesNewPublishes) {
  EmbeddingTable table(4, 2, 0.0f, 1);
  FillTable(&table, 1.0f);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());
  auto v1 = store.Acquire();

  FillTable(&table, 2.0f);
  ASSERT_TRUE(store.Publish(table, {}).ok());
  FillTable(&table, 3.0f);
  ASSERT_TRUE(store.Publish(table, {}).ok());

  // The v1 handle still reads v1 data even though the double buffer has
  // cycled past it twice.
  float row[2];
  EXPECT_EQ(v1->meta().version, 1u);
  v1->ReadRow(0, row);
  EXPECT_FLOAT_EQ(row[0], 1.0f);
  EXPECT_EQ(store.Acquire()->meta().version, 3u);
  store.Acquire()->ReadRow(0, row);
  EXPECT_FLOAT_EQ(row[0], 3.0f);
}

TEST(SnapshotStoreTest, DurablePublishPrunesSupersededFiles) {
  const std::string dir = ::testing::TempDir();
  SnapshotStoreOptions opts;
  opts.dir = dir;
  SnapshotStore store(opts);

  EmbeddingTable table(6, 3, 0.0f, 1);
  FillTable(&table, 4.0f);
  ASSERT_TRUE(store.Publish(table, {}).ok());
  FillTable(&table, 5.0f);
  ASSERT_TRUE(store.Publish(table, {}).ok());

  // v2 durable and readable; v1 pruned.
  Result<CheckpointEmbeddings> v2 =
      LoadCheckpointEmbeddings(store.SnapshotPath(2));
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2.value().rows, 6);
  EXPECT_EQ(v2.value().dim, 3);
  EXPECT_FLOAT_EQ(v2.value().values[0], 5.0f);
  EXPECT_EQ(LoadCheckpointEmbeddings(store.SnapshotPath(1)).status().code(),
            StatusCode::kNotFound);
  std::remove(store.SnapshotPath(2).c_str());
}

TEST(SnapshotStoreTest, PublishFromCheckpointRestoresRows) {
  EmbeddingTable table(8, 2, 0.0f, 1);
  FillTableUnique(&table, 10.0f);
  Tensor dense({3});
  dense.at(0) = 1.0f;
  const std::string path = TempPath("restore");
  ASSERT_TRUE(SaveCheckpoint(table, {&dense}, path).ok());

  SnapshotStore store;
  ASSERT_TRUE(store.PublishFromCheckpoint(path).ok());
  auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->meta().version, 1u);
  EXPECT_EQ(snap->rows(), 8);
  float row[2];
  for (int64_t x = 0; x < 8; ++x) {
    snap->ReadRow(x, row);
    EXPECT_FLOAT_EQ(row[1], static_cast<float>(x) * 10.0f + 1.0f);
  }
  std::remove(path.c_str());
}

// The TSan-targeted hammer: 8 readers continuously acquire and fully scan
// the current snapshot while 1 publisher republishes as fast as it can.
// Every snapshot is filled with a single distinct value, so any torn copy,
// use-after-free, or mixed-version read shows up as a value mismatch (and
// any locking bug shows up under TSan).
TEST(SnapshotSwapHammerTest, ConcurrentReadersAndPublisher) {
  constexpr int kReaders = 8;
  constexpr int kReadsPerReader = 300;
  constexpr int64_t kRows = 64;
  constexpr int kDim = 8;

  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  SnapshotStore store;
  std::atomic<bool> readers_done{false};
  std::atomic<int64_t> inconsistencies{0};

  // The publisher runs for as long as the readers do, so every reader scan
  // races against live flips. (Version values stay far below 2^24, so the
  // float(version) fill is exact.)
  std::thread publisher([&] {
    uint64_t v = 0;
    while (!readers_done.load(std::memory_order_acquire)) {
      ++v;
      FillTable(&table, static_cast<float>(v));
      ASSERT_TRUE(store.Publish(table, {}).ok());
    }
  });

  auto reader_main = [&] {
    uint64_t last_version = 0;
    int completed = 0;
    while (completed < kReadsPerReader) {
      auto snap = store.Acquire();
      if (snap == nullptr) continue;
      const uint64_t v = snap->meta().version;
      if (v < last_version) inconsistencies.fetch_add(1);
      last_version = v;
      const float expected = static_cast<float>(v);
      float row[kDim];
      for (int64_t x = 0; x < snap->rows(); ++x) {
        snap->ReadRow(x, row);
        for (int d = 0; d < snap->dim(); ++d) {
          if (row[d] != expected) inconsistencies.fetch_add(1);
        }
      }
      ++completed;
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) readers.emplace_back(reader_main);
  for (auto& t : readers) t.join();
  readers_done.store(true, std::memory_order_release);
  publisher.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(store.version(), 0u);
}

// ------------------------------------------------------ LookupService

TEST(LookupServiceTest, FailsBeforeFirstPublish) {
  SnapshotStore store;
  Partition partition = TinyPartition();
  LookupService service(&store, partition, nullptr);
  float out[4];
  EXPECT_EQ(service.Lookup(0, 0, out).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.dim(), 0);
}

TEST(LookupServiceTest, RoutingTiersAndFabricAccounting) {
  EmbeddingTable table(6, 4, 0.0f, 1);
  FillTableUnique(&table, 100.0f);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());

  Partition partition = TinyPartition();
  const Topology topology = Topology::ClusterA(2);
  Fabric fabric(topology);
  LookupServiceOptions opts;
  opts.request_bytes = 16;
  LookupService service(&store, partition, &fabric, opts);
  EXPECT_EQ(service.dim(), 4);

  float out[4];
  // Primary-owned on the front-end shard: no fabric traffic.
  ASSERT_TRUE(service.Lookup(0, 1, out).ok());
  EXPECT_FLOAT_EQ(out[0], 100.0f);
  EXPECT_FLOAT_EQ(out[3], 103.0f);
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kLookup), 0u);

  // Secondary replica on shard 0: still local.
  ASSERT_TRUE(service.Lookup(0, 3, out).ok());
  EXPECT_FLOAT_EQ(out[0], 300.0f);
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kLookup), 0u);

  // Neither primary nor secondary: routed to owner shard 1 — request out
  // plus the returned row, both charged to kLookup.
  ASSERT_TRUE(service.Lookup(0, 4, out).ok());
  EXPECT_FLOAT_EQ(out[0], 400.0f);
  const uint64_t row_bytes = 4 * sizeof(float);
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kLookup), 16u + row_bytes);

  // Same key again: served from the hot-row cache, no new traffic.
  ASSERT_TRUE(service.Lookup(0, 4, out).ok());
  EXPECT_FLOAT_EQ(out[0], 400.0f);
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kLookup), 16u + row_bytes);

  const LookupStats stats = service.stats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.local_primary, 1);
  EXPECT_EQ(stats.secondary_hits, 1);
  EXPECT_EQ(stats.remote, 1);
  EXPECT_EQ(stats.hot_hits, 1);
  // Training classes untouched by serving.
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kEmbedding), 0u);
}

TEST(LookupServiceTest, HotCacheInvalidatedByNewVersion) {
  EmbeddingTable table(6, 4, 0.0f, 1);
  FillTable(&table, 1.0f);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());

  Partition partition = TinyPartition();
  const Topology topology = Topology::ClusterA(2);
  Fabric fabric(topology);
  LookupService service(&store, partition, &fabric);

  float out[4];
  ASSERT_TRUE(service.Lookup(0, 4, out).ok());  // remote, fills hot cache
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  const uint64_t after_v1 = fabric.TotalBytes(TrafficClass::kLookup);

  FillTable(&table, 2.0f);
  ASSERT_TRUE(store.Publish(table, {}).ok());

  // The cached row belongs to v1; serving it for v2 would mix versions, so
  // the service refetches and returns the new value.
  ASSERT_TRUE(service.Lookup(0, 4, out).ok());
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_GT(fabric.TotalBytes(TrafficClass::kLookup), after_v1);
  EXPECT_EQ(service.stats().hot_hits, 0);
}

TEST(LookupServiceTest, RejectsBadShardAndKeys) {
  EmbeddingTable table(6, 4, 0.0f, 1);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());
  Partition partition = TinyPartition();
  LookupService service(&store, partition, nullptr);

  float out[8];
  EXPECT_EQ(service.Lookup(-1, 0, out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Lookup(2, 0, out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Lookup(0, -1, out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(service.Lookup(0, 6, out).code(), StatusCode::kOutOfRange);
  // Batch with one bad key fails whole (no partial output contract).
  const FeatureId keys[2] = {0, 99};
  EXPECT_EQ(service.LookupBatch(0, keys, 2, out).code(),
            StatusCode::kOutOfRange);
}

// ------------------------------------------------------ RequestBatcher

TEST(BatcherTest, FullBatchFlushesImmediately) {
  EmbeddingTable table(6, 4, 0.0f, 1);
  FillTableUnique(&table, 100.0f);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());
  Partition partition = TinyPartition();
  LookupService service(&store, partition, nullptr);

  BatcherOptions opts;
  opts.max_batch_keys = 4;
  opts.deadline = std::chrono::seconds(30);  // deadline must not be needed
  RequestBatcher batcher(&service, opts);

  const FeatureId keys[4] = {0, 1, 4, 5};
  float out[16];
  ASSERT_TRUE(batcher.Lookup(0, keys, 4, out).ok());
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[4], 100.0f);
  EXPECT_FLOAT_EQ(out[8], 400.0f);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.keys, 4);
  EXPECT_GE(stats.full_flushes, 1);
}

TEST(BatcherTest, DeadlineFlushesPartialBatch) {
  EmbeddingTable table(6, 4, 0.0f, 1);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());
  Partition partition = TinyPartition();
  LookupService service(&store, partition, nullptr);

  BatcherOptions opts;
  opts.max_batch_keys = 1 << 20;  // never fills; only the deadline flushes
  opts.deadline = std::chrono::milliseconds(2);
  RequestBatcher batcher(&service, opts);

  const FeatureId key = 2;
  float out[4];
  ASSERT_TRUE(batcher.Lookup(0, &key, 1, out).ok());
  const BatcherStats stats = batcher.stats();
  EXPECT_GE(stats.deadline_flushes, 1);
  EXPECT_EQ(stats.full_flushes, 0);
  EXPECT_EQ(stats.shutdown_flushes, 0);
}

TEST(BatcherTest, ShutdownDrainCountedSeparately) {
  // A partial batch drained because Shutdown interrupted the
  // micro-batching window is not a deadline flush: its requests never
  // waited out the deadline, so counting it there would misattribute
  // shutdown noise to the latency-tuning signal.
  EmbeddingTable table(6, 4, 0.0f, 1);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());
  Partition partition = TinyPartition();
  LookupService service(&store, partition, nullptr);

  BatcherOptions opts;
  opts.max_batch_keys = 1 << 20;          // never fills
  opts.deadline = std::chrono::seconds(30);  // never expires in-test
  RequestBatcher batcher(&service, opts);

  const FeatureId key = 2;
  std::thread client([&] {
    float client_out[4];
    // Shutdown may fail this lookup; the test only cares that it returns.
    HETGMP_IGNORE_STATUS(batcher.Lookup(0, &key, 1, client_out));
  });
  // Wait until the request is enqueued (the dispatcher is then parked in
  // the 30s micro-batching window) before shutting down.
  while (batcher.stats().requests < 1) std::this_thread::yield();
  batcher.Shutdown();
  client.join();

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.shutdown_flushes, 1);
  EXPECT_EQ(stats.deadline_flushes, 0);
  EXPECT_EQ(stats.full_flushes, 0);
  EXPECT_EQ(stats.dispatches, 1);
}

// The deadline contract: no request waits in the queue longer than the
// micro-batching deadline plus scheduling noise. The generous slack keeps
// the bound meaningful (a batcher that held requests until the batch
// filled would wait essentially forever here) without flaking on loaded
// CI machines.
TEST(BatcherTest, NoRequestWaitsPastDeadline) {
  EmbeddingTable table(64, 4, 0.0f, 1);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());
  Partition partition;
  partition.num_parts = 2;
  partition.embedding_owner.assign(64, 0);
  for (int64_t x = 32; x < 64; ++x) partition.embedding_owner[x] = 1;
  partition.secondaries = {{}, {}};
  LookupService service(&store, partition, nullptr);

  BatcherOptions opts;
  opts.max_batch_keys = 1 << 20;  // deadline is the only flush trigger
  opts.deadline = std::chrono::milliseconds(5);
  RequestBatcher batcher(&service, opts);

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 20;
  std::atomic<int> failures{0};
  auto client_main = [&](int t) {
    float out[4];
    for (int r = 0; r < kRequestsPerThread; ++r) {
      const FeatureId key = (t * kRequestsPerThread + r) % 64;
      if (!batcher.Lookup(t % 2, &key, 1, out).ok()) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(client_main, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, kThreads * kRequestsPerThread);
  // 5ms deadline + 400ms scheduling slack.
  EXPECT_LT(stats.max_queue_wait_us, 5000.0 + 400000.0);
}

TEST(BatcherTest, ConcurrentClientsGetCorrectRows) {
  EmbeddingTable table(32, 4, 0.0f, 1);
  FillTableUnique(&table, 1000.0f);
  SnapshotStore store;
  ASSERT_TRUE(store.Publish(table, {}).ok());
  Partition partition;
  partition.num_parts = 2;
  partition.embedding_owner.assign(32, 0);
  for (int64_t x = 16; x < 32; ++x) partition.embedding_owner[x] = 1;
  partition.secondaries = {{}, {}};
  LookupService service(&store, partition, nullptr);

  BatcherOptions opts;
  opts.max_batch_keys = 8;
  opts.deadline = std::chrono::microseconds(200);
  RequestBatcher batcher(&service, opts);

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  auto client_main = [&](int t) {
    FeatureId keys[2];
    float out[8];
    for (int r = 0; r < 40; ++r) {
      keys[0] = (t + r) % 32;
      keys[1] = (t * 7 + r * 3) % 32;
      if (!batcher.Lookup(t % 2, keys, 2, out).ok()) {
        mismatches.fetch_add(1);
        continue;
      }
      for (int i = 0; i < 2; ++i) {
        for (int d = 0; d < 4; ++d) {
          const float want =
              static_cast<float>(keys[i]) * 1000.0f + static_cast<float>(d);
          if (out[i * 4 + d] != want) mismatches.fetch_add(1);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(client_main, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  batcher.Shutdown();
  float out[4];
  const FeatureId key = 0;
  EXPECT_EQ(batcher.Lookup(0, &key, 1, out).code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------- Engine publish integration

TEST(EnginePublishHookTest, PublishesOnCadenceAndAtFinalRound) {
  SyntheticCtrConfig data_cfg;
  data_cfg.num_samples = 600;
  data_cfg.num_fields = 5;
  data_cfg.num_features = 200;
  data_cfg.num_clusters = 4;
  data_cfg.seed = 9;
  CtrDataset train = GenerateSyntheticCtr(data_cfg);
  CtrDataset test = train.SplitTail(0.2);

  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.embedding_dim = 8;
  cfg.batch_size = 32;
  cfg.rounds_per_epoch = 4;

  const Topology topology = Topology::ClusterA(2);
  Bigraph graph(train);
  Partition partition = BuildPartition(cfg, graph, topology);
  Engine engine(cfg, train, test, topology, std::move(partition));

  SnapshotStore store;
  engine.SetPublishHook(
      [&store](const Engine::PublishContext& ctx) {
        return store.Publish(ctx.table, ctx.dense_params, ctx.round,
                             ctx.iterations_done);
      },
      /*every_rounds=*/2);

  TrainResult result = engine.Train(/*max_epochs=*/1);
  // 4 rounds, publish at rounds 2 and 4 (the final round is round 4).
  EXPECT_EQ(result.snapshots_published, 2);
  EXPECT_EQ(result.publish_failures, 0);
  EXPECT_EQ(store.version(), 2u);

  // The latest snapshot is the final table state.
  auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->rows(), engine.table().num_embeddings());
  std::vector<float> row(snap->dim());
  for (int64_t x = 0; x < snap->rows(); x += 17) {
    snap->ReadRow(x, row.data());
    for (int d = 0; d < snap->dim(); ++d) {
      EXPECT_FLOAT_EQ(row[d], engine.table().UnsafeRow(x)[d]);
    }
  }

  // And the serving tier can answer out of it end to end.
  LookupService service(&store, engine.partition(), engine.mutable_fabric());
  std::vector<float> out(8);
  ASSERT_TRUE(service.Lookup(0, 5, out.data()).ok());
  snap->ReadRow(5, row.data());
  EXPECT_FLOAT_EQ(out[0], row[0]);
}

TEST(EnginePublishHookTest, HookFailuresAreCountedNotFatal) {
  SyntheticCtrConfig data_cfg;
  data_cfg.num_samples = 300;
  data_cfg.num_fields = 4;
  data_cfg.num_features = 100;
  data_cfg.num_clusters = 2;
  data_cfg.seed = 10;
  CtrDataset train = GenerateSyntheticCtr(data_cfg);
  CtrDataset test = train.SplitTail(0.2);

  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.embedding_dim = 4;
  cfg.batch_size = 32;
  cfg.rounds_per_epoch = 2;

  const Topology topology = Topology::ClusterA(2);
  Bigraph graph(train);
  Partition partition = BuildPartition(cfg, graph, topology);
  Engine engine(cfg, train, test, topology, std::move(partition));

  engine.SetPublishHook(
      [](const Engine::PublishContext&) {
        return Status::Internal("disk full");
      },
      /*every_rounds=*/1);
  TrainResult result = engine.Train(/*max_epochs=*/1);
  EXPECT_EQ(result.snapshots_published, 0);
  EXPECT_EQ(result.publish_failures, 2);
  EXPECT_GT(result.total_iterations, 0);
}

}  // namespace
}  // namespace hetgmp
