// Cross-cutting property tests: invariants that must hold for *every*
// configuration, swept parametrically (seeds, worker counts, presets).

#include <gtest/gtest.h>

#include "comm/allreduce.h"
#include "comm/topology.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "partition/hybrid_partitioner.h"
#include "partition/hybrid_state.h"
#include "partition/quality.h"

namespace hetgmp {
namespace {

// ---------------------------------------------------------- topology

class TopologySizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologySizeSweep, PresetsAreWellFormed) {
  const int n = GetParam();
  for (const Topology& t : {Topology::ClusterA(n), Topology::ClusterB(n)}) {
    EXPECT_EQ(t.num_workers(), n);
    EXPECT_GE(t.num_machines(), 1);
    for (int a = 0; a < n; ++a) {
      EXPECT_EQ(t.link(a, a), LinkType::kLocal);
      for (int b = 0; b < n; ++b) {
        // Links are symmetric.
        EXPECT_EQ(t.link(a, b), t.link(b, a));
        if (a != b) {
          EXPECT_NE(t.link(a, b), LinkType::kLocal);
          EXPECT_GT(t.BandwidthBytesPerSec(a, b), 0.0);
          EXPECT_GE(t.LatencySec(a, b), 0.0);
        }
        // Same machine ⇒ never an Ethernet link; different machine ⇒
        // always Ethernet.
        const bool cross = t.machine_of(a) != t.machine_of(b);
        const bool eth = t.link(a, b) == LinkType::kEth1G ||
                         t.link(a, b) == LinkType::kEth10G;
        if (a != b) {
          EXPECT_EQ(cross, eth);
        }
      }
    }
    // Weight matrices: zero diagonal, min off-diagonal exactly 1.
    const auto w = t.CommWeightMatrix();
    double min_off = 1e18;
    for (int a = 0; a < n; ++a) {
      EXPECT_DOUBLE_EQ(w[a][a], 0.0);
      for (int b = 0; b < n; ++b) {
        if (a != b) {
          EXPECT_GE(w[a][b], 1.0);
          min_off = std::min(min_off, w[a][b]);
        }
      }
    }
    if (n > 1) {
      EXPECT_DOUBLE_EQ(min_off, 1.0);
    }
    // Ring AllReduce time is monotone in payload.
    if (n > 1) {
      EXPECT_LE(RingAllReduceTime(t, 1 << 10),
                RingAllReduceTime(t, 1 << 20));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16, 24));

// --------------------------------------------------------- partitioner

class HybridSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HybridSeedSweep, InvariantsHoldForEverySeed) {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 2000;
  cfg.num_fields = 8;
  cfg.num_features = 500;
  cfg.num_clusters = 4;
  cfg.seed = 100 + GetParam();
  CtrDataset d = GenerateSyntheticCtr(cfg);
  Bigraph g(d);
  HybridPartitionerOptions opt;
  opt.rounds = 2;
  opt.seed = GetParam();
  Partition p = HybridPartitioner(opt).Run(g, 4);

  // Validity.
  for (int o : p.sample_owner) {
    ASSERT_GE(o, 0);
    ASSERT_LT(o, 4);
  }
  for (int o : p.embedding_owner) {
    ASSERT_GE(o, 0);
    ASSERT_LT(o, 4);
  }
  // Replication bounded by the configured budget.
  const int64_t budget =
      static_cast<int64_t>(opt.secondary_fraction * g.num_embeddings());
  for (const auto& s : p.secondaries) {
    EXPECT_LE(static_cast<int64_t>(s.size()), budget);
  }
  // Quality is always far better than random placement would be.
  const PartitionQuality q = EvaluatePartition(g, p);
  EXPECT_LT(q.RemoteFraction(), 0.6);  // random would be ~0.75
  // Balance never collapses.
  EXPECT_GT(q.min_samples, 0);
  EXPECT_LT(q.max_samples, g.num_samples());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------- state bookkeeping

// The incremental detach/attach bookkeeping (per-partition tallies,
// sparse count table, comm costs) must exactly match a from-scratch
// recomputation after arbitrarily many moves — this is the invariant
// both partitioner passes rely on.
class StateBookkeepingSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StateBookkeepingSweep, IncrementalMatchesRecompute) {
  const uint64_t seed = GetParam();
  SyntheticCtrConfig cfg;
  cfg.num_samples = 1500;
  cfg.num_fields = 6;
  cfg.num_features = 400;
  cfg.num_clusters = 4;
  cfg.seed = 300 + seed;
  CtrDataset d = GenerateSyntheticCtr(cfg);
  Bigraph g(d);
  const int N = 5;

  // Heterogeneous weights so comm-cost errors cannot hide behind
  // symmetric cancellation.
  std::vector<std::vector<double>> w(N, std::vector<double>(N, 0.0));
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      if (i != j) w[i][j] = 1.0 + ((i * 7 + j * 3) % 5);
    }
  }

  Rng rng(seed);
  Partition init;
  init.num_parts = N;
  init.sample_owner.resize(g.num_samples());
  init.embedding_owner.resize(g.num_embeddings());
  init.secondaries.assign(N, {});
  for (auto& o : init.sample_owner) o = static_cast<int>(rng.NextUint64(N));
  for (auto& o : init.embedding_owner) {
    o = static_cast<int>(rng.NextUint64(N));
  }

  PartitionState state(g, N, w);
  state.InitFrom(init);

  // A full random round: every vertex detached and re-attached to a
  // random partition (samples and embeddings interleaved).
  for (int64_t s = 0; s < g.num_samples(); ++s) {
    state.DetachSample(s);
    state.AttachSample(s, static_cast<int>(rng.NextUint64(N)));
    if (s < g.num_embeddings()) {
      state.DetachEmbedding(s);
      state.AttachEmbedding(s, static_cast<int>(rng.NextUint64(N)));
    }
  }

  // Tallies vs direct recount.
  std::vector<int64_t> scount(N, 0), ecount(N, 0);
  std::vector<std::vector<int64_t>> dense(
      g.num_embeddings(), std::vector<int64_t>(N, 0));
  for (int64_t s = 0; s < g.num_samples(); ++s) {
    const int a = state.sample_owner(s);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, N);
    ++scount[a];
    const FeatureId* feats = g.SampleNeighbors(s);
    for (int f = 0; f < g.arity(); ++f) ++dense[feats[f]][a];
  }
  for (int64_t x = 0; x < g.num_embeddings(); ++x) {
    ++ecount[state.emb_owner(x)];
  }
  for (int i = 0; i < N; ++i) {
    EXPECT_EQ(state.sample_count(i), scount[i]) << "partition " << i;
    EXPECT_EQ(state.emb_count(i), ecount[i]) << "partition " << i;
  }
  for (int64_t x = 0; x < g.num_embeddings(); ++x) {
    int32_t nonzero = 0;
    for (int i = 0; i < N; ++i) {
      EXPECT_EQ(state.cnt(x, i), dense[x][i])
          << "count(" << x << ", " << i << ")";
      nonzero += dense[x][i] > 0;
    }
    // Swap-remove on zero keeps rows exactly as long as their support.
    EXPECT_EQ(state.counts().RowSize(x), nonzero) << "row " << x;
  }

  // Incrementally maintained comm costs vs from-scratch recompute:
  // identical up to FP reassociation.
  std::vector<double> incremental(N);
  for (int i = 0; i < N; ++i) incremental[i] = state.comm_cost(i);
  state.RecomputeCommCosts();
  for (int i = 0; i < N; ++i) {
    EXPECT_NEAR(incremental[i], state.comm_cost(i),
                1e-6 * std::max(1.0, state.comm_cost(i)))
        << "partition " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateBookkeepingSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

// ----------------------------------------------------------- generator

class GeneratorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedSweep, DatasetAlwaysStructurallyValid) {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 1000;
  cfg.num_fields = 7;
  cfg.num_features = 350;
  cfg.num_clusters = 5;
  cfg.seed = GetParam();
  CtrDataset d = GenerateSyntheticCtr(cfg);
  ASSERT_EQ(d.num_samples(), 1000);
  for (int64_t s = 0; s < d.num_samples(); ++s) {
    const FeatureId* feats = d.sample_features(s);
    for (int f = 0; f < d.num_fields(); ++f) {
      ASSERT_GE(feats[f], d.field_offsets()[f]);
      ASSERT_LT(feats[f], d.field_offsets()[f + 1]);
    }
  }
  // Both label classes are present.
  int ones = 0;
  for (float y : d.labels()) ones += y > 0.5f;
  EXPECT_GT(ones, 0);
  EXPECT_LT(ones, d.num_samples());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 7, 42, 1001, 99999));

}  // namespace
}  // namespace hetgmp
