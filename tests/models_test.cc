#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "models/dcn.h"
#include "models/model.h"
#include "models/wdl.h"
#include "nn/loss.h"

namespace hetgmp {
namespace {

Tensor RandomInput(int64_t batch, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  Tensor t({batch, dim});
  for (int64_t i = 0; i < t.size(); ++i) t.at(i) = rng.NextFloat(-1, 1);
  return t;
}

double ProbeLoss(const Tensor& out, const Tensor& probe) {
  double acc = 0;
  for (int64_t i = 0; i < out.size(); ++i) {
    acc += static_cast<double>(out.at(i)) * probe.at(i);
  }
  return acc;
}

void ModelGradCheck(EmbeddingModel* model, int64_t input_dim) {
  Tensor in = RandomInput(3, input_dim, 31);
  Tensor out;
  model->Forward(in, &out);
  const Tensor probe = RandomInput(out.dim(0), out.dim(1), 32);

  model->ZeroGrads();
  model->Forward(in, &out);
  Tensor grad_in;
  model->Backward(probe, &grad_in);
  ASSERT_EQ(grad_in.size(), in.size());

  const float eps = 1e-2f;
  Rng pick(33);
  for (int c = 0; c < 20; ++c) {
    const int64_t i = static_cast<int64_t>(pick.NextUint64(in.size()));
    Tensor plus = in, minus = in;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    Tensor op, om;
    model->Forward(plus, &op);
    const double lp = ProbeLoss(op, probe);
    model->Forward(minus, &om);
    const double lm = ProbeLoss(om, probe);
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_in.at(i), numeric,
                4e-2 * std::max(1.0, std::abs(numeric)))
        << "input index " << i;
  }
}

TEST(WdlModelTest, OutputShapeIsLogits) {
  Rng rng(1);
  WdlModel model(24, {16, 8}, &rng);
  Tensor in = RandomInput(5, 24, 2);
  Tensor out;
  model.Forward(in, &out);
  EXPECT_EQ(out.dim(0), 5);
  EXPECT_EQ(out.dim(1), 1);
}

TEST(WdlModelTest, GradCheck) {
  Rng rng(3);
  WdlModel model(12, {8}, &rng);
  ModelGradCheck(&model, 12);
}

TEST(WdlModelTest, ParamsAndGradsAligned) {
  Rng rng(4);
  WdlModel model(10, {6}, &rng);
  auto params = model.DenseParams();
  auto grads = model.DenseGrads();
  ASSERT_EQ(params.size(), grads.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->size(), grads[i]->size());
  }
  // wide(W, b) + dense1(W, b) + dense_out(W, b)
  EXPECT_EQ(params.size(), 6u);
}

TEST(WdlModelTest, WidePathContributes) {
  // Zero out the deep tower; the model must still respond to input via
  // the wide linear part.
  Rng rng(5);
  WdlModel model(4, {3}, &rng);
  auto params = model.DenseParams();
  // params[0], params[1] are the wide layer; zero everything else.
  for (size_t i = 2; i < params.size(); ++i) params[i]->Fill(0.0f);
  Tensor a = RandomInput(1, 4, 6);
  Tensor b = a;
  b.at(0) += 1.0f;
  Tensor oa, ob;
  model.Forward(a, &oa);
  model.Forward(b, &ob);
  EXPECT_NE(oa.at(0), ob.at(0));
}

TEST(DcnModelTest, OutputShape) {
  Rng rng(7);
  DcnModel model(16, 2, {8}, &rng);
  Tensor in = RandomInput(4, 16, 8);
  Tensor out;
  model.Forward(in, &out);
  EXPECT_EQ(out.dim(0), 4);
  EXPECT_EQ(out.dim(1), 1);
}

TEST(DcnModelTest, GradCheck) {
  Rng rng(9);
  DcnModel model(8, 2, {6}, &rng);
  ModelGradCheck(&model, 8);
}

TEST(DcnModelTest, HasMoreDenseParamsThanWdlFactory) {
  // Figure 8 leans on DCN carrying more dense parameters than WDL; the
  // factory configurations must preserve that.
  Rng rng1(10), rng2(10);
  auto wdl = CreateModel(ModelType::kWdl, 26 * 16, &rng1);
  auto dcn = CreateModel(ModelType::kDcn, 26 * 16, &rng2);
  EXPECT_GT(dcn->NumDenseParams(), wdl->NumDenseParams());
}

TEST(ModelFactoryTest, CreatesBothTypes) {
  Rng rng(11);
  auto wdl = CreateModel(ModelType::kWdl, 64, &rng);
  auto dcn = CreateModel(ModelType::kDcn, 64, &rng);
  EXPECT_STREQ(wdl->name(), "WDL");
  EXPECT_STREQ(dcn->name(), "DCN");
  EXPECT_GT(wdl->FlopsPerSample(), 0);
  EXPECT_GT(dcn->FlopsPerSample(), 0);
  EXPECT_EQ(wdl->DenseParamBytes(), wdl->NumDenseParams() * 4u);
}

TEST(ModelFactoryTest, SameSeedSameInit) {
  Rng rng1(12), rng2(12);
  auto a = CreateModel(ModelType::kWdl, 32, &rng1);
  auto b = CreateModel(ModelType::kWdl, 32, &rng2);
  auto pa = a->DenseParams();
  auto pb = b->DenseParams();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i]->size(); ++j) {
      ASSERT_EQ(pa[i]->at(j), pb[i]->at(j));
    }
  }
}

TEST(ModelTrainingTest, OverfitsTinyProblem) {
  // Sanity: a few hundred SGD steps on 8 fixed samples must drive the
  // training loss toward zero — the full fwd/bwd/update loop works.
  Rng rng(13);
  auto model = CreateModel(ModelType::kWdl, 6, &rng);
  Tensor in = RandomInput(8, 6, 14);
  std::vector<float> labels = {1, 0, 1, 0, 1, 1, 0, 0};
  Tensor logits, dlogits, din;
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 400; ++step) {
    model->Forward(in, &logits);
    const double loss = BceWithLogits(logits, labels, &dlogits);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    model->ZeroGrads();
    model->Backward(dlogits, &din);
    auto params = model->DenseParams();
    auto grads = model->DenseGrads();
    for (size_t i = 0; i < params.size(); ++i) {
      for (int64_t j = 0; j < params[i]->size(); ++j) {
        params[i]->at(j) -= 0.3f * grads[i]->at(j);
      }
    }
  }
  EXPECT_LT(last_loss, first_loss * 0.3);
  EXPECT_LT(last_loss, 0.3);
}

class ModelTypeSweep : public ::testing::TestWithParam<ModelType> {};

TEST_P(ModelTypeSweep, BackwardShapesMatchForward) {
  Rng rng(15);
  auto model = CreateModel(GetParam(), 20, &rng);
  Tensor in = RandomInput(7, 20, 16);
  Tensor out, dout, din;
  model->Forward(in, &out);
  dout.Resize(out.shape());
  dout.Fill(1.0f);
  model->Backward(dout, &din);
  EXPECT_EQ(din.shape(), in.shape());
}

INSTANTIATE_TEST_SUITE_P(Types, ModelTypeSweep,
                         ::testing::Values(ModelType::kWdl,
                                           ModelType::kDcn));

}  // namespace
}  // namespace hetgmp
