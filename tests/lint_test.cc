// Tests for tools/hetgmp_lint: every seeded fixture violation R1–R5 is
// flagged, the compliant fixture and the real tree lint clean, and the
// linter's rank table cannot drift from lock_rank in
// src/common/thread_annotations.h.

#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "driver.h"
#include "gtest/gtest.h"
#include "model.h"
#include "rules.h"

namespace hetgmp::lint {
namespace {

#ifndef HETGMP_SOURCE_DIR
#error "build must define HETGMP_SOURCE_DIR"
#endif

std::string SourcePath(const std::string& rel) {
  return std::string(HETGMP_SOURCE_DIR) + "/" + rel;
}

std::vector<Finding> LintFixture(const std::string& name) {
  return LintFiles({SourcePath("tests/lint_fixtures/" + name)});
}

std::vector<std::string> RulesOf(const std::vector<Finding>& fs) {
  std::vector<std::string> rules;
  rules.reserve(fs.size());
  for (const Finding& f : fs) rules.push_back(f.rule);
  return rules;
}

TEST(LintFixtures, R1RankInversionAndLeafFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r1_rank.cc");
  ASSERT_EQ(fs.size(), 2u) << FindingsToJson(fs);
  EXPECT_EQ(fs[0].rule, "R1");
  EXPECT_EQ(fs[1].rule, "R1");
  EXPECT_NE(fs[0].message.find("inversion"), std::string::npos);
  EXPECT_NE(fs[1].message.find("leaf"), std::string::npos);
}

// The ISSUE 7 storage ranks (prefetch 15 / warm 52 / cold 54) are real
// entries in the rank table, not special cases: inversions among them
// are flagged like any other.
TEST(LintFixtures, R1StoreRankInversionsFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r1_store.cc");
  ASSERT_EQ(fs.size(), 2u) << FindingsToJson(fs);
  EXPECT_EQ(fs[0].rule, "R1");
  EXPECT_EQ(fs[1].rule, "R1");
  EXPECT_NE(fs[0].message.find("inversion"), std::string::npos);
  EXPECT_NE(fs[1].message.find("inversion"), std::string::npos);
}

// The ISSUE 8 transport ranks (conn 56 / mailbox 58) follow the same
// discipline: inversions among them, and against the storage ranks
// below them, are flagged.
TEST(LintFixtures, R1TransportRankInversionsFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r1_transport.cc");
  ASSERT_EQ(fs.size(), 2u) << FindingsToJson(fs);
  EXPECT_EQ(fs[0].rule, "R1");
  EXPECT_EQ(fs[1].rule, "R1");
  EXPECT_NE(fs[0].message.find("inversion"), std::string::npos);
  EXPECT_NE(fs[1].message.find("inversion"), std::string::npos);
}

TEST(LintFixtures, R1DoubleStripeFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r1_stripes.cc");
  ASSERT_EQ(fs.size(), 1u) << FindingsToJson(fs);
  EXPECT_EQ(fs[0].rule, "R1");
  EXPECT_NE(fs[0].message.find("stripe"), std::string::npos);
}

TEST(LintFixtures, R2UnguardedFieldFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r2.h");
  ASSERT_EQ(fs.size(), 1u) << FindingsToJson(fs);
  EXPECT_EQ(fs[0].rule, "R2");
  EXPECT_NE(fs[0].message.find("history_"), std::string::npos);
}

TEST(LintFixtures, R3UnchargedTransfersFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r3.cc");
  EXPECT_EQ(RulesOf(fs), (std::vector<std::string>{"R3", "R3"}))
      << FindingsToJson(fs);
}

TEST(LintFixtures, R4HotPathAllocationsFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r4.cc");
  EXPECT_EQ(RulesOf(fs), (std::vector<std::string>{"R4", "R4", "R4"}))
      << FindingsToJson(fs);
}

TEST(LintFixtures, R5BitStableHazardsFlagged) {
  std::vector<Finding> fs = LintFixture("bad_r5.cc");
  ASSERT_EQ(fs.size(), 2u) << FindingsToJson(fs);
  EXPECT_NE(fs[0].message.find("reduce"), std::string::npos);
  EXPECT_NE(fs[1].message.find("unordered"), std::string::npos);
}

TEST(LintFixtures, GoodFixtureIsClean) {
  std::vector<Finding> fs = LintFixture("good.cc");
  EXPECT_TRUE(fs.empty()) << FindingsToJson(fs);
}

// The contract the CI lint job enforces: the real tree has no findings.
// Linting src/ directly (every header and translation unit) is the
// compiler-free equivalent of --compdb + --src.
TEST(LintTree, RealTreeLintsClean) {
  std::vector<std::string> files = CollectSources(SourcePath("src"));
  ASSERT_GT(files.size(), 50u) << "source walk looks wrong";
  std::vector<Finding> fs = LintFiles(std::move(files));
  EXPECT_TRUE(fs.empty()) << FindingsToJson(fs);
}

// The linter mirrors lock_rank so it can reason about ranks without a
// compiler; parse the real header and require an exact match, so adding
// or renumbering a rank without updating the linter fails here.
TEST(LintRankTable, MatchesThreadAnnotationsHeader) {
  std::ifstream in(SourcePath("src/common/thread_annotations.h"));
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string src = ss.str();

  const size_t ns = src.find("namespace lock_rank");
  ASSERT_NE(ns, std::string::npos);
  const size_t ns_end = src.find("}  // namespace lock_rank", ns);
  ASSERT_NE(ns_end, std::string::npos);

  std::map<std::string, int> parsed;
  const std::regex decl(R"(inline constexpr int (k\w+) = (\d+);)");
  auto begin = std::sregex_iterator(src.begin() + ns, src.begin() + ns_end,
                                    decl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    parsed[(*it)[1].str()] = std::stoi((*it)[2].str());
  }
  EXPECT_EQ(parsed, RankTable());
}

TEST(LintModel, WaiverRequiresReasonAndSpansWrappedComments) {
  const char* src =
      "struct S {\n"
      "  int a_;  // lint: unguarded(set once in ctor)\n"
      "  // lint: unguarded(wrapped across two comment\n"
      "  // lines but still one waiver)\n"
      "  int b_;\n"
      "  int c_;  // lint: unguarded()\n"
      "};\n";
  FileModel m = BuildModel(Lex("inline.h", src));
  EXPECT_TRUE(m.HasWaiver(2, "unguarded"));
  EXPECT_TRUE(m.HasWaiver(5, "unguarded"));
  EXPECT_FALSE(m.HasWaiver(6, "unguarded")) << "empty reason must not count";
  EXPECT_FALSE(m.HasWaiver(2, "allow_alloc"));
}

TEST(LintDriver, CompileCommandsParsing) {
#ifndef HETGMP_BINARY_DIR
  GTEST_SKIP() << "no binary dir configured";
#else
  const std::string compdb =
      std::string(HETGMP_BINARY_DIR) + "/compile_commands.json";
  std::ifstream probe(compdb);
  if (!probe.good()) GTEST_SKIP() << "no compile database in this build";
  std::vector<std::string> files = FilesFromCompileCommands(compdb);
  EXPECT_FALSE(files.empty());
  for (const std::string& f : files) {
    EXPECT_NE(f.find(".c"), std::string::npos) << f;
  }
#endif
}

TEST(LintDriver, JsonOutputEscapes) {
  std::vector<Finding> fs = {
      {"R4", "a\"b.cc", 7, "uses \"new\"\n"},
  };
  const std::string json = FindingsToJson(fs);
  EXPECT_NE(json.find("\\\"new\\\"\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
}

}  // namespace
}  // namespace hetgmp::lint
