// Golden-trajectory equivalence for the training hot path.
//
// The planned iteration (batch index plan + deduped inter-embedding sync
// + fused/parallel round-serial section) must be *semantically identical*
// to the pre-plan reference implementation, not merely close: under the
// deterministic round-robin driver both hot paths execute the exact same
// worker schedule, so every metric — per-round loss, AUC, fabric byte
// counters, refresh/flag counts, staleness audit — must match to the last
// bit. Any FP reordering or dropped/duplicated check shows up here as an
// exact-compare failure.

#include <gtest/gtest.h>

#include <string>

#include "comm/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig TinyConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 3000;
  cfg.num_fields = 8;
  cfg.num_features = 600;
  cfg.num_clusters = 4;
  cfg.seed = 91;
  return cfg;
}

struct Fixtures {
  Fixtures()
      : train(GenerateSyntheticCtr(TinyConfig())),
        test(train.SplitTail(0.2)),
        topology(Topology::FourGpuPcie()) {}
  CtrDataset train;
  CtrDataset test;
  Topology topology;
};

EngineConfig GoldenConfig(ConsistencyMode mode, ReplicaPolicy policy) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.consistency = mode;
  cfg.replica_policy = policy;
  if (policy == ReplicaPolicy::kLruDynamic) {
    cfg.lru_capacity_fraction = 0.05;
  }
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  cfg.rounds_per_epoch = 2;
  // A tight bound keeps the inter-embedding pass busy (flags, refreshes,
  // screen near-misses) instead of vacuously fresh.
  cfg.bound.s = 1;
  cfg.deterministic = true;
  return cfg;
}

TrainResult RunOnce(EngineConfig cfg, const Fixtures& f, int epochs) {
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  return engine.Train(epochs);
}

// Exact (bitwise for the integer counters, == for the floats) comparison
// of everything the engine reports.
void ExpectIdenticalTrajectories(const TrainResult& ref,
                                 const TrainResult& opt,
                                 const std::string& label) {
  ASSERT_EQ(ref.rounds.size(), opt.rounds.size()) << label;
  for (size_t i = 0; i < ref.rounds.size(); ++i) {
    SCOPED_TRACE(label + " round " + std::to_string(i));
    const RoundStats& a = ref.rounds[i];
    const RoundStats& b = opt.rounds[i];
    EXPECT_EQ(a.iterations_done, b.iterations_done);
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.auc, b.auc);
    EXPECT_EQ(a.sim_time, b.sim_time);
    EXPECT_EQ(a.embedding_bytes, b.embedding_bytes);
    EXPECT_EQ(a.index_clock_bytes, b.index_clock_bytes);
    EXPECT_EQ(a.allreduce_bytes, b.allreduce_bytes);
    EXPECT_EQ(a.remote_fetches, b.remote_fetches);
    EXPECT_EQ(a.intra_refreshes, b.intra_refreshes);
    EXPECT_EQ(a.inter_refreshes, b.inter_refreshes);
    EXPECT_EQ(a.inter_flags, b.inter_flags);
  }
  EXPECT_EQ(ref.final_auc, opt.final_auc) << label;
  EXPECT_EQ(ref.total_sim_time, opt.total_sim_time) << label;
  EXPECT_EQ(ref.total_iterations, opt.total_iterations) << label;
  EXPECT_EQ(ref.samples_processed, opt.samples_processed) << label;
  EXPECT_EQ(ref.staleness.max_intra_gap, opt.staleness.max_intra_gap)
      << label;
  EXPECT_EQ(ref.staleness.max_inter_norm_gap,
            opt.staleness.max_inter_norm_gap)
      << label;
  EXPECT_EQ(ref.staleness.inter_violations, 0) << label;
  EXPECT_EQ(opt.staleness.inter_violations, 0) << label;
}

struct GoldenCase {
  ConsistencyMode mode;
  ReplicaPolicy policy;
  const char* name;
};

class HotpathGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(HotpathGoldenTest, PlannedMatchesReferenceExactly) {
  const GoldenCase gc = GetParam();
  Fixtures f;
  EngineConfig cfg = GoldenConfig(gc.mode, gc.policy);

  EngineConfig ref_cfg = cfg;
  ref_cfg.reference_hotpath = true;
  const TrainResult ref = RunOnce(ref_cfg, f, 2);

  EngineConfig opt_cfg = cfg;
  opt_cfg.reference_hotpath = false;
  const TrainResult opt = RunOnce(opt_cfg, f, 2);

  // Guard against a vacuous pass: the graph-bounded cases must actually
  // exercise the deduped inter-embedding pass.
  if (gc.mode == ConsistencyMode::kGraphBounded) {
    EXPECT_GT(opt.rounds.back().inter_flags, 0) << gc.name;
    EXPECT_GT(opt.rounds.back().inter_refreshes, 0) << gc.name;
  }
  ExpectIdenticalTrajectories(ref, opt, gc.name);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndPolicies, HotpathGoldenTest,
    ::testing::Values(
        GoldenCase{ConsistencyMode::kGraphBounded,
                   ReplicaPolicy::kStaticVertexCut, "graph-static"},
        GoldenCase{ConsistencyMode::kGraphBounded,
                   ReplicaPolicy::kLruDynamic, "graph-lru"},
        GoldenCase{ConsistencyMode::kSsp, ReplicaPolicy::kStaticVertexCut,
                   "ssp-static"},
        GoldenCase{ConsistencyMode::kSsp, ReplicaPolicy::kLruDynamic,
                   "ssp-lru"},
        GoldenCase{ConsistencyMode::kBsp, ReplicaPolicy::kStaticVertexCut,
                   "bsp-static"},
        GoldenCase{ConsistencyMode::kBsp, ReplicaPolicy::kLruDynamic,
                   "bsp-lru"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// Write-back batching stresses the parts of the planned path that differ
// most from per-iteration flushing: pending gradients surviving across
// iterations (which makes 3b refreshes flush-then-fetch) plus the
// round-boundary force flush.
TEST(HotpathGoldenTest, WriteBackBatchingMatchesReferenceExactly) {
  Fixtures f;
  EngineConfig cfg = GoldenConfig(ConsistencyMode::kGraphBounded,
                                  ReplicaPolicy::kStaticVertexCut);
  cfg.write_back_every = 4;

  EngineConfig ref_cfg = cfg;
  ref_cfg.reference_hotpath = true;
  const TrainResult ref = RunOnce(ref_cfg, f, 2);

  EngineConfig opt_cfg = cfg;
  opt_cfg.reference_hotpath = false;
  const TrainResult opt = RunOnce(opt_cfg, f, 2);

  ExpectIdenticalTrajectories(ref, opt, "write-back-4");
}

// The serial-section parallelism (AUC chunks on distinct bit-identical
// replicas, chunked fused dense re-average) must not change a single bit
// relative to running the same planned engine serially.
TEST(HotpathGoldenTest, SerialSectionThreadCountIsBitInvariant) {
  Fixtures f;
  EngineConfig cfg = GoldenConfig(ConsistencyMode::kGraphBounded,
                                  ReplicaPolicy::kStaticVertexCut);

  EngineConfig serial_cfg = cfg;
  serial_cfg.serial_section_threads = 1;
  const TrainResult serial = RunOnce(serial_cfg, f, 2);

  EngineConfig pooled_cfg = cfg;
  pooled_cfg.serial_section_threads = 4;
  const TrainResult pooled = RunOnce(pooled_cfg, f, 2);

  ExpectIdenticalTrajectories(serial, pooled, "serial-vs-pooled");
}

// The deterministic driver is actually deterministic: two runs from
// identical configs reproduce each other exactly.
TEST(HotpathGoldenTest, DeterministicDriverIsReproducible) {
  Fixtures f;
  const EngineConfig cfg = GoldenConfig(ConsistencyMode::kGraphBounded,
                                        ReplicaPolicy::kStaticVertexCut);
  const TrainResult a = RunOnce(cfg, f, 2);
  const TrainResult b = RunOnce(cfg, f, 2);
  ExpectIdenticalTrajectories(a, b, "run-vs-rerun");
}

// Stage timers are populated for both hot paths (the bench's per-stage
// breakdown depends on them).
TEST(HotpathGoldenTest, StageTimersArePopulated) {
  Fixtures f;
  for (const bool reference : {false, true}) {
    EngineConfig cfg = GoldenConfig(ConsistencyMode::kGraphBounded,
                                    ReplicaPolicy::kStaticVertexCut);
    cfg.reference_hotpath = reference;
    const TrainResult r = RunOnce(cfg, f, 1);
    EXPECT_GT(r.stage_secs.gather, 0.0) << "reference=" << reference;
    EXPECT_GT(r.stage_secs.inter_sync, 0.0) << "reference=" << reference;
    EXPECT_GT(r.stage_secs.dense, 0.0) << "reference=" << reference;
    EXPECT_GT(r.stage_secs.scatter, 0.0) << "reference=" << reference;
    EXPECT_GT(r.stage_secs.flush, 0.0) << "reference=" << reference;
    EXPECT_GT(r.stage_secs.Total(), 0.0) << "reference=" << reference;
  }
}

}  // namespace
}  // namespace hetgmp
