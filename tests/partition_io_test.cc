#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "partition/hybrid_partitioner.h"
#include "partition/partition_io.h"

namespace hetgmp {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/hetgmp_part_" + tag + "_" +
         std::to_string(::getpid());
}

Partition MakePartition() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 800;
  cfg.num_fields = 5;
  cfg.num_features = 200;
  cfg.num_clusters = 4;
  cfg.seed = 19;
  CtrDataset d = GenerateSyntheticCtr(cfg);
  Bigraph g(d);
  HybridPartitionerOptions opt;
  opt.rounds = 1;
  return HybridPartitioner(opt).Run(g, 4);
}

TEST(PartitionIoTest, RoundTrip) {
  Partition original = MakePartition();
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SavePartition(original, path).ok());
  Result<Partition> loaded = LoadPartition(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Partition& p = loaded.value();
  EXPECT_EQ(p.num_parts, original.num_parts);
  EXPECT_EQ(p.sample_owner, original.sample_owner);
  EXPECT_EQ(p.embedding_owner, original.embedding_owner);
  EXPECT_EQ(p.secondaries, original.secondaries);
  std::remove(path.c_str());
}

TEST(PartitionIoTest, MissingFileIsNotFound) {
  Result<Partition> r = LoadPartition("/no/such/partition.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PartitionIoTest, GarbageRejected) {
  const std::string path = TempPath("garbage");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a partition";
  }
  Result<Partition> r = LoadPartition(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PartitionIoTest, TruncationRejected) {
  Partition original = MakePartition();
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(SavePartition(original, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), bytes.size() / 3);
  }
  Result<Partition> r = LoadPartition(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(PartitionIoTest, LoadedPartitionUsableByReplicaIndex) {
  Partition original = MakePartition();
  const std::string path = TempPath("usable");
  ASSERT_TRUE(SavePartition(original, path).ok());
  Result<Partition> loaded = LoadPartition(path);
  ASSERT_TRUE(loaded.ok());
  ReplicaIndex idx(loaded.value());
  EXPECT_EQ(idx.num_parts(), original.num_parts);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetgmp
