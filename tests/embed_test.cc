#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "embed/embedding_table.h"
#include "embed/secondary_cache.h"

namespace hetgmp {
namespace {

// -------------------------------------------------------- EmbeddingTable

TEST(EmbeddingTableTest, InitStddevRespected) {
  EmbeddingTable t(1000, 16, 0.1f, 42);
  double sum = 0, sum_sq = 0;
  const int64_t n = 1000 * 16;
  for (int64_t x = 0; x < 1000; ++x) {
    const float* row = t.UnsafeRow(x);
    for (int c = 0; c < 16; ++c) {
      sum += row[c];
      sum_sq += row[c] * row[c];
    }
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 0.1, 0.01);
}

TEST(EmbeddingTableTest, DeterministicForSeed) {
  EmbeddingTable a(100, 8, 0.05f, 7), b(100, 8, 0.05f, 7);
  for (int64_t x = 0; x < 100; ++x) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(a.UnsafeRow(x)[c], b.UnsafeRow(x)[c]);
    }
  }
}

TEST(EmbeddingTableTest, ReadRowCopies) {
  EmbeddingTable t(10, 4, 0.1f, 1);
  std::vector<float> out(4);
  t.ReadRow(3, out.data());
  for (int c = 0; c < 4; ++c) EXPECT_EQ(out[c], t.UnsafeRow(3)[c]);
}

TEST(EmbeddingTableTest, SgdGradientApplication) {
  EmbeddingTable t(4, 2, 0.0f, 1, EmbeddingOptimizer::kSgd, /*lr=*/0.5f);
  const float grad[2] = {1.0f, -2.0f};
  t.ApplyGradient(0, grad);
  EXPECT_FLOAT_EQ(t.UnsafeRow(0)[0], -0.5f);
  EXPECT_FLOAT_EQ(t.UnsafeRow(0)[1], 1.0f);
  // Other rows untouched.
  EXPECT_FLOAT_EQ(t.UnsafeRow(1)[0], 0.0f);
}

TEST(EmbeddingTableTest, AdaGradStepsShrink) {
  EmbeddingTable t(1, 1, 0.0f, 1, EmbeddingOptimizer::kAdaGrad, 0.1f);
  const float grad[1] = {1.0f};
  t.ApplyGradient(0, grad);
  const float first = -t.UnsafeRow(0)[0];
  EXPECT_NEAR(first, 0.1f, 1e-4);
  const float before = t.UnsafeRow(0)[0];
  t.ApplyGradient(0, grad);
  const float second = before - t.UnsafeRow(0)[0];
  EXPECT_LT(second, first);
}

TEST(EmbeddingTableTest, ConcurrentSgdUpdatesAllLand) {
  // With SGD (linear updates), concurrent gradient applications to the
  // same row must sum exactly thanks to the row lock.
  EmbeddingTable t(1, 4, 0.0f, 1, EmbeddingOptimizer::kSgd, 1.0f);
  constexpr int kThreads = 8;
  constexpr int kUpdates = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      const float grad[4] = {1, 1, 1, 1};
      for (int j = 0; j < kUpdates; ++j) t.ApplyGradient(0, grad);
    });
  }
  for (auto& th : threads) th.join();
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(t.UnsafeRow(0)[c],
                    -static_cast<float>(kThreads * kUpdates));
  }
}

TEST(EmbeddingTableTest, RowBytes) {
  EmbeddingTable t(10, 16, 0.1f, 1);
  EXPECT_EQ(t.RowBytes(), 64u);
}

// -------------------------------------------------------- SecondaryCache

TEST(SecondaryCacheTest, SlotLookup) {
  SecondaryCache c({7, 3, 42}, 4);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.Slot(7), 0);
  EXPECT_EQ(c.Slot(3), 1);
  EXPECT_EQ(c.Slot(42), 2);
  EXPECT_EQ(c.Slot(99), -1);
}

TEST(SecondaryCacheTest, ValuesStartZeroed) {
  SecondaryCache c({1, 2}, 3);
  for (int64_t s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(c.Value(s)[i], 0.0f);
      EXPECT_EQ(c.Pending(s)[i], 0.0f);
    }
    EXPECT_EQ(c.pending_count(s), 0);
    EXPECT_EQ(c.synced_clock(s), 0u);
  }
}

TEST(SecondaryCacheTest, PendingAccumulates) {
  SecondaryCache c({5}, 2);
  const float g1[2] = {1.0f, 2.0f};
  const float g2[2] = {0.5f, -1.0f};
  c.AccumulatePending(0, g1);
  c.AccumulatePending(0, g2);
  EXPECT_FLOAT_EQ(c.Pending(0)[0], 1.5f);
  EXPECT_FLOAT_EQ(c.Pending(0)[1], 1.0f);
  EXPECT_EQ(c.pending_count(0), 2);
  c.ClearPending(0);
  EXPECT_EQ(c.pending_count(0), 0);
  EXPECT_FLOAT_EQ(c.Pending(0)[0], 0.0f);
}

TEST(SecondaryCacheTest, SetValueOverwrites) {
  SecondaryCache c({5}, 2);
  const float v[2] = {3.0f, 4.0f};
  c.SetValue(0, v);
  EXPECT_FLOAT_EQ(c.Value(0)[0], 3.0f);
  EXPECT_FLOAT_EQ(c.Value(0)[1], 4.0f);
}

TEST(SecondaryCacheTest, SyncedClock) {
  SecondaryCache c({5}, 1);
  c.set_synced_clock(0, 77);
  EXPECT_EQ(c.synced_clock(0), 77u);
}

TEST(SecondaryCacheTest, EmptyCache) {
  SecondaryCache c({}, 8);
  EXPECT_EQ(c.size(), 0);
  EXPECT_EQ(c.Slot(0), -1);
}

TEST(SecondaryCacheDeathTest, DuplicateIdsRejected) {
  EXPECT_DEATH(SecondaryCache({1, 1}, 2), "duplicate");
}

}  // namespace
}  // namespace hetgmp
